file(REMOVE_RECURSE
  "CMakeFiles/linearize_test.dir/tests/linearize_test.cc.o"
  "CMakeFiles/linearize_test.dir/tests/linearize_test.cc.o.d"
  "linearize_test"
  "linearize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
