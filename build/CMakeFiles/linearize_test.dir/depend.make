# Empty dependencies file for linearize_test.
# This may be replaced when dependencies are built.
