file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_09_easy_heuristics.dir/bench/bench_fig08_09_easy_heuristics.cc.o"
  "CMakeFiles/bench_fig08_09_easy_heuristics.dir/bench/bench_fig08_09_easy_heuristics.cc.o.d"
  "bench_fig08_09_easy_heuristics"
  "bench_fig08_09_easy_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_09_easy_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
