# Empty dependencies file for bench_fig08_09_easy_heuristics.
# This may be replaced when dependencies are built.
