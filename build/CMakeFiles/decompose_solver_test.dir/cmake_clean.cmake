file(REMOVE_RECURSE
  "CMakeFiles/decompose_solver_test.dir/tests/decompose_solver_test.cc.o"
  "CMakeFiles/decompose_solver_test.dir/tests/decompose_solver_test.cc.o.d"
  "decompose_solver_test"
  "decompose_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
