# Empty dependencies file for decompose_solver_test.
# This may be replaced when dependencies are built.
