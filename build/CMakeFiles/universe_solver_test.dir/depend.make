# Empty dependencies file for universe_solver_test.
# This may be replaced when dependencies are built.
