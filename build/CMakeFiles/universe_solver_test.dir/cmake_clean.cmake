file(REMOVE_RECURSE
  "CMakeFiles/universe_solver_test.dir/tests/universe_solver_test.cc.o"
  "CMakeFiles/universe_solver_test.dir/tests/universe_solver_test.cc.o.d"
  "universe_solver_test"
  "universe_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
