file(REMOVE_RECURSE
  "CMakeFiles/set_cover_test.dir/tests/set_cover_test.cc.o"
  "CMakeFiles/set_cover_test.dir/tests/set_cover_test.cc.o.d"
  "set_cover_test"
  "set_cover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
