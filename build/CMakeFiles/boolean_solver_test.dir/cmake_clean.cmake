file(REMOVE_RECURSE
  "CMakeFiles/boolean_solver_test.dir/tests/boolean_solver_test.cc.o"
  "CMakeFiles/boolean_solver_test.dir/tests/boolean_solver_test.cc.o.d"
  "boolean_solver_test"
  "boolean_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
