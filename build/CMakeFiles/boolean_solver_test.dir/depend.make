# Empty dependencies file for boolean_solver_test.
# This may be replaced when dependencies are built.
