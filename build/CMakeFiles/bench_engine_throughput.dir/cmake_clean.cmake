file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_throughput.dir/bench/bench_engine_throughput.cc.o"
  "CMakeFiles/bench_engine_throughput.dir/bench/bench_engine_throughput.cc.o.d"
  "bench_engine_throughput"
  "bench_engine_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
