# Empty dependencies file for bench_engine_throughput.
# This may be replaced when dependencies are built.
