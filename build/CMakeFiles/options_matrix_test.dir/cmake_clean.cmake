file(REMOVE_RECURSE
  "CMakeFiles/options_matrix_test.dir/tests/options_matrix_test.cc.o"
  "CMakeFiles/options_matrix_test.dir/tests/options_matrix_test.cc.o.d"
  "options_matrix_test"
  "options_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
