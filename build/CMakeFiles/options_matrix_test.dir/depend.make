# Empty dependencies file for options_matrix_test.
# This may be replaced when dependencies are built.
