file(REMOVE_RECURSE
  "CMakeFiles/transform_test.dir/tests/transform_test.cc.o"
  "CMakeFiles/transform_test.dir/tests/transform_test.cc.o.d"
  "transform_test"
  "transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
