# Empty dependencies file for bench_fig07_easy_exact.
# This may be replaced when dependencies are built.
