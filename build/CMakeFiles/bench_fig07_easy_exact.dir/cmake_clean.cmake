file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_easy_exact.dir/bench/bench_fig07_easy_exact.cc.o"
  "CMakeFiles/bench_fig07_easy_exact.dir/bench/bench_fig07_easy_exact.cc.o.d"
  "bench_fig07_easy_exact"
  "bench_fig07_easy_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_easy_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
