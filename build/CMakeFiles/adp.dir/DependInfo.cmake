
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/monitor.cc" "CMakeFiles/adp.dir/src/analysis/monitor.cc.o" "gcc" "CMakeFiles/adp.dir/src/analysis/monitor.cc.o.d"
  "/root/repo/src/analysis/resilience.cc" "CMakeFiles/adp.dir/src/analysis/resilience.cc.o" "gcc" "CMakeFiles/adp.dir/src/analysis/resilience.cc.o.d"
  "/root/repo/src/analysis/robustness.cc" "CMakeFiles/adp.dir/src/analysis/robustness.cc.o" "gcc" "CMakeFiles/adp.dir/src/analysis/robustness.cc.o.d"
  "/root/repo/src/approx/adp_psc.cc" "CMakeFiles/adp.dir/src/approx/adp_psc.cc.o" "gcc" "CMakeFiles/adp.dir/src/approx/adp_psc.cc.o.d"
  "/root/repo/src/approx/set_cover.cc" "CMakeFiles/adp.dir/src/approx/set_cover.cc.o" "gcc" "CMakeFiles/adp.dir/src/approx/set_cover.cc.o.d"
  "/root/repo/src/dichotomy/classification.cc" "CMakeFiles/adp.dir/src/dichotomy/classification.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/classification.cc.o.d"
  "/root/repo/src/dichotomy/is_ptime.cc" "CMakeFiles/adp.dir/src/dichotomy/is_ptime.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/is_ptime.cc.o.d"
  "/root/repo/src/dichotomy/linearize.cc" "CMakeFiles/adp.dir/src/dichotomy/linearize.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/linearize.cc.o.d"
  "/root/repo/src/dichotomy/relations.cc" "CMakeFiles/adp.dir/src/dichotomy/relations.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/relations.cc.o.d"
  "/root/repo/src/dichotomy/structures.cc" "CMakeFiles/adp.dir/src/dichotomy/structures.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/structures.cc.o.d"
  "/root/repo/src/dichotomy/triad.cc" "CMakeFiles/adp.dir/src/dichotomy/triad.cc.o" "gcc" "CMakeFiles/adp.dir/src/dichotomy/triad.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/adp.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/adp.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/plan_cache.cc" "CMakeFiles/adp.dir/src/engine/plan_cache.cc.o" "gcc" "CMakeFiles/adp.dir/src/engine/plan_cache.cc.o.d"
  "/root/repo/src/engine/thread_pool.cc" "CMakeFiles/adp.dir/src/engine/thread_pool.cc.o" "gcc" "CMakeFiles/adp.dir/src/engine/thread_pool.cc.o.d"
  "/root/repo/src/flow/max_flow.cc" "CMakeFiles/adp.dir/src/flow/max_flow.cc.o" "gcc" "CMakeFiles/adp.dir/src/flow/max_flow.cc.o.d"
  "/root/repo/src/io/csv.cc" "CMakeFiles/adp.dir/src/io/csv.cc.o" "gcc" "CMakeFiles/adp.dir/src/io/csv.cc.o.d"
  "/root/repo/src/query/fingerprint.cc" "CMakeFiles/adp.dir/src/query/fingerprint.cc.o" "gcc" "CMakeFiles/adp.dir/src/query/fingerprint.cc.o.d"
  "/root/repo/src/query/graph.cc" "CMakeFiles/adp.dir/src/query/graph.cc.o" "gcc" "CMakeFiles/adp.dir/src/query/graph.cc.o.d"
  "/root/repo/src/query/parser.cc" "CMakeFiles/adp.dir/src/query/parser.cc.o" "gcc" "CMakeFiles/adp.dir/src/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "CMakeFiles/adp.dir/src/query/query.cc.o" "gcc" "CMakeFiles/adp.dir/src/query/query.cc.o.d"
  "/root/repo/src/query/transform.cc" "CMakeFiles/adp.dir/src/query/transform.cc.o" "gcc" "CMakeFiles/adp.dir/src/query/transform.cc.o.d"
  "/root/repo/src/reductions/bipartite.cc" "CMakeFiles/adp.dir/src/reductions/bipartite.cc.o" "gcc" "CMakeFiles/adp.dir/src/reductions/bipartite.cc.o.d"
  "/root/repo/src/relational/database.cc" "CMakeFiles/adp.dir/src/relational/database.cc.o" "gcc" "CMakeFiles/adp.dir/src/relational/database.cc.o.d"
  "/root/repo/src/relational/join.cc" "CMakeFiles/adp.dir/src/relational/join.cc.o" "gcc" "CMakeFiles/adp.dir/src/relational/join.cc.o.d"
  "/root/repo/src/relational/provenance.cc" "CMakeFiles/adp.dir/src/relational/provenance.cc.o" "gcc" "CMakeFiles/adp.dir/src/relational/provenance.cc.o.d"
  "/root/repo/src/relational/relation.cc" "CMakeFiles/adp.dir/src/relational/relation.cc.o" "gcc" "CMakeFiles/adp.dir/src/relational/relation.cc.o.d"
  "/root/repo/src/solver/boolean.cc" "CMakeFiles/adp.dir/src/solver/boolean.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/boolean.cc.o.d"
  "/root/repo/src/solver/brute_force.cc" "CMakeFiles/adp.dir/src/solver/brute_force.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/brute_force.cc.o.d"
  "/root/repo/src/solver/compute_adp.cc" "CMakeFiles/adp.dir/src/solver/compute_adp.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/compute_adp.cc.o.d"
  "/root/repo/src/solver/decompose.cc" "CMakeFiles/adp.dir/src/solver/decompose.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/decompose.cc.o.d"
  "/root/repo/src/solver/drastic.cc" "CMakeFiles/adp.dir/src/solver/drastic.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/drastic.cc.o.d"
  "/root/repo/src/solver/fixed_k.cc" "CMakeFiles/adp.dir/src/solver/fixed_k.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/fixed_k.cc.o.d"
  "/root/repo/src/solver/greedy.cc" "CMakeFiles/adp.dir/src/solver/greedy.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/greedy.cc.o.d"
  "/root/repo/src/solver/plan.cc" "CMakeFiles/adp.dir/src/solver/plan.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/plan.cc.o.d"
  "/root/repo/src/solver/profile.cc" "CMakeFiles/adp.dir/src/solver/profile.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/profile.cc.o.d"
  "/root/repo/src/solver/singleton.cc" "CMakeFiles/adp.dir/src/solver/singleton.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/singleton.cc.o.d"
  "/root/repo/src/solver/solution.cc" "CMakeFiles/adp.dir/src/solver/solution.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/solution.cc.o.d"
  "/root/repo/src/solver/universe.cc" "CMakeFiles/adp.dir/src/solver/universe.cc.o" "gcc" "CMakeFiles/adp.dir/src/solver/universe.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/adp.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/adp.dir/src/util/rng.cc.o.d"
  "/root/repo/src/workload/egonet.cc" "CMakeFiles/adp.dir/src/workload/egonet.cc.o" "gcc" "CMakeFiles/adp.dir/src/workload/egonet.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "CMakeFiles/adp.dir/src/workload/synthetic.cc.o" "gcc" "CMakeFiles/adp.dir/src/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "CMakeFiles/adp.dir/src/workload/tpch.cc.o" "gcc" "CMakeFiles/adp.dir/src/workload/tpch.cc.o.d"
  "/root/repo/src/workload/zipf_data.cc" "CMakeFiles/adp.dir/src/workload/zipf_data.cc.o" "gcc" "CMakeFiles/adp.dir/src/workload/zipf_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
