file(REMOVE_RECURSE
  "libadp.a"
)
