# Empty dependencies file for adp.
# This may be replaced when dependencies are built.
