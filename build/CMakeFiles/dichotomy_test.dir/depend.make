# Empty dependencies file for dichotomy_test.
# This may be replaced when dependencies are built.
