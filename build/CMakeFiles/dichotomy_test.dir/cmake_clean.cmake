file(REMOVE_RECURSE
  "CMakeFiles/dichotomy_test.dir/tests/dichotomy_test.cc.o"
  "CMakeFiles/dichotomy_test.dir/tests/dichotomy_test.cc.o.d"
  "dichotomy_test"
  "dichotomy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dichotomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
