# Empty dependencies file for bench_fig28_singleton_opt.
# This may be replaced when dependencies are built.
