file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_singleton_opt.dir/bench/bench_fig28_singleton_opt.cc.o"
  "CMakeFiles/bench_fig28_singleton_opt.dir/bench/bench_fig28_singleton_opt.cc.o.d"
  "bench_fig28_singleton_opt"
  "bench_fig28_singleton_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_singleton_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
