# Empty dependencies file for bench_fig14_15_snap.
# This may be replaced when dependencies are built.
