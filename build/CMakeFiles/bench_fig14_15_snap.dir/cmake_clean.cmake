file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_snap.dir/bench/bench_fig14_15_snap.cc.o"
  "CMakeFiles/bench_fig14_15_snap.dir/bench/bench_fig14_15_snap.cc.o.d"
  "bench_fig14_15_snap"
  "bench_fig14_15_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
