# Empty dependencies file for adp_cli.
# This may be replaced when dependencies are built.
