file(REMOVE_RECURSE
  "CMakeFiles/adp_cli.dir/examples/adp_cli.cpp.o"
  "CMakeFiles/adp_cli.dir/examples/adp_cli.cpp.o.d"
  "adp_cli"
  "adp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
