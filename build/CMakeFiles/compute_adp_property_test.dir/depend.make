# Empty dependencies file for compute_adp_property_test.
# This may be replaced when dependencies are built.
