file(REMOVE_RECURSE
  "CMakeFiles/restrictions_test.dir/tests/restrictions_test.cc.o"
  "CMakeFiles/restrictions_test.dir/tests/restrictions_test.cc.o.d"
  "restrictions_test"
  "restrictions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restrictions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
