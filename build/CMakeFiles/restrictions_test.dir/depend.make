# Empty dependencies file for restrictions_test.
# This may be replaced when dependencies are built.
