file(REMOVE_RECURSE
  "CMakeFiles/flow_test.dir/tests/flow_test.cc.o"
  "CMakeFiles/flow_test.dir/tests/flow_test.cc.o.d"
  "flow_test"
  "flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
