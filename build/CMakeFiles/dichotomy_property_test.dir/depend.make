# Empty dependencies file for dichotomy_property_test.
# This may be replaced when dependencies are built.
