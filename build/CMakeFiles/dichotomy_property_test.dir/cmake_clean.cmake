file(REMOVE_RECURSE
  "CMakeFiles/dichotomy_property_test.dir/tests/dichotomy_property_test.cc.o"
  "CMakeFiles/dichotomy_property_test.dir/tests/dichotomy_property_test.cc.o.d"
  "dichotomy_property_test"
  "dichotomy_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dichotomy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
