file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_hard_heuristics.dir/bench/bench_fig10_11_hard_heuristics.cc.o"
  "CMakeFiles/bench_fig10_11_hard_heuristics.dir/bench/bench_fig10_11_hard_heuristics.cc.o.d"
  "bench_fig10_11_hard_heuristics"
  "bench_fig10_11_hard_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_hard_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
