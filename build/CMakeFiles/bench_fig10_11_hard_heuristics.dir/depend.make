# Empty dependencies file for bench_fig10_11_hard_heuristics.
# This may be replaced when dependencies are built.
