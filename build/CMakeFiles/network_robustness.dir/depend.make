# Empty dependencies file for network_robustness.
# This may be replaced when dependencies are built.
