file(REMOVE_RECURSE
  "CMakeFiles/network_robustness.dir/examples/network_robustness.cpp.o"
  "CMakeFiles/network_robustness.dir/examples/network_robustness.cpp.o.d"
  "network_robustness"
  "network_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
