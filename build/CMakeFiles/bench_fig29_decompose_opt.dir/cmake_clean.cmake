file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_decompose_opt.dir/bench/bench_fig29_decompose_opt.cc.o"
  "CMakeFiles/bench_fig29_decompose_opt.dir/bench/bench_fig29_decompose_opt.cc.o.d"
  "bench_fig29_decompose_opt"
  "bench_fig29_decompose_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_decompose_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
