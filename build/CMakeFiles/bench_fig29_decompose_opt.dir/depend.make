# Empty dependencies file for bench_fig29_decompose_opt.
# This may be replaced when dependencies are built.
