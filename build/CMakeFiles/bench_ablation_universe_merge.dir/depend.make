# Empty dependencies file for bench_ablation_universe_merge.
# This may be replaced when dependencies are built.
