file(REMOVE_RECURSE
  "CMakeFiles/reductions_test.dir/tests/reductions_test.cc.o"
  "CMakeFiles/reductions_test.dir/tests/reductions_test.cc.o.d"
  "reductions_test"
  "reductions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
