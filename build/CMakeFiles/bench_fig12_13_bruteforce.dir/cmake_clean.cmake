file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_bruteforce.dir/bench/bench_fig12_13_bruteforce.cc.o"
  "CMakeFiles/bench_fig12_13_bruteforce.dir/bench/bench_fig12_13_bruteforce.cc.o.d"
  "bench_fig12_13_bruteforce"
  "bench_fig12_13_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
