# Empty dependencies file for bench_fig12_13_bruteforce.
# This may be replaced when dependencies are built.
