file(REMOVE_RECURSE
  "CMakeFiles/university_waitlist.dir/examples/university_waitlist.cpp.o"
  "CMakeFiles/university_waitlist.dir/examples/university_waitlist.cpp.o.d"
  "university_waitlist"
  "university_waitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_waitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
