# Empty dependencies file for university_waitlist.
# This may be replaced when dependencies are built.
