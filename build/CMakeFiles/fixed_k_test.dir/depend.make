# Empty dependencies file for fixed_k_test.
# This may be replaced when dependencies are built.
