file(REMOVE_RECURSE
  "CMakeFiles/fixed_k_test.dir/tests/fixed_k_test.cc.o"
  "CMakeFiles/fixed_k_test.dir/tests/fixed_k_test.cc.o.d"
  "fixed_k_test"
  "fixed_k_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
