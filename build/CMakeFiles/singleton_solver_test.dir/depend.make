# Empty dependencies file for singleton_solver_test.
# This may be replaced when dependencies are built.
