file(REMOVE_RECURSE
  "CMakeFiles/singleton_solver_test.dir/tests/singleton_solver_test.cc.o"
  "CMakeFiles/singleton_solver_test.dir/tests/singleton_solver_test.cc.o.d"
  "singleton_solver_test"
  "singleton_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singleton_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
