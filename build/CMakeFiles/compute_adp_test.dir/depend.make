# Empty dependencies file for compute_adp_test.
# This may be replaced when dependencies are built.
