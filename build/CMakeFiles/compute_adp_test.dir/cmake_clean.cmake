file(REMOVE_RECURSE
  "CMakeFiles/compute_adp_test.dir/tests/compute_adp_test.cc.o"
  "CMakeFiles/compute_adp_test.dir/tests/compute_adp_test.cc.o.d"
  "compute_adp_test"
  "compute_adp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_adp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
