# Empty dependencies file for adp_server.
# This may be replaced when dependencies are built.
