file(REMOVE_RECURSE
  "CMakeFiles/adp_server.dir/examples/adp_server.cpp.o"
  "CMakeFiles/adp_server.dir/examples/adp_server.cpp.o.d"
  "adp_server"
  "adp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
