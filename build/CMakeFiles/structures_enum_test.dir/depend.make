# Empty dependencies file for structures_enum_test.
# This may be replaced when dependencies are built.
