file(REMOVE_RECURSE
  "CMakeFiles/structures_enum_test.dir/tests/structures_enum_test.cc.o"
  "CMakeFiles/structures_enum_test.dir/tests/structures_enum_test.cc.o.d"
  "structures_enum_test"
  "structures_enum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structures_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
