# Empty dependencies file for bench_fig16_27_zipf.
# This may be replaced when dependencies are built.
