file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_27_zipf.dir/bench/bench_fig16_27_zipf.cc.o"
  "CMakeFiles/bench_fig16_27_zipf.dir/bench/bench_fig16_27_zipf.cc.o.d"
  "bench_fig16_27_zipf"
  "bench_fig16_27_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_27_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
