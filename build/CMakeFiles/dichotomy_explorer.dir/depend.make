# Empty dependencies file for dichotomy_explorer.
# This may be replaced when dependencies are built.
