file(REMOVE_RECURSE
  "CMakeFiles/dichotomy_explorer.dir/examples/dichotomy_explorer.cpp.o"
  "CMakeFiles/dichotomy_explorer.dir/examples/dichotomy_explorer.cpp.o.d"
  "dichotomy_explorer"
  "dichotomy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dichotomy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
