file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_quality.dir/bench/bench_approx_quality.cc.o"
  "CMakeFiles/bench_approx_quality.dir/bench/bench_approx_quality.cc.o.d"
  "bench_approx_quality"
  "bench_approx_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
