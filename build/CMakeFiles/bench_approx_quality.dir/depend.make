# Empty dependencies file for bench_approx_quality.
# This may be replaced when dependencies are built.
