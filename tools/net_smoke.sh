#!/usr/bin/env bash
# Loopback smoke test for the network front door: starts adp_netserver on
# an ephemeral port, drives one scripted adp_netclient session covering
# DB registration, pipelined REQ, server-push STREAM, CANCEL, and
# METRICS, and fails on any non-zero exit. Run from a build directory
# containing the two binaries (or pass it as $1).
set -euo pipefail

build_dir="${1:-.}"
server="$build_dir/adp_netserver"
client="$build_dir/adp_netclient"
[ -x "$server" ] || { echo "missing $server" >&2; exit 1; }
[ -x "$client" ] || { echo "missing $client" >&2; exit 1; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true' EXIT

# The server serves until its stdin reaches EOF; a FIFO held open on fd 9
# keeps it alive until the trap fires.
mkfifo "$workdir/stdin"
"$server" --port=0 --workers=2 <"$workdir/stdin" >"$workdir/out" &
server_pid=$!
exec 9>"$workdir/stdin"

# First stdout line is "listening on <host>:<port>".
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$workdir/out")"
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:" >&2; cat "$workdir/out" >&2; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported a port" >&2; exit 1; }

cat >"$workdir/requests.txt" <<'EOF'
DB d1 R1=11,21/12,22/13,23 R2=21,31/22,32/22,33/23,33 R3=31,41/32,43/33,43
REQ d1 2 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)
REQ d1 3 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)
STREAM d1 3 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)
CANCEL
STATS
METRICS
EOF

"$client" --port="$port" "$workdir/requests.txt" >"$workdir/client_out"

# The session must have produced real answers, pushed stream frames, and
# the metrics text.
grep -q '"status":"OK"' "$workdir/client_out"
grep -q '"end":true' "$workdir/client_out"
grep -q '"cancelled":' "$workdir/client_out"
grep -q 'adp_net_connections_total' "$workdir/client_out"

# Clean shutdown: close the server's stdin and wait for exit 0.
exec 9>&-
wait "$server_pid"
echo "net smoke OK (port $port)"
