#!/usr/bin/env python3
"""Docs hygiene checks, run by the CI `docs` job (stdlib only).

1. Link check: every relative markdown link in README.md and docs/*.md
   must resolve to an existing file (external http(s)/mailto links and
   same-file #anchors are skipped).

2. Engine handbook drift: every `EngineConfig::field` and
   `EngineCounters::member` named in docs/ENGINE.md must still be declared
   in src/engine/engine.h — and, the other way, every field those structs
   declare must be named in the handbook. Either direction failing means
   docs/ENGINE.md silently rotted relative to the engine surface.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `code` spans are stripped first so example links inside backticks
# (protocol lines, shell output) are not treated as real links.
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def check_links(md_files):
    errors = []
    for md in md_files:
        text = CODE_SPAN_RE.sub("", md.read_text(encoding="utf-8"))
        # Fenced code blocks hold shell/C++ samples, not navigable links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def struct_members(header_text, struct_name):
    """Names of the data members declared in `struct <name> { ... };`."""
    start = header_text.index(f"struct {struct_name} {{")
    depth = 0
    body = []
    for i in range(start, len(header_text)):
        c = header_text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            body.append(c)
    block = "".join(body)
    block = re.sub(r"//[^\n]*", "", block)  # comments mention other names
    members = set()
    # Both structs are plain aggregates: every `;`-terminated statement is a
    # data member. The member name is the last identifier of the declarator
    # once a default initializer and an array suffix are stripped — this
    # stays correct for pointer/reference/array/std::function members.
    for stmt in block.split(";"):
        stmt = stmt.split("=", 1)[0]           # drop default initializer
        stmt = re.sub(r"\[[^\]]*\]\s*$", "", stmt.strip())  # array suffix
        if not stmt or stmt.endswith(")"):     # defensive: skip functions
            continue
        m = re.search(r"(\w+)$", stmt)
        if m and not m.group(1).isdigit():
            members.add(m.group(1))
    return members


def check_engine_handbook():
    errors = []
    handbook = (REPO / "docs" / "ENGINE.md").read_text(encoding="utf-8")
    header = (REPO / "src" / "engine" / "engine.h").read_text(encoding="utf-8")
    for struct in ("EngineConfig", "EngineCounters"):
        declared = struct_members(header, struct)
        documented = set(re.findall(rf"{struct}::(\w+)", handbook))
        for name in sorted(documented - declared):
            errors.append(
                f"docs/ENGINE.md names {struct}::{name}, which "
                "src/engine/engine.h no longer declares"
            )
        for name in sorted(declared - documented):
            errors.append(
                f"src/engine/engine.h declares {struct}::{name}, which "
                "docs/ENGINE.md does not document"
            )
    return errors


def main():
    md_files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    errors = check_links(md_files) + check_engine_handbook()
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        return 1
    names = ", ".join(str(p.relative_to(REPO)) for p in md_files)
    print(f"docs OK: links resolve in {names}; "
          "docs/ENGINE.md agrees with src/engine/engine.h")
    return 0


if __name__ == "__main__":
    sys.exit(main())
