#!/usr/bin/env python3
"""Docs hygiene checks, run by the CI `docs` job (stdlib only).

1. Link check: every relative markdown link in README.md and docs/*.md
   must resolve to an existing file (external http(s)/mailto links and
   same-file #anchors are skipped).

2. Engine handbook drift: every `EngineConfig::field` and
   `EngineCounters::member` named in docs/ENGINE.md must still be declared
   in src/engine/engine.h — and, the other way, every field those structs
   declare must be named in the handbook. Either direction failing means
   docs/ENGINE.md silently rotted relative to the engine surface.

3. Streaming protocol drift: the same two-way check between
   docs/STREAMING.md and the streaming surface in
   src/engine/result_stream.h — `StreamItem`'s data members and
   `ResultStream`'s public methods.

4. Orphan check: every docs/*.md must be reachable from README.md by
   following relative markdown links (transitively). An unreachable doc is
   dead weight nobody can discover; link it or delete it. Scoped to docs/
   on purpose — repo-management files (ROADMAP.md, CHANGES.md, ...) are
   not navigation targets.

5. Observability catalog drift: the metric/span name literals declared in
   src/obs/names.h and the backticked `adp_*`/`adp.*` tokens in
   docs/OBSERVABILITY.md must agree in both directions. Fenced code blocks
   are exempt (exporter output samples legitimately show derived names
   like the per-bucket Prometheus series).

6. Relational core drift: the same two-way check between
   docs/RELATIONAL.md and the columnar storage surface in
   src/relational/relation.h — the public methods of `RelationInstance`
   and `TupleView`.

7. Wire protocol drift: every `FrameType::kName` mentioned in
   docs/PROTOCOL.md must be an enumerator of `enum class FrameType` in
   src/net/wire.h — and every enumerator the enum declares must be
   documented. A frame added without a spec entry (or a spec entry for a
   removed frame) fails the build.

8. Workload harness drift: the same two-way check between
   docs/WORKLOAD.md and the workload surface — `FamilySpec` and
   `FamilyInstance` members in src/workload/families.h, `TrafficMix`
   and `DriverConfig` members in src/workload/driver.h, and
   `LoadDriver`'s public methods.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `code` spans are stripped first so example links inside backticks
# (protocol lines, shell output) are not treated as real links.
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def md_link_targets(md):
    """Relative link targets of one markdown file (code spans/fences
    stripped), as (raw_target, resolved_path) pairs."""
    text = CODE_SPAN_RE.sub("", md.read_text(encoding="utf-8"))
    # Fenced code blocks hold shell/C++ samples, not navigable links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    out = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        out.append((target, (md.parent / path).resolve()))
    return out


def check_links(md_files):
    errors = []
    for md in md_files:
        for target, resolved in md_link_targets(md):
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def check_orphans(md_files):
    """BFS over relative md links from README.md; every docs/*.md must be
    visited."""
    readme = REPO / "README.md"
    visited = set()
    frontier = [readme.resolve()]
    while frontier:
        md = frontier.pop()
        if md in visited or not md.exists() or md.suffix != ".md":
            continue
        visited.add(md)
        for _, resolved in md_link_targets(md):
            if resolved.suffix == ".md" and resolved not in visited:
                frontier.append(resolved)
    errors = []
    for md in md_files:
        if md.resolve() not in visited:
            errors.append(
                f"{md.relative_to(REPO)}: orphan — not reachable from "
                "README.md via markdown links"
            )
    return errors


def struct_members(header_text, struct_name):
    """Names of the data members declared in `struct <name> { ... };`."""
    start = header_text.index(f"struct {struct_name} {{")
    depth = 0
    body = []
    for i in range(start, len(header_text)):
        c = header_text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            body.append(c)
    block = "".join(body)
    block = re.sub(r"//[^\n]*", "", block)  # comments mention other names
    members = set()
    # Both structs are plain aggregates: every `;`-terminated statement is a
    # data member. The member name is the last identifier of the declarator
    # once a default initializer and an array suffix are stripped — this
    # stays correct for pointer/reference/array/std::function members.
    for stmt in block.split(";"):
        stmt = stmt.split("=", 1)[0]           # drop default initializer
        stmt = re.sub(r"\[[^\]]*\]\s*$", "", stmt.strip())  # array suffix
        if not stmt or stmt.endswith(")"):     # defensive: skip functions
            continue
        m = re.search(r"(\w+)$", stmt)
        if m and not m.group(1).isdigit():
            members.add(m.group(1))
    return members


def class_public_methods(header_text, class_name):
    """Names of the public member functions of `class <name> { ... };`
    (constructors, the destructor, and operators excluded)."""
    start = header_text.index(f"class {class_name} {{")
    depth = 0
    body = []
    for i in range(start, len(header_text)):
        c = header_text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            body.append(c)
    block = "".join(body)
    # Public section(s): classes here lead with `public:` and end with one
    # `private:` section; keep everything in between.
    block = block.split("private:", 1)[0]
    block = block.split("public:", 1)[-1]
    block = re.sub(r"//[^\n]*", "", block)
    methods = set()
    for m in re.finditer(r"(~?\w+)\s*\(", block):
        name = m.group(1)
        if name == class_name or name.startswith("~"):
            continue
        if name in {"if", "while", "for", "switch", "return", "sizeof"}:
            continue
        methods.add(name)
    return methods


def two_way_drift(doc_rel, doc_text, header_rel, surface):
    """`surface` maps a type name to the member names its header declares;
    both directions of `Type::member` mentions must agree with the doc."""
    errors = []
    for type_name, declared in surface.items():
        documented = set(re.findall(rf"{type_name}::(\w+)", doc_text))
        for name in sorted(documented - declared):
            errors.append(
                f"{doc_rel} names {type_name}::{name}, which "
                f"{header_rel} no longer declares"
            )
        for name in sorted(declared - documented):
            errors.append(
                f"{header_rel} declares {type_name}::{name}, which "
                f"{doc_rel} does not document"
            )
    return errors


def check_engine_handbook():
    handbook = (REPO / "docs" / "ENGINE.md").read_text(encoding="utf-8")
    header = (REPO / "src" / "engine" / "engine.h").read_text(encoding="utf-8")
    return two_way_drift(
        "docs/ENGINE.md",
        handbook,
        "src/engine/engine.h",
        {
            "EngineConfig": struct_members(header, "EngineConfig"),
            "EngineCounters": struct_members(header, "EngineCounters"),
        },
    )


def check_streaming_protocol():
    spec = (REPO / "docs" / "STREAMING.md").read_text(encoding="utf-8")
    header = (REPO / "src" / "engine" / "result_stream.h").read_text(
        encoding="utf-8"
    )
    return two_way_drift(
        "docs/STREAMING.md",
        spec,
        "src/engine/result_stream.h",
        {
            "StreamItem": struct_members(header, "StreamItem"),
            "ResultStream": class_public_methods(header, "ResultStream"),
        },
    )


def check_relational_core():
    doc = (REPO / "docs" / "RELATIONAL.md").read_text(encoding="utf-8")
    header = (REPO / "src" / "relational" / "relation.h").read_text(
        encoding="utf-8"
    )
    return two_way_drift(
        "docs/RELATIONAL.md",
        doc,
        "src/relational/relation.h",
        {
            "RelationInstance": class_public_methods(
                header, "RelationInstance"
            ),
            "TupleView": class_public_methods(header, "TupleView"),
        },
    )


def enum_members(header_text, enum_name):
    """Enumerator names of `enum class <name> ... { ... };`."""
    start = header_text.index(f"enum class {enum_name}")
    block = header_text[header_text.index("{", start):
                        header_text.index("};", start)]
    block = re.sub(r"//[^\n]*", "", block)
    members = set()
    for stmt in block.strip("{").split(","):
        m = re.match(r"\s*(\w+)", stmt)
        if m:
            members.add(m.group(1))
    return members


def check_wire_protocol():
    spec = (REPO / "docs" / "PROTOCOL.md").read_text(encoding="utf-8")
    header = (REPO / "src" / "net" / "wire.h").read_text(encoding="utf-8")
    return two_way_drift(
        "docs/PROTOCOL.md",
        spec,
        "src/net/wire.h",
        {"FrameType": enum_members(header, "FrameType")},
    )


def check_workload_harness():
    doc = (REPO / "docs" / "WORKLOAD.md").read_text(encoding="utf-8")
    families = (REPO / "src" / "workload" / "families.h").read_text(
        encoding="utf-8"
    )
    driver = (REPO / "src" / "workload" / "driver.h").read_text(
        encoding="utf-8"
    )
    return two_way_drift(
        "docs/WORKLOAD.md",
        doc,
        "src/workload/families.h",
        {
            "FamilySpec": struct_members(families, "FamilySpec"),
            "FamilyInstance": struct_members(families, "FamilyInstance"),
        },
    ) + two_way_drift(
        "docs/WORKLOAD.md",
        doc,
        "src/workload/driver.h",
        {
            "TrafficMix": struct_members(driver, "TrafficMix"),
            "DriverConfig": struct_members(driver, "DriverConfig"),
            "LoadDriver": class_public_methods(driver, "LoadDriver"),
        },
    )


OBS_NAME_RE = re.compile(r"adp(?:_[a-z0-9_]+|\.[a-z._]+[a-z])")
# Name-shaped tokens that are not catalog entries: binaries and tools.
OBS_NAME_EXEMPT = {"adp_server", "adp_cli", "adp_netserver", "adp_netclient"}


def check_observability_catalog():
    """Two-way drift between src/obs/names.h string literals and the
    backticked name tokens of docs/OBSERVABILITY.md."""
    header = (REPO / "src" / "obs" / "names.h").read_text(encoding="utf-8")
    declared = set()
    for literal in re.findall(r'"([^"\n]+)"', header):
        if OBS_NAME_RE.fullmatch(literal):
            declared.add(literal)
    doc = (REPO / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    # Fenced blocks show exporter output (derived series names); only
    # inline `code` spans document catalog entries.
    doc = re.sub(r"```.*?```", "", doc, flags=re.DOTALL)
    documented = set()
    for span in re.findall(r"`([^`\n]+)`", doc):
        if OBS_NAME_RE.fullmatch(span) and span not in OBS_NAME_EXEMPT:
            documented.add(span)
    errors = []
    for name in sorted(documented - declared):
        errors.append(
            f"docs/OBSERVABILITY.md names `{name}`, which src/obs/names.h "
            "no longer declares"
        )
    for name in sorted(declared - documented):
        errors.append(
            f"src/obs/names.h declares \"{name}\", which "
            "docs/OBSERVABILITY.md does not document"
        )
    return errors


def main():
    md_files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    docs_only = [p for p in md_files if p.parent == REPO / "docs"]
    errors = (
        check_links(md_files)
        + check_orphans(docs_only)
        + check_engine_handbook()
        + check_streaming_protocol()
        + check_observability_catalog()
        + check_relational_core()
        + check_wire_protocol()
        + check_workload_harness()
    )
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        return 1
    names = ", ".join(str(p.relative_to(REPO)) for p in md_files)
    print(f"docs OK: links resolve in {names}; every docs/*.md is reachable "
          "from README.md; docs/ENGINE.md agrees with src/engine/engine.h; "
          "docs/STREAMING.md agrees with src/engine/result_stream.h; "
          "docs/OBSERVABILITY.md agrees with src/obs/names.h; "
          "docs/RELATIONAL.md agrees with src/relational/relation.h; "
          "docs/PROTOCOL.md agrees with src/net/wire.h; "
          "docs/WORKLOAD.md agrees with src/workload/{families,driver}.h")
    return 0


if __name__ == "__main__":
    sys.exit(main())
