#!/usr/bin/env python3
"""Perf-trajectory trend gate, run by CI after the macro benches (stdlib only).

Compares a freshly emitted BENCH_*.json trajectory against the committed
snapshot and fails when a tracked metric regressed by more than the
tolerance (default 25%). Direction-aware:

  * keys ending in `_per_sec` or `_rel` (and `*_speedup_*` ratios) are
    higher-is-better — a regression is the fresh value falling below
    baseline * (1 - tolerance). `_rel` keys are same-emit
    reference-normalized throughput ratios (bench_workload_macro.cc):
    dividing by a calibration run measured in the same emit cancels
    host-speed drift between runs, so they are the gateable capacity
    signal while the raw `_raw` ops/sec stay ungated context;
  * keys ending in `_ms` or `_p50`, or containing `_p50_`, are
    lower-is-better — a regression is the fresh value rising above
    baseline * (1 + tolerance). Latency keys carry one extra rule: the
    quantiles come out of power-of-two histogram buckets (src/obs/metrics.h),
    so a value can only move in ~2x steps and a sub-2x "regression" is
    quantization noise, not signal. A latency key therefore fails only
    past max(1 + tolerance, 2.5) * baseline — more than one bucket step.
    p99 keys are recorded context, not gated: the p99 of a few hundred
    samples rests on a handful of tail observations and legitimately
    jumps several buckets run over run.

Everything else (counts, checksums, core counts, skip markers) is context,
not a gated metric. Only keys present in BOTH files are compared: the
trajectories deliberately omit keys the host cannot justify (e.g. the
worker-scaling ratio on small machines, see bench_workload_macro.cc), so a
key missing on one side is a hardware difference, not a regression.

The committed snapshot is a trajectory point, not an oracle: after a real
perf change (or a CI hardware change), refresh it by re-running the bench
and committing the new file alongside the change that explains it.

Usage:
  tools/bench_trend.py BASELINE.json FRESH.json [--tolerance=0.25]

Exit codes: 0 within tolerance, 1 regression(s), 2 usage/IO error.
"""

import json
import sys

HIGHER_BETTER_SUFFIXES = ("_per_sec", "_rel")
HIGHER_BETTER_MARKERS = ("_speedup_",)
LOWER_BETTER_SUFFIXES = ("_ms", "_p50")
LOWER_BETTER_MARKERS = ("_p50_",)
UNTRACKED_MARKERS = ("_p99",)  # tail of a small sample: context, not signal


def direction(key):
    """'up' if higher is better, 'down' if lower is better, None if untracked."""
    if any(m in key for m in UNTRACKED_MARKERS):
        return None
    if key.endswith(HIGHER_BETTER_SUFFIXES) or any(
        m in key for m in HIGHER_BETTER_MARKERS
    ):
        return "up"
    if key.endswith(LOWER_BETTER_SUFFIXES) or any(
        m in key for m in LOWER_BETTER_MARKERS
    ):
        return "down"
    return None


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_trend: cannot read {path}: {e}\n")
        sys.exit(2)
    if not isinstance(data, dict):
        sys.stderr.write(f"bench_trend: {path} is not a flat JSON object\n")
        sys.exit(2)
    return data


def main(argv):
    tolerance = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            try:
                tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                sys.stderr.write(f"bench_trend: bad tolerance {arg!r}\n")
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2 or tolerance <= 0:
        sys.stderr.write(__doc__.split("Usage:")[1])
        return 2

    baseline, fresh = load(paths[0]), load(paths[1])
    shared = sorted(set(baseline) & set(fresh))
    tracked = [k for k in shared if direction(k) is not None]
    if not tracked:
        sys.stderr.write("bench_trend: no tracked metrics in common — "
                         "wrong file pair?\n")
        return 2

    regressions = []
    for key in tracked:
        base, new = float(baseline[key]), float(fresh[key])
        if base <= 0:
            continue  # degenerate baseline (skipped run); nothing to gate
        ratio = new / base
        if direction(key) == "up" and ratio < 1 - tolerance:
            regressions.append((key, base, new, f"-{(1 - ratio):.0%}"))
        elif direction(key) == "down" and ratio > max(1 + tolerance, 2.5):
            # Bucketed quantiles resolve only power-of-two steps; demand
            # more than one step before calling it a regression.
            regressions.append((key, base, new, f"+{(ratio - 1):.0%}"))

    skipped = [k for k in sorted(set(baseline) ^ set(fresh))
               if direction(k) is not None]
    if skipped:
        print(f"bench_trend: {len(skipped)} tracked key(s) present on only "
              f"one side (hardware-gated), not compared: {', '.join(skipped)}")

    print(f"bench_trend: compared {len(tracked)} tracked metric(s) at "
          f"{tolerance:.0%} tolerance")
    if regressions:
        for key, base, new, delta in regressions:
            print(f"  REGRESSED {key}: {base:g} -> {new:g} ({delta})")
        print(f"bench_trend: {len(regressions)} regression(s); if this is an "
              "accepted perf change, refresh the committed snapshot")
        return 1
    print("bench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
