// Machine-checks Theorem 3 against Theorem 2: on thousands of random
// self-join-free CQs, the procedural dichotomy (IsPtime, Algorithm 1) and
// the structural dichotomy (hard structures) must agree exactly. Also
// validates the hardness-preservation lemmas for the two simplification
// steps (Lemmas 2/3/8/9) and for selections (Lemma 12).

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "dichotomy/structures.h"
#include "query/parser.h"
#include "query/transform.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::RandomQuery;

class DichotomyAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DichotomyAgreement, ProceduralEqualsStructural) {
  Rng rng(5000 + GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const ConjunctiveQuery q = RandomQuery(rng, 6, 5);
    EXPECT_EQ(IsPtime(q), !HasHardStructure(q))
        << q.ToString() << "\nstructural: "
        << FindHardStructure(q).description;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, DichotomyAgreement,
                         ::testing::Range(0, 40));

class DichotomyAgreementWithVacuum : public ::testing::TestWithParam<int> {};

TEST_P(DichotomyAgreementWithVacuum, ProceduralEqualsStructural) {
  Rng rng(9000 + GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const ConjunctiveQuery q = RandomQuery(rng, 5, 5, /*allow_vacuum=*/true);
    EXPECT_EQ(IsPtime(q), !HasHardStructure(q)) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, DichotomyAgreementWithVacuum,
                         ::testing::Range(0, 20));

class UniversalRemovalPreservesHardness
    : public ::testing::TestWithParam<int> {};

TEST_P(UniversalRemovalPreservesHardness, Lemma8) {
  Rng rng(7000 + GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    ConjunctiveQuery q = RandomQuery(rng, 6, 4);
    const AttrSet universal = q.UniversalAttrs();
    if (universal.Empty()) continue;
    const ConjunctiveQuery reduced = RemoveAttributes(q, universal);
    EXPECT_EQ(IsPtime(q), IsPtime(reduced)) << q.ToString();
    EXPECT_EQ(HasHardStructure(q), HasHardStructure(reduced))
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, UniversalRemovalPreservesHardness,
                         ::testing::Range(0, 20));

class DecompositionPreservesHardness : public ::testing::TestWithParam<int> {
};

TEST_P(DecompositionPreservesHardness, Lemma9) {
  Rng rng(8000 + GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    ConjunctiveQuery q = RandomQuery(rng, 6, 5);
    const auto subs = DecomposeQuery(q);
    if (subs.size() < 2) continue;
    bool any_hard_component = false;
    for (const Subquery& sub : subs) {
      any_hard_component |= !IsPtime(sub.query);
    }
    EXPECT_EQ(!IsPtime(q), any_hard_component) << q.ToString();
    bool any_structural = false;
    for (const Subquery& sub : subs) {
      any_structural |= HasHardStructure(sub.query);
    }
    EXPECT_EQ(HasHardStructure(q), any_structural) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, DecompositionPreservesHardness,
                         ::testing::Range(0, 20));

TEST(SelectionEquivalence, Lemma12OnRandomQueries) {
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    ConjunctiveQuery q = RandomQuery(rng, 6, 4);
    // Attach a selection on a random attribute of a random relation.
    const int rel = static_cast<int>(rng.Uniform(q.num_relations()));
    const AttrSet attrs = q.relation(rel).attr_set();
    if (attrs.Empty()) continue;
    std::vector<AttrId> list;
    for (AttrId a : attrs) list.push_back(a);
    const AttrId sel = list[rng.Uniform(list.size())];
    q.AddSelection(rel, sel, 1);
    const ConjunctiveQuery residual =
        RemoveAttributes(q, q.SelectedAttrs());
    EXPECT_EQ(IsPtime(q), IsPtime(residual)) << q.ToString();
  }
}

TEST(IsPtimeSanity, FullCqWithOneRelationIsEasy) {
  EXPECT_TRUE(IsPtime(ParseQuery("Q(A,B) :- R1(A,B)")));
}

TEST(IsPtimeSanity, BooleanSingleRelationIsEasy) {
  EXPECT_TRUE(IsPtime(ParseQuery("Q() :- R1(A,B)")));
}

TEST(IsPtimeSanity, ProjectionOfSingleRelationIsEasy) {
  EXPECT_TRUE(IsPtime(ParseQuery("Q(A) :- R1(A,B)")));
}

}  // namespace
}  // namespace adp
