// Tests for the analysis module: resilience wrapper, disruption curves, and
// the incremental deletion monitor.

#include <gtest/gtest.h>

#include "analysis/monitor.h"
#include "analysis/resilience.h"
#include "analysis/robustness.h"
#include "query/parser.h"
#include "relational/join.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

TEST(ResilienceTest, ChainResilience) {
  // Two disjoint chains: resilience 2.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}},
                                 {"R3", {{5}, {6}}}});
  const ResilienceResult res = ComputeResilience(q, db);
  EXPECT_TRUE(res.exact);
  EXPECT_EQ(res.resilience, 2);
  EXPECT_EQ(res.tuples.size(), 2u);
}

TEST(ResilienceTest, FalseQueryCostsNothing) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2(A)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R2", {{2}}}});
  const ResilienceResult res = ComputeResilience(q, db);
  EXPECT_EQ(res.resilience, 0);
  EXPECT_TRUE(res.tuples.empty());
}

TEST(ResilienceTest, HeadIsIgnored) {
  // Resilience is a property of the boolean query: identical for any head.
  Rng rng(91);
  const ConjunctiveQuery full =
      ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const ConjunctiveQuery boolean =
      ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  const Database db = RandomDb(full, rng, 8, 3);
  EXPECT_EQ(ComputeResilience(full, db).resilience,
            ComputeResilience(boolean, db).resilience);
}

TEST(ResilienceTest, MatchesOracleOnRandomChains) {
  Rng rng(93);
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  for (int iter = 0; iter < 10; ++iter) {
    const Database db = RandomDb(q, rng, 4, 2);
    if (OracleCount(q, db) == 0 || db.TotalTuples() > 12) continue;
    EXPECT_EQ(ComputeResilience(q, db).resilience, OracleAdp(q, db, 1));
  }
}

TEST(RobustnessTest, CurveIsMonotone) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(95);
  const Database db = RandomDb(q, rng, 20, 6);
  if (OracleCount(q, db) < 4) GTEST_SKIP();
  const DisruptionCurve curve =
      ComputeDisruptionCurve(q, db, {0.2, 0.4, 0.6, 0.8});
  ASSERT_EQ(curve.points.size(), 4u);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].deletions, curve.points[i - 1].deletions);
    EXPECT_GE(curve.points[i].k, curve.points[i - 1].k);
  }
  EXPECT_GT(curve.output_count, 0);
  EXPECT_EQ(curve.input_count,
            static_cast<std::int64_t>(db.TotalTuples()));
  EXPECT_LE(curve.InputFraction(0), curve.InputFraction(3));
}

TEST(RobustnessTest, EmptyOutputMarksInfeasible) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2(A)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R2", {{2}}}});
  const DisruptionCurve curve = ComputeDisruptionCurve(q, db, {0.5});
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_FALSE(curve.points[0].feasible);
}

TEST(MonitorTest, IncrementalCountsMatchRecount) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  Rng rng(97);
  const Database db = RandomDb(q, rng, 10, 4);
  DeletionMonitor monitor(q, db);
  EXPECT_EQ(monitor.initial_count(), OracleCount(q, db));

  // Delete tuples one by one and compare against full recount.
  std::vector<std::vector<char>> removed(q.num_relations());
  for (int r = 0; r < q.num_relations(); ++r) {
    removed[r].assign(db.rel(r).size(), 0);
  }
  Rng pick(98);
  for (int step = 0; step < 8; ++step) {
    const int rel = static_cast<int>(pick.Uniform(q.num_relations()));
    if (db.rel(rel).empty()) continue;
    const TupleId row =
        static_cast<TupleId>(pick.Uniform(db.rel(rel).size()));
    const std::int64_t impact = monitor.Impact(rel, row);
    const std::int64_t died = monitor.Delete(rel, row);
    EXPECT_EQ(impact, died) << "impact must predict the deletion";
    removed[rel][row] = 1;
    const Database after = WithTuplesRemoved(db, removed);
    EXPECT_EQ(monitor.current_count(),
              static_cast<std::int64_t>(
                  CountOutputs(q.body(), q.head(), after)));
  }
}

TEST(MonitorTest, RelevanceTracksAliveRows) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R2", {{1, 5}, {1, 6}}}});
  DeletionMonitor monitor(q, db);
  EXPECT_TRUE(monitor.IsRelevant(1, 0));
  monitor.Delete(0, 0);  // kills everything
  EXPECT_FALSE(monitor.IsRelevant(1, 0));
  EXPECT_EQ(monitor.current_count(), 0);
  EXPECT_EQ(monitor.removed(), 2);
}

}  // namespace
}  // namespace adp
