// ResultStream / AdpEngine::StreamAdp: stream-vs-batch equivalence
// (concatenated items reproduce Execute's AdpSolution exactly), per-k
// profile optimality from the single DP, batching bounds, cancellation and
// deadline teardown mid-stream, shutdown closing streams, the PreparedQuery
// hot path, and stream counters.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/grouped_workload.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "util/rng.h"

namespace adp {
namespace {

using testing::RandomDb;

/// Everything a fully-drained stream said, split by item kind.
struct Drained {
  std::vector<std::int64_t> profile_k;
  std::vector<std::int64_t> profile_cost;
  std::vector<bool> profile_feasible;
  std::vector<std::size_t> batch_sizes;
  std::vector<TupleRef> witnesses;  // concatenation of all batches
  std::optional<StreamItem> end;
  std::size_t items = 0;
};

Drained DrainStream(ResultStream& stream) {
  Drained d;
  while (std::optional<StreamItem> item = stream.Next()) {
    ++d.items;
    switch (item->kind) {
      case StreamItem::Kind::kProfile:
        d.profile_k.push_back(item->k);
        d.profile_cost.push_back(item->cost);
        d.profile_feasible.push_back(item->feasible);
        break;
      case StreamItem::Kind::kWitnesses:
        d.batch_sizes.push_back(item->witnesses.size());
        d.witnesses.insert(d.witnesses.end(), item->witnesses.begin(),
                           item->witnesses.end());
        break;
      case StreamItem::Kind::kEnd:
        d.end = std::move(*item);
        break;
    }
  }
  return d;
}

/// The core contract: a drained stream concatenates to exactly what
/// Execute returns for the same request, and the profile increments are
/// well-formed (ascending k, nondecreasing cost, one per target).
void ExpectStreamMatchesExecute(AdpEngine& engine, const AdpRequest& req,
                                const std::string& context) {
  SCOPED_TRACE(context);
  const AdpResponse resp = engine.Execute(req);
  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  ASSERT_EQ(d.end->status.code(), resp.status.code())
      << d.end->status.ToString() << " vs " << resp.status.ToString();
  EXPECT_TRUE(stream.done());
  if (!resp.ok()) return;

  const AdpSolution& sol = resp.solution;
  EXPECT_EQ(d.end->feasible, sol.feasible);
  EXPECT_EQ(d.end->exact, sol.exact);
  EXPECT_EQ(d.end->output_count, sol.output_count);
  EXPECT_EQ(d.end->removed_outputs, sol.removed_outputs);
  EXPECT_EQ(d.end->plan_cache_hit, true);  // Execute above warmed the cache

  if (req.k <= 0 || !sol.feasible) {
    // Trivial or infeasible targets stream no increments: Execute never ran
    // the DP for them either.
    EXPECT_TRUE(d.profile_k.empty());
    EXPECT_TRUE(d.witnesses.empty());
    if (sol.feasible) EXPECT_EQ(d.end->cost, 0);
    return;
  }

  // One profile increment per target, ascending, monotone cost; the last
  // increment is the answer.
  ASSERT_EQ(d.profile_k.size(), static_cast<std::size_t>(req.k));
  for (std::size_t i = 0; i < d.profile_k.size(); ++i) {
    EXPECT_EQ(d.profile_k[i], static_cast<std::int64_t>(i) + 1);
    if (i > 0) EXPECT_GE(d.profile_cost[i], d.profile_cost[i - 1]);
    EXPECT_EQ(d.profile_feasible[i], d.profile_cost[i] < kInfCost);
  }
  EXPECT_EQ(d.profile_cost.back(), sol.cost);
  EXPECT_EQ(d.end->cost, sol.cost);

  // Witness batches arrive in enumeration order; their concatenation,
  // normalized, is exactly Execute's witness set.
  std::vector<TupleRef> normalized = d.witnesses;
  NormalizeTupleRefs(normalized);
  EXPECT_EQ(normalized, sol.tuples);
}

constexpr const char* kShapes[] = {
    // Universe: A universal, boolean residual per group.
    "Q(A) :- R1(A,B), R2(A,C)",
    // Universe with a 3-relation residual (the grouped-workload shape).
    "Q(A) :- R1(A,B), R2(A,B,C), R3(A,C)",
    // Singleton-flavored projection.
    "Q(A,B) :- R1(A,B), R2(B)",
    // Decompose: two components.
    "Q(A,C) :- R1(A,B), R2(C,E)",
    // Decompose: three components (exercises the choice-fold reporter).
    "Q(A,C,F) :- R1(A,B), R2(C,E), R3(F,G)",
    // Selection pushdown ahead of the recursion.
    "Q(A) :- R1(A,B=1), R2(A,C)",
};

TEST(ResultStreamTest, StreamEquivalentToExecuteAcrossShapes) {
  Rng rng(2026);
  for (const char* shape : kShapes) {
    const ConjunctiveQuery q = ParseQuery(shape);
    for (int trial = 0; trial < 8; ++trial) {
      AdpEngine engine(EngineConfig{.num_workers = 2});
      const DbId db = engine.RegisterDatabase(RandomDb(q, rng, 8, 4));
      AdpRequest probe;
      probe.query = q;
      probe.db = db;
      probe.k = 0;
      const AdpResponse base = engine.Execute(probe);
      ASSERT_TRUE(base.ok()) << base.status.ToString();
      const std::int64_t kmax =
          std::min<std::int64_t>(base.solution.output_count + 1, 6);
      for (std::int64_t k = 0; k <= kmax; ++k) {
        AdpRequest req = probe;
        req.k = k;
        req.options.verify = (trial % 2 == 0);
        ExpectStreamMatchesExecute(
            engine, req,
            std::string(shape) + " trial=" + std::to_string(trial) +
                " k=" + std::to_string(k));
      }
    }
  }
}

TEST(ResultStreamTest, ProfileIncrementsMatchPerTargetSolves) {
  // The stream's per-k costs come from ONE DP; for exact solves each must
  // equal an independent Execute at that target.
  Rng rng(7);
  for (const char* shape : kShapes) {
    const ConjunctiveQuery q = ParseQuery(shape);
    AdpEngine engine(EngineConfig{.num_workers = 2});
    const DbId db = engine.RegisterDatabase(RandomDb(q, rng, 8, 4));
    AdpRequest req;
    req.query = q;
    req.db = db;
    req.k = 0;
    const std::int64_t total = engine.Execute(req).solution.output_count;
    req.k = std::min<std::int64_t>(total, 6);
    if (req.k <= 0) continue;

    ResultStream stream = engine.StreamAdp(req);
    Drained d = DrainStream(stream);
    ASSERT_TRUE(d.end.has_value());
    ASSERT_TRUE(d.end->status.ok()) << d.end->status.ToString();
    if (!d.end->exact) continue;  // per-k optimality only promised when exact
    ASSERT_EQ(d.profile_k.size(), static_cast<std::size_t>(req.k));
    for (std::size_t i = 0; i < d.profile_k.size(); ++i) {
      AdpRequest per = req;
      per.k = d.profile_k[i];
      const AdpResponse resp = engine.Execute(per);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(d.profile_cost[i], resp.solution.cost)
          << shape << " k=" << per.k;
    }
  }
}

TEST(ResultStreamTest, CountingOnlyStreamsNoWitnesses) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B), R2(A,C)");
  Rng rng(3);
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(RandomDb(q, rng, 10, 4));
  AdpRequest req;
  req.query = q;
  req.db = db;
  req.k = 2;
  req.options.counting_only = true;
  ExpectStreamMatchesExecute(engine, req, "counting_only");
  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  EXPECT_TRUE(d.witnesses.empty());
  EXPECT_TRUE(d.batch_sizes.empty());
}

TEST(ResultStreamTest, WitnessBatchesRespectConfiguredBound) {
  // A singleton projection with a big target yields a large witness set.
  ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B)");
  Database db(1);
  for (Value a = 0; a < 30; ++a) {
    for (Value b = 0; b < 3; ++b) db.rel(0).Add({a, b});
  }
  AdpEngine engine(EngineConfig{.num_workers = 1, .stream_batch_tuples = 7});
  const DbId id = engine.RegisterDatabase(std::move(db));
  AdpRequest req;
  req.query = q;
  req.db = id;
  req.k = 20;
  ExpectStreamMatchesExecute(engine, req, "batched");
  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  ASSERT_GE(d.witnesses.size(), 20u);
  ASSERT_GT(d.batch_sizes.size(), 1u);
  for (std::size_t i = 0; i < d.batch_sizes.size(); ++i) {
    if (i + 1 < d.batch_sizes.size()) {
      EXPECT_EQ(d.batch_sizes[i], 7u);  // full batches except the tail
    } else {
      EXPECT_LE(d.batch_sizes[i], 7u);
      EXPECT_GT(d.batch_sizes[i], 0u);
    }
  }
}

TEST(ResultStreamTest, PreparedHotPathStreamsIdentically) {
  NamedDatabase named;
  Rng rng(17);
  AppendGroupedComponent(named, rng, 400, 8, "R1", "R2", "R3");
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(std::move(named));

  StatusOr<PreparedQuery> prepared =
      engine.Prepare("Q(A) :- R1(A,B), R2(A,B,C), R3(A,C)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->Bind(db).ok());

  const AdpResponse resp = engine.Execute(*prepared, 4);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  ResultStream stream = engine.StreamAdp(*prepared, 4);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  ASSERT_TRUE(d.end->status.ok()) << d.end->status.ToString();
  EXPECT_TRUE(d.end->plan_cache_hit);
  EXPECT_EQ(d.end->cost, resp.solution.cost);
  std::vector<TupleRef> normalized = d.witnesses;
  NormalizeTupleRefs(normalized);
  EXPECT_EQ(normalized, resp.solution.tuples);
  ASSERT_EQ(d.profile_k.size(), 4u);

  // The 8-group Universe node crosses the default sharding threshold, and
  // streamed solves must roll their sharding engagement into the engine
  // counters just like Execute does.
  EXPECT_EQ(d.end->stats.sharded_universe_nodes,
            resp.stats.sharded_universe_nodes);
  if (resp.stats.sharded_universe_nodes > 0) {
    EXPECT_GE(engine.counters().sharded_universe_nodes, 2u);
  }
}

TEST(ResultStreamTest, ForeignPreparedHandleIsRejected) {
  AdpEngine a(EngineConfig{.num_workers = 1});
  AdpEngine b(EngineConfig{.num_workers = 1});
  StatusOr<PreparedQuery> prepared = a.Prepare("Q(A) :- R1(A,B)");
  ASSERT_TRUE(prepared.ok());
  ResultStream stream = b.StreamAdp(*prepared, 1);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(d.items, 1u);  // terminal only
}

/// A stream whose item count provably exceeds the internal buffer, so the
/// producer must block on backpressure: 24 profile items + witnesses + end.
AdpRequest BigStreamRequest(AdpEngine& engine, DbId* out_db) {
  ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B)");
  Database db(1);
  for (Value a = 0; a < 30; ++a) {
    for (Value b = 0; b < 3; ++b) db.rel(0).Add({a, b});
  }
  *out_db = engine.RegisterDatabase(std::move(db));
  AdpRequest req;
  req.query = q;
  req.db = *out_db;
  req.k = 24;
  return req;
}

TEST(ResultStreamTest, CancelMidStreamStopsEnumeration) {
  AdpEngine engine(EngineConfig{.num_workers = 1, .stream_batch_tuples = 4});
  DbId db = kInvalidDbId;
  const AdpRequest req = BigStreamRequest(engine, &db);

  ResultStream stream = engine.StreamAdp(req);
  std::optional<StreamItem> first = stream.Next();  // producer is running
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->kind, StreamItem::Kind::kProfile);
  stream.Cancel();
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kCancelled);
  // The full stream would carry 24 profile items + >= 6 witness batches;
  // cancellation with the producer blocked on the 8-item buffer means most
  // of them were never produced.
  EXPECT_LT(d.items + 1, 24u);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.streams_opened, 1u);
  EXPECT_EQ(c.stream_cancelled, 1u);
  EXPECT_EQ(c.requests, 0u);  // streams are not request/response traffic

  // The engine keeps serving after a cancelled stream.
  AdpRequest again = req;
  again.k = 2;
  EXPECT_TRUE(engine.Execute(again).ok());
}

TEST(ResultStreamTest, DeadlineMidStreamExpires) {
  AdpEngine engine(EngineConfig{.num_workers = 1, .stream_batch_tuples = 4});
  DbId db = kInvalidDbId;
  AdpRequest req = BigStreamRequest(engine, &db);
  req.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);

  ResultStream stream = engine.StreamAdp(req);
  ASSERT_TRUE(stream.Next().has_value());
  // Let the deadline pass while the producer is blocked on the full buffer.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.counters().stream_cancelled, 1u);
}

TEST(ResultStreamTest, AlreadyExpiredDeadlineStreamsOnlyTerminal) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  AdpRequest req = BigStreamRequest(engine, &db);
  req.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.items, 1u);  // the solve never started
}

TEST(ResultStreamTest, ShutdownClosesOpenStreams) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  const AdpRequest req = BigStreamRequest(engine, &db);

  ResultStream stream = engine.StreamAdp(req);
  ASSERT_TRUE(stream.Next().has_value());  // producer mid-stream
  engine.Shutdown();
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kShutdown);

  // New streams after Shutdown fail fast and are not counted at all —
  // neither opened nor items nor cancelled (else stream_cancelled could
  // exceed streams_opened).
  const EngineCounters before = engine.counters();
  ResultStream late = engine.StreamAdp(req);
  Drained late_d = DrainStream(late);
  ASSERT_TRUE(late_d.end.has_value());
  EXPECT_EQ(late_d.end->status.code(), StatusCode::kShutdown);
  EXPECT_EQ(late_d.items, 1u);
  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.streams_opened, before.streams_opened);
  EXPECT_EQ(after.stream_items, before.stream_items);
  EXPECT_EQ(after.stream_cancelled, before.stream_cancelled);
  EXPECT_LE(after.stream_cancelled, after.streams_opened);
}

TEST(ResultStreamTest, CloseDetachesConsumerAndUnblocksProducer) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  const AdpRequest req = BigStreamRequest(engine, &db);

  ResultStream stream = engine.StreamAdp(req);
  ASSERT_TRUE(stream.Next().has_value());
  stream.Close();
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_FALSE(stream.TryNext().has_value());
  EXPECT_TRUE(stream.done());

  // The producer observes the close and retires the stream as cancelled.
  for (int i = 0; i < 200 && engine.counters().stream_cancelled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.counters().stream_cancelled, 1u);
}

TEST(ResultStreamTest, DroppingLastHandleClosesStream) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  const AdpRequest req = BigStreamRequest(engine, &db);
  {
    ResultStream stream = engine.StreamAdp(req);
    ASSERT_TRUE(stream.Next().has_value());
    // Handle dropped here without draining: the producer must not wedge
    // the (single) worker.
  }
  for (int i = 0; i < 200 && engine.counters().stream_cancelled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.counters().stream_cancelled, 1u);
  // The worker is free again.
  AdpRequest probe = req;
  probe.k = 1;
  EXPECT_TRUE(engine.Execute(probe).ok());
}

TEST(ResultStreamTest, NestedStreamFromWorkerThreadIsProducedInline) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  const AdpRequest req = BigStreamRequest(engine, &db);

  AdpRequest outer = req;
  outer.k = 1;
  std::promise<Drained> done;
  engine.SubmitAsync(outer, [&engine, &req, &done](AdpResponse) {
    // Runs on the pool's only worker: the nested stream cannot rely on a
    // concurrent consumer, so it must arrive fully buffered.
    ResultStream nested = engine.StreamAdp(req);
    done.set_value(DrainStream(nested));
  });
  Drained d = done.get_future().get();
  ASSERT_TRUE(d.end.has_value());
  ASSERT_TRUE(d.end->status.ok()) << d.end->status.ToString();
  EXPECT_EQ(d.profile_k.size(), 24u);
  EXPECT_GE(d.witnesses.size(), 24u);
}

TEST(ResultStreamTest, BindingFailureKeepsPlanCacheHitOnErrorResults) {
  // Regression: plan_cache_hit is assigned before the binding step in the
  // shared ResolveStatic, so an error response for a warm-cached plan
  // still reports the hit — on both the Execute and the stream surface.
  AdpEngine engine(EngineConfig{.num_workers = 1});
  NamedDatabase good;
  good.relation_names = {"R1"};
  good.db.Append(RelationInstance{});
  NamedDatabase bad;
  bad.relation_names = {"Other"};
  bad.db.Append(RelationInstance{});
  const DbId good_db = engine.RegisterDatabase(std::move(good));
  const DbId bad_db = engine.RegisterDatabase(std::move(bad));

  AdpRequest req;
  req.query_text = "Q(A) :- R1(A,B)";
  req.db = good_db;
  req.k = 0;
  ASSERT_TRUE(engine.Execute(req).ok());  // warms the plan cache

  req.db = bad_db;
  const AdpResponse resp = engine.Execute(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kUnknownRelation);
  EXPECT_TRUE(resp.plan_cache_hit);

  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  EXPECT_EQ(d.end->status.code(), StatusCode::kUnknownRelation);
  EXPECT_TRUE(d.end->plan_cache_hit);
}

TEST(ResultStreamTest, IntermediateWitnessStreamingCoversEveryTarget) {
  // With AdpRequest::stream_intermediate_witnesses, the stream also emits a
  // witness batch after each intermediate profile increment, tagged with
  // its own StreamItem::k — all from the single DP, never per-k re-solves.
  Rng rng(11);
  for (const char* shape : kShapes) {
    SCOPED_TRACE(shape);
    const ConjunctiveQuery q = ParseQuery(shape);
    AdpEngine engine(EngineConfig{.num_workers = 2});
    const Database data = RandomDb(q, rng, 8, 4);
    const DbId db = engine.RegisterDatabase(data);
    AdpRequest req;
    req.query = q;
    req.db = db;
    req.k = 0;
    const std::int64_t total = engine.Execute(req).solution.output_count;
    req.k = std::min<std::int64_t>(total, 5);
    if (req.k <= 1) continue;  // no intermediate targets to speak of
    req.stream_intermediate_witnesses = true;

    ResultStream stream = engine.StreamAdp(req);
    std::map<std::int64_t, std::vector<TupleRef>> by_target;
    std::vector<std::int64_t> profile_cost(req.k + 1, -1);
    std::optional<StreamItem> end;
    while (std::optional<StreamItem> item = stream.Next()) {
      switch (item->kind) {
        case StreamItem::Kind::kProfile:
          profile_cost[item->k] = item->cost;
          break;
        case StreamItem::Kind::kWitnesses: {
          auto& group = by_target[item->k];
          group.insert(group.end(), item->witnesses.begin(),
                       item->witnesses.end());
          break;
        }
        case StreamItem::Kind::kEnd:
          end = std::move(*item);
          break;
      }
    }
    ASSERT_TRUE(end.has_value());
    ASSERT_TRUE(end->status.ok()) << end->status.ToString();
    ASSERT_TRUE(end->feasible);

    // The final target's batches still normalize to Execute's witness set —
    // the flag adds items, it never changes the final answer.
    const AdpResponse direct = engine.Execute(req);
    ASSERT_TRUE(direct.ok());
    std::vector<TupleRef> final_witnesses = by_target[req.k];
    NormalizeTupleRefs(final_witnesses);
    EXPECT_EQ(final_witnesses, direct.solution.tuples);

    // Every feasible target got a witness group, and each group genuinely
    // removes at least its target's outputs at exactly the profile's cost.
    for (std::int64_t j = 1; j <= req.k; ++j) {
      if (profile_cost[j] < 0 || profile_cost[j] >= kInfCost) continue;
      auto it = by_target.find(j);
      ASSERT_NE(it, by_target.end()) << "no witnesses for k=" << j;
      EXPECT_GE(CountRemovedOutputs(q, data, it->second), j) << "k=" << j;
      if (end->exact) {
        EXPECT_EQ(static_cast<std::int64_t>(it->second.size()),
                  profile_cost[j])
            << "k=" << j;
      }
    }
  }
}

TEST(ResultStreamTest, IntermediateWitnessesOffByDefault) {
  // Without the flag, every witness batch is tagged with the final target.
  Rng rng(3);
  const ConjunctiveQuery q = ParseQuery(kShapes[0]);
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(RandomDb(q, rng, 8, 4));
  AdpRequest req;
  req.query = q;
  req.db = db;
  req.k = 0;
  const std::int64_t total = engine.Execute(req).solution.output_count;
  req.k = std::min<std::int64_t>(total, 4);
  if (req.k <= 1) GTEST_SKIP() << "instance too small";

  ResultStream stream = engine.StreamAdp(req);
  while (std::optional<StreamItem> item = stream.Next()) {
    if (item->kind == StreamItem::Kind::kWitnesses) {
      EXPECT_EQ(item->k, req.k);
    }
  }
}

TEST(ResultStreamTest, StreamItemCounterCountsDeliveredItems) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  DbId db = kInvalidDbId;
  AdpRequest req = BigStreamRequest(engine, &db);
  req.k = 3;
  ResultStream stream = engine.StreamAdp(req);
  Drained d = DrainStream(stream);
  ASSERT_TRUE(d.end.has_value());
  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.streams_opened, 1u);
  EXPECT_EQ(c.stream_items, static_cast<std::uint64_t>(d.items));
  EXPECT_EQ(c.stream_cancelled, 0u);
}

}  // namespace
}  // namespace adp
