// DispatchPlan: the precomputed Algorithm-2 skeleton must reproduce the
// planless solver's behavior exactly — same case choices, same results.

#include <gtest/gtest.h>

#include "dichotomy/linearize.h"
#include "query/fingerprint.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "solver/plan.h"
#include "test_util.h"
#include "util/rng.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::RandomDb;
using testing::RandomQuery;

TEST(DispatchPlanTest, LinearBooleanChainCachesArrangement) {
  const auto q = ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,E)");
  const DispatchPlan plan = BuildDispatchPlan(q, AdpOptions{});
  const PlanEntry* entry = plan.Find(q);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->op, AdpCase::kBoolean);
  ASSERT_TRUE(entry->linear_order.has_value());
  EXPECT_TRUE(IsLinearOrder(q, *entry->linear_order));
}

TEST(DispatchPlanTest, TriangleBooleanProvesNoArrangement) {
  const auto q = ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const DispatchPlan plan = BuildDispatchPlan(q, AdpOptions{});
  const PlanEntry* entry = plan.Find(q);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->op, AdpCase::kBoolean);
  EXPECT_FALSE(entry->linear_order.has_value());
}

TEST(DispatchPlanTest, UniverseAndDecomposeRecurseIntoResiduals) {
  // A is universal; the residual Q(B,C) :- R1(B), R2(C) is disconnected and
  // splits into two singleton components, so the plan holds the whole chain
  // universe -> decompose -> 2 leaves.
  const auto q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  const DispatchPlan plan = BuildDispatchPlan(q, AdpOptions{});
  const PlanEntry* root = plan.Find(q);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, AdpCase::kUniverse);
  EXPECT_GE(plan.size(), 3u);  // root, residual, component structure(s)
  EXPECT_NE(plan.ToString().find("universe"), std::string::npos);
  EXPECT_NE(plan.ToString().find("decompose"), std::string::npos);
}

TEST(DispatchPlanTest, UnknownStructureReturnsNull) {
  const auto q = ParseQuery("Q() :- R1(A,B), R2(B,C)");
  const auto other = ParseQuery("Q(A) :- R1(A,B)");
  const DispatchPlan plan = BuildDispatchPlan(q, AdpOptions{});
  EXPECT_EQ(plan.Find(other), nullptr);
}

TEST(DispatchPlanTest, PlanFromRenamedQueryIsInterchangeable) {
  const auto q = ParseQuery("Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)");
  const auto renamed = ParseQuery("Q(X,Y,Z,W) :- S1(X,Y), S2(Y,Z), S3(Z,W)");
  ASSERT_EQ(CanonicalQueryKey(q), CanonicalQueryKey(renamed));
  const DispatchPlan plan = BuildDispatchPlan(renamed, AdpOptions{});

  const Database db = MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                                 {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                                 {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
  AdpOptions with_plan;
  with_plan.plan = &plan;
  const AdpSolution planned = ComputeAdp(q, db, 2, with_plan);
  const AdpSolution direct = ComputeAdp(q, db, 2, AdpOptions{});
  EXPECT_EQ(planned.cost, direct.cost);
  EXPECT_EQ(planned.exact, direct.exact);
  EXPECT_EQ(planned.feasible, direct.feasible);
  EXPECT_EQ(planned.output_count, direct.output_count);
  EXPECT_EQ(planned.tuples, direct.tuples);
}

// Property: for random queries and instances, a plan-guided solve is
// bit-identical to the planless solve.
TEST(DispatchPlanTest, PlannedSolveMatchesDirectSolveProperty) {
  Rng rng(20260731);
  for (int trial = 0; trial < 120; ++trial) {
    const ConjunctiveQuery q = RandomQuery(rng, 4, 3);
    const Database db = RandomDb(q, rng, 4, 3);
    const std::int64_t k = static_cast<std::int64_t>(rng.Uniform(4));

    AdpOptions base;
    if (trial % 3 == 1) base.use_singleton = false;
    if (trial % 4 == 2) {
      base.universe_strategy = AdpOptions::UniverseStrategy::kOneByOne;
    }

    const DispatchPlan plan = BuildDispatchPlan(q, base);
    AdpOptions with_plan = base;
    with_plan.plan = &plan;

    const AdpSolution direct = ComputeAdp(q, db, k, base);
    const AdpSolution planned = ComputeAdp(q, db, k, with_plan);
    ASSERT_EQ(planned.cost, direct.cost)
        << "trial " << trial << " query " << q.ToString();
    ASSERT_EQ(planned.exact, direct.exact) << "trial " << trial;
    ASSERT_EQ(planned.feasible, direct.feasible) << "trial " << trial;
    ASSERT_EQ(planned.output_count, direct.output_count) << "trial " << trial;
    ASSERT_EQ(planned.tuples, direct.tuples) << "trial " << trial;
  }
}

}  // namespace
}  // namespace adp
