// PlanCache: single-flight semantics, LRU eviction, and the failure /
// eviction races guarded by generation-tagged entries.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/plan_cache.h"

namespace adp {
namespace {

std::shared_ptr<const CachedPlan> TrivialPlan() {
  return std::make_shared<const CachedPlan>();
}

TEST(PlanCacheTest, BuildsOnceThenHits) {
  PlanCache cache(4);
  int builds = 0;
  bool hit = true;
  auto first = cache.GetOrBuild(
      "k", [&] { ++builds; return TrivialPlan(); }, &hit);
  EXPECT_FALSE(hit);
  auto second = cache.GetOrBuild(
      "k", [&] { ++builds; return TrivialPlan(); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, FailedBuildIsRetried) {
  PlanCache cache(4);
  EXPECT_THROW(
      cache.GetOrBuild(
          "k", []() -> std::shared_ptr<const CachedPlan> {
            throw std::runtime_error("boom");
          }),
      std::runtime_error);
  bool hit = true;
  auto plan = cache.GetOrBuild("k", [] { return TrivialPlan(); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(plan, nullptr);
}

// Regression for the generation guard: while a build for key X is in
// flight, X's entry is evicted (capacity pressure) and the key rebuilt
// successfully by another thread. The original build then fails — its
// cleanup must remove only its *own* insertion, not the successor's good
// entry.
TEST(PlanCacheTest, FailedBuildDoesNotEvictRebuiltSuccessor) {
  PlanCache cache(/*capacity=*/1);
  std::promise<void> started;
  std::promise<void> release;

  std::thread doomed([&] {
    EXPECT_THROW(
        cache.GetOrBuild(
            "X", [&]() -> std::shared_ptr<const CachedPlan> {
              started.set_value();
              release.get_future().wait();
              throw std::runtime_error("slow failure");
            }),
        std::runtime_error);
  });
  started.get_future().wait();

  // Capacity 1: inserting Y evicts X's in-flight entry...
  cache.GetOrBuild("Y", [] { return TrivialPlan(); });
  // ...and a fresh build of X succeeds under a new generation.
  auto good = cache.GetOrBuild("X", [] { return TrivialPlan(); });

  release.set_value();
  doomed.join();

  // The failed build's cleanup ran after the successor was inserted; the
  // good entry must still be served.
  bool hit = false;
  auto again = cache.GetOrBuild(
      "X",
      []() -> std::shared_ptr<const CachedPlan> {
        ADD_FAILURE() << "good entry was evicted by the failed build";
        return TrivialPlan();
      },
      &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), good.get());
}

TEST(PlanCacheTest, ConcurrentGetOrBuildSingleFlights) {
  PlanCache cache(8);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CachedPlan>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.GetOrBuild("shared", [&] {
        builds.fetch_add(1);
        return TrivialPlan();
      });
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)].get(), results[0].get());
  }
}

// Clear under concurrent load: builders keep running while entries vanish;
// every caller must still receive a valid plan and the cache must stay
// consistent (no crashes, no null results).
TEST(PlanCacheTest, ClearUnderLoadKeepsServing) {
  PlanCache cache(4);
  std::atomic<int> failures{0};
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 6);
        auto plan = cache.GetOrBuild(key, [] { return TrivialPlan(); });
        if (plan == nullptr) failures.fetch_add(1);
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < 4) {
    cache.Clear();
    std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  cache.Clear();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.size(), 0u);
}

// Builders that throw intermittently under eviction pressure: the cache
// must never serve a stale failure or lose a good rebuild.
TEST(PlanCacheTest, MixedFailureEvictionStress) {
  PlanCache cache(2);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const int which = (t * 7 + i) % 5;
        const std::string key = "k" + std::to_string(which);
        const bool fail = (t + i) % 3 == 0;
        try {
          auto plan = cache.GetOrBuild(
              key, [&]() -> std::shared_ptr<const CachedPlan> {
                if (fail) throw std::runtime_error("flaky");
                return TrivialPlan();
              });
          if (plan == nullptr) wrong.fetch_add(1);
        } catch (const std::runtime_error&) {
          // Propagated failure of our own (or a joined) build: expected.
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  // After the dust settles every key must be buildable again.
  for (int which = 0; which < 5; ++which) {
    auto plan = cache.GetOrBuild("k" + std::to_string(which),
                                 [] { return TrivialPlan(); });
    EXPECT_NE(plan, nullptr);
  }
}

}  // namespace
}  // namespace adp
