// Canonical query fingerprints: structural identity up to renaming.

#include <gtest/gtest.h>

#include "query/fingerprint.h"
#include "query/parser.h"

namespace adp {
namespace {

TEST(FingerprintTest, RenamingInvariant) {
  const auto a = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  const auto b = ParseQuery("Q(X,Y) :- S(X,Y), T(Y,Z)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(b));
}

TEST(FingerprintTest, AttributeOrderWithinRelationMatters) {
  const auto a = ParseQuery("Q() :- R1(A,B), R2(A)");
  const auto b = ParseQuery("Q() :- R1(B,A), R2(A)");
  // R2 references the first column of R1 in one and the second in the other.
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(FingerprintTest, HeadDistinguishes) {
  const auto boolean = ParseQuery("Q() :- R1(A,B), R2(B,C)");
  const auto full = ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C)");
  const auto proj = ParseQuery("Q(A) :- R1(A,B), R2(B,C)");
  EXPECT_NE(CanonicalQueryKey(boolean), CanonicalQueryKey(full));
  EXPECT_NE(CanonicalQueryKey(boolean), CanonicalQueryKey(proj));
  EXPECT_NE(CanonicalQueryKey(full), CanonicalQueryKey(proj));
}

TEST(FingerprintTest, SelectionsDistinguish) {
  const auto plain = ParseQuery("Q(A) :- R1(A,B)");
  const auto sel5 = ParseQuery("Q(A) :- R1(A,B=5)");
  const auto sel6 = ParseQuery("Q(A) :- R1(A,B=6)");
  EXPECT_NE(CanonicalQueryKey(plain), CanonicalQueryKey(sel5));
  EXPECT_NE(CanonicalQueryKey(sel5), CanonicalQueryKey(sel6));
}

TEST(FingerprintTest, BodyOrderMatters) {
  // Documented behavior: databases align positionally with the body, so
  // reordered atoms are distinct keys (a false hit would misbind relations).
  const auto a = ParseQuery("Q() :- R1(A), R2(A,B)");
  const auto b = ParseQuery("Q() :- R2(A,B), R1(A)");
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(FingerprintTest, KeyShape) {
  const auto q = ParseQuery("Q(A) :- R1(A,B), R2(B,C=7)");
  EXPECT_EQ(CanonicalQueryKey(q), "R(0,1)R(1,2;2=7)->0");
}

}  // namespace
}  // namespace adp
