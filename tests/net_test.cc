// AdpNetServer loopback integration: HELLO negotiation, REQ/STREAM answers
// identical to direct AdpEngine calls, multi-client concurrency with
// interleaved pushed frames, malformed/truncated frame survival, mid-stream
// disconnect releasing the worker, priority/EDF ordering and load-shed
// rejection over the socket, and the PREPARE/EXEC/CANCEL/STATS/METRICS
// verbs. Runs against both poll backends (force_poll exercises the
// portable one).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/textproto.h"
#include "net/wire.h"

namespace adp::net {
namespace {

using std::chrono::seconds;

constexpr char kDbLine[] =
    "DB d1 R1=11,21/12,22/13,23 R2=21,31/22,32/22,33/23,33 "
    "R3=31,41/32,43/33,43";
constexpr char kChainText[] = "Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)";

NamedDatabase Fig1NamedDb() {
  const ParsedDb parsed = ParseDbLine(SplitWs(kDbLine));
  return parsed.db;
}

/// Engine + started server on an ephemeral loopback port.
struct NetFixture {
  explicit NetFixture(EngineConfig ec = EngineConfig{.num_workers = 4},
                      NetServerConfig nc = {})
      : engine(ec), server(engine, std::move(nc)) {
    const Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status.message();
  }

  AdpNetClient Client() {
    AdpNetClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server.port()))
        << client.error();
    return client;
  }

  AdpEngine engine;
  AdpNetServer server;
};

/// The answer fields of one kResult body — everything between "feasible"
/// and "cache_hit", i.e. feasible/exact/cost/output_count/tuples, which
/// must be bit-identical to a direct engine call (timings cannot be).
std::string ExtractAnswer(const std::string& body) {
  const std::size_t from = body.find("\"feasible\"");
  const std::size_t to = body.find(",\"cache_hit\"");
  if (from == std::string::npos) return body;  // error bodies compare whole
  return body.substr(from, to == std::string::npos ? std::string::npos
                                                   : to - from);
}

/// What a direct AdpEngine call answers for (query, k) against Fig1,
/// rendered through the same formatter the server uses.
std::string DirectAnswer(AdpEngine& engine, const std::string& query_text,
                         std::int64_t k) {
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  AdpRequest req;
  req.query_text = query_text;
  req.db = db;
  req.k = k;
  const AdpResponse resp = engine.Execute(req);
  EXPECT_TRUE(resp.ok()) << resp.status.ToString();
  const std::shared_ptr<const CachedPlan> plan = engine.PlanFor(req);
  return ExtractAnswer(FormatResponseLine(
      0, "d1", k, resp, plan ? &plan->query : nullptr));
}

/// Occupies one engine worker until released (the net-side analogue of
/// engine_test's WorkerPlug): later async submissions pile up on the queue.
struct WorkerPlug {
  std::promise<void> plugged;
  std::promise<void> release;

  void Install(AdpEngine& engine, DbId db) {
    AdpRequest plug;
    plug.query_text = "Q() :- R1(A,B)";
    plug.db = db;
    plug.k = 0;
    auto released = std::make_shared<std::future<void>>(release.get_future());
    engine.SubmitAsync(plug, [this, released](AdpResponse) {
      plugged.set_value();
      released->wait();
    });
    plugged.get_future().wait();
  }
};

/// A bare TCP connection for pre-negotiation tests (Connect() always
/// completes HELLO, so it cannot exercise the handshake's failure paths).
struct RawConn {
  int fd = -1;

  explicit RawConn(int port) { Open(port); }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void Open(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  }

  void SendFrame(FrameType type, const std::string& payload) {
    std::string framed;
    ASSERT_TRUE(AppendFrame(framed, type, payload));
    ASSERT_EQ(::write(fd, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  /// Reads until the server closes, then decodes whatever arrived.
  std::vector<Frame> DrainToEof() {
    FrameReader reader;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      reader.Feed(buf, static_cast<std::size_t>(n));
    }
    std::vector<Frame> frames;
    while (std::optional<Frame> frame = reader.Next()) {
      frames.push_back(*std::move(frame));
    }
    return frames;
  }
};

TEST(NetTest, HelloNegotiatesVersion) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  EXPECT_EQ(client.version(), kProtocolVersionMax);
}

TEST(NetTest, VersionMismatchIsRejectedAndClosed) {
  NetFixture fx;
  RawConn raw(fx.server.port());
  // A future-only client: no overlap with the server's supported range.
  raw.SendFrame(FrameType::kHello, "7 9");
  const std::vector<Frame> frames = raw.DrainToEof();  // EOF => closed
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_NE(frames[0].payload.find("version"), std::string::npos)
      << frames[0].payload;
}

TEST(NetTest, NonHelloFirstFrameIsRejected) {
  NetFixture fx;
  RawConn raw(fx.server.port());
  raw.SendFrame(FrameType::kStats, "1 STATS");
  const std::vector<Frame> frames = raw.DrainToEof();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_NE(frames[0].payload.find("HELLO"), std::string::npos)
      << frames[0].payload;
}

TEST(NetTest, RequestAnswersMatchDirectEngineCalls) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  EXPECT_EQ(body, "{\"db\":\"d1\"}");

  for (std::int64_t k : {1, 2, 3}) {
    std::optional<Frame> reply = client.Call(
        FrameType::kReq,
        "REQ d1 " + std::to_string(k) + " " + kChainText, &body);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::kResult);
    EXPECT_NE(body.find("\"status\":\"OK\""), std::string::npos) << body;
    EXPECT_EQ(ExtractAnswer(body), DirectAnswer(fx.engine, kChainText, k))
        << "k=" << k;
  }
}

TEST(NetTest, MalformedPayloadsSurviveTheConnection) {
  NetFixture fx;
  AdpNetClient client = fx.Client();

  // No correlation id at all.
  ASSERT_TRUE(client.SendRaw(FrameType::kReq, "not-a-number REQ"));
  std::optional<Frame> err = client.ReadFrame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, FrameType::kError);
  EXPECT_EQ(err->payload.rfind("0 ", 0), 0u) << err->payload;  // id 0

  // Unknown database.
  std::string body;
  std::optional<Frame> reply =
      client.Call(FrameType::kReq, "REQ nodb 2 " + std::string(kChainText),
                  &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(body.find("unknown database"), std::string::npos);

  // Unknown option token.
  reply = client.Call(FrameType::kReq,
                      "REQ d1 2 +zz " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);

  // Unknown frame type byte.
  ASSERT_TRUE(client.SendRaw(static_cast<FrameType>(0x40), "9 whatever"));
  err = client.ReadFrame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, FrameType::kError);

  // The connection still works: register and solve.
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  reply = client.Call(FrameType::kReq,
                      "REQ d1 2 " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kResult);
  EXPECT_NE(body.find("\"status\":\"OK\""), std::string::npos);
}

TEST(NetTest, CorruptLengthPrefixClosesButServerSurvives) {
  NetFixture fx;
  AdpNetClient victim = fx.Client();
  // An impossible length prefix: framing is unrecoverable on this
  // connection.
  std::string garbage = {'\xff', '\xff', '\xff', '\xff', 'x'};
  ASSERT_TRUE(victim.SendBytes(garbage));
  std::optional<Frame> err = victim.ReadFrame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, FrameType::kError);
  EXPECT_FALSE(victim.ReadFrame().has_value());  // closed

  // The server itself is fine: a new connection answers normally.
  AdpNetClient fresh = fx.Client();
  std::string body;
  ASSERT_TRUE(fresh.Call(FrameType::kDb, kDbLine, &body).has_value());
  std::optional<Frame> reply = fresh.Call(
      FrameType::kReq, "REQ d1 2 " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kResult);
}

TEST(NetTest, StreamPushesProfileWitnessesEnd) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());

  const std::int64_t id = client.NextId();
  ASSERT_TRUE(client.Send(FrameType::kStream, id,
                          "STREAM d1 3 " + std::string(kChainText)));
  std::vector<Frame> items;
  for (;;) {
    std::optional<Frame> frame = client.WaitReply(id);
    ASSERT_TRUE(frame.has_value()) << client.error();
    items.push_back(*frame);
    if (frame->type != FrameType::kStreamItem) break;
  }
  ASSERT_GE(items.size(), 4u);  // 3 profile + >=0 witnesses + end
  EXPECT_EQ(items.back().type, FrameType::kStreamEnd);
  EXPECT_NE(items.back().payload.find("\"end\":true"), std::string::npos);
  EXPECT_NE(items.back().payload.find("\"status\":\"OK\""),
            std::string::npos);
  // Profile increments arrive first, k ascending.
  for (int j = 0; j < 3; ++j) {
    EXPECT_NE(items[j].payload.find("\"k\":" + std::to_string(j + 1)),
              std::string::npos)
        << items[j].payload;
  }
  // Same single-solve answer as the direct streaming path: the end line
  // reports the direct Execute's cost.
  const std::string direct = DirectAnswer(fx.engine, kChainText, 3);
  const std::size_t cost_at = direct.find("\"cost\":");
  ASSERT_NE(cost_at, std::string::npos);
  const std::string cost =
      direct.substr(cost_at, direct.find(',', cost_at) - cost_at);
  EXPECT_NE(items.back().payload.find(cost), std::string::npos)
      << items.back().payload << " vs " << cost;
}

TEST(NetTest, IntermediateWitnessOptionStreamsPerTargetBatches) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());

  const std::int64_t id = client.NextId();
  ASSERT_TRUE(client.Send(FrameType::kStream, id,
                          "STREAM d1 3 +iw " + std::string(kChainText)));
  int witness_targets = 0;
  std::int64_t last_witness_k = 0;
  for (;;) {
    std::optional<Frame> frame = client.WaitReply(id);
    ASSERT_TRUE(frame.has_value()) << client.error();
    if (frame->payload.find("\"witnesses\"") != std::string::npos) {
      const std::size_t at = frame->payload.find("\"k\":");
      ASSERT_NE(at, std::string::npos);
      const std::int64_t k = std::stoll(frame->payload.substr(at + 4));
      if (k != last_witness_k) {
        ++witness_targets;
        last_witness_k = k;
      }
    }
    if (frame->type != FrameType::kStreamItem) break;
  }
  // Intermediate targets got their own tagged batches, not just the final.
  EXPECT_GE(witness_targets, 2);
  EXPECT_EQ(last_witness_k, 3);
}

TEST(NetTest, FourConcurrentClientsInterleaveReqAndStream) {
  NetFixture fx;
  constexpr int kClients = 5;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  // One expected answer per k, computed once against the same engine.
  std::vector<std::string> expect_k(4);
  for (std::int64_t k = 1; k <= 3; ++k) {
    expect_k[k] = DirectAnswer(fx.engine, kChainText, k);
  }
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      AdpNetClient client;
      if (!client.Connect("127.0.0.1", fx.server.port())) {
        errors[c] = "connect: " + client.error();
        return;
      }
      std::string body;
      if (!client.Call(FrameType::kDb, kDbLine, &body)) {
        errors[c] = "db: " + client.error();
        return;
      }
      // Pipeline three REQs, then a STREAM, then collect everything
      // interleaved.
      std::vector<std::int64_t> req_ids;
      for (std::int64_t k = 1; k <= 3; ++k) {
        const std::int64_t id = client.NextId();
        if (!client.Send(FrameType::kReq, id,
                         "REQ d1 " + std::to_string(k) + " " +
                             std::string(kChainText))) {
          errors[c] = "send: " + client.error();
          return;
        }
        req_ids.push_back(id);
      }
      const std::int64_t stream_id = client.NextId();
      if (!client.Send(FrameType::kStream, stream_id,
                       "STREAM d1 3 " + std::string(kChainText))) {
        errors[c] = "stream send: " + client.error();
        return;
      }
      bool saw_end = false;
      while (!saw_end) {
        std::optional<Frame> frame = client.WaitReply(stream_id);
        if (!frame.has_value()) {
          errors[c] = "stream read: " + client.error();
          return;
        }
        saw_end = frame->type != FrameType::kStreamItem;
        if (saw_end && frame->type != FrameType::kStreamEnd) {
          errors[c] = "stream ended with " + frame->payload;
          return;
        }
      }
      for (std::int64_t k = 1; k <= 3; ++k) {
        std::optional<Frame> reply = client.WaitReply(req_ids[k - 1]);
        if (!reply.has_value() || reply->type != FrameType::kResult) {
          errors[c] = "result read: " + client.error();
          return;
        }
        std::int64_t got = 0;
        std::string rbody;
        SplitCorrelationId(reply->payload, &got, &rbody);
        if (ExtractAnswer(rbody) != expect_k[k]) {
          errors[c] = "answer mismatch k=" + std::to_string(k) + ": " +
                      rbody;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[c], "") << "client " << c;
  }
}

TEST(NetTest, MidStreamDisconnectReleasesTheWorker) {
  // Single worker; the stream's producer occupies it. Disconnecting the
  // streaming client must release the worker so other traffic completes.
  NetFixture fx(EngineConfig{.num_workers = 1});
  {
    AdpNetClient streamer = fx.Client();
    std::string body;
    ASSERT_TRUE(streamer.Call(FrameType::kDb, kDbLine, &body).has_value());
    ASSERT_TRUE(streamer.Send(FrameType::kStream, streamer.NextId(),
                              "STREAM d1 3 " + std::string(kChainText)));
    // Drop the connection without draining the pushed frames.
  }
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  std::optional<Frame> reply = client.Call(
      FrameType::kReq, "REQ d1 2 " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->type, FrameType::kResult);
  EXPECT_NE(body.find("\"status\":\"OK\""), std::string::npos) << body;
}

TEST(NetTest, PriorityAndDeadlineOrderSaturatedQueue) {
  // Pin the single worker, pile three prioritized requests on the queue
  // through the socket, release, and watch completion order: priority
  // desc, then earliest deadline first.
  NetFixture fx(EngineConfig{.num_workers = 1});
  const DbId plug_db = fx.engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(fx.engine, plug_db);

  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());

  // Distinct queries (no dedup); arrival order is worst-case for the
  // scheduler: lowest priority first, latest deadline first.
  struct Spec {
    const char* opts;
    const char* query;
  };
  const Spec specs[] = {
      {"+p0", "Q(A,B) :- R1(A,B)"},
      {"+p1 +d60000", "Q(B,C) :- R2(B,C), R3(C,E)"},
      {"+p1 +d30000", "Q(A) :- R1(A,B), R2(B,C)"},
  };
  std::vector<std::int64_t> ids;
  const std::uint64_t before = fx.engine.counters().requests;
  for (const Spec& spec : specs) {
    const std::int64_t id = client.NextId();
    ASSERT_TRUE(client.Send(
        FrameType::kReq, id,
        std::string("REQ d1 1 ") + spec.opts + " " + spec.query));
    ids.push_back(id);
  }
  // All three admitted (counted) before the worker is released.
  const auto deadline = std::chrono::steady_clock::now() + seconds(30);
  while (fx.engine.counters().requests < before + 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "not admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  plug.release.set_value();

  // Completion (= dequeue) order: p1+30s, p1+60s, p0.
  std::vector<std::int64_t> completion;
  for (int i = 0; i < 3; ++i) {
    std::optional<Frame> frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value()) << client.error();
    ASSERT_EQ(frame->type, FrameType::kResult) << frame->payload;
    std::int64_t id = 0;
    std::string rest;
    ASSERT_TRUE(SplitCorrelationId(frame->payload, &id, &rest));
    EXPECT_NE(rest.find("\"status\":\"OK\""), std::string::npos) << rest;
    completion.push_back(id);
  }
  EXPECT_EQ(completion, (std::vector<std::int64_t>{ids[2], ids[1], ids[0]}));
}

TEST(NetTest, SaturatedQueueShedsWithTypedErrorWhileAdmittedComplete) {
  NetFixture fx(
      EngineConfig{.num_workers = 1, .max_queue_depth = 1});
  const DbId plug_db = fx.engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(fx.engine, plug_db);

  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());

  // First request takes the only queue slot.
  const std::int64_t admitted = client.NextId();
  ASSERT_TRUE(client.Send(FrameType::kReq, admitted,
                          "REQ d1 2 " + std::string(kChainText)));
  const auto deadline = std::chrono::steady_clock::now() + seconds(30);
  while (fx.engine.counters().requests < 2) {  // plug + admitted
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Second, distinct request finds the queue full: typed OVERLOADED.
  std::optional<Frame> shed_reply = client.Call(
      FrameType::kReq, "REQ d1 1 Q(B,C) :- R2(B,C)", &body);
  ASSERT_TRUE(shed_reply.has_value());
  EXPECT_EQ(shed_reply->type, FrameType::kResult);
  EXPECT_NE(body.find("\"status\":\"OVERLOADED\""), std::string::npos)
      << body;

  // The admitted request still completes once the worker frees up.
  plug.release.set_value();
  std::optional<Frame> ok_reply = client.WaitReply(admitted);
  ASSERT_TRUE(ok_reply.has_value());
  std::int64_t id = 0;
  std::string rest;
  ASSERT_TRUE(SplitCorrelationId(ok_reply->payload, &id, &rest));
  EXPECT_NE(rest.find("\"status\":\"OK\""), std::string::npos) << rest;
  EXPECT_GE(fx.engine.counters().shed, 1u);
}

TEST(NetTest, CancelVerbCancelsQueuedRequest) {
  NetFixture fx(EngineConfig{.num_workers = 1});
  const DbId plug_db = fx.engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(fx.engine, plug_db);

  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  const std::int64_t target = client.NextId();
  ASSERT_TRUE(client.Send(FrameType::kReq, target,
                          "REQ d1 2 " + std::string(kChainText)));
  std::optional<Frame> cancel_reply = client.Call(
      FrameType::kCancel, "CANCEL " + std::to_string(target), &body);
  ASSERT_TRUE(cancel_reply.has_value());
  EXPECT_EQ(cancel_reply->type, FrameType::kCancelOk);
  EXPECT_EQ(body, "{\"cancelled\":1}");

  std::optional<Frame> result = client.WaitReply(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->payload.find("\"status\":\"CANCELLED\""),
            std::string::npos)
      << result->payload;
  plug.release.set_value();
}

TEST(NetTest, DuplicateInflightCorrelationIdIsRejected) {
  // While an id still names a queued request, a second REQ wearing it is
  // refused — accepting it would discard the first ticket (orphaning its
  // CANCEL) and produce two same-id replies.
  NetFixture fx(EngineConfig{.num_workers = 1});
  const DbId plug_db = fx.engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(fx.engine, plug_db);

  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  const std::int64_t id = client.NextId();
  ASSERT_TRUE(client.Send(FrameType::kReq, id,
                          "REQ d1 2 " + std::string(kChainText)));
  // Distinct query text: dedup cannot merge the two submissions.
  ASSERT_TRUE(client.Send(FrameType::kReq, id, "REQ d1 1 Q(A,B) :- R1(A,B)"));

  std::optional<Frame> err = client.WaitReply(id);
  ASSERT_TRUE(err.has_value()) << client.error();
  EXPECT_EQ(err->type, FrameType::kError) << err->payload;
  EXPECT_NE(err->payload.find("already in flight"), std::string::npos)
      << err->payload;

  // The original request is untouched and completes once the worker frees.
  plug.release.set_value();
  std::optional<Frame> result = client.WaitReply(id);
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_EQ(result->type, FrameType::kResult) << result->payload;
  EXPECT_NE(result->payload.find("\"status\":\"OK\""), std::string::npos)
      << result->payload;
}

TEST(NetTest, AbortiveDisconnectsDuringPushDontKillTheServer) {
  // Clients that RST mid-push force hard write errors inside the loop's
  // flush. The server must mark such connections dead and sweep them after
  // the iteration — never close them from inside the conns_ walk (that
  // freed the Conn under the iterator) — and the failed send must surface
  // as an errno, not a process-fatal SIGPIPE.
  NetFixture fx;
  for (int round = 0; round < 8; ++round) {
    RawConn raw(fx.server.port());
    raw.SendFrame(FrameType::kHello, "1 1");
    raw.SendFrame(FrameType::kDb, std::string("1 ") + kDbLine);
    for (int s = 0; s < 3; ++s) {
      raw.SendFrame(FrameType::kStream,
                    std::to_string(2 + s) + " STREAM d1 3 " +
                        std::string(kChainText));
    }
    // Vary how far the push gets before the abort.
    std::this_thread::sleep_for(std::chrono::milliseconds(round * 2));
    // RST on close: anything the server writes afterwards fails hard.
    linger lg{1, 0};
    setsockopt(raw.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  }
  // The server survived every abort and still answers.
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  std::optional<Frame> reply = client.Call(
      FrameType::kReq, "REQ d1 2 " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value()) << client.error();
  EXPECT_EQ(reply->type, FrameType::kResult);
  EXPECT_NE(body.find("\"status\":\"OK\""), std::string::npos) << body;
}

TEST(NetTest, ClientWritesAfterServerCloseFailSoftly) {
  // BYE makes the server flush and close. A client that keeps sending into
  // the closed connection must get a clean send failure — without
  // MSG_NOSIGNAL the second write after the peer's RST raises SIGPIPE and
  // kills the embedding process.
  NetFixture fx;
  AdpNetClient client = fx.Client();
  ASSERT_TRUE(client.Send(FrameType::kBye, client.NextId(), "BYE"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  bool failed = false;
  for (int i = 0; i < 20 && !failed; ++i) {
    failed = !client.Send(FrameType::kStats, client.NextId(), "STATS");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(failed) << "sends into a closed connection kept succeeding";
  EXPECT_FALSE(client.error().empty());
}

TEST(NetTest, ConnectionTeardownReleasesRegisteredDatabases) {
  // Per-connection DB registrations must not outlive the connection (or a
  // displaced same-name registration): a reconnect loop would otherwise
  // grow engine memory without bound.
  NetFixture fx;
  const std::size_t base = fx.engine.counters().databases;
  {
    AdpNetClient client = fx.Client();
    std::string body;
    ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
    // Re-registering the same name releases the instance it displaces.
    ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
    EXPECT_EQ(fx.engine.counters().databases, base + 1);
    // A solve against the re-registered database still works.
    std::optional<Frame> reply = client.Call(
        FrameType::kReq, "REQ d1 2 " + std::string(kChainText), &body);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kResult);
    EXPECT_NE(body.find("\"status\":\"OK\""), std::string::npos) << body;
  }  // disconnect
  // CloseConn runs on the loop thread; wait for the release to land.
  const auto deadline = std::chrono::steady_clock::now() + seconds(30);
  while (fx.engine.counters().databases != base) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "databases still registered: " << fx.engine.counters().databases;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(NetTest, PrepareExecHotPathMatchesDirect) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  std::optional<Frame> prep = client.Call(
      FrameType::kPrepare, "PREPARE " + std::string(kChainText), &body);
  ASSERT_TRUE(prep.has_value());
  ASSERT_EQ(prep->type, FrameType::kPrepared) << body;
  EXPECT_EQ(body, "{\"prepared\":1}");

  std::optional<Frame> reply =
      client.Call(FrameType::kExec, "EXEC 1 d1 2", &body);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kResult) << body;
  EXPECT_EQ(ExtractAnswer(body), DirectAnswer(fx.engine, kChainText, 2));

  // Unknown handle is a per-request error, not a connection error.
  reply = client.Call(FrameType::kExec, "EXEC 99 d1 2", &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
}

TEST(NetTest, StatsAndMetricsVerbs) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  ASSERT_TRUE(client
                  .Call(FrameType::kReq,
                        "REQ d1 2 " + std::string(kChainText), &body)
                  .has_value());

  std::optional<Frame> stats = client.Call(FrameType::kStats, "STATS", &body);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->type, FrameType::kStatsText);
  EXPECT_NE(body.find("\"requests\":"), std::string::npos);
  EXPECT_NE(body.find("\"shed\":"), std::string::npos);

  std::optional<Frame> metrics =
      client.Call(FrameType::kMetrics, "METRICS", &body);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->type, FrameType::kMetricsText);
  EXPECT_NE(body.find("adp_requests_total"), std::string::npos);
  EXPECT_NE(body.find("adp_net_connections_total"), std::string::npos);
  EXPECT_NE(body.find("adp_net_frames_in_total"), std::string::npos);
}

TEST(NetTest, ByeFlushesAndCloses) {
  NetFixture fx;
  AdpNetClient client = fx.Client();
  std::string body;
  std::optional<Frame> bye = client.Call(FrameType::kBye, "BYE", &body);
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->type, FrameType::kByeOk);
  EXPECT_FALSE(client.ReadFrame().has_value());  // server closed
}

TEST(NetTest, PollBackendServesRequests) {
  // force_poll exercises the portable poll() backend on every platform.
  NetFixture fx(EngineConfig{.num_workers = 2},
                NetServerConfig{.force_poll = true});
  AdpNetClient client = fx.Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  std::optional<Frame> reply = client.Call(
      FrameType::kReq, "REQ d1 2 " + std::string(kChainText), &body);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kResult);
  EXPECT_EQ(ExtractAnswer(body), DirectAnswer(fx.engine, kChainText, 2));
}

// ---- Hostile client mix: duplicate-query storm ----------------------------

constexpr char kTwoChainText[] = "Q(A,B,C) :- R1(A,B), R2(B,C)";

/// A diagonal 2-chain database with `rows` rows per relation: the answer
/// (output_count == rows) differs per client, so any cross-connection
/// answer leakage is detectable.
std::string DiagDbLine(int rows) {
  std::string r1 = "R1=";
  std::string r2 = "R2=";
  for (int v = 1; v <= rows; ++v) {
    if (v > 1) {
      r1 += '/';
      r2 += '/';
    }
    r1 += std::to_string(v) + "," + std::to_string(v);
    r2 += std::to_string(v) + "," + std::to_string(v);
  }
  return "DB d1 " + r1 + " " + r2;
}

/// The ground-truth answer for (db_line, k), computed on a private engine
/// so the storm fixture's counters stay untouched.
std::string ExpectedStormAnswer(const std::string& db_line, std::int64_t k) {
  AdpEngine local(EngineConfig{.num_workers = 1});
  const ParsedDb parsed = ParseDbLine(SplitWs(db_line));
  const DbId db = local.RegisterDatabase(parsed.db);
  AdpRequest req;
  req.query_text = kTwoChainText;
  req.db = db;
  req.k = k;
  const AdpResponse resp = local.Execute(req);
  EXPECT_TRUE(resp.ok()) << resp.status.ToString();
  const std::shared_ptr<const CachedPlan> plan = local.PlanFor(req);
  return ExtractAnswer(
      FormatResponseLine(0, "d1", k, resp, plan ? &plan->query : nullptr));
}

// A duplicate-query storm: four clients each pipeline 25 *identical*
// requests on their own connection. The engine must absorb the storm —
// per connection, only the first request solves; every follow-up either
// joins the in-flight leader (dedup) or hits the recent-results ring
// (coalesce), so dedup_hits + coalesce_hits lands exactly on
// clients * (storm - 1). And because each client registered a *different*
// database under the same name "d1", any answer coming from another
// connection's solve (cross-talk through the shared plan cache, dedup
// table, or coalesce ring) would be a visibly wrong answer.
TEST(NetTest, DuplicateQueryStormAbsorbedWithoutCrossTalk) {
  constexpr int kClients = 4;
  constexpr int kStorm = 25;

  // Wide coalesce window: a follow-up that misses the in-flight join must
  // hit the ring, never re-solve.
  NetFixture fx(EngineConfig{.num_workers = 4, .coalesce_window_ms = 60'000.0});

  std::vector<std::string> db_lines;
  std::vector<std::string> expected;
  for (int i = 0; i < kClients; ++i) {
    db_lines.push_back(DiagDbLine(2 + i));
    expected.push_back(ExpectedStormAnswer(db_lines.back(), 1));
  }
  // The per-client truths are pairwise distinct, so the cross-talk check
  // below has teeth.
  for (int i = 0; i < kClients; ++i) {
    for (int j = i + 1; j < kClients; ++j) {
      ASSERT_NE(expected[i], expected[j]);
    }
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&fx, &db_lines, &expected, i] {
      AdpNetClient client = fx.Client();
      std::string body;
      ASSERT_TRUE(client.Call(FrameType::kDb, db_lines[i], &body).has_value())
          << client.error();

      // Pipeline the whole storm, then collect.
      const std::string req = std::string("REQ d1 1 ") + kTwoChainText;
      std::vector<std::int64_t> ids;
      ids.reserve(kStorm);
      for (int r = 0; r < kStorm; ++r) {
        const std::int64_t id = client.NextId();
        ids.push_back(id);
        ASSERT_TRUE(client.Send(FrameType::kReq, id, req)) << client.error();
      }
      for (const std::int64_t id : ids) {
        const std::optional<Frame> reply = client.WaitReply(id);
        ASSERT_TRUE(reply.has_value()) << client.error();
        EXPECT_EQ(reply->type, FrameType::kResult) << reply->payload;
        EXPECT_EQ(ExtractAnswer(reply->payload), expected[i])
            << "client " << i << " id " << id;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // The storm was absorbed: one real solve per connection, everything
  // else deduped in flight or coalesced off the ring. No request failed,
  // none was shed, and nothing crossed connections (distinct databases
  // mean distinct solve keys, so a cross-connection hit is impossible —
  // the counter total proves the per-connection hits all landed).
  const EngineCounters c = fx.engine.counters();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kClients * kStorm));
  EXPECT_EQ(c.dedup_hits + c.coalesce_hits,
            static_cast<std::uint64_t>(kClients * (kStorm - 1)));
  EXPECT_GT(c.coalesce_hits + c.dedup_hits, 0u);
  EXPECT_EQ(c.failures, 0u);
  EXPECT_EQ(c.shed, 0u);
}

TEST(NetTest, ServerStopWithLiveConnectionsIsClean) {
  auto fx = std::make_unique<NetFixture>();
  AdpNetClient client = fx->Client();
  std::string body;
  ASSERT_TRUE(client.Call(FrameType::kDb, kDbLine, &body).has_value());
  fx->server.Stop();
  fx.reset();  // engine teardown after server teardown
  // The client observes EOF (or an error) — never a hang.
  EXPECT_FALSE(client.ReadFrame().has_value());
}

}  // namespace
}  // namespace adp::net
