// CostProfile tests: invariants, convexity, and both combination semantics
// against brute-force convolutions.

#include <gtest/gtest.h>

#include "solver/profile.h"
#include "util/rng.h"

namespace adp {
namespace {

TEST(ProfileTest, TrivialProfile) {
  CostProfile p;
  EXPECT_EQ(p.kmax(), 0);
  EXPECT_EQ(p.At(0), 0);
  EXPECT_EQ(p.At(1), kInfCost);
  EXPECT_FALSE(p.Feasible(1));
}

TEST(ProfileTest, AtAndMaxRemovedWithin) {
  CostProfile p({0, 1, 1, 3, 7});
  EXPECT_EQ(p.kmax(), 4);
  EXPECT_EQ(p.At(2), 1);
  EXPECT_EQ(p.MaxRemovedWithin(0), 0);
  EXPECT_EQ(p.MaxRemovedWithin(1), 2);
  EXPECT_EQ(p.MaxRemovedWithin(3), 3);
  EXPECT_EQ(p.MaxRemovedWithin(100), 4);
}

TEST(ProfileTest, ConvexityDetection) {
  EXPECT_TRUE(CostProfile({0, 1, 2, 3}).IsConvex());
  EXPECT_TRUE(CostProfile({0, 0, 1, 3, 6}).IsConvex());
  EXPECT_FALSE(CostProfile({0, 3, 3, 4}).IsConvex());  // inc 3 then 0
  EXPECT_TRUE(CostProfile({0}).IsConvex());
}

TEST(ProfileTest, TruncateTo) {
  CostProfile p({0, 1, 2, 3});
  p.TruncateTo(2);
  EXPECT_EQ(p.kmax(), 2);
  p.TruncateTo(10);  // no-op
  EXPECT_EQ(p.kmax(), 2);
}

TEST(ProfileTest, SaturatingArithmetic) {
  EXPECT_EQ(SatMul(kMaxOutputs, 2), kMaxOutputs);
  EXPECT_EQ(SatMul(3, 4), 12);
  EXPECT_EQ(SatMul(0, kMaxOutputs), 0);
  EXPECT_EQ(SatAdd(kMaxOutputs, 1), kMaxOutputs);
  EXPECT_EQ(SatAdd(3, 4), 7);
}

TEST(CombineDisjointTest, SimpleMerge) {
  // a removes outputs at cost 1 each; b removes 2 outputs for cost 1.
  const CostProfile a({0, 1, 2});
  const CostProfile b({0, 1, 1});
  std::vector<std::int64_t> choice;
  const CostProfile c = CombineDisjoint(a, b, 4, &choice);
  EXPECT_EQ(c.At(1), 1);
  EXPECT_EQ(c.At(2), 1);  // take b's pair
  EXPECT_EQ(c.At(3), 2);  // b pair + one from a
  EXPECT_EQ(c.At(4), 3);
  EXPECT_EQ(choice[2], 2);  // 2 outputs from b
}

TEST(CombineDisjointTest, MatchesBruteForce) {
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    auto random_profile = [&](int len) {
      std::vector<std::int64_t> c = {0};
      for (int i = 1; i <= len; ++i) {
        c.push_back(c.back() + static_cast<std::int64_t>(rng.Uniform(4)));
      }
      return CostProfile(c);
    };
    const CostProfile a = random_profile(static_cast<int>(rng.Uniform(6)));
    const CostProfile b = random_profile(static_cast<int>(rng.Uniform(6)));
    const std::int64_t cap = a.kmax() + b.kmax();
    const CostProfile c = CombineDisjoint(a, b, cap, nullptr);
    for (std::int64_t j = 0; j <= cap; ++j) {
      std::int64_t want = kInfCost;
      for (std::int64_t m = 0; m <= j; ++m) {
        if (a.Feasible(j - m) && b.Feasible(m)) {
          want = std::min(want, a.At(j - m) + b.At(m));
        }
      }
      EXPECT_EQ(c.At(j), want) << "j=" << j;
    }
  }
}

TEST(CombineProductTest, TwoByTwoCrossProduct) {
  // Two factors with 2 outputs each, unit cost per removed output.
  const CostProfile a({0, 1, 2});
  const CostProfile b({0, 1, 2});
  const CostProfile c =
      CombineProduct(a, 2, b, 2, 4, /*naive_inner=*/false, nullptr);
  // Removing 1 of a's outputs removes 2 products.
  EXPECT_EQ(c.At(1), 1);
  EXPECT_EQ(c.At(2), 1);
  // 3 products: kill one whole factor output (2 products) + one more needs
  // k1=1,k2=1 -> removed = 1*2+1*2-1 = 3, cost 2.
  EXPECT_EQ(c.At(3), 2);
  // All 4: cheapest is both outputs of one factor (cost 2).
  EXPECT_EQ(c.At(4), 2);
}

TEST(CombineProductTest, ImprovedMatchesNaive) {
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    auto random_profile = [&](std::int64_t m) {
      std::vector<std::int64_t> c = {0};
      for (std::int64_t i = 1; i <= m; ++i) {
        c.push_back(c.back() + 1 +
                    static_cast<std::int64_t>(rng.Uniform(3)));
      }
      return CostProfile(c);
    };
    const std::int64_t ma = 1 + static_cast<std::int64_t>(rng.Uniform(5));
    const std::int64_t mb = 1 + static_cast<std::int64_t>(rng.Uniform(5));
    const CostProfile a = random_profile(ma);
    const CostProfile b = random_profile(mb);
    const std::int64_t cap = ma * mb;
    const CostProfile fast =
        CombineProduct(a, ma, b, mb, cap, /*naive_inner=*/false, nullptr);
    const CostProfile slow =
        CombineProduct(a, ma, b, mb, cap, /*naive_inner=*/true, nullptr);
    for (std::int64_t j = 0; j <= cap; ++j) {
      EXPECT_EQ(fast.At(j), slow.At(j)) << "iter " << iter << " j=" << j;
    }
  }
}

TEST(CombineProductTest, MatchesExhaustivePairEnumeration) {
  Rng rng(123);
  for (int iter = 0; iter < 40; ++iter) {
    auto random_profile = [&](std::int64_t m) {
      std::vector<std::int64_t> c = {0};
      for (std::int64_t i = 1; i <= m; ++i) {
        c.push_back(c.back() + static_cast<std::int64_t>(rng.Uniform(4)));
      }
      return CostProfile(c);
    };
    const std::int64_t ma = 1 + static_cast<std::int64_t>(rng.Uniform(4));
    const std::int64_t mb = 1 + static_cast<std::int64_t>(rng.Uniform(4));
    const CostProfile a = random_profile(ma);
    const CostProfile b = random_profile(mb);
    const std::int64_t cap = ma * mb;
    const CostProfile got =
        CombineProduct(a, ma, b, mb, cap, /*naive_inner=*/false, nullptr);
    for (std::int64_t j = 0; j <= cap; ++j) {
      std::int64_t want = kInfCost;
      for (std::int64_t k1 = 0; k1 <= ma; ++k1) {
        for (std::int64_t k2 = 0; k2 <= mb; ++k2) {
          if (!a.Feasible(k1) || !b.Feasible(k2)) continue;
          if (k1 * mb + k2 * ma - k1 * k2 >= j) {
            want = std::min(want, a.At(k1) + b.At(k2));
          }
        }
      }
      EXPECT_EQ(got.At(j), want) << "iter " << iter << " j=" << j;
    }
  }
}

TEST(CombineProductTest, ChoiceReconstructsCost) {
  const CostProfile a({0, 2, 5});
  const CostProfile b({0, 1, 4, 6});
  std::vector<std::pair<std::int64_t, std::int64_t>> choice;
  const CostProfile c = CombineProduct(a, 2, b, 3, 6, false, &choice);
  for (std::int64_t j = 1; j <= c.kmax(); ++j) {
    const auto [k1, k2] = choice[j];
    EXPECT_EQ(a.At(k1) + b.At(k2), c.At(j)) << j;
    EXPECT_GE(k1 * 3 + k2 * 2 - k1 * k2, j) << j;
  }
}

}  // namespace
}  // namespace adp
