// Dichotomy tests pinning the paper's worked examples: endogenous /
// dominated classification, triads, triad-like structures, strands,
// hierarchical head joins, and IsPtime on the full query zoo of §4–§5.

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "dichotomy/relations.h"
#include "dichotomy/structures.h"
#include "dichotomy/triad.h"
#include "query/parser.h"

namespace adp {
namespace {

TEST(EndogenousTest, StrictSupersetIsExogenous) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const auto exo = ExogenousFlags(q);
  EXPECT_FALSE(exo[0]);
  EXPECT_TRUE(exo[1]);  // attr(R1) ⊊ attr(R2)
  EXPECT_FALSE(exo[2]);
}

TEST(EndogenousTest, PaperExampleWithDuplicateAttrSets) {
  // Q :- R1(A), R2(A,B), R3(B,C), R4(B,C), R5(B,C): endogenous relations
  // are R1 and one of R3/R4/R5 (we pick the first).
  ConjunctiveQuery q;
  const AttrId a = q.AddAttribute("A");
  const AttrId b = q.AddAttribute("B");
  const AttrId c = q.AddAttribute("C");
  q.AddRelation("R1", {a});
  q.AddRelation("R2", {a, b});
  q.AddRelation("R3", {b, c});
  q.AddRelation("R4", {b, c});
  q.AddRelation("R5", {b, c});
  q.SetHead(AttrSet());
  EXPECT_EQ(EndogenousRelations(q), (std::vector<int>{0, 2}));
}

TEST(DominatedTest, FullCqBinaryOverUnary) {
  // Full CQ Q(A,B) :- R1(A), R2(A,B): R2 is dominated by R1 (Def 6).
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  EXPECT_EQ(NonDominatedRelations(q), (std::vector<int>{0}));
}

TEST(DominatedTest, QcoverHasNoDominatedRelations) {
  // In Qcover, R2's intersection with R3 escapes R1, so nothing dominates.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  EXPECT_EQ(NonDominatedRelations(q), (std::vector<int>{0, 1, 2}));
}

TEST(DominatedTest, VacuumDominatesEverything) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2(), R3(A,B)");
  EXPECT_EQ(NonDominatedRelations(q), (std::vector<int>{1}));
}

TEST(DominatedTest, HeadComparabilityConditionMatters) {
  // Qswing: R3(B) ⊆ R2(A,B) but attr(R3) and head {A} are incomparable,
  // so condition (3) of Def 7 blocks domination.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  EXPECT_EQ(NonDominatedRelations(q), (std::vector<int>{0, 1}));
}

TEST(TriadTest, TriangleIsTriad) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const auto triad = FindTriad(q);
  ASSERT_TRUE(triad.has_value());
  EXPECT_EQ(triad->r1, 0);
  EXPECT_EQ(triad->r2, 1);
  EXPECT_EQ(triad->r3, 2);
}

TEST(TriadTest, QtIsTriad) {
  // QT :- R1(A,B,C), R2(A), R3(B), R4(C): the three unary atoms form a
  // triad (R1 is exogenous).
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B,C), R2(A), R3(B), R4(C)");
  const auto triad = FindTriad(q);
  ASSERT_TRUE(triad.has_value());
  EXPECT_EQ(triad->r1, 1);
  EXPECT_EQ(triad->r2, 2);
  EXPECT_EQ(triad->r3, 3);
}

TEST(TriadTest, BooleanChainIsTriadFree) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,E)");
  EXPECT_FALSE(FindTriad(q).has_value());
}

TEST(TriadTest, TwoAtomsCannotFormTriad) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B), R2(B,C)");
  EXPECT_FALSE(FindTriad(q).has_value());
}

TEST(TriadLikeTest, OutputAttributesDoNotHelp) {
  // §5.2.1: Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G) keeps Q△ inside the
  // existential attributes.
  const ConjunctiveQuery q =
      ParseQuery("Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)");
  EXPECT_TRUE(FindTriadLike(q).has_value());
}

TEST(TriadLikeTest, HeadAttributesBlockPaths) {
  // The same triangle with all attributes output has no triad-like
  // structure (connecting attributes must avoid the head).
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)");
  EXPECT_FALSE(FindTriadLike(q).has_value());
}

TEST(StrandTest, SwingAndSeesawContainStrands) {
  EXPECT_TRUE(FindStrand(ParseQuery("Q(A) :- R2(A,B), R3(B)")).has_value());
  EXPECT_TRUE(
      FindStrand(ParseQuery("Q(A) :- R1(A), R2(A,B), R3(B)")).has_value());
}

TEST(StrandTest, SharedExistentialAttributeMakesStrand) {
  // §5.2.3: Q(A,B,C) :- R1(A,B,E), R2(A,C,E) is NP-hard via a strand.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B,E), R2(A,C,E)");
  const auto strand = FindStrand(q);
  ASSERT_TRUE(strand.has_value());
  EXPECT_EQ(strand->first, 0);
  EXPECT_EQ(strand->second, 1);
}

TEST(StrandTest, FullCqHasNoStrand) {
  // Full CQs have no existential attributes, hence no strands.
  EXPECT_FALSE(
      FindStrand(ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)")).has_value());
}

TEST(HierarchyTest, Figure5IsHierarchical) {
  const ConjunctiveQuery q = ParseQuery(
      "Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)");
  std::vector<int> all = {0, 1, 2, 3};
  EXPECT_TRUE(IsHierarchical(q, all, q.head()));
}

TEST(HierarchyTest, QcoverIsNonHierarchical) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  std::vector<int> all = {0, 1, 2};
  EXPECT_FALSE(IsHierarchical(q, all, q.head()));
  EXPECT_TRUE(NonDominatedHeadJoinNonHierarchical(q));
}

TEST(HierarchyTest, NonHierarchicalButStillPtime) {
  // §5.2.2: Q(A,B,E) :- R1(A,E), R2(A,B,E), R3(B,E), R4(E) is
  // non-hierarchical as a whole, yet IsPtime returns true: R4 and the rest
  // are dominated appropriately once E (universal) is handled.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,E) :- R1(A,E), R2(A,B,E), R3(B,E), R4(E)");
  std::vector<int> all = {0, 1, 2, 3};
  EXPECT_FALSE(IsHierarchical(q, all, q.head()));
  EXPECT_TRUE(IsPtime(q));
  EXPECT_FALSE(HasHardStructure(q));
}

struct DichotomyCase {
  const char* query;
  bool ptime;
  const char* why;
};

class DichotomyZoo : public ::testing::TestWithParam<DichotomyCase> {};

TEST_P(DichotomyZoo, IsPtimeMatchesPaper) {
  const DichotomyCase& c = GetParam();
  const ConjunctiveQuery q = ParseQuery(c.query);
  EXPECT_EQ(IsPtime(q), c.ptime) << c.query << " — " << c.why;
}

TEST_P(DichotomyZoo, StructuralMatchesProcedural) {
  const DichotomyCase& c = GetParam();
  const ConjunctiveQuery q = ParseQuery(c.query);
  if (q.HasSelections()) GTEST_SKIP() << "structures defined on plain CQs";
  EXPECT_EQ(!HasHardStructure(q), c.ptime)
      << c.query << " — " << FindHardStructure(q).description;
}

INSTANTIATE_TEST_SUITE_P(
    PaperZoo, DichotomyZoo,
    ::testing::Values(
        // Core hard queries (§4.2.1).
        DichotomyCase{"Q(A,B) :- R1(A), R2(A,B), R3(B)", false, "Qcover"},
        DichotomyCase{"Q(A) :- R2(A,B), R3(B)", false, "Qswing"},
        DichotomyCase{"Q(A) :- R1(A), R2(A,B), R3(B)", false, "Qseesaw"},
        // Boolean triads (§5.1).
        DichotomyCase{"Q() :- R1(A,B), R2(B,C), R3(C,A)", false, "Qtriangle"},
        DichotomyCase{"Q() :- R1(A,B,C), R2(A), R3(B), R4(C)", false, "QT"},
        // Boolean triad-free chains are easy.
        DichotomyCase{"Q() :- R1(A,B), R2(B,C), R3(C,E)", true,
                      "boolean chain"},
        DichotomyCase{"Q() :- R1(A), R2(A,B), R3(B)", true,
                      "boolean path"},
        // Example 4.
        DichotomyCase{"Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), "
                      "R5(G,H)",
                      false, "Example 4: component {R1,R3,R4} is hard"},
        DichotomyCase{"Q(F,G,H) :- R2(F,G), R5(G,H)", true,
                      "Example 4's easy component"},
        // §5.2.2 hierarchical / non-hierarchical pairs.
        DichotomyCase{"Q(A) :- R1(A,C,E), R2(A,E,F), R3(A,F,H)", true,
                      "universal A then triad-free boolean chain"},
        DichotomyCase{"Q(A,B) :- R1(A,C,E), R2(A,B,E,F), R3(B,F,H)", false,
                      "selective output attrs make it hard"},
        DichotomyCase{"Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), "
                      "R4(A,E,H)",
                      true, "hierarchical full CQ (Fig 5)"},
        // §5.2.3 strand examples.
        DichotomyCase{"Q(A,B,C) :- R1(A,B,E), R2(A,C,E)", false, "strand"},
        DichotomyCase{"Q(A,B,C) :- R1(A,B), R2(A,C)", true,
                      "same head join, no shared existential"},
        DichotomyCase{"Q() :- R1(E), R2(E)", true, "boolean, no triad"},
        // Triad-like (§5.2.1).
        DichotomyCase{"Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)", false,
                      "triad-like"},
        // Example 6 family (case 2 of the hardness proof).
        DichotomyCase{"Q(A,B) :- R1(A), R2(A,C), R3(C,B), R4(B)", false,
                      "disconnected head join"},
        DichotomyCase{"Q(A) :- R2(A,C), R3(C)", false, "swing-like"},
        // Example 7 (case 3).
        DichotomyCase{"Q(A,B,C,E) :- R1(A,C), R2(C,E), R3(E,B)", false,
                      "full 3-chain maps to Qpath"},
        DichotomyCase{"Q(A,B,C,E,F) :- R1(A,B,C,E,F), R2(B,C,E), R3(A,C)",
                      false, "case 3.2 full CQ"},
        // Vacuum relations are always easy (Lemma 1).
        DichotomyCase{"Q(A) :- R1(A), R2()", true, "vacuum relation"},
        // Workload queries (§8.1).
        DichotomyCase{"Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)",
                      false, "TPC-H Q1 hard"},
        DichotomyCase{"Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)", false,
                      "Q2 3-path"},
        DichotomyCase{"Q(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)", false,
                      "Q3 triangle"},
        DichotomyCase{"Q(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)",
                      false, "Q4 double 2-path"},
        DichotomyCase{"Q(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)", false,
                      "Q5 common friend"},
        DichotomyCase{"Q(A,B) :- R1(A), R2(A,B)", true, "Q6 singleton"},
        DichotomyCase{"Q(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), "
                      "R3(A,B,C,D,G), R4(A,B,C,F)",
                      true, "Q7 singleton via universal A,B,C"},
        DichotomyCase{"Q(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), "
                      "R21(A2), R22(A2,B2), R31(A3), R32(A3,B3)",
                      true, "Q8 three easy components"},
        // Intro examples are NP-hard (heuristics apply).
        DichotomyCase{"QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)", false,
                      "waitlist query"},
        DichotomyCase{"QP(C) :- Teaches(P,C), NotOnLeave(P)", false,
                      "course robustness query"}));

TEST(SelectionDichotomyTest, SelectionMakesQ1Easy) {
  // Lemma 12 + §8.1: σ(PK=13370) Q1 is poly-time solvable.
  const ConjunctiveQuery hard =
      ParseQuery("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)");
  const ConjunctiveQuery easy = ParseQuery(
      "Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK=13370), L(OK,PK=13370)");
  EXPECT_FALSE(IsPtime(hard));
  EXPECT_TRUE(IsPtime(easy));
}

TEST(HardStructureTest, ReportsKindAndWitness) {
  const HardStructure triad = FindHardStructure(
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)"));
  EXPECT_EQ(triad.kind, HardStructureKind::kTriadLike);
  EXPECT_EQ(triad.relations.size(), 3u);

  const HardStructure strand =
      FindHardStructure(ParseQuery("Q(A) :- R2(A,B), R3(B)"));
  EXPECT_EQ(strand.kind, HardStructureKind::kStrand);

  const HardStructure none =
      FindHardStructure(ParseQuery("Q(A,B) :- R1(A), R2(A,B)"));
  EXPECT_EQ(none.kind, HardStructureKind::kNone);

  const HardStructure head_join =
      FindHardStructure(ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)"));
  EXPECT_EQ(head_join.kind, HardStructureKind::kNonHierarchicalHeadJoin);
}

}  // namespace
}  // namespace adp
