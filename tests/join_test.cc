// Join engine tests: the paper's Figure 1 instance, support/provenance,
// dangling detection, plus a randomized sweep against the nested-loop
// oracle.

#include <gtest/gtest.h>

#include <set>

#include "query/parser.h"
#include "relational/group_index.h"
#include "relational/join.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleCount;
using testing::OracleOutputs;
using testing::RandomDb;
using testing::RandomQuery;

// Figure 1: R1(A,B), R2(B,C), R3(C,E) with 10 tuples.
ConjunctiveQuery Fig1Query(const std::string& head) {
  return ParseQuery("Q(" + head + ") :- R1(A,B), R2(B,C), R3(C,E)");
}

Database Fig1Db(const ConjunctiveQuery& q) {
  // a_i -> 10+i, b_i -> 20+i, c_i -> 30+i, e_i -> 40+i.
  return MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                    {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                    {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
}

TEST(JoinTest, Figure1FullJoinHasFourRows) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const JoinResult join = FullJoin(q.body(), db, /*with_support=*/false);
  EXPECT_EQ(join.NumRows(), 4u);
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 4u);
}

TEST(JoinTest, Figure1ProjectionQ2HasThreeOutputs) {
  const ConjunctiveQuery q = Fig1Query("A,E");
  const Database db = Fig1Db(q);
  // Q2(D) = {(a1,e1), (a2,e3), (a3,e3)} — the (a2,*) duplicates collapse.
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 3u);
  const std::vector<Tuple> outs = DistinctOutputs(q.body(), q.head(), db);
  const std::set<Tuple> got(outs.begin(), outs.end());
  const std::set<Tuple> want = {{11, 41}, {12, 43}, {13, 43}};
  EXPECT_EQ(got, want);
}

TEST(JoinTest, SupportIdentifiesContributingTuples) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const JoinResult join = FullJoin(q.body(), db, /*with_support=*/true);
  ASSERT_EQ(join.NumRows(), 4u);
  for (std::size_t r = 0; r < join.NumRows(); ++r) {
    // Reconstruct the row from its supports and compare attribute-wise.
    for (int rel = 0; rel < 3; ++rel) {
      const TupleId t = join.SupportOf(r, rel);
      const RelationSchema& schema = q.relation(rel);
      const Tuple& src = db.rel(rel).tuple(t);
      for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
        const int col = join.ColumnOf(schema.attrs[c]);
        ASSERT_GE(col, 0);
        EXPECT_EQ(join.rows[r][col], src[c]);
      }
    }
  }
}

TEST(JoinTest, NonDanglingFlagsFigure1) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const auto flags = NonDanglingFlags(q.body(), db);
  // All tuples of Figure 1 participate in some join row.
  for (const auto& rel_flags : flags) {
    for (char f : rel_flags) EXPECT_EQ(f, 1);
  }
}

TEST(JoinTest, DanglingTupleDetected) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {3, 6}}}});
  const auto flags = NonDanglingFlags(q.body(), db);
  EXPECT_EQ(flags[0][0], 1);  // R1(1) joins
  EXPECT_EQ(flags[0][1], 0);  // R1(2) dangling
  EXPECT_EQ(flags[1][0], 1);
  EXPECT_EQ(flags[1][1], 0);  // R2(3,6) dangling
}

TEST(JoinTest, EmptyRelationAnnihilates) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {}}, {"R2", {{1, 2}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 0u);
}

TEST(JoinTest, CrossProductForDisconnectedBody) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{5}, {6}, {7}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 6u);
}

TEST(JoinTest, VacuumRelationTrueJoinsAsIdentity) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}});
  db.rel(1).Add({});  // R2 = {∅} ("true")
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 2u);
}

TEST(JoinTest, VacuumRelationFalseAnnihilates) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}});
  // R2 = ∅ ("false")
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 0u);
}

TEST(JoinTest, BooleanHeadCountsZeroOrOne) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A)");
  const Database yes = MakeDb(q, {{"R1", {{1}}}, {"R2", {{1}}}});
  const Database no = MakeDb(q, {{"R1", {{1}}}, {"R2", {{2}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), yes), 1u);
  EXPECT_EQ(CountOutputs(q.body(), q.head(), no), 0u);
}

TEST(JoinTest, SelfJoinKeyReuseAcrossColumns) {
  // Same attribute twice in different relations with swapped roles.
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 2}, {2, 1}}},
                                 {"R2", {{1, 9}, {2, 8}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 2u);
}

// --- HashGroupIndex (the columnar grouping/probe structure under the
// hash join and PartitionByAttrs) ---

TEST(HashGroupIndexTest, EmptyRelationHasNoGroupsAndAllProbesMiss) {
  RelationInstance inst;
  const HashGroupIndex index(inst, {});
  EXPECT_EQ(index.num_groups(), 0u);
  const Code probe[] = {0};
  EXPECT_EQ(index.FindByCodes(probe), -1);
}

TEST(HashGroupIndexTest, EmptyKeyColumnsPutAllRowsInOneGroup) {
  RelationInstance inst;
  inst.Add({1, 10});
  inst.Add({2, 20});
  inst.Add({3, 30});
  const HashGroupIndex index(inst, {});
  ASSERT_EQ(index.num_groups(), 1u);
  EXPECT_EQ(index.rows(0), (std::vector<TupleId>{0, 1, 2}));
  EXPECT_TRUE(index.KeyValues(0).empty());
  EXPECT_EQ(index.FindByCodes(nullptr), 0);
}

TEST(HashGroupIndexTest, ConstantKeyColumnAlsoYieldsOneGroup) {
  RelationInstance inst;
  inst.Add({7, 1});
  inst.Add({7, 2});
  inst.Add({7, 3});
  const HashGroupIndex index(inst, {0});
  ASSERT_EQ(index.num_groups(), 1u);
  EXPECT_EQ(index.rows(0).size(), 3u);
  EXPECT_EQ(index.KeyValues(0), Tuple({7}));
}

TEST(HashGroupIndexTest, GroupsAreFirstSeenOrderWithAscendingRows) {
  RelationInstance inst;
  inst.Add({5, 1});
  inst.Add({9, 2});
  inst.Add({5, 3});
  inst.Add({9, 4});
  inst.Add({5, 5});
  const HashGroupIndex index(inst, {0});
  ASSERT_EQ(index.num_groups(), 2u);
  EXPECT_EQ(index.KeyValues(0), Tuple({5}));
  EXPECT_EQ(index.rows(0), (std::vector<TupleId>{0, 2, 4}));
  EXPECT_EQ(index.KeyValues(1), Tuple({9}));
  EXPECT_EQ(index.rows(1), (std::vector<TupleId>{1, 3}));
  EXPECT_EQ(index.representative(0), 0u);
  EXPECT_EQ(index.representative(1), 1u);
}

// Dictionary codes are assigned per column in first-intern order, so the
// same value generally has *different* codes in different relations — and
// the same code maps to different values. A probe must translate values
// through the build side's dictionary before calling FindByCodes; this
// test pins the collision scenario that would silently corrupt a join if
// codes were ever compared across relations directly.
TEST(HashGroupIndexTest, CrossRelationProbeRequiresDictionaryTranslation) {
  RelationInstance build;
  build.Add({100});  // code 0 -> 100
  build.Add({200});  // code 1 -> 200
  RelationInstance probe_side;
  probe_side.Add({200});  // code 0 -> 200: collides with build's code for 100
  probe_side.Add({300});  // code 1 -> 300: absent from the build side

  const HashGroupIndex index(build, {0});
  ASSERT_EQ(index.num_groups(), 2u);

  // Correct protocol: decode the probe row, re-encode via build's dict.
  const std::int64_t translated = build.dict(0).Lookup(probe_side.ValueAt(0, 0));
  ASSERT_GE(translated, 0);
  const Code probe_codes[] = {static_cast<Code>(translated)};
  const std::int64_t g = index.FindByCodes(probe_codes);
  ASSERT_GE(g, 0);
  EXPECT_EQ(index.KeyValues(g), Tuple({200}));

  // The raw (untranslated) code would have found the *wrong* group.
  const Code raw[] = {probe_side.CodeAt(0, 0)};
  const std::int64_t wrong = index.FindByCodes(raw);
  ASSERT_GE(wrong, 0);
  EXPECT_NE(index.KeyValues(wrong), Tuple({200}));

  // Values missing from the build dictionary are reported as absent
  // before any probe happens.
  EXPECT_EQ(build.dict(0).Lookup(probe_side.ValueAt(1, 0)), -1);
}

// Property: the hash-join engine agrees with the nested-loop oracle on
// random queries and instances.
class JoinOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(JoinOracleSweep, MatchesOracle) {
  Rng rng(1000 + GetParam());
  const ConjunctiveQuery q = RandomQuery(rng, 5, 4);
  const Database db = RandomDb(q, rng, 12, 4);
  const auto got = DistinctOutputs(q.body(), q.head(), db);
  const std::set<Tuple> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set, OracleOutputs(q, db)) << q.ToString();
  EXPECT_EQ(static_cast<std::int64_t>(
                CountOutputs(q.body(), q.head(), db)),
            OracleCount(q, db));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JoinOracleSweep,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace adp
