// Join engine tests: the paper's Figure 1 instance, support/provenance,
// dangling detection, plus a randomized sweep against the nested-loop
// oracle.

#include <gtest/gtest.h>

#include <set>

#include "query/parser.h"
#include "relational/join.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleCount;
using testing::OracleOutputs;
using testing::RandomDb;
using testing::RandomQuery;

// Figure 1: R1(A,B), R2(B,C), R3(C,E) with 10 tuples.
ConjunctiveQuery Fig1Query(const std::string& head) {
  return ParseQuery("Q(" + head + ") :- R1(A,B), R2(B,C), R3(C,E)");
}

Database Fig1Db(const ConjunctiveQuery& q) {
  // a_i -> 10+i, b_i -> 20+i, c_i -> 30+i, e_i -> 40+i.
  return MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                    {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                    {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
}

TEST(JoinTest, Figure1FullJoinHasFourRows) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const JoinResult join = FullJoin(q.body(), db, /*with_support=*/false);
  EXPECT_EQ(join.NumRows(), 4u);
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 4u);
}

TEST(JoinTest, Figure1ProjectionQ2HasThreeOutputs) {
  const ConjunctiveQuery q = Fig1Query("A,E");
  const Database db = Fig1Db(q);
  // Q2(D) = {(a1,e1), (a2,e3), (a3,e3)} — the (a2,*) duplicates collapse.
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 3u);
  const std::vector<Tuple> outs = DistinctOutputs(q.body(), q.head(), db);
  const std::set<Tuple> got(outs.begin(), outs.end());
  const std::set<Tuple> want = {{11, 41}, {12, 43}, {13, 43}};
  EXPECT_EQ(got, want);
}

TEST(JoinTest, SupportIdentifiesContributingTuples) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const JoinResult join = FullJoin(q.body(), db, /*with_support=*/true);
  ASSERT_EQ(join.NumRows(), 4u);
  for (std::size_t r = 0; r < join.NumRows(); ++r) {
    // Reconstruct the row from its supports and compare attribute-wise.
    for (int rel = 0; rel < 3; ++rel) {
      const TupleId t = join.SupportOf(r, rel);
      const RelationSchema& schema = q.relation(rel);
      const Tuple& src = db.rel(rel).tuple(t);
      for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
        const int col = join.ColumnOf(schema.attrs[c]);
        ASSERT_GE(col, 0);
        EXPECT_EQ(join.rows[r][col], src[c]);
      }
    }
  }
}

TEST(JoinTest, NonDanglingFlagsFigure1) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const auto flags = NonDanglingFlags(q.body(), db);
  // All tuples of Figure 1 participate in some join row.
  for (const auto& rel_flags : flags) {
    for (char f : rel_flags) EXPECT_EQ(f, 1);
  }
}

TEST(JoinTest, DanglingTupleDetected) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {3, 6}}}});
  const auto flags = NonDanglingFlags(q.body(), db);
  EXPECT_EQ(flags[0][0], 1);  // R1(1) joins
  EXPECT_EQ(flags[0][1], 0);  // R1(2) dangling
  EXPECT_EQ(flags[1][0], 1);
  EXPECT_EQ(flags[1][1], 0);  // R2(3,6) dangling
}

TEST(JoinTest, EmptyRelationAnnihilates) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {}}, {"R2", {{1, 2}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 0u);
}

TEST(JoinTest, CrossProductForDisconnectedBody) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{5}, {6}, {7}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 6u);
}

TEST(JoinTest, VacuumRelationTrueJoinsAsIdentity) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}});
  db.rel(1).Add({});  // R2 = {∅} ("true")
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 2u);
}

TEST(JoinTest, VacuumRelationFalseAnnihilates) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}});
  // R2 = ∅ ("false")
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 0u);
}

TEST(JoinTest, BooleanHeadCountsZeroOrOne) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A)");
  const Database yes = MakeDb(q, {{"R1", {{1}}}, {"R2", {{1}}}});
  const Database no = MakeDb(q, {{"R1", {{1}}}, {"R2", {{2}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), yes), 1u);
  EXPECT_EQ(CountOutputs(q.body(), q.head(), no), 0u);
}

TEST(JoinTest, SelfJoinKeyReuseAcrossColumns) {
  // Same attribute twice in different relations with swapped roles.
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 2}, {2, 1}}},
                                 {"R2", {{1, 9}, {2, 8}}}});
  EXPECT_EQ(CountOutputs(q.body(), q.head(), db), 2u);
}

// Property: the hash-join engine agrees with the nested-loop oracle on
// random queries and instances.
class JoinOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(JoinOracleSweep, MatchesOracle) {
  Rng rng(1000 + GetParam());
  const ConjunctiveQuery q = RandomQuery(rng, 5, 4);
  const Database db = RandomDb(q, rng, 12, 4);
  const auto got = DistinctOutputs(q.body(), q.head(), db);
  const std::set<Tuple> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set, OracleOutputs(q, db)) << q.ToString();
  EXPECT_EQ(static_cast<std::int64_t>(
                CountOutputs(q.body(), q.head(), db)),
            OracleCount(q, db));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JoinOracleSweep,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace adp
