// Selection operator support (§7.5, Lemma 12): pushdown semantics,
// end-to-end solving on selected queries, and the σθQ1 workload behaviour.

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "query/parser.h"
#include "solver/brute_force.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "workload/tpch.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleCount;

TEST(SelectionTest, SolutionsRespectPredicates) {
  // Only tuples satisfying the predicates may be deleted.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B=5)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {1, 6}, {2, 5}}}});
  // σ outputs: (1,5), (2,5).
  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.output_count, 2);
  EXPECT_EQ(sol.cost, 1);
  ASSERT_EQ(sol.tuples.size(), 1u);
  // The reported tuple must not be R2(1,6), which fails the predicate.
  EXPECT_FALSE(sol.tuples[0].relation == 1 && sol.tuples[0].row == 1);
  EXPECT_GE(sol.removed_outputs, 1);
}

TEST(SelectionTest, SelectedQueryBecomesExact) {
  // Qpath is NP-hard; pinning B with a selection makes it poly-time
  // (the residual has a vacuum-ish singleton structure).
  const ConjunctiveQuery hard =
      ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const ConjunctiveQuery selected =
      ParseQuery("Q(A,B) :- R1(A), R2(A,B=5), R3(B=5)");
  EXPECT_FALSE(IsPtime(hard));
  EXPECT_TRUE(IsPtime(selected));

  const Database db = MakeDb(
      selected,
      {{"R1", {{1}, {2}, {3}}},
       {"R2", {{1, 5}, {2, 5}, {3, 5}, {1, 6}}},
       {"R3", {{5}, {6}}}});
  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(selected, db, 3, options);
  EXPECT_TRUE(sol.exact);
  // Removing R3(5) kills all three selected outputs.
  EXPECT_EQ(sol.cost, 1);
  EXPECT_GE(sol.removed_outputs, 3);
}

TEST(SelectionTest, MatchesBruteForceOnSelectedInstances) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B=1)");
  Rng rng(61);
  for (int iter = 0; iter < 10; ++iter) {
    const Database db = testing::RandomDb(q, rng, 4, 2);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    for (std::int64_t k = 1; k <= total; ++k) {
      const auto brute = BruteForceAdp(q, db, k);
      ASSERT_TRUE(brute.has_value());
      const AdpSolution sol = ComputeAdp(q, db, k, AdpOptions{});
      EXPECT_TRUE(sol.exact);
      EXPECT_EQ(sol.cost, brute->cost) << "k=" << k;
    }
  }
}

TEST(SelectionTest, TpchSelectedWorkloadIsExactAndFeasible) {
  const TpchWorkload w = MakeTpchSelected(300, /*seed=*/7);
  EXPECT_TRUE(IsPtime(w.query));
  const std::int64_t total = static_cast<std::int64_t>(
      OracleCount(w.query, w.db));
  ASSERT_GT(total, 0);
  AdpOptions options;
  options.verify = true;
  for (double rho : {0.1, 0.5}) {
    const std::int64_t k = static_cast<std::int64_t>(rho * total);
    if (k <= 0) continue;
    const AdpSolution sol = ComputeAdp(w.query, w.db, k, options);
    EXPECT_TRUE(sol.feasible);
    EXPECT_TRUE(sol.exact);
    EXPECT_GE(sol.removed_outputs, k);
  }
}

TEST(SelectionTest, CountingOnlySkipsTuplesButKeepsCost) {
  const TpchWorkload w = MakeTpchSelected(120, /*seed=*/9);
  const std::int64_t total = static_cast<std::int64_t>(
      OracleCount(w.query, w.db));
  ASSERT_GT(total, 0);
  const std::int64_t k = total / 4 + 1;
  AdpOptions counting;
  counting.counting_only = true;
  AdpOptions reporting;
  const AdpSolution a = ComputeAdp(w.query, w.db, k, counting);
  const AdpSolution b = ComputeAdp(w.query, w.db, k, reporting);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_TRUE(a.tuples.empty());
  EXPECT_FALSE(b.tuples.empty());
}

}  // namespace
}  // namespace adp
