// Row-vs-columnar equivalence: the same logical database built through
// every construction path the columnar core offers — row-at-a-time Add,
// bulk AppendRow (the CSV ingest path), dictionary-sharing gathers
// (WithTuplesRemoved), and deep copies — must produce bit-identical ADP
// solutions: per-k costs, witness tuple lists, verification counts, and
// AdpStats. Covers the Universe, Decompose, Singleton, and selection
// dispatch shapes explicitly, then sweeps random queries/instances.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dichotomy/is_ptime.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::RandomDb;
using testing::RandomQuery;

// Rebuilds `db` row-at-a-time through Add (per-row Tuple materialization).
// Assumes `db` has identity origin maps, so the rebuild is the same root
// database (a post-Dedup instance keeps origins at pre-dedup positions and
// would NOT be reproduced this way).
Database RowBuilt(const Database& db) {
  Database out(db.num_relations());
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    const RelationInstance& in = db.rel(r);
    for (std::size_t t = 0; t < in.size(); ++t) out.rel(r).Add(in.tuple(t));
  }
  return out;
}

// Rebuilds `db` through the bulk-append path (one reused scratch buffer,
// as io/csv.cc ingests), producing fresh per-column dictionaries.
Database BulkBuilt(const Database& db) {
  Database out(db.num_relations());
  Tuple scratch;
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    const RelationInstance& in = db.rel(r);
    scratch.resize(in.arity());
    for (std::size_t t = 0; t < in.size(); ++t) {
      for (std::size_t c = 0; c < in.arity(); ++c) {
        scratch[c] = in.ValueAt(t, c);
      }
      out.rel(r).AppendRow(scratch.data(), scratch.size());
    }
  }
  return out;
}

// Rebuilds `db` through the gather path: WithTuplesRemoved with nothing
// removed yields instances that share the source dictionaries and carry
// explicit (rather than identity) origin maps.
Database GatherBuilt(const Database& db) {
  std::vector<std::vector<char>> removed(db.num_relations());
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    removed[r].assign(db.rel(r).size(), 0);
  }
  return WithTuplesRemoved(db, removed);
}

// Asserts that two solves of (q, k) over equal-content databases are
// bit-identical: objective, witness list, flags, and recursion stats.
void ExpectIdenticalSolve(const ConjunctiveQuery& q, const Database& base,
                          const Database& variant, std::int64_t k,
                          const std::string& label) {
  AdpStats base_stats, variant_stats;
  AdpOptions options;
  options.verify = true;

  options.stats = &base_stats;
  const AdpSolution want = ComputeAdp(q, base, k, options);
  options.stats = &variant_stats;
  const AdpSolution got = ComputeAdp(q, variant, k, options);

  SCOPED_TRACE(label + " k=" + std::to_string(k) + " q=" + q.ToString());
  EXPECT_EQ(got.cost, want.cost);
  EXPECT_EQ(got.exact, want.exact);
  EXPECT_EQ(got.feasible, want.feasible);
  EXPECT_EQ(got.output_count, want.output_count);
  EXPECT_EQ(got.removed_outputs, want.removed_outputs);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (std::size_t i = 0; i < want.tuples.size(); ++i) {
    EXPECT_EQ(got.tuples[i].relation, want.tuples[i].relation) << "i=" << i;
    EXPECT_EQ(got.tuples[i].row, want.tuples[i].row) << "i=" << i;
  }
  EXPECT_EQ(variant_stats, base_stats);
}

// Runs the full per-k profile comparison for every construction variant.
// `db` must have identity origin maps (see RowBuilt).
void ExpectVariantsAgree(const ConjunctiveQuery& q, const Database& db) {
  const Database rows = RowBuilt(db);
  const Database bulk = BulkBuilt(db);
  const Database gathered = GatherBuilt(db);
  const Database copied = db;  // deep code copy, copy-on-write dicts
  AdpOptions probe;
  const std::int64_t total = ComputeAdp(q, db, 0, probe).output_count;
  for (std::int64_t k = 0; k <= total + 1; ++k) {
    ExpectIdenticalSolve(q, db, rows, k, "rows");
    ExpectIdenticalSolve(q, db, bulk, k, "bulk");
    ExpectIdenticalSolve(q, db, gathered, k, "gathered");
    ExpectIdenticalSolve(q, db, copied, k, "copied");
  }
}

TEST(ColumnarEquivalenceTest, UniverseShape) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 10}, {1, 11}, {2, 10}, {3, 12}}},
                                 {"R2", {{1, 20}, {2, 21}, {2, 22}, {3, 20}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  ASSERT_GT(stats.universe_nodes, 0);  // the shape actually engages Universe
  ExpectVariantsAgree(q, db);
}

TEST(ColumnarEquivalenceTest, DecomposeShape) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}, {3}}},
                                 {"R2", {{5}, {6}, {7}, {8}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  ASSERT_GT(stats.decompose_nodes, 0);
  ExpectVariantsAgree(q, db);
}

TEST(ColumnarEquivalenceTest, SingletonShape) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db =
      MakeDb(q, {{"R1", {{1}, {2}, {3}}},
                 {"R2", {{1, 10}, {1, 11}, {2, 10}, {3, 12}, {3, 13}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  ASSERT_GT(stats.singleton_nodes, 0);
  ExpectVariantsAgree(q, db);
}

TEST(ColumnarEquivalenceTest, SelectionShape) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B=5)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}, {3}}},
                                 {"R2", {{1, 5}, {2, 5}, {2, 6}, {3, 7}}}});
  ExpectVariantsAgree(q, db);
}

// Selections whose constant never appears in the instance exercise the
// unsatisfiable-predicate fast path (dictionary Lookup miss, no scan).
TEST(ColumnarEquivalenceTest, SelectionConstantAbsentFromDictionary) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B=99)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  ExpectVariantsAgree(q, db);
}

// Property sweep: random self-join-free queries and instances; restricted
// to poly-time shapes so every construction path must agree exactly.
class ColumnarEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ColumnarEquivalenceSweep, AllConstructionPathsBitIdentical) {
  Rng rng(7000 + GetParam());
  const ConjunctiveQuery q = RandomQuery(rng, 4, 3);
  if (!IsPtime(q)) return;
  // RandomDb dedups, leaving origins at pre-dedup root positions;
  // canonicalize to identity origins so every rebuild is the same root.
  const Database db = BulkBuilt(RandomDb(q, rng, 4, 2));
  ExpectVariantsAgree(q, db);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ColumnarEquivalenceSweep,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace adp
