// Decompose solver tests (Algorithm 5): cross-product accounting, agreement
// of the three strategies (Fig 29), the root single-k fast path, and an
// oracle sweep.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/decompose.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

ConjunctiveQuery TwoParts() {
  return ParseQuery("Q(A,B) :- R1(A), R2(B)");
}

TEST(DecomposeTest, CrossProductCosts) {
  const ConjunctiveQuery q = TwoParts();
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{5}, {6}, {7}}}});
  // |Q(D)| = 6. Removing one R1 tuple removes 3 products; one R2 tuple, 2.
  AdpOptions options;
  const AdpNode node = DecomposeNode(q, db, 6, options);
  EXPECT_TRUE(node.exact);
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(3), 1);   // one R1 tuple
  EXPECT_EQ(node.profile.At(4), 2);   // R1 tuple + R2 tuple = 3+2-1 = 4? No:
  // k1=1 (R1 outputs), k2=1 (R2 outputs): removed = 1*3 + 1*2 - 1 = 4. Yes.
  EXPECT_EQ(node.profile.At(5), 2);   // 2 R1 tuples = whole factor -> 6
  EXPECT_EQ(node.profile.At(6), 2);
}

TEST(DecomposeTest, StrategiesAgreeOnOptimalCosts) {
  const ConjunctiveQuery q = ParseQuery(
      "Q(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), "
      "R31(A3), R32(A3,B3)");
  Rng rng(81);
  const Database db = RandomDb(q, rng, 4, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  const std::int64_t cap = std::min<std::int64_t>(total, 20);

  AdpOptions improved;
  AdpOptions naive;
  naive.decompose_strategy = AdpOptions::DecomposeStrategy::kPairwiseNaive;
  AdpOptions full;
  full.decompose_strategy = AdpOptions::DecomposeStrategy::kFullEnumeration;

  const AdpNode a = DecomposeNode(q, db, cap, improved);
  const AdpNode b = DecomposeNode(q, db, cap, naive);
  const AdpNode c = DecomposeNode(q, db, cap, full);
  for (std::int64_t j = 0; j <= cap; ++j) {
    EXPECT_EQ(a.profile.At(j), b.profile.At(j)) << "j=" << j;
    EXPECT_EQ(a.profile.At(j), c.profile.At(j)) << "j=" << j;
  }
}

TEST(DecomposeTest, SingleKMatchesProfile) {
  const ConjunctiveQuery q = TwoParts();
  Rng rng(83);
  for (int iter = 0; iter < 20; ++iter) {
    const Database db = RandomDb(q, rng, 5, 6);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    AdpOptions options;
    const AdpNode node = DecomposeNode(q, db, total, options);
    for (std::int64_t k = 1; k <= total; ++k) {
      const DecomposeSingleResult single =
          SolveDecomposeSingleK(q, db, k, options);
      EXPECT_EQ(single.cost, node.profile.At(k)) << "k=" << k;
      EXPECT_GE(CountRemovedOutputs(q, db, single.tuples), k);
    }
  }
}

TEST(DecomposeTest, ThreeComponentsSingleK) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A), R2(B), R3(C)");
  const Database db = MakeDb(
      q, {{"R1", {{1}, {2}}}, {"R2", {{1}, {2}}}, {"R3", {{1}, {2}}}});
  // |Q(D)| = 8; removing one tuple removes 4 products.
  AdpOptions options;
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 4, options).cost, 1);
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 5, options).cost, 2);
  // 2 tuples from different factors: 4+4-2=6; same factor: 8.
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 6, options).cost, 2);
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 7, options).cost, 2);  // whole factor
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 8, options).cost, 2);
}

class DecomposeOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeOracleSweep, OptimalForAllK) {
  Rng rng(800 + GetParam());
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B), R2(C)");
  const Database db = RandomDb(q, rng, 4, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0 || db.TotalTuples() > 12) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = DecomposeNode(q, db, total, options);
  ASSERT_TRUE(node.exact);
  for (std::int64_t k = 1; k <= total; ++k) {
    EXPECT_EQ(node.profile.At(k), OracleAdp(q, db, k)) << "k=" << k;
    const auto tuples = node.report(k);
    EXPECT_GE(CountRemovedOutputs(q, db, tuples), k);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DecomposeOracleSweep,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace adp
