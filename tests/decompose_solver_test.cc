// Decompose solver tests (Algorithm 5): cross-product accounting, agreement
// of the three strategies (Fig 29), the root single-k fast path, sharded
// component sub-solves (serial/sharded equivalence + cancellation), and an
// oracle sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "query/parser.h"
#include "solver/decompose.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

ConjunctiveQuery TwoParts() {
  return ParseQuery("Q(A,B) :- R1(A), R2(B)");
}

TEST(DecomposeTest, CrossProductCosts) {
  const ConjunctiveQuery q = TwoParts();
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{5}, {6}, {7}}}});
  // |Q(D)| = 6. Removing one R1 tuple removes 3 products; one R2 tuple, 2.
  AdpOptions options;
  const AdpNode node = DecomposeNode(q, db, 6, options);
  EXPECT_TRUE(node.exact);
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(3), 1);   // one R1 tuple
  EXPECT_EQ(node.profile.At(4), 2);   // R1 tuple + R2 tuple = 3+2-1 = 4? No:
  // k1=1 (R1 outputs), k2=1 (R2 outputs): removed = 1*3 + 1*2 - 1 = 4. Yes.
  EXPECT_EQ(node.profile.At(5), 2);   // 2 R1 tuples = whole factor -> 6
  EXPECT_EQ(node.profile.At(6), 2);
}

TEST(DecomposeTest, StrategiesAgreeOnOptimalCosts) {
  const ConjunctiveQuery q = ParseQuery(
      "Q(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), "
      "R31(A3), R32(A3,B3)");
  Rng rng(81);
  const Database db = RandomDb(q, rng, 4, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  const std::int64_t cap = std::min<std::int64_t>(total, 20);

  AdpOptions improved;
  AdpOptions naive;
  naive.decompose_strategy = AdpOptions::DecomposeStrategy::kPairwiseNaive;
  AdpOptions full;
  full.decompose_strategy = AdpOptions::DecomposeStrategy::kFullEnumeration;

  const AdpNode a = DecomposeNode(q, db, cap, improved);
  const AdpNode b = DecomposeNode(q, db, cap, naive);
  const AdpNode c = DecomposeNode(q, db, cap, full);
  for (std::int64_t j = 0; j <= cap; ++j) {
    EXPECT_EQ(a.profile.At(j), b.profile.At(j)) << "j=" << j;
    EXPECT_EQ(a.profile.At(j), c.profile.At(j)) << "j=" << j;
  }
}

TEST(DecomposeTest, SingleKMatchesProfile) {
  const ConjunctiveQuery q = TwoParts();
  Rng rng(83);
  for (int iter = 0; iter < 20; ++iter) {
    const Database db = RandomDb(q, rng, 5, 6);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    AdpOptions options;
    const AdpNode node = DecomposeNode(q, db, total, options);
    for (std::int64_t k = 1; k <= total; ++k) {
      const DecomposeSingleResult single =
          SolveDecomposeSingleK(q, db, k, options);
      EXPECT_EQ(single.cost, node.profile.At(k)) << "k=" << k;
      EXPECT_GE(CountRemovedOutputs(q, db, single.tuples), k);
    }
  }
}

TEST(DecomposeTest, ThreeComponentsSingleK) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A), R2(B), R3(C)");
  const Database db = MakeDb(
      q, {{"R1", {{1}, {2}}}, {"R2", {{1}, {2}}}, {"R3", {{1}, {2}}}});
  // |Q(D)| = 8; removing one tuple removes 4 products.
  AdpOptions options;
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 4, options).cost, 1);
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 5, options).cost, 2);
  // 2 tuples from different factors: 4+4-2=6; same factor: 8.
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 6, options).cost, 2);
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 7, options).cost, 2);  // whole factor
  EXPECT_EQ(SolveDecomposeSingleK(q, db, 8, options).cost, 2);
}

// Sharding the component sub-solves across an executor must not change any
// profile entry, witness, or recursion statistic: children land at fixed
// fold-order indices and the cross-product DP runs on the caller exactly as
// in the sequential path. Property-tested over randomly generated instances
// of multi-component query shapes (2..4 components, mixed sub-solver cases).
TEST(DecomposeTest, ShardedComponentsMatchSequential) {
  ThreadPool pool(4);
  Parallelism par;
  par.min_components = 2;
  par.min_groups = 0;  // isolate the Decompose axis (stats compared below)
  par.run_all = [&pool](std::vector<std::function<void()>> tasks) {
    pool.RunAll(std::move(tasks));
  };

  const char* shapes[] = {
      "Q(A,B) :- R1(A), R2(B)",
      "Q(A,B,C) :- R1(A,B), R2(C)",
      "Q(A,B,C) :- R1(A), R2(B), R3(C)",
      "Q(A,B,C,E) :- R1(A), R2(A,B), R3(C), R4(C,E)",
      "Q(A,B,C,E) :- R1(A), R2(B), R3(C), R4(E)",
  };
  Rng rng(85);
  int sharded_nodes = 0;
  for (const char* text : shapes) {
    const ConjunctiveQuery q = ParseQuery(text);
    for (int iter = 0; iter < 8; ++iter) {
      const Database db = RandomDb(q, rng, 4, 3);
      const std::int64_t total = OracleCount(q, db);
      if (total == 0) continue;
      const std::int64_t cap = std::min<std::int64_t>(total, 24);

      AdpOptions sequential;
      AdpStats seq_stats;
      sequential.stats = &seq_stats;
      const AdpNode a = DecomposeNode(q, db, cap, sequential);

      AdpOptions sharded = sequential;
      AdpStats shard_stats;
      sharded.stats = &shard_stats;
      sharded.parallelism = &par;
      const AdpNode b = DecomposeNode(q, db, cap, sharded);

      for (std::int64_t j = 0; j <= cap; ++j) {
        ASSERT_EQ(a.profile.At(j), b.profile.At(j))
            << text << " iter " << iter << " j " << j;
      }
      EXPECT_EQ(a.exact, b.exact);
      for (std::int64_t j = 1; j <= cap; ++j) {
        EXPECT_EQ(a.report(j), b.report(j))
            << text << " iter " << iter << " j " << j;
      }

      // The root single-target fast path shards its BuildChildren too.
      for (std::int64_t k = 1; k <= cap; k += 3) {
        const DecomposeSingleResult sa =
            SolveDecomposeSingleK(q, db, k, sequential);
        const DecomposeSingleResult sb =
            SolveDecomposeSingleK(q, db, k, sharded);
        EXPECT_EQ(sa.cost, sb.cost) << text << " iter " << iter << " k " << k;
        EXPECT_EQ(sa.tuples, sb.tuples)
            << text << " iter " << iter << " k " << k;
      }

      sharded_nodes += shard_stats.sharded_decompose_nodes;
      EXPECT_EQ(seq_stats.sharded_decompose_nodes, 0);
      // Sharding must not perturb the recursion accounting: every AdpStats
      // field agrees (also guards MergeAdpStats against dropping a field).
      EXPECT_EQ(seq_stats.boolean_nodes, shard_stats.boolean_nodes) << text;
      EXPECT_EQ(seq_stats.boolean_fallbacks, shard_stats.boolean_fallbacks)
          << text;
      EXPECT_EQ(seq_stats.singleton_nodes, shard_stats.singleton_nodes)
          << text;
      EXPECT_EQ(seq_stats.universe_nodes, shard_stats.universe_nodes) << text;
      EXPECT_EQ(seq_stats.universe_groups, shard_stats.universe_groups)
          << text;
      EXPECT_EQ(seq_stats.greedy_leaves, shard_stats.greedy_leaves) << text;
      EXPECT_EQ(seq_stats.drastic_leaves, shard_stats.drastic_leaves) << text;
      EXPECT_EQ(seq_stats.sharded_universe_nodes,
                shard_stats.sharded_universe_nodes)
          << text;
      // decompose_nodes: the SolveDecomposeSingleK probes above bump the
      // counter identically for both options structs, so plain equality
      // still must hold.
      EXPECT_EQ(seq_stats.decompose_nodes, shard_stats.decompose_nodes)
          << text;
    }
  }
  // The shapes all have >= 2 components: sharding must actually engage.
  EXPECT_GT(sharded_nodes, 0);
}

// Parallelism::min_components == 0 must disable the Decompose axis even
// when an executor is wired up.
TEST(DecomposeTest, ZeroMinComponentsDisablesSharding) {
  Parallelism par;
  par.min_components = 0;
  std::atomic<int> fanouts{0};
  par.run_all = [&](std::vector<std::function<void()>> tasks) {
    ++fanouts;
    for (auto& t : tasks) t();
  };
  const ConjunctiveQuery q = TwoParts();
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{5}, {6}}}});
  AdpOptions options;
  AdpStats stats;
  options.stats = &stats;
  options.parallelism = &par;
  const AdpNode node = DecomposeNode(q, db, 4, options);
  EXPECT_EQ(node.profile.At(2), 1);
  EXPECT_EQ(fanouts.load(), 0);
  EXPECT_EQ(stats.sharded_decompose_nodes, 0);
}

// A cancel landing mid-fan-out stops the remaining component sub-solves at
// their node boundary: deterministic run_all that cancels after the first
// component; every later shard must abort before doing its work.
TEST(DecomposeTest, CancelMidComponentStopsShardedSubSolves) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E) :- R1(A), R2(B), R3(C), R4(E)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1}, {2}}},
                                 {"R3", {{1}, {2}}},
                                 {"R4", {{1}, {2}}}});

  const CancelToken token = CancelToken::Make();
  std::atomic<int> ran{0};
  Parallelism par;
  par.min_components = 2;
  par.run_all = [&](std::vector<std::function<void()>> tasks) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i]();
      ++ran;
      if (i == 0) token.Cancel();
    }
  };

  AdpOptions options;
  options.cancel = &token;
  options.parallelism = &par;
  try {
    // Root-path entry (ComputeAdp classifies this query as Decompose and
    // takes the single-k fast path); the sharded BuildChildren is shared
    // with DecomposeNode.
    ComputeAdp(q, db, 6, options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
  // All tasks were invoked (run_all contract) but only the first solved.
  EXPECT_EQ(ran.load(), 4);
}

class DecomposeOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeOracleSweep, OptimalForAllK) {
  Rng rng(800 + GetParam());
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B), R2(C)");
  const Database db = RandomDb(q, rng, 4, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0 || db.TotalTuples() > 12) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = DecomposeNode(q, db, total, options);
  ASSERT_TRUE(node.exact);
  for (std::int64_t k = 1; k <= total; ++k) {
    EXPECT_EQ(node.profile.At(k), OracleAdp(q, db, k)) << "k=" << k;
    const auto tuples = node.report(k);
    EXPECT_GE(CountRemovedOutputs(q, db, tuples), k);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DecomposeOracleSweep,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace adp
