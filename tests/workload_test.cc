// Workload generator tests: shapes, sizes, determinism, and the dichotomy
// status each bench relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "dichotomy/is_ptime.h"
#include "relational/join.h"
#include "workload/egonet.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"
#include "workload/zipf_data.h"

namespace adp {
namespace {

TEST(TpchTest, HardWorkloadShape) {
  const TpchWorkload w = MakeTpchHard(3000, 1);
  EXPECT_EQ(w.db.num_relations(), 3u);
  EXPECT_FALSE(w.query.HasSelections());
  EXPECT_FALSE(IsPtime(w.query));
  // Roughly n/3 per relation (dedup may trim a little).
  EXPECT_NEAR(static_cast<double>(w.db.rel(0).size()), 1000.0, 50.0);
  EXPECT_GT(CountOutputs(w.query.body(), w.query.head(), w.db), 0u);
}

TEST(TpchTest, SelectedWorkloadShape) {
  const TpchWorkload w = MakeTpchSelected(3000, 2);
  EXPECT_TRUE(w.query.HasSelections());
  EXPECT_TRUE(IsPtime(w.query));
  EXPECT_GT(CountOutputs(w.query.body(), w.query.head(), w.db), 0u);
}

TEST(TpchTest, Deterministic) {
  const TpchWorkload a = MakeTpchHard(600, 9);
  const TpchWorkload b = MakeTpchHard(600, 9);
  ASSERT_EQ(a.db.rel(1).size(), b.db.rel(1).size());
  for (std::size_t i = 0; i < a.db.rel(1).size(); ++i) {
    EXPECT_EQ(a.db.rel(1).tuple(i), b.db.rel(1).tuple(i));
  }
  const TpchWorkload c = MakeTpchHard(600, 10);
  bool differs = a.db.rel(1).size() != c.db.rel(1).size();
  for (std::size_t i = 0; !differs && i < a.db.rel(1).size(); ++i) {
    differs = a.db.rel(1).tuple(i) != c.db.rel(1).tuple(i);
  }
  EXPECT_TRUE(differs);
}

TEST(EgonetTest, PaperScale) {
  const EgonetTables t = MakePaperEgonet(3);
  EXPECT_EQ(t.num_nodes, 150);
  // Edge split into 4 tables, bi-directed.
  EXPECT_EQ(t.tables.size(), 4u);
  EXPECT_NEAR(static_cast<double>(t.num_directed_edges), 3386.0, 200.0);
  std::int64_t sum = 0;
  for (const auto& table : t.tables) {
    sum += static_cast<std::int64_t>(table.size());
  }
  EXPECT_EQ(sum, t.num_directed_edges);
}

TEST(EgonetTest, QueriesEvaluate) {
  const EgonetTables t = MakeEgonet(40, 4, 300, 5);
  for (const ConjunctiveQuery& q :
       {MakeQ2(), MakeQ3(), MakeQ4(), MakeQ5()}) {
    const Database db = MakeEdgeDatabase(q, t);
    EXPECT_EQ(db.num_relations(), static_cast<std::size_t>(
                                      q.num_relations()));
    EXPECT_GT(CountOutputs(q.body(), q.head(), db), 0u) << q.ToString();
    EXPECT_FALSE(IsPtime(q)) << q.ToString();
  }
}

TEST(ZipfTest, SkewShrinksDistinctHeavyKeys) {
  const ConjunctiveQuery q = MakeQPath();
  const Database uniform = MakeZipfDatabase(q, 2000, 0.0, 7);
  const Database skewed = MakeZipfDatabase(q, 2000, 1.0, 7);
  // Under skew the heaviest A-value holds far more pairs.
  auto max_degree = [&](const Database& db) {
    std::map<Value, int> deg;
    int best = 0;
    for (std::size_t i = 0; i < db.rel(1).size(); ++i) {
      best = std::max(best, ++deg[db.rel(1).tuple(i)[0]]);
    }
    return best;
  };
  EXPECT_GT(max_degree(skewed), 2 * max_degree(uniform));
}

TEST(ZipfTest, RelationsConsistent) {
  const ConjunctiveQuery q = MakeQPath();
  const Database db = MakeZipfDatabase(q, 500, 0.5, 11);
  // R1 holds exactly the distinct A values of R2; R3 the distinct B values.
  std::set<Value> avals, bvals;
  for (std::size_t i = 0; i < db.rel(1).size(); ++i) {
    avals.insert(db.rel(1).tuple(i)[0]);
    bvals.insert(db.rel(1).tuple(i)[1]);
  }
  EXPECT_EQ(db.rel(0).size(), avals.size());
  EXPECT_EQ(db.rel(2).size(), bvals.size());
}

TEST(ZipfTest, Q6IsEasyQPathIsHard) {
  EXPECT_TRUE(IsPtime(MakeQ6()));
  EXPECT_FALSE(IsPtime(MakeQPath()));
}

TEST(SyntheticTest, Q7Q8AreEasy) {
  EXPECT_TRUE(IsPtime(MakeQ7()));
  EXPECT_TRUE(IsPtime(MakeQ8()));
}

TEST(SyntheticTest, UniformSizesRespected) {
  const ConjunctiveQuery q = MakeQ8();
  const Database db = MakeUniformDatabase(q, {25, 50}, 100, 13);
  // Alternating sizes 25/50 per §8.5.
  EXPECT_LE(db.rel(0).size(), 25u);
  EXPECT_LE(db.rel(1).size(), 50u);
  EXPECT_GT(db.rel(0).size(), 10u);  // dedup shouldn't decimate
  EXPECT_GT(CountOutputs(q.body(), q.head(), db), 0u);
}

TEST(SyntheticTest, DomainBounds) {
  const ConjunctiveQuery q = MakeQ7();
  const Database db = MakeUniformDatabase(q, {50}, 10, 17);
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    for (std::size_t t = 0; t < db.rel(r).size(); ++t) {
      for (Value v : db.rel(r).tuple(t)) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 10);
      }
    }
  }
}

}  // namespace
}  // namespace adp
