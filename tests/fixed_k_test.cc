// Tests for the §3.3 fixed-k special case: exact on full CQs for small k,
// validated against exhaustive search, including NP-hard queries where the
// general solver is only a heuristic.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/compute_adp.h"
#include "solver/fixed_k.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

TEST(FixedKTest, RejectsNonFullQueries) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B)");
  Database db(1);
  db.Load(0, {{1, 2}});
  EXPECT_FALSE(SolveFixedKFullCq(q, db, 1).has_value());
}

TEST(FixedKTest, RejectsTooLargeK) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A)");
  Database db(1);
  db.Load(0, {{1}, {2}});
  EXPECT_FALSE(SolveFixedKFullCq(q, db, 1, /*max_k=*/0).has_value());
  EXPECT_FALSE(SolveFixedKFullCq(q, db, 3).has_value());  // k > |Q(D)|
}

TEST(FixedKTest, SingleOutputNeedsOneTuple) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Database db(3);
  db.Load(0, {{1}, {2}});
  db.Load(1, {{1, 5}, {2, 5}});
  db.Load(2, {{5}});
  const auto sol = SolveFixedKFullCq(q, db, 1);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cost, 1);
  EXPECT_TRUE(sol->exact);
}

TEST(FixedKTest, SharedTupleCoversTwoOutputs) {
  // Both outputs go through R3(5): k=2 costs one deletion.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Database db(3);
  db.Load(0, {{1}, {2}});
  db.Load(1, {{1, 5}, {2, 5}});
  db.Load(2, {{5}});
  const auto sol = SolveFixedKFullCq(q, db, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cost, 1);
  ASSERT_EQ(sol->tuples.size(), 1u);
  EXPECT_EQ(sol->tuples[0].relation, 2);
}

// Property: fixed-k equals the exhaustive optimum on the NP-hard Qpath —
// exactly the poly-time special case the paper highlights in §3.3.
class FixedKOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedKOracleSweep, MatchesOracleForSmallK) {
  Rng rng(12000 + GetParam());
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = RandomDb(q, rng, 6, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0 || db.TotalTuples() > 14) GTEST_SKIP();
  for (std::int64_t k = 1; k <= std::min<std::int64_t>(3, total); ++k) {
    const auto sol = SolveFixedKFullCq(q, db, k);
    ASSERT_TRUE(sol.has_value()) << "k=" << k;
    EXPECT_EQ(sol->cost, OracleAdp(q, db, k)) << "k=" << k;
    EXPECT_GE(CountRemovedOutputs(q, db, sol->tuples), k) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FixedKOracleSweep,
                         ::testing::Range(0, 15));

TEST(FixedKTest, BeatsHeuristicWhereGreedyIsMyopic) {
  // Greedy can overpay on adversarial instances; fixed-k never does.
  Rng rng(321);
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  int compared = 0;
  for (int iter = 0; iter < 30 && compared < 10; ++iter) {
    const Database db = RandomDb(q, rng, 6, 3);
    const std::int64_t total = OracleCount(q, db);
    if (total < 2 || db.TotalTuples() > 14) continue;
    ++compared;
    const std::int64_t k = 2;
    const auto exact = SolveFixedKFullCq(q, db, k);
    ASSERT_TRUE(exact.has_value());
    const AdpSolution greedy = ComputeAdp(q, db, k, AdpOptions{});
    EXPECT_LE(exact->cost, greedy.cost);
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace adp
