// ConjunctiveQuery model tests: catalogs, heads, derived properties, and the
// query graph.

#include <gtest/gtest.h>

#include "query/graph.h"
#include "query/parser.h"
#include "query/query.h"

namespace adp {
namespace {

TEST(QueryTest, AttributeInterning) {
  ConjunctiveQuery q;
  const AttrId a = q.AddAttribute("A");
  const AttrId b = q.AddAttribute("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(q.AddAttribute("A"), a);  // reuse
  EXPECT_EQ(q.FindAttribute("B"), b);
  EXPECT_EQ(q.FindAttribute("Z"), -1);
  EXPECT_EQ(q.num_attributes(), 2);
}

TEST(QueryTest, BooleanFullAndProjection) {
  const ConjunctiveQuery boolean = ParseQuery("Q() :- R1(A), R2(A,B)");
  EXPECT_TRUE(boolean.IsBoolean());
  EXPECT_FALSE(boolean.IsFull());

  const ConjunctiveQuery full = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  EXPECT_FALSE(full.IsBoolean());
  EXPECT_TRUE(full.IsFull());

  const ConjunctiveQuery proj = ParseQuery("Q(A) :- R1(A), R2(A,B)");
  EXPECT_FALSE(proj.IsBoolean());
  EXPECT_FALSE(proj.IsFull());
}

TEST(QueryTest, UniversalAttrs) {
  // A occurs everywhere and is output: universal. B occurs everywhere but
  // is not output: not universal.
  const ConjunctiveQuery q =
      ParseQuery("Q(A) :- R1(A,B), R2(A,B,C), R3(A,B)");
  const AttrId a = q.FindAttribute("A");
  EXPECT_EQ(q.UniversalAttrs(), AttrSet::Of(a));
}

TEST(QueryTest, NoUniversalWhenMissingFromOneRelation) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  // A is in both and output -> universal; B missing from R1.
  EXPECT_EQ(q.UniversalAttrs(), AttrSet::Of(q.FindAttribute("A")));
}

TEST(QueryTest, VacuumDetection) {
  EXPECT_TRUE(ParseQuery("Q(A) :- R1(A), R2()").HasVacuumRelation());
  EXPECT_FALSE(ParseQuery("Q(A) :- R1(A)").HasVacuumRelation());
}

TEST(QueryTest, RelationsWith) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  EXPECT_EQ(q.RelationsWith(q.FindAttribute("A")), (std::vector<int>{0, 1}));
  EXPECT_EQ(q.RelationsWith(q.FindAttribute("B")), (std::vector<int>{1, 2}));
}

TEST(QueryTest, SelectionsTracked) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2(A,B=7)");
  EXPECT_TRUE(q.HasSelections());
  EXPECT_EQ(q.SelectedAttrs(), AttrSet::Of(q.FindAttribute("B")));
  EXPECT_EQ(q.selections()[1].size(), 1u);
  EXPECT_EQ(q.selections()[1][0].value, 7);
}

TEST(QueryTest, ToStringRoundTripsThroughParser) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C=5)");
  const ConjunctiveQuery q2 = ParseQuery(q.ToString());
  EXPECT_EQ(q2.num_relations(), q.num_relations());
  EXPECT_EQ(q2.head(), q.head());
  EXPECT_EQ(q2.SelectedAttrs(), q.SelectedAttrs());
}

TEST(GraphTest, ConnectedComponents) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A), R2(A,B), R3(C), R4(C)");
  const auto comps = ConnectedComponents(q);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{2, 3}));
  EXPECT_FALSE(IsConnected(q));
}

TEST(GraphTest, SingleRelationIsConnected) {
  EXPECT_TRUE(IsConnected(ParseQuery("Q(A) :- R1(A)")));
}

TEST(GraphTest, ExampleFourDecomposition) {
  // Example 4: Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)
  // splits into {R1,R3,R4} and {R2,R5}.
  const ConjunctiveQuery q = ParseQuery(
      "Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)");
  const auto comps = ConnectedComponents(q);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(comps[1], (std::vector<int>{1, 4}));
}

TEST(GraphTest, ConnectedViaRespectsForbiddenAttrs) {
  // R1(A,B), R2(B,C), R3(C,A): paths exist, but forbidding B cuts R1-R2
  // adjacency (they reconnect through R3 via A and C).
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const AttrSet all = q.all_attrs();
  const AttrId b = q.FindAttribute("B");
  EXPECT_TRUE(ConnectedVia(q, 0, 1, all));
  EXPECT_TRUE(ConnectedVia(q, 0, 1, all.Minus(AttrSet::Of(b))));
  // Forbidding attrs of R3 = {C,A} leaves only B: R1-R2 connect directly.
  const AttrSet only_b = AttrSet::Of(b);
  EXPECT_TRUE(ConnectedVia(q, 0, 1, only_b));
  // But R1 and R3 share only A and C, both forbidden.
  EXPECT_FALSE(ConnectedVia(q, 0, 2, only_b));
}

TEST(GraphTest, ComponentsViaSplitsOnForbidden) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const AttrId a = q.FindAttribute("A");
  // Allowing only A: {R1,R2} vs {R3}.
  const auto comps = ComponentsVia(q, AttrSet::Of(a));
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{2}));
}

TEST(GraphTest, VacuumRelationIsIsolated) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  EXPECT_EQ(ConnectedComponents(q).size(), 2u);
}

}  // namespace
}  // namespace adp
