// Singleton solver tests (Algorithm 3): both cases, profile shape,
// reporting, and an oracle sweep.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/singleton.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

TEST(SingletonDetectTest, RecognizesShapes) {
  int which = -1;
  // Case 1: attr(R1) ⊆ head.
  EXPECT_TRUE(
      IsSingletonQuery(ParseQuery("Q(A,B) :- R1(A), R2(A,B)"), &which));
  EXPECT_EQ(which, 0);
  // Case 2: head ⊆ attr(Ri) (boolean-ish heads).
  EXPECT_TRUE(IsSingletonQuery(ParseQuery("Q(A) :- R1(A,B), R2(A,B,C)"),
                               &which));
  EXPECT_EQ(which, 0);
  // Vacuum relation always qualifies.
  EXPECT_TRUE(IsSingletonQuery(ParseQuery("Q(A) :- R1(A), R2()"), &which));
  EXPECT_EQ(which, 1);
  // Not singleton: minimum relation not contained in all others.
  EXPECT_FALSE(
      IsSingletonQuery(ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)"),
                       nullptr));
  // Not singleton: head incomparable with attr(Ri).
  EXPECT_FALSE(
      IsSingletonQuery(ParseQuery("Q(B) :- R1(A), R2(A,B)"), nullptr));
}

TEST(SingletonCase1Test, ProfitsSortedGreedily) {
  // Q6-like: profit of R1(a) = #outputs with A=a.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(
      q, {{"R1", {{1}, {2}, {3}}},
          {"R2", {{1, 9}, {1, 8}, {1, 7}, {2, 9}, {3, 9}, {3, 8}}}});
  AdpOptions options;
  const AdpNode node = SingletonNode(q, db, 6, options);
  EXPECT_TRUE(node.exact);
  // Profits: R1(1)=3, R1(3)=2, R1(2)=1.
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(3), 1);
  EXPECT_EQ(node.profile.At(4), 2);
  EXPECT_EQ(node.profile.At(5), 2);
  EXPECT_EQ(node.profile.At(6), 3);
  // Unit-cost items with nonincreasing profits: eligible for the greedy
  // disjoint-union merge, though not convex in the cost sense.
  EXPECT_TRUE(node.profile.HasConcaveGains());
  EXPECT_FALSE(node.profile.IsConvex());
  // Reporting: removing >= 4 outputs takes R1(1) and R1(3).
  const auto tuples = node.report(4);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(CountRemovedOutputs(q, db, tuples), 5);
}

TEST(SingletonCase2Test, CheapestOutputsFirst) {
  // head ⊆ attr(R1): Q(A) :- R1(A,B), R2(A,B,C). Outputs = distinct A among
  // joining tuples; cost of killing output a = #R1 tuples with that a.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B), R2(A,B,C)");
  const Database db = MakeDb(
      q, {{"R1", {{1, 5}, {1, 6}, {2, 5}, {3, 5}, {3, 6}, {3, 7}}},
          {"R2",
           {{1, 5, 0}, {1, 6, 0}, {2, 5, 0}, {3, 5, 0}, {3, 6, 0},
            {3, 7, 0}}}});
  AdpOptions options;
  const AdpNode node = SingletonNode(q, db, 3, options);
  EXPECT_TRUE(node.exact);
  // Costs per output: a=2 -> 1, a=1 -> 2, a=3 -> 3.
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(2), 3);
  EXPECT_EQ(node.profile.At(3), 6);
  // Ascending group costs: convex, but not unit-cost items.
  EXPECT_TRUE(node.profile.IsConvex());
  EXPECT_FALSE(node.profile.HasConcaveGains());
  const auto tuples = node.report(2);
  EXPECT_EQ(tuples.size(), 3u);
  EXPECT_EQ(CountRemovedOutputs(q, db, tuples), 2);
}

TEST(SingletonCase2Test, DanglingTuplesIgnored) {
  // R1(1,6) has no R2 partner: it dangles, so killing output A=1 costs one
  // deletion, not two (Algorithm 3, line 9).
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B), R2(A,B,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 5}, {1, 6}, {2, 5}}},
                                 {"R2", {{1, 5, 0}, {2, 5, 0}}}});
  AdpOptions options;
  const AdpNode node = SingletonNode(q, db, 2, options);
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(2), 2);
}

TEST(SingletonVacuumTest, SingleTupleKillsEverything) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}, {3}});
  db.rel(1).Add({});
  AdpOptions options;
  const AdpNode node = SingletonNode(q, db, 3, options);
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(3), 1);
  const auto tuples = node.report(3);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].relation, 1);
}

// Oracle sweep: singleton solutions are optimal for every feasible k.
class SingletonOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(SingletonOracleSweep, OptimalForAllK) {
  Rng rng(600 + GetParam());
  const bool case1 = GetParam() % 2 == 0;
  const ConjunctiveQuery q =
      case1 ? ParseQuery("Q(A,B) :- R1(A), R2(A,B)")
            : ParseQuery("Q(A) :- R1(A,B), R2(A,B,C)");
  const Database db = RandomDb(q, rng, 8, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = SingletonNode(q, db, total, options);
  for (std::int64_t k = 1; k <= total; ++k) {
    EXPECT_EQ(node.profile.At(k), OracleAdp(q, db, k))
        << q.ToString() << " k=" << k;
    const auto tuples = node.report(k);
    EXPECT_GE(CountRemovedOutputs(q, db, tuples), k);
    EXPECT_EQ(static_cast<std::int64_t>(tuples.size()), node.profile.At(k));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SingletonOracleSweep,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace adp
