// Unit tests for relational/: schemas, instances, origin tracking, the
// columnar storage surface (dictionaries, views, gathers, capacity), and
// database helpers.

#include <gtest/gtest.h>

#include <cstdint>

#include "relational/database.h"
#include "relational/relation.h"

namespace adp {
namespace {

TEST(RelationSchemaTest, AttrSetAndColumns) {
  RelationSchema s{"R", {2, 0, 5}};
  EXPECT_EQ(s.attr_set(), AttrSet({0, 2, 5}));
  EXPECT_EQ(s.ColumnOf(2), 0);
  EXPECT_EQ(s.ColumnOf(0), 1);
  EXPECT_EQ(s.ColumnOf(5), 2);
  EXPECT_EQ(s.ColumnOf(7), -1);
  EXPECT_FALSE(s.vacuum());
}

TEST(RelationSchemaTest, Vacuum) {
  RelationSchema s{"V", {}};
  EXPECT_TRUE(s.vacuum());
  EXPECT_TRUE(s.attr_set().Empty());
}

TEST(RelationInstanceTest, IdentityOrigins) {
  RelationInstance r;
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.OriginOf(0), 0u);
  EXPECT_EQ(r.OriginOf(1), 1u);
}

TEST(RelationInstanceTest, ExplicitOrigins) {
  RelationInstance r;
  r.AddWithOrigin({1}, 7);
  r.AddWithOrigin({2}, 9);
  EXPECT_EQ(r.OriginOf(0), 7u);
  EXPECT_EQ(r.OriginOf(1), 9u);
}

TEST(RelationInstanceTest, MixedAddPromotesIdentity) {
  RelationInstance r;
  r.Add({1});
  r.Add({2});
  r.AddWithOrigin({3}, 42);
  EXPECT_EQ(r.OriginOf(0), 0u);
  EXPECT_EQ(r.OriginOf(1), 1u);
  EXPECT_EQ(r.OriginOf(2), 42u);
}

TEST(RelationInstanceTest, DedupKeepsFirstOrigin) {
  RelationInstance r;
  r.AddWithOrigin({1, 1}, 10);
  r.AddWithOrigin({2, 2}, 11);
  r.AddWithOrigin({1, 1}, 12);  // duplicate content
  r.Dedup();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0), Tuple({1, 1}));
  EXPECT_EQ(r.OriginOf(0), 10u);
  EXPECT_EQ(r.OriginOf(1), 11u);
}

TEST(RelationInstanceTest, DedupNoopWhenDistinct) {
  RelationInstance r;
  r.Add({1});
  r.Add({2});
  r.Dedup();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.OriginOf(1), 1u);  // identity preserved
}

TEST(RelationInstanceTest, ColumnarAccessorsAgree) {
  RelationInstance r;
  r.Add({1, 10});
  r.Add({2, 10});
  r.Add({1, 20});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.ValueAt(1, 0), 2);
  EXPECT_EQ(r.ValueAt(2, 1), 20);
  // tuple() materialization and the zero-copy view agree.
  EXPECT_EQ(r.tuple(2), Tuple({1, 20}));
  const TupleView v = r.view(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.ToTuple(), Tuple({1, 20}));
  EXPECT_EQ(v.row(), 2u);
  // Equal values share a code within a column; distinct values differ.
  EXPECT_EQ(r.CodeAt(0, 0), r.CodeAt(2, 0));
  EXPECT_NE(r.CodeAt(0, 0), r.CodeAt(1, 0));
}

TEST(RelationInstanceTest, DictionaryStatsAreExactDistinctCounts) {
  RelationInstance r;
  r.Add({1, 10});
  r.Add({2, 10});
  r.Add({1, 20});
  EXPECT_EQ(r.DistinctInColumn(0), 2u);  // {1, 2}
  EXPECT_EQ(r.DistinctInColumn(1), 2u);  // {10, 20}
  EXPECT_EQ(r.dict(0).size(), 2u);
  EXPECT_EQ(r.dict(0).Lookup(2), r.CodeAt(1, 0));
  EXPECT_EQ(r.dict(0).Lookup(999), -1);
}

TEST(RelationInstanceTest, AppendGatheredSharesDictsAndCarriesOrigins) {
  RelationInstance src;
  src.Add({1, 10, 100});
  src.Add({2, 20, 200});
  src.Add({3, 30, 300});

  RelationInstance derived;
  derived.set_root_relation(5);
  derived.AppendGathered(src, {2, 0}, {0, 2});  // rows 2,0; cols 0,2
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_EQ(derived.tuple(0), Tuple({3, 300}));
  EXPECT_EQ(derived.tuple(1), Tuple({1, 100}));
  EXPECT_EQ(derived.OriginOf(0), 2u);
  EXPECT_EQ(derived.OriginOf(1), 0u);
  // The gather shared src's dictionaries: codes stay comparable.
  EXPECT_EQ(derived.CodeAt(0, 0), src.CodeAt(2, 0));
  // Appending to the derived instance copy-on-writes the shared dictionary:
  // the source's stats are unaffected.
  derived.Add({4, 400});
  EXPECT_EQ(src.DistinctInColumn(0), 3u);
  EXPECT_EQ(derived.DistinctInColumn(0), 4u);
}

TEST(RelationInstanceTest, CopyIsDeepForCodesAndCowForDicts) {
  RelationInstance a;
  a.Add({1});
  a.Add({2});
  RelationInstance b = a;
  b.Add({3});
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.DistinctInColumn(0), 2u);  // untouched by b's append
  EXPECT_EQ(b.DistinctInColumn(0), 3u);
  EXPECT_EQ(b.tuple(2), Tuple({3}));
}

TEST(RelationInstanceTest, AddPastMaxRowsThrows) {
  const std::uint64_t previous = RelationInstance::OverrideMaxRowsForTest(2);
  RelationInstance r;
  r.Add({1});
  r.Add({2});
  EXPECT_THROW(r.Add({3}), TupleLimitError);
  EXPECT_THROW(r.AddWithOrigin({3}, 0), TupleLimitError);
  const Value row[] = {3};
  EXPECT_THROW(r.AppendRow(row, 1), TupleLimitError);
  RelationInstance gathered;
  EXPECT_THROW(gathered.AppendGathered(r, {0, 1, 0}), TupleLimitError);
  EXPECT_EQ(r.size(), 2u);  // failed appends left the instance untouched
  RelationInstance::OverrideMaxRowsForTest(previous);
  r.Add({3});  // ceiling restored
  EXPECT_EQ(r.size(), 3u);
}

TEST(DatabaseTest, RootRelationsNumbered) {
  Database db(3);
  EXPECT_EQ(db.num_relations(), 3u);
  EXPECT_EQ(db.rel(0).root_relation(), 0);
  EXPECT_EQ(db.rel(2).root_relation(), 2);
}

TEST(DatabaseTest, TotalTuples) {
  Database db(2);
  db.Load(0, {{1}, {2}});
  db.Load(1, {{1, 2}});
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(DatabaseTest, WithTuplesRemoved) {
  Database db(2);
  db.Load(0, {{1}, {2}, {3}});
  db.Load(1, {{4, 4}});
  std::vector<std::vector<char>> removed = {{0, 1, 0}, {0}};
  const Database after = WithTuplesRemoved(db, removed);
  EXPECT_EQ(after.rel(0).size(), 2u);
  EXPECT_EQ(after.rel(0).tuple(0), Tuple({1}));
  EXPECT_EQ(after.rel(0).tuple(1), Tuple({3}));
  // Origins must point at the root rows, not be renumbered.
  EXPECT_EQ(after.rel(0).OriginOf(1), 2u);
  EXPECT_EQ(after.rel(1).size(), 1u);
}

TEST(DatabaseTest, VacuumInstance) {
  Database db(1);
  db.rel(0).Add({});
  EXPECT_EQ(db.rel(0).size(), 1u);
  EXPECT_TRUE(db.rel(0).tuple(0).empty());
}

}  // namespace
}  // namespace adp
