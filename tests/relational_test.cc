// Unit tests for relational/: schemas, instances, origin tracking, database.

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/relation.h"

namespace adp {
namespace {

TEST(RelationSchemaTest, AttrSetAndColumns) {
  RelationSchema s{"R", {2, 0, 5}};
  EXPECT_EQ(s.attr_set(), AttrSet({0, 2, 5}));
  EXPECT_EQ(s.ColumnOf(2), 0);
  EXPECT_EQ(s.ColumnOf(0), 1);
  EXPECT_EQ(s.ColumnOf(5), 2);
  EXPECT_EQ(s.ColumnOf(7), -1);
  EXPECT_FALSE(s.vacuum());
}

TEST(RelationSchemaTest, Vacuum) {
  RelationSchema s{"V", {}};
  EXPECT_TRUE(s.vacuum());
  EXPECT_TRUE(s.attr_set().Empty());
}

TEST(RelationInstanceTest, IdentityOrigins) {
  RelationInstance r;
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.OriginOf(0), 0u);
  EXPECT_EQ(r.OriginOf(1), 1u);
}

TEST(RelationInstanceTest, ExplicitOrigins) {
  RelationInstance r;
  r.AddWithOrigin({1}, 7);
  r.AddWithOrigin({2}, 9);
  EXPECT_EQ(r.OriginOf(0), 7u);
  EXPECT_EQ(r.OriginOf(1), 9u);
}

TEST(RelationInstanceTest, MixedAddPromotesIdentity) {
  RelationInstance r;
  r.Add({1});
  r.Add({2});
  r.AddWithOrigin({3}, 42);
  EXPECT_EQ(r.OriginOf(0), 0u);
  EXPECT_EQ(r.OriginOf(1), 1u);
  EXPECT_EQ(r.OriginOf(2), 42u);
}

TEST(RelationInstanceTest, DedupKeepsFirstOrigin) {
  RelationInstance r;
  r.AddWithOrigin({1, 1}, 10);
  r.AddWithOrigin({2, 2}, 11);
  r.AddWithOrigin({1, 1}, 12);  // duplicate content
  r.Dedup();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0), Tuple({1, 1}));
  EXPECT_EQ(r.OriginOf(0), 10u);
  EXPECT_EQ(r.OriginOf(1), 11u);
}

TEST(RelationInstanceTest, DedupNoopWhenDistinct) {
  RelationInstance r;
  r.Add({1});
  r.Add({2});
  r.Dedup();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.OriginOf(1), 1u);  // identity preserved
}

TEST(DatabaseTest, RootRelationsNumbered) {
  Database db(3);
  EXPECT_EQ(db.num_relations(), 3u);
  EXPECT_EQ(db.rel(0).root_relation(), 0);
  EXPECT_EQ(db.rel(2).root_relation(), 2);
}

TEST(DatabaseTest, TotalTuples) {
  Database db(2);
  db.Load(0, {{1}, {2}});
  db.Load(1, {{1, 2}});
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(DatabaseTest, WithTuplesRemoved) {
  Database db(2);
  db.Load(0, {{1}, {2}, {3}});
  db.Load(1, {{4, 4}});
  std::vector<std::vector<char>> removed = {{0, 1, 0}, {0}};
  const Database after = WithTuplesRemoved(db, removed);
  EXPECT_EQ(after.rel(0).size(), 2u);
  EXPECT_EQ(after.rel(0).tuple(0), Tuple({1}));
  EXPECT_EQ(after.rel(0).tuple(1), Tuple({3}));
  // Origins must point at the root rows, not be renumbered.
  EXPECT_EQ(after.rel(0).OriginOf(1), 2u);
  EXPECT_EQ(after.rel(1).size(), 1u);
}

TEST(DatabaseTest, VacuumInstance) {
  Database db(1);
  db.rel(0).Add({});
  EXPECT_EQ(db.rel(0).size(), 1u);
  EXPECT_TRUE(db.rel(0).tuple(0).empty());
}

}  // namespace
}  // namespace adp
