// Max-flow / min-cut substrate tests.

#include <gtest/gtest.h>

#include "flow/max_flow.h"
#include "util/rng.h"

namespace adp {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 5);
  EXPECT_EQ(f.Compute(0, 1), 5);
}

TEST(MaxFlowTest, SerialEdgesBottleneck) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 5);
  f.AddEdge(1, 2, 3);
  EXPECT_EQ(f.Compute(0, 2), 3);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 2);
  f.AddEdge(1, 3, 2);
  f.AddEdge(0, 2, 3);
  f.AddEdge(2, 3, 3);
  EXPECT_EQ(f.Compute(0, 3), 5);
}

TEST(MaxFlowTest, ClassicDiamondWithCross) {
  // CLRS-style example.
  MaxFlow f(6);
  f.AddEdge(0, 1, 16);
  f.AddEdge(0, 2, 13);
  f.AddEdge(1, 3, 12);
  f.AddEdge(2, 1, 4);
  f.AddEdge(3, 2, 9);
  f.AddEdge(2, 4, 14);
  f.AddEdge(4, 3, 7);
  f.AddEdge(3, 5, 20);
  f.AddEdge(4, 5, 4);
  EXPECT_EQ(f.Compute(0, 5), 23);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 10);
  f.AddEdge(2, 3, 10);
  EXPECT_EQ(f.Compute(0, 3), 0);
}

TEST(MaxFlowTest, SourceSideSeparatesCut) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 1);
  f.AddEdge(1, 2, 7);
  f.Compute(0, 2);
  const auto side = f.SourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[1]);  // the unit edge saturates first
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlowTest, InfiniteCapacityNeverCut) {
  MaxFlow f(4);
  f.AddEdge(0, 1, kInfCapacity);
  f.AddEdge(1, 2, 1);
  f.AddEdge(2, 3, kInfCapacity);
  EXPECT_EQ(f.Compute(0, 3), 1);
  const auto side = f.SourceSide(0);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

// Property: max-flow equals the capacity of the extracted cut on random
// graphs (weak duality check from the source side).
TEST(MaxFlowTest, FlowEqualsCutCapacityOnRandomGraphs) {
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(100 + seed);
    const int n = 8;
    MaxFlow f(n);
    struct E {
      int u, v, id;
      std::int64_t cap;
    };
    std::vector<E> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.UniformDouble() < 0.35) {
          const std::int64_t cap = 1 + static_cast<std::int64_t>(
                                           rng.Uniform(9));
          const int id = f.AddEdge(u, v, cap);
          edges.push_back({u, v, id, cap});
        }
      }
    }
    const std::int64_t flow = f.Compute(0, n - 1);
    const auto side = f.SourceSide(0);
    std::int64_t cut = 0;
    for (const E& e : edges) {
      if (side[e.u] && !side[e.v]) cut += e.cap;
    }
    EXPECT_EQ(flow, cut) << "seed " << seed;
  }
}

TEST(MaxFlowTest, GrowableGraph) {
  MaxFlow f;
  const int s = f.AddNode();
  const int a = f.AddNode();
  const int t = f.AddNode();
  f.AddEdge(s, a, 4);
  f.AddEdge(a, t, 2);
  EXPECT_EQ(f.Compute(s, t), 2);
}

}  // namespace
}  // namespace adp
