// Parser tests: grammar coverage and error reporting.

#include <gtest/gtest.h>

#include "query/parser.h"

namespace adp {
namespace {

TEST(ParserTest, SimpleQuery) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  EXPECT_EQ(q.num_relations(), 2);
  EXPECT_EQ(q.num_attributes(), 3);
  EXPECT_EQ(q.relation(0).name, "R1");
  EXPECT_EQ(q.relation(1).name, "R2");
  EXPECT_EQ(q.head().Size(), 2);
  EXPECT_TRUE(q.head().Contains(q.FindAttribute("A")));
  EXPECT_TRUE(q.head().Contains(q.FindAttribute("B")));
}

TEST(ParserTest, BooleanHead) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A)");
  EXPECT_TRUE(q.IsBoolean());
}

TEST(ParserTest, BareHeadIsBoolean) {
  const ConjunctiveQuery q = ParseQuery("Q :- R1(A), R2(A,B)");
  EXPECT_TRUE(q.IsBoolean());
}

TEST(ParserTest, VacuumRelation) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2()");
  EXPECT_TRUE(q.relation(1).vacuum());
}

TEST(ParserTest, SelectionPredicate) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A), R2(A,B=42)");
  ASSERT_EQ(q.selections()[1].size(), 1u);
  EXPECT_EQ(q.selections()[1][0].attr, q.FindAttribute("B"));
  EXPECT_EQ(q.selections()[1][0].value, 42);
}

TEST(ParserTest, NegativeSelectionValue) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A,B=-3)");
  EXPECT_EQ(q.selections()[0][0].value, -3);
}

TEST(ParserTest, WhitespaceInsensitive) {
  const ConjunctiveQuery q =
      ParseQuery("  Q ( A , B )  :-  R1 ( A , B ) ,  R2 ( B )  ");
  EXPECT_EQ(q.num_relations(), 2);
  EXPECT_EQ(q.head().Size(), 2);
}

TEST(ParserTest, UnderscoreAndDigitsInNames) {
  const ConjunctiveQuery q = ParseQuery("Q(A1) :- My_Rel(A1, B_2)");
  EXPECT_EQ(q.relation(0).name, "My_Rel");
  EXPECT_GE(q.FindAttribute("B_2"), 0);
}

TEST(ParserTest, RejectsSelfJoin) {
  EXPECT_THROW(ParseQuery("Q(A) :- R(A,B), R(B,C)"), ParseError);
}

TEST(ParserTest, RejectsRepeatedAttributeInAtom) {
  EXPECT_THROW(ParseQuery("Q(A) :- R(A,A)"), ParseError);
}

TEST(ParserTest, RejectsHeadAttributeNotInBody) {
  EXPECT_THROW(ParseQuery("Q(Z) :- R(A)"), ParseError);
}

TEST(ParserTest, RejectsMissingTurnstile) {
  EXPECT_THROW(ParseQuery("Q(A) R(A)"), ParseError);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_THROW(ParseQuery("Q(A) :- R(A) xyz"), ParseError);
}

TEST(ParserTest, RejectsEmptyBody) {
  EXPECT_THROW(ParseQuery("Q(A) :- "), ParseError);
}

TEST(ParserTest, PaperQueriesParse) {
  // The queries named throughout the paper.
  EXPECT_NO_THROW(ParseQuery("QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)"));
  EXPECT_NO_THROW(ParseQuery("QP(C) :- Teaches(P,C), NotOnLeave(P)"));
  EXPECT_NO_THROW(
      ParseQuery("Q3path(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)"));
  EXPECT_NO_THROW(ParseQuery("Qcover(A,B) :- R1(A), R2(A,B), R3(B)"));
  EXPECT_NO_THROW(ParseQuery("Qswing(A) :- R2(A,B), R3(B)"));
  EXPECT_NO_THROW(ParseQuery("Qseesaw(A) :- R1(A), R2(A,B), R3(B)"));
  EXPECT_NO_THROW(ParseQuery("Qtriangle() :- R1(A,B), R2(B,C), R3(C,A)"));
  EXPECT_NO_THROW(ParseQuery("QT() :- R1(A,B,C), R2(A), R3(B), R4(C)"));
}

}  // namespace
}  // namespace adp
