// Tests for the exhaustive hard-structure enumeration and a machine check
// of Lemma 13 (optimal solutions need only endogenous tuples).

#include <gtest/gtest.h>

#include "dichotomy/relations.h"
#include "dichotomy/structures.h"
#include "dichotomy/triad.h"
#include "query/parser.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleAdp;
using testing::OracleCount;

TEST(EnumTest, EasyQueryHasNoStructures) {
  EXPECT_TRUE(
      AllHardStructures(ParseQuery("Q(A,B) :- R1(A), R2(A,B)")).empty());
}

TEST(EnumTest, QcoverReportsHeadJoinOnly) {
  const auto all =
      AllHardStructures(ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)"));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, HardStructureKind::kNonHierarchicalHeadJoin);
}

TEST(EnumTest, TriangleReportsSingleTriad) {
  const auto all =
      AllHardStructures(ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)"));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, HardStructureKind::kTriadLike);
  EXPECT_EQ(all[0].relations.size(), 3u);
}

TEST(EnumTest, MultipleStrandsEnumerated) {
  // Three relations pairwise sharing existential attributes with different
  // head projections: several strands at once.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)");
  const auto strands = FindAllStrands(q);
  EXPECT_EQ(strands.size(), 3u);  // all three pairs qualify
  const auto all = AllHardStructures(q);
  EXPECT_GE(all.size(), 3u);
}

TEST(EnumTest, FirstWitnessConsistentWithEnumeration) {
  Rng rng(14000);
  for (int iter = 0; iter < 200; ++iter) {
    const ConjunctiveQuery q = testing::RandomQuery(rng, 5, 4);
    const auto all = AllHardStructures(q);
    EXPECT_EQ(all.empty(), !HasHardStructure(q)) << q.ToString();
    // FindAllTriadLike agrees with the single-witness probe.
    EXPECT_EQ(FindAllTriadLike(q).empty(), !FindTriadLike(q).has_value())
        << q.ToString();
    EXPECT_EQ(FindAllStrands(q).empty(), !FindStrand(q).has_value())
        << q.ToString();
  }
}

// Lemma 13 (Appendix A): there is always an optimal solution that deletes
// endogenous tuples only. We machine-check it by comparing the exhaustive
// optimum against the optimum restricted to endogenous relations.
class EndogenousOnlyOptimality : public ::testing::TestWithParam<int> {};

TEST_P(EndogenousOnlyOptimality, Lemma13) {
  Rng rng(15000 + GetParam());
  const ConjunctiveQuery q = testing::RandomQuery(rng, 4, 3);
  const Database db = testing::RandomDb(q, rng, 4, 2);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0 || db.TotalTuples() > 12) GTEST_SKIP();

  const std::vector<char> exo = ExogenousFlags(q);
  for (std::int64_t k = 1; k <= total; ++k) {
    const std::int64_t opt = OracleAdp(q, db, k);
    // Restricted oracle: protect every exogenous tuple, then enumerate.
    // Reuse OracleAdp by emptying exogenous relations? That changes the
    // query; instead enumerate over endogenous tuples directly.
    struct Candidate {
      int rel;
      std::size_t row;
    };
    std::vector<Candidate> cands;
    for (int r = 0; r < q.num_relations(); ++r) {
      if (exo[r]) continue;
      for (std::size_t t = 0; t < db.rel(r).size(); ++t) {
        cands.push_back({r, t});
      }
    }
    std::int64_t restricted_opt = -1;
    const int n = static_cast<int>(cands.size());
    for (int c = 1; c <= n && restricted_opt < 0; ++c) {
      std::vector<int> combo(c);
      for (int i = 0; i < c; ++i) combo[i] = i;
      while (true) {
        std::vector<std::vector<char>> removed(q.num_relations());
        for (int r = 0; r < q.num_relations(); ++r) {
          removed[r].assign(db.rel(r).size(), 0);
        }
        for (int i : combo) removed[cands[i].rel][cands[i].row] = 1;
        const Database after = WithTuplesRemoved(db, removed);
        if (total - OracleCount(q, after) >= k) {
          restricted_opt = c;
          break;
        }
        int i = c - 1;
        while (i >= 0 && combo[i] == n - (c - i)) --i;
        if (i < 0) break;
        ++combo[i];
        for (int jj = i + 1; jj < c; ++jj) combo[jj] = combo[jj - 1] + 1;
      }
    }
    EXPECT_EQ(restricted_opt, opt) << q.ToString() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EndogenousOnlyOptimality,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace adp
