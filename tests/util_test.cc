// Unit tests for util/: AttrSet algebra, RNG determinism, Zipf sampling.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/attr_set.h"
#include "util/hash.h"
#include "util/rng.h"

namespace adp {
namespace {

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0);
}

TEST(AttrSetTest, AddRemoveContains) {
  AttrSet s;
  s.Add(3);
  s.Add(17);
  s.Add(63);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(17));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Size(), 3);
  s.Remove(17);
  EXPECT_FALSE(s.Contains(17));
  EXPECT_EQ(s.Size(), 2);
}

TEST(AttrSetTest, InitializerList) {
  AttrSet s{0, 2, 5};
  EXPECT_EQ(s.Size(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
}

TEST(AttrSetTest, SetAlgebra) {
  const AttrSet a{0, 1, 2};
  const AttrSet b{2, 3};
  EXPECT_EQ(a.Union(b), AttrSet({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrSet({2}));
  EXPECT_EQ(a.Minus(b), AttrSet({0, 1}));
  EXPECT_TRUE(AttrSet({0, 1}).SubsetOf(a));
  EXPECT_TRUE(AttrSet({0, 1}).StrictSubsetOf(a));
  EXPECT_FALSE(a.StrictSubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet({4, 5})));
}

TEST(AttrSetTest, FirstN) {
  EXPECT_EQ(AttrSet::FirstN(0).Size(), 0);
  EXPECT_EQ(AttrSet::FirstN(5), AttrSet({0, 1, 2, 3, 4}));
  EXPECT_EQ(AttrSet::FirstN(64).Size(), 64);
}

TEST(AttrSetTest, IterationInOrder) {
  const AttrSet s{5, 1, 40};
  std::vector<AttrId> seen;
  for (AttrId a : s) seen.push_back(a);
  EXPECT_EQ(seen, (std::vector<AttrId>{1, 5, 40}));
}

TEST(AttrSetTest, OfSingleton) {
  EXPECT_EQ(AttrSet::Of(7), AttrSet({7}));
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.Next() != b.Next());
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, AlphaZeroIsNearUniform) {
  Rng rng(11);
  ZipfSampler zipf(10, 0.0);
  std::map<int, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [rank, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02) << "rank " << rank;
  }
}

TEST(ZipfTest, HigherAlphaSkewsToLowRanks) {
  Rng rng(13);
  ZipfSampler zipf(100, 1.0);
  int low = 0, high = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const int r = zipf.Sample(rng);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);  // rank 0..9 must dominate rank 90..99
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(17);
  ZipfSampler zipf(7, 0.5);
  for (int i = 0; i < 1000; ++i) {
    const int r = zipf.Sample(rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 7);
  }
}

TEST(HashTest, DistinctVectorsHashDifferently) {
  VecHash h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_NE(h({1}), h({1, 0}));
  EXPECT_EQ(h({5, 6}), h({5, 6}));
}

TEST(HashTest, EmptyVectorStable) {
  VecHash h;
  EXPECT_EQ(h({}), h({}));
}

}  // namespace
}  // namespace adp
