// Closed-loop soak of AdpEngine through the LoadDriver with the hostile
// blend — execute, prepared, streams, explicit cancels, and pre-expired
// deadlines, all concurrently from 4 driver threads against a 4-worker
// engine — asserting the counter invariants the engine promises:
//
//   * every driver op lands in exactly one outcome bucket, and the engine's
//     own request counter agrees with the driver's issued count;
//   * streams_opened matches the stream ops issued and never undercounts
//     stream_cancelled;
//   * cancelled / deadline_expired / shed engine counters equal the
//     driver-observed response buckets (they count responses, not races);
//   * dedup + coalesce hits stay within the request count, and with a wide
//     coalesce window a duplicate-heavy plan is guaranteed at least one
//     absorbed request (each worker thread replays duplicate (family, k)
//     pairs sequentially, so a repeat either joins an in-flight solve or
//     hits the ring).
//
// This test is part of the TSan and ASan/UBSan CI jobs: the mixed blend is
// exactly the concurrency soup (ticket cancel vs publish, stream teardown
// vs producer, coalesce ring insert vs probe) sanitizers are for. Sizes
// are kept modest so sanitizer runs stay fast.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "workload/driver.h"
#include "workload/families.h"

namespace adp::workload {
namespace {

std::vector<FamilySpec> SoakFamilies() {
  using S = FamilyShape;
  using H = HeadClass;
  using C = CardinalityClass;
  using D = DomainClass;
  return {
      {S::kChain, 3, H::kBoolean, C::kSmall, D::kMid},
      {S::kStar, 3, H::kProjected, C::kTiny, D::kMid},
      {S::kDisconnected, 2, H::kFull, C::kTiny, D::kMid},
  };
}

TEST(EngineLoadTest, MixedBlendSoakHoldsCounterInvariants) {
  EngineConfig config;
  config.num_workers = 4;
  // Wide window: any op repeating a completed (family, k) pair must be
  // absorbed (dedup if concurrent, coalesce if after completion).
  config.coalesce_window_ms = 60'000.0;
  AdpEngine engine(config);

  DriverConfig dc;
  dc.concurrency = 4;
  dc.requests = 200;
  dc.max_k = 2;
  dc.seed = 2024;
  dc.mix = {.execute = 0.45,
            .prepared = 0.15,
            .stream = 0.2,
            .cancel = 0.1,
            .expired = 0.1};

  LoadDriver driver(engine, MakeFamilySet(SoakFamilies(), dc.seed), dc);

  // The plan actually contains the hostile op kinds (seeded, so stable).
  std::uint64_t plan_streams = 0, plan_cancels = 0, plan_expired = 0;
  for (const ScheduledOp& op : driver.plan()) {
    plan_streams += op.kind == OpKind::kStream;
    plan_cancels += op.kind == OpKind::kCancel;
    plan_expired += op.kind == OpKind::kExpired;
  }
  ASSERT_GT(plan_streams, 0u);
  ASSERT_GT(plan_cancels, 0u);
  ASSERT_GT(plan_expired, 0u);

  const DriverReport rep = driver.Run();
  const DriverOutcomes& o = rep.outcomes;

  // Driver-side: every op in exactly one bucket.
  EXPECT_TRUE(OutcomesConsistent(o));
  EXPECT_EQ(o.issued + o.streams_issued,
            static_cast<std::uint64_t>(dc.requests));
  EXPECT_EQ(o.streams_issued, plan_streams);

  // Engine-side counters agree with what the driver observed.
  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, o.issued);
  EXPECT_EQ(c.streams_opened, o.streams_issued);
  EXPECT_GE(c.streams_opened, c.stream_cancelled);
  EXPECT_EQ(c.cancelled, o.cancelled);
  EXPECT_EQ(c.deadline_expired, o.expired);
  EXPECT_EQ(c.shed, o.shed);
  EXPECT_EQ(c.failures, o.failed);
  EXPECT_EQ(c.stream_items, o.stream_items);

  // A cancel op either cancels (response kCancelled) or loses the race
  // and completes; it never lands anywhere else. Same for expired ops:
  // the driver only issues as many as the plan holds.
  EXPECT_LE(o.cancelled, plan_cancels);
  // Expired ops are the only deadlined ops, their deadline passed before
  // submission, and an expired deadline beats even a coalesce-ring hit —
  // so exactly the planned count expires.
  EXPECT_EQ(o.expired, plan_expired);

  // Dedup/coalesce consistency: hits are requests served without a solve,
  // so they can never exceed the requests admitted; and this plan (200
  // ops over 3 families x k<=2) repeats pairs within single driver
  // threads, guaranteeing at least one absorbed duplicate.
  EXPECT_LE(c.dedup_hits + c.coalesce_hits, c.requests);
  EXPECT_GE(c.dedup_hits + c.coalesce_hits, 1u);

  // Sanity on the run itself.
  EXPECT_GT(o.ok, 0u);
  EXPECT_GT(rep.throughput_ops_per_sec, 0.0);
}

// Shedding: a bounded queue under a burst of async submissions must shed
// with kOverloaded, the driver must see those as shed responses, and the
// buckets must still sum.
TEST(EngineLoadTest, OverloadShedsAndBucketsStillSum) {
  EngineConfig config;
  config.num_workers = 1;
  config.max_queue_depth = 1;
  AdpEngine engine(config);

  DriverConfig dc;
  dc.open_loop = true;  // async submissions are the sheddable path
  dc.offered_rps = 5000.0;
  dc.concurrency = 2;
  dc.requests = 80;
  // Distinct k per op (collisions aside): a small max_k would let in-flight
  // dedup absorb the whole burst through a couple of solve keys and the
  // queue would never back up — shedding must not depend on that race.
  dc.max_k = 1'000'000;
  dc.seed = 7;
  dc.mix = {.execute = 1.0};

  // One slow-ish family so the queue actually backs up: ~ms-scale solves
  // arriving at 5000/s against one worker and one queue slot.
  std::vector<FamilySpec> specs = {{FamilyShape::kDisconnected, 2,
                                    HeadClass::kFull, CardinalityClass::kMedium,
                                    DomainClass::kMid}};
  LoadDriver driver(engine, MakeFamilySet(specs, dc.seed), dc);
  const DriverReport rep = driver.Run();
  const DriverOutcomes& o = rep.outcomes;

  EXPECT_TRUE(OutcomesConsistent(o));
  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, o.issued);
  EXPECT_EQ(c.shed, o.shed);
  // With depth 1 and a 5000/s offered rate on one worker, shedding is
  // certain; ok stays nonzero because admitted requests still solve.
  EXPECT_GT(o.shed, 0u);
  EXPECT_GT(o.ok, 0u);
}

// The engine survives and stays consistent across repeated runs against
// the same driver (plan replay), including through the net-independent
// prepared path.
TEST(EngineLoadTest, RepeatedRunsAccumulateConsistently) {
  EngineConfig config;
  config.num_workers = 2;
  AdpEngine engine(config);

  DriverConfig dc;
  dc.concurrency = 2;
  dc.requests = 60;
  dc.seed = 5;
  dc.mix = {.execute = 0.5, .prepared = 0.5};

  LoadDriver driver(engine, MakeFamilySet(SoakFamilies(), dc.seed), dc);
  const DriverReport r1 = driver.Run();
  const DriverReport r2 = driver.Run();
  EXPECT_TRUE(OutcomesConsistent(r1.outcomes));
  EXPECT_TRUE(OutcomesConsistent(r2.outcomes));
  EXPECT_EQ(r1.answer_checksum, r2.answer_checksum);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, r1.outcomes.issued + r2.outcomes.issued);
  EXPECT_EQ(c.failures, 0u);
}

}  // namespace
}  // namespace adp::workload
