// GreedyForCQ and DrasticGreedy tests: feasibility, trajectory shape, and
// the paper's qualitative claims (greedy finds optimal on friendly
// distributions; drastic restricted to full CQs).

#include <gtest/gtest.h>

#include <cmath>

#include "query/parser.h"
#include "solver/drastic.h"
#include "solver/greedy.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

TEST(GreedyTest, PicksHighestProfitFirst) {
  // Qpath with a hub: deleting R3(5) removes three outputs at once.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}, {3}}},
                                 {"R2", {{1, 5}, {2, 5}, {3, 5}, {1, 6}}},
                                 {"R3", {{5}, {6}}}});
  const GreedyTrace trace = RunGreedyForCQ(q, db, 3);
  ASSERT_GE(trace.picks.size(), 1u);
  EXPECT_EQ(trace.picks[0].relation, 2);  // R3
  EXPECT_EQ(trace.picks[0].row, 0u);      // tuple (5)
  EXPECT_EQ(trace.removed_after[0], 3);
}

TEST(GreedyTest, TrajectoryIsMonotone) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(41);
  const Database db = RandomDb(q, rng, 15, 5);
  const std::int64_t total = OracleCount(q, db);
  const GreedyTrace trace = RunGreedyForCQ(q, db, total);
  for (std::size_t i = 1; i < trace.removed_after.size(); ++i) {
    EXPECT_GE(trace.removed_after[i], trace.removed_after[i - 1]);
  }
  if (!trace.removed_after.empty()) {
    EXPECT_EQ(trace.removed_after.back(), total);
  }
}

TEST(GreedyTest, FeasibleOnProjections) {
  // Qswing — inapproximable in general, but greedy must still be feasible.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  Rng rng(43);
  for (int iter = 0; iter < 10; ++iter) {
    const Database db = RandomDb(q, rng, 10, 4);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    const std::int64_t k = std::max<std::int64_t>(1, total / 2);
    const GreedyTrace trace = RunGreedyForCQ(q, db, k);
    ASSERT_FALSE(trace.removed_after.empty());
    EXPECT_GE(trace.removed_after.back(), k);
    // Verify against re-evaluation.
    EXPECT_GE(CountRemovedOutputs(q, db, trace.picks), k);
  }
}

TEST(GreedyTest, ZeroProfitPlateauStillTerminates) {
  // Boolean-ish trap: every single deletion has profit 0 until a whole
  // output group is gone.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R2", {{1, 5}, {1, 6}}},
                                 {"R3", {{5}, {6}}}});
  const GreedyTrace trace = RunGreedyForCQ(q, db, 1);
  EXPECT_GE(trace.removed_after.back(), 1);
  EXPECT_LE(trace.picks.size(), 4u);
}

TEST(GreedyNodeTest, ProfileMatchesTrajectory) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(47);
  const Database db = RandomDb(q, rng, 12, 4);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = GreedyNode(q, db, total, options);
  EXPECT_FALSE(node.exact);
  EXPECT_EQ(node.profile.kmax(), total);
  for (std::int64_t k = 1; k <= total; ++k) {
    const auto tuples = node.report(k);
    EXPECT_EQ(static_cast<std::int64_t>(tuples.size()), node.profile.At(k));
    EXPECT_GE(CountRemovedOutputs(q, db, tuples), k);
  }
}

TEST(DrasticTest, SingleRelationPrefixIsChosen) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {1, 6}, {2, 5}}},
                                 {"R3", {{5}, {6}}}});
  // Full join rows: (1,5),(1,6),(2,5). Profits: R1(1)=2, R3(5)=2.
  AdpOptions options;
  options.heuristic = AdpOptions::Heuristic::kDrastic;
  const AdpNode node = DrasticNode(q, db, 3, options);
  EXPECT_EQ(node.profile.At(2), 1);
  EXPECT_EQ(node.profile.At(3), 2);
  const auto tuples = node.report(2);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_GE(CountRemovedOutputs(q, db, tuples), 2);
}

TEST(DrasticTest, AllPicksFromOneRelation) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(53);
  const Database db = RandomDb(q, rng, 12, 4);
  const std::int64_t total = OracleCount(q, db);
  if (total < 3) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = DrasticNode(q, db, total, options);
  const auto tuples = node.report(total / 2 + 1);
  ASSERT_FALSE(tuples.empty());
  for (const TupleRef& t : tuples) {
    EXPECT_EQ(t.relation, tuples[0].relation);
  }
  EXPECT_GE(CountRemovedOutputs(q, db, tuples), total / 2 + 1);
}

TEST(DrasticVsGreedyTest, GreedyNeverWorseOnSmallFullCqs) {
  // Greedy re-evaluates profits after every deletion; drastic does not.
  // On small instances both should land within a small factor of optimal.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(59);
  for (int iter = 0; iter < 8; ++iter) {
    const Database db = RandomDb(q, rng, 5, 3);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    const std::int64_t k = (total + 1) / 2;
    const std::int64_t opt = OracleAdp(q, db, k);
    AdpOptions options;
    const AdpNode greedy = GreedyNode(q, db, total, options);
    const AdpNode drastic = DrasticNode(q, db, total, options);
    EXPECT_GE(greedy.profile.At(k), opt);
    EXPECT_GE(drastic.profile.At(k), opt);
    // ln(k)+1 bound for greedy on full CQs (Theorem 5).
    const double bound =
        (std::log(static_cast<double>(k)) + 1.0) * static_cast<double>(opt);
    EXPECT_LE(static_cast<double>(greedy.profile.At(k)), bound + 1e-9);
  }
}

}  // namespace
}  // namespace adp
