// Transform tests: attribute removal, head joins, decomposition, selection
// pushdown, Universe partitioning — all with origin-tracking checks.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/transform.h"
#include "relational/join.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleCount;

TEST(TransformTest, RemoveAttributesFromSchemasAndHead) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  const AttrId b = q.FindAttribute("B");
  const ConjunctiveQuery r = RemoveAttributes(q, AttrSet::Of(b));
  EXPECT_EQ(r.relation(0).attrs.size(), 1u);
  EXPECT_EQ(r.relation(1).attrs.size(), 1u);
  EXPECT_FALSE(r.head().Contains(b));
  EXPECT_EQ(r.head().Size(), 1);
  // Catalog ids remain stable.
  EXPECT_EQ(r.FindAttribute("A"), q.FindAttribute("A"));
}

TEST(TransformTest, HeadJoinDropsExistentialAttrs) {
  // Example 5's head join: Q1(A,C,F) over R1(A,C), R2(B), R3(B,C), R4(C,E,F)
  // becomes R1(A,C), R2(), R3(C), R4(C,F).
  const ConjunctiveQuery q =
      ParseQuery("Q(A,C,F) :- R1(A,C), R2(B), R3(B,C), R4(C,E,F)");
  const ConjunctiveQuery hj = HeadJoin(q);
  EXPECT_EQ(hj.relation(0).attrs.size(), 2u);
  EXPECT_TRUE(hj.relation(1).vacuum());
  EXPECT_EQ(hj.relation(2).attrs.size(), 1u);
  EXPECT_EQ(hj.relation(3).attrs.size(), 2u);
}

TEST(TransformTest, DecomposeQueryComponents) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A), R2(A,B), R3(C)");
  const auto subs = DecomposeQuery(q);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].parent_relation, (std::vector<int>{0, 1}));
  EXPECT_EQ(subs[1].parent_relation, (std::vector<int>{2}));
  // Subquery heads restrict to their own attributes.
  EXPECT_EQ(subs[0].query.head().Size(), 2);
  EXPECT_EQ(subs[1].query.head().Size(), 1);
}

TEST(TransformTest, SubDatabaseAlignsInstances) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A), R2(A,B), R3(C)");
  const Database db = MakeDb(q, {{"R1", {{1}}},
                                 {"R2", {{1, 2}}},
                                 {"R3", {{9}, {8}}}});
  const auto subs = DecomposeQuery(q);
  const Database sub_db = SubDatabase(subs[1], db);
  ASSERT_EQ(sub_db.num_relations(), 1u);
  EXPECT_EQ(sub_db.rel(0).size(), 2u);
  EXPECT_EQ(sub_db.rel(0).root_relation(), 2);  // points at root R3
}

TEST(TransformTest, ApplySelectionsFiltersAndStrips) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B=5)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {1, 6}, {2, 5}}}});
  const QueryDb out = ApplySelections(q, db);
  EXPECT_FALSE(out.query.HasSelections());
  // B stripped from schema and head.
  EXPECT_EQ(out.query.relation(1).attrs.size(), 1u);
  EXPECT_FALSE(out.query.head().Contains(q.FindAttribute("B")));
  // Only B=5 rows survive, projected to (A).
  ASSERT_EQ(out.db.rel(1).size(), 2u);
  EXPECT_EQ(out.db.rel(1).tuple(0), Tuple({1}));
  EXPECT_EQ(out.db.rel(1).tuple(1), Tuple({2}));
  // Origins point at the root rows 0 and 2.
  EXPECT_EQ(out.db.rel(1).OriginOf(0), 0u);
  EXPECT_EQ(out.db.rel(1).OriginOf(1), 2u);
}

TEST(TransformTest, ApplySelectionsPreservesOutputCount) {
  // Lemma 12: |σθQ(D)| computed directly equals |Q'(D')| on the residual.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C=3)");
  Rng rng(5);
  const Database db = testing::RandomDb(q, rng, 30, 4);
  const QueryDb out = ApplySelections(q, db);
  EXPECT_EQ(OracleCount(q, db),
            static_cast<std::int64_t>(CountOutputs(
                out.query.body(), out.query.head(), out.db)));
}

TEST(TransformTest, PartitionByAttrsSplitsAndProjects) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A,B), R2(A)");
  const AttrId a = q.FindAttribute("A");
  const Database db = MakeDb(q, {{"R1", {{1, 5}, {1, 6}, {2, 7}}},
                                 {"R2", {{1}, {2}, {3}}}});
  const auto groups = PartitionByAttrs(q, db, AttrSet::Of(a));
  // Key 3 has no R1 rows -> dropped. Keys 1 and 2 survive.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key, Tuple({1}));
  EXPECT_EQ(groups[0].db.rel(0).size(), 2u);  // (5), (6)
  EXPECT_EQ(groups[0].db.rel(1).size(), 1u);  // ()
  EXPECT_TRUE(groups[0].db.rel(1).tuple(0).empty());
  EXPECT_EQ(groups[1].key, Tuple({2}));
  // Origin of group 2's R1 tuple is root row 2.
  EXPECT_EQ(groups[1].db.rel(0).OriginOf(0), 2u);
}

TEST(TransformTest, PartitionCoversAllOutputs) {
  // Sum of group outputs == |Q(D)|.
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  Rng rng(17);
  const Database db = testing::RandomDb(q, rng, 25, 5);
  const AttrId a = q.FindAttribute("A");
  const ConjunctiveQuery residual = RemoveAttributes(q, AttrSet::Of(a));
  std::int64_t total = 0;
  for (const auto& g : PartitionByAttrs(q, db, AttrSet::Of(a))) {
    total += static_cast<std::int64_t>(
        CountOutputs(residual.body(), residual.head(), g.db));
  }
  EXPECT_EQ(total, OracleCount(q, db));
}

TEST(TransformTest, RestrictToKeepsSelections) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,C) :- R1(A,B=2), R2(C)");
  const Subquery sub = RestrictTo(q, {0});
  EXPECT_TRUE(sub.query.HasSelections());
  EXPECT_EQ(sub.query.num_relations(), 1);
}

}  // namespace
}  // namespace adp
