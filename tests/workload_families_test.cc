// Property tests for the query-family generator (workload/families.h):
//
//  * determinism — one (spec, seed) pair always materializes the
//    bit-identical query text and database, and MakeFamilySet is
//    reproducible end to end (the acceptance bar for the workload
//    harness: two runs of a seeded workload are the same workload);
//  * label honesty — every family's precomputed FamilyLabel matches the
//    live dichotomy classifier AND the solver's own case counters: a
//    family labeled Universe must actually drive universe_nodes, a hard
//    Boolean family must take the fallback path, etc.;
//  * non-degeneracy — the spine planting guarantees every generated
//    join is non-empty, so the labeled solver path does real work.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dichotomy/classification.h"
#include "engine/engine.h"
#include "solver/compute_adp.h"
#include "workload/driver.h"
#include "workload/families.h"

namespace adp::workload {
namespace {

void ExpectSameDatabase(const NamedDatabase& a, const NamedDatabase& b) {
  ASSERT_EQ(a.relation_names, b.relation_names);
  ASSERT_EQ(a.db.num_relations(), b.db.num_relations());
  for (std::size_t r = 0; r < a.db.num_relations(); ++r) {
    const RelationInstance& ra = a.db.rel(r);
    const RelationInstance& rb = b.db.rel(r);
    ASSERT_EQ(ra.size(), rb.size()) << "relation " << a.relation_names[r];
    ASSERT_EQ(ra.arity(), rb.arity());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra.tuple(i), rb.tuple(i))
          << "relation " << a.relation_names[r] << " row " << i;
    }
  }
}

TEST(FamiliesTest, SameSeedBitIdentical) {
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    const FamilyInstance a = MakeFamilyInstance(spec, 1234);
    const FamilyInstance b = MakeFamilyInstance(spec, 1234);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.query_text, b.query_text);
    ExpectSameDatabase(a.db, b.db);
  }
}

TEST(FamiliesTest, DifferentSeedDifferentData) {
  // Query text is seed-independent (the shape defines it); the data is
  // not. Deterministic: fixed seeds, fixed generator.
  const FamilySpec spec = DefaultFamilyCatalog().front();
  const FamilyInstance a = MakeFamilyInstance(spec, 1);
  const FamilyInstance b = MakeFamilyInstance(spec, 2);
  EXPECT_EQ(a.query_text, b.query_text);
  bool differs = false;
  for (std::size_t r = 0; r < a.db.db.num_relations() && !differs; ++r) {
    const RelationInstance& ra = a.db.db.rel(r);
    const RelationInstance& rb = b.db.db.rel(r);
    if (ra.size() != rb.size()) {
      differs = true;
      break;
    }
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (ra.tuple(i) != rb.tuple(i)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FamiliesTest, MakeFamilySetReproducible) {
  const std::vector<FamilySpec> catalog = DefaultFamilyCatalog();
  const std::vector<FamilyInstance> a = MakeFamilySet(catalog, 99);
  const std::vector<FamilyInstance> b = MakeFamilySet(catalog, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query_text, b[i].query_text);
    EXPECT_EQ(a[i].seed, b[i].seed);
    ExpectSameDatabase(a[i].db, b[i].db);
  }
  // Per-family seeds are derived, not shared: no two families use the
  // same stream.
  std::set<std::uint64_t> seeds;
  for (const FamilyInstance& f : a) seeds.insert(f.seed);
  EXPECT_EQ(seeds.size(), a.size());
}

TEST(FamiliesTest, CatalogNamesUniqueAndValid) {
  std::set<std::string> names;
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    std::string why;
    EXPECT_TRUE(ValidateFamilySpec(spec, &why)) << why;
    EXPECT_TRUE(names.insert(FamilyName(spec)).second)
        << "duplicate family name " << FamilyName(spec);
  }
}

TEST(FamiliesTest, CatalogCoversEveryCaseAndBothVerdicts) {
  std::set<AdpCase> cases;
  std::set<bool> verdicts;
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    const FamilyLabel label = LabelFor(spec);
    cases.insert(label.root_case);
    verdicts.insert(label.ptime);
  }
  EXPECT_EQ(cases.size(), 5u);  // all five Algorithm-2 cases
  EXPECT_EQ(verdicts.size(), 2u);
}

TEST(FamiliesTest, LabelsMatchLiveClassifier) {
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    const FamilyInstance inst = MakeFamilyInstance(spec, 7);
    const DichotomyVerdict verdict = ClassifyDichotomy(inst.query);
    EXPECT_EQ(verdict.ptime, inst.label.ptime) << inst.name;
    const AdpOptions options;
    EXPECT_EQ(ClassifyAdpCase(inst.query, options), inst.label.root_case)
        << inst.name;
  }
}

// The deep check: run each family through the engine and require (a) a
// non-empty join (the spine guarantee), and (b) the solver case counter
// the label promises. A label that diverged from the solver would pass
// LabelsMatchLiveClassifier if ClassifyAdpCase drifted too — the AdpStats
// counters are the ground truth of which path actually executed.
TEST(FamiliesTest, LabelsMatchSolverCaseCounters) {
  EngineConfig config;
  config.num_workers = 1;
  AdpEngine engine(config);
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    const FamilyInstance inst = MakeFamilyInstance(spec, 11);
    AdpRequest req;
    req.query_text = inst.query_text;
    req.db = engine.RegisterDatabase(inst.db);
    req.k = 1;
    const AdpResponse resp = engine.Execute(req);
    ASSERT_TRUE(resp.ok()) << inst.name << ": " << resp.status.message();
    EXPECT_GT(resp.solution.output_count, 0) << inst.name;
    const AdpStats& stats = resp.stats;
    switch (inst.label.root_case) {
      case AdpCase::kBoolean:
        if (inst.label.ptime) {
          EXPECT_GE(stats.boolean_nodes, 1) << inst.name;
          EXPECT_EQ(stats.boolean_fallbacks, 0) << inst.name;
        } else {
          EXPECT_GE(stats.boolean_fallbacks, 1) << inst.name;
        }
        break;
      case AdpCase::kSingleton:
        EXPECT_GE(stats.singleton_nodes, 1) << inst.name;
        break;
      case AdpCase::kUniverse:
        EXPECT_GE(stats.universe_nodes, 1) << inst.name;
        break;
      case AdpCase::kDecompose:
        EXPECT_GE(stats.decompose_nodes, 1) << inst.name;
        break;
      case AdpCase::kHeuristic:
        EXPECT_GE(stats.greedy_leaves + stats.drastic_leaves, 1)
            << inst.name;
        break;
    }
  }
}

TEST(FamiliesTest, ValidateRejectsBadSpecs) {
  FamilySpec spec;
  spec.shape = FamilyShape::kCycle;
  spec.relations = 2;  // a 2-cycle is not a cycle
  EXPECT_FALSE(ValidateFamilySpec(spec));
  EXPECT_THROW(MakeFamilyInstance(spec, 1), std::invalid_argument);

  spec = FamilySpec{};
  spec.shape = FamilyShape::kStar;
  spec.head = HeadClass::kBoolean;
  EXPECT_FALSE(ValidateFamilySpec(spec));

  spec = FamilySpec{};
  spec.shape = FamilyShape::kDisconnected;
  spec.relations = 1;
  EXPECT_FALSE(ValidateFamilySpec(spec));

  spec = FamilySpec{};
  spec.shape = FamilyShape::kChain;
  spec.head = HeadClass::kProjected;
  spec.relations = 3;  // projected chains are 2-chains only
  EXPECT_FALSE(ValidateFamilySpec(spec));
}

TEST(FamiliesTest, SampledSpecsAlwaysValidAndDeterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 200; ++i) {
    const FamilySpec sa = SampleFamilySpec(a);
    const FamilySpec sb = SampleFamilySpec(b);
    std::string why;
    EXPECT_TRUE(ValidateFamilySpec(sa, &why)) << why;
    EXPECT_EQ(static_cast<int>(sa.shape), static_cast<int>(sb.shape));
    EXPECT_EQ(sa.relations, sb.relations);
    EXPECT_EQ(static_cast<int>(sa.head), static_cast<int>(sb.head));
    EXPECT_EQ(static_cast<int>(sa.cardinality),
              static_cast<int>(sb.cardinality));
    EXPECT_EQ(static_cast<int>(sa.domain), static_cast<int>(sb.domain));
  }
}

// Driver-plan determinism rides with the generator's: one seed => one op
// sequence, and replaying a cancel-free plan is answer-stable.
TEST(FamiliesTest, DriverPlanAndAnswersDeterministic) {
  const std::vector<FamilySpec> specs = {DefaultFamilyCatalog()[0],
                                         DefaultFamilyCatalog()[3]};
  DriverConfig dc;
  dc.concurrency = 2;
  dc.requests = 40;
  dc.seed = 77;
  dc.mix = {.execute = 0.6, .prepared = 0.4};  // cancel-free: deterministic

  AdpEngine engine_a, engine_b;
  LoadDriver a(engine_a, MakeFamilySet(specs, 77), dc);
  LoadDriver b(engine_b, MakeFamilySet(specs, 77), dc);

  ASSERT_EQ(a.plan().size(), b.plan().size());
  for (std::size_t i = 0; i < a.plan().size(); ++i) {
    EXPECT_EQ(a.plan()[i].family, b.plan()[i].family);
    EXPECT_EQ(static_cast<int>(a.plan()[i].kind),
              static_cast<int>(b.plan()[i].kind));
    EXPECT_EQ(a.plan()[i].k, b.plan()[i].k);
  }

  const DriverReport ra = a.Run();
  const DriverReport rb = b.Run();
  EXPECT_TRUE(OutcomesConsistent(ra.outcomes));
  EXPECT_TRUE(OutcomesConsistent(rb.outcomes));
  EXPECT_EQ(ra.outcomes.ok, rb.outcomes.ok);
  EXPECT_EQ(ra.answer_checksum, rb.answer_checksum);
  // And replaying the same plan on the same driver is stable too.
  EXPECT_EQ(a.Run().answer_checksum, ra.answer_checksum);
}

}  // namespace
}  // namespace adp::workload
