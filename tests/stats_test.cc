// Tests for AdpStats: the recursion-tracing facility must report exactly
// which Algorithm 2 cases a query exercises.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "workload/tpch.h"

namespace adp {
namespace {

using testing::MakeDb;

TEST(StatsTest, SingletonQueryHitsSingletonOnly) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.singleton_nodes, 1);
  EXPECT_EQ(stats.greedy_leaves, 0);
  EXPECT_EQ(stats.universe_nodes, 0);
  EXPECT_EQ(stats.decompose_nodes, 0);
}

TEST(StatsTest, HardQueryHitsHeuristicLeaf) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}}},
                                 {"R2", {{1, 5}}},
                                 {"R3", {{5}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.greedy_leaves, 1);
  EXPECT_EQ(stats.singleton_nodes, 0);

  AdpStats drastic_stats;
  options.stats = &drastic_stats;
  options.heuristic = AdpOptions::Heuristic::kDrastic;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(drastic_stats.drastic_leaves, 1);
}

TEST(StatsTest, UniverseCountsGroups) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 5}, {2, 6}}},
                                 {"R2", {{1, 7}, {2, 8}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 2, options);
  EXPECT_EQ(stats.universe_nodes, 1);
  EXPECT_EQ(stats.universe_groups, 2);  // keys a=1 and a=2
}

TEST(StatsTest, SelectedTpchExercisesDecomposeAndSingleton) {
  const TpchWorkload w = MakeTpchSelected(120, 3);
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  const AdpSolution sol = ComputeAdp(w.query, w.db, 5, options);
  EXPECT_TRUE(sol.exact);
  // σθQ1 decomposes into {Supplier, PartSupp} and {LineItem}, each solved
  // by Singleton.
  EXPECT_EQ(stats.decompose_nodes, 1);
  EXPECT_EQ(stats.singleton_nodes, 2);
  EXPECT_EQ(stats.greedy_leaves, 0);
}

TEST(StatsTest, BooleanQueryCountsBooleanNode) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R2", {{1}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.boolean_nodes, 1);
  EXPECT_EQ(stats.boolean_fallbacks, 0);
}

TEST(StatsTest, NonLinearizableBooleanFallsBack) {
  // Triangle: boolean, NP-hard, no linear order -> greedy fallback.
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const Database db = MakeDb(q, {{"R1", {{1, 2}}},
                                 {"R2", {{2, 3}}},
                                 {"R3", {{3, 1}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.boolean_fallbacks, 1);
  EXPECT_FALSE(sol.exact);
  EXPECT_EQ(sol.cost, 1);  // any single edge breaks the only triangle
}

// Sharded stats aggregation must be order-independent: MergeAdpStats is a
// commutative sum fold, so the schedule the shards complete in — here
// forced to the exact reverse of the dispatch order — must not change the
// merged stats. Guards against aggregation drift (e.g. a merge that
// overwrote instead of summed would pass the forward order by accident).
TEST(StatsTest, ShardedMergeIsScheduleOrderIndependent) {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E,F,G) :- R1(A,B), R2(A,C), R3(E,F), R4(E,G)");
  const Database db = MakeDb(
      q, {{"R1", {{1, 5}, {2, 6}, {3, 7}}},
          {"R2", {{1, 8}, {2, 9}, {3, 9}}},
          {"R3", {{4, 5}, {5, 6}, {6, 7}}},
          {"R4", {{4, 8}, {5, 9}, {6, 9}}}});

  // Baseline: fully sequential (no Parallelism at all).
  AdpStats sequential;
  AdpOptions options;
  options.stats = &sequential;
  const AdpSolution base = ComputeAdp(q, db, 3, options);

  // Inline "pools" that drain each shard batch forward and backward.
  // Both satisfy the run_all contract (every task exactly once, nestable).
  Parallelism forward;
  forward.min_groups = 2;
  forward.min_components = 2;
  forward.run_all = [](std::vector<std::function<void()>> tasks) {
    for (auto& task : tasks) task();
  };
  Parallelism reversed = forward;
  reversed.run_all = [](std::vector<std::function<void()>> tasks) {
    for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) (*it)();
  };

  AdpStats fwd_stats;
  options.stats = &fwd_stats;
  options.parallelism = &forward;
  const AdpSolution fwd = ComputeAdp(q, db, 3, options);

  AdpStats rev_stats;
  options.stats = &rev_stats;
  options.parallelism = &reversed;
  const AdpSolution rev = ComputeAdp(q, db, 3, options);

  // Results are bitwise-identical across all three schedules.
  for (const AdpSolution* sol : {&fwd, &rev}) {
    EXPECT_EQ(sol->cost, base.cost);
    EXPECT_EQ(sol->exact, base.exact);
    EXPECT_EQ(sol->feasible, base.feasible);
    EXPECT_EQ(sol->output_count, base.output_count);
    EXPECT_EQ(sol->tuples, base.tuples);
  }
  // The two sharded schedules merge to *identical* stats (engagement
  // markers included), and both match the sequential case mix modulo the
  // sharded_* markers.
  EXPECT_GT(fwd_stats.sharded_universe_nodes +
                fwd_stats.sharded_decompose_nodes,
            0);
  EXPECT_TRUE(fwd_stats == rev_stats);
  EXPECT_TRUE(StatsAgreeModuloSharding(fwd_stats, sequential));
  EXPECT_TRUE(StatsAgreeModuloSharding(rev_stats, sequential));
}

}  // namespace
}  // namespace adp
