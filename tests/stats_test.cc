// Tests for AdpStats: the recursion-tracing facility must report exactly
// which Algorithm 2 cases a query exercises.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "workload/tpch.h"

namespace adp {
namespace {

using testing::MakeDb;

TEST(StatsTest, SingletonQueryHitsSingletonOnly) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.singleton_nodes, 1);
  EXPECT_EQ(stats.greedy_leaves, 0);
  EXPECT_EQ(stats.universe_nodes, 0);
  EXPECT_EQ(stats.decompose_nodes, 0);
}

TEST(StatsTest, HardQueryHitsHeuristicLeaf) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}}},
                                 {"R2", {{1, 5}}},
                                 {"R3", {{5}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.greedy_leaves, 1);
  EXPECT_EQ(stats.singleton_nodes, 0);

  AdpStats drastic_stats;
  options.stats = &drastic_stats;
  options.heuristic = AdpOptions::Heuristic::kDrastic;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(drastic_stats.drastic_leaves, 1);
}

TEST(StatsTest, UniverseCountsGroups) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  const Database db = MakeDb(q, {{"R1", {{1, 5}, {2, 6}}},
                                 {"R2", {{1, 7}, {2, 8}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 2, options);
  EXPECT_EQ(stats.universe_nodes, 1);
  EXPECT_EQ(stats.universe_groups, 2);  // keys a=1 and a=2
}

TEST(StatsTest, SelectedTpchExercisesDecomposeAndSingleton) {
  const TpchWorkload w = MakeTpchSelected(120, 3);
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  const AdpSolution sol = ComputeAdp(w.query, w.db, 5, options);
  EXPECT_TRUE(sol.exact);
  // σθQ1 decomposes into {Supplier, PartSupp} and {LineItem}, each solved
  // by Singleton.
  EXPECT_EQ(stats.decompose_nodes, 1);
  EXPECT_EQ(stats.singleton_nodes, 2);
  EXPECT_EQ(stats.greedy_leaves, 0);
}

TEST(StatsTest, BooleanQueryCountsBooleanNode) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R2", {{1}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.boolean_nodes, 1);
  EXPECT_EQ(stats.boolean_fallbacks, 0);
}

TEST(StatsTest, NonLinearizableBooleanFallsBack) {
  // Triangle: boolean, NP-hard, no linear order -> greedy fallback.
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const Database db = MakeDb(q, {{"R1", {{1, 2}}},
                                 {"R2", {{2, 3}}},
                                 {"R3", {{3, 1}}}});
  AdpStats stats;
  AdpOptions options;
  options.stats = &stats;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_EQ(stats.boolean_fallbacks, 1);
  EXPECT_FALSE(sol.exact);
  EXPECT_EQ(sol.cost, 1);  // any single edge breaks the only triangle
}

}  // namespace
}  // namespace adp
