// Boolean (resilience) solver tests: pinned instances plus a randomized
// sweep against the exhaustive oracle.

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "query/parser.h"
#include "solver/boolean.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

TEST(BooleanSolverTest, SingleRelationNeedsFullDeletion) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}, {3}}}});
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->resilience, 3);
  EXPECT_EQ(res->cut.size(), 3u);
}

TEST(BooleanSolverTest, ChainCutAtNarrowestRelation) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 5}, {2, 6}}},
                                 {"R3", {{5}, {6}}}});
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value());
  // Cheapest: delete R1(1), R1(2) (2 tuples) or R3(5), R3(6); R2 would need
  // 3. Exogenous R2 is excluded anyway.
  EXPECT_EQ(res->resilience, 2);
}

TEST(BooleanSolverTest, SharedMiddleValueCutCheaply) {
  // All chains pass through B=5: cutting R3(5) alone kills the query.
  const ConjunctiveQuery q = ParseQuery("Q() :- R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R2", {{1, 5}, {2, 5}, {3, 5}}},
                                 {"R3", {{5}}}});
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->resilience, 1);
  ASSERT_EQ(res->cut.size(), 1u);
  EXPECT_EQ(res->cut[0].relation, 1);
}

TEST(BooleanSolverTest, VacuumRelationCutOfOne) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2()");
  Database db(2);
  db.Load(0, {{1}, {2}, {3}});
  db.rel(1).Add({});
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->resilience, 1);  // delete the vacuum tuple
}

TEST(BooleanSolverTest, CutIsVerifiable) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,E)");
  Rng rng(31);
  const Database db = RandomDb(q, rng, 15, 3);
  if (OracleCount(q, db) == 0) GTEST_SKIP();
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value());
  // Removing the cut makes the query false.
  EXPECT_EQ(CountRemovedOutputs(q, db, res->cut), 1);
}

TEST(BooleanSolverTest, TriangleIsNotLinearizable) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  const Database db = MakeDb(q, {{"R1", {{1, 2}}},
                                 {"R2", {{2, 3}}},
                                 {"R3", {{3, 1}}}});
  EXPECT_FALSE(SolveBooleanExact(q, db).has_value());
}

// Randomized sweep: on linearizable boolean queries, the min-cut resilience
// must equal the exhaustive optimum (ADP with k = 1 on a true query).
struct BooleanSweepCase {
  const char* query;
  int rows;
  int domain;
};

class BooleanOracleSweep
    : public ::testing::TestWithParam<std::tuple<BooleanSweepCase, int>> {};

TEST_P(BooleanOracleSweep, MatchesExhaustiveOptimum) {
  const auto& [c, seed] = GetParam();
  const ConjunctiveQuery q = ParseQuery(c.query);
  Rng rng(400 + seed);
  const Database db = RandomDb(q, rng, c.rows, c.domain);
  if (OracleCount(q, db) == 0) GTEST_SKIP() << "query already false";
  const auto res = SolveBooleanExact(q, db);
  ASSERT_TRUE(res.has_value()) << c.query;
  EXPECT_EQ(res->resilience, OracleAdp(q, db, 1)) << c.query;
  EXPECT_EQ(static_cast<std::int64_t>(res->cut.size()), res->resilience);
  EXPECT_EQ(CountRemovedOutputs(q, db, res->cut), 1);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BooleanOracleSweep,
    ::testing::Combine(
        ::testing::Values(
            BooleanSweepCase{"Q() :- R1(A), R2(A,B), R3(B)", 4, 3},
            BooleanSweepCase{"Q() :- R1(A,B), R2(B,C)", 4, 2},
            BooleanSweepCase{"Q() :- R1(A,B), R2(B,C), R3(C,E)", 3, 2},
            BooleanSweepCase{"Q() :- R1(A), R2(A)", 4, 3},
            BooleanSweepCase{"Q() :- R1(A,B,C), R2(A), R3(B)", 4, 2}),
        ::testing::Range(0, 8)));

}  // namespace
}  // namespace adp
