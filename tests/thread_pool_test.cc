// ThreadPool: basic draining, worker-reentrancy (the nested-future deadlock
// regression), and the work-sharing RunAll used by intra-request sharding.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.h"

namespace adp {
namespace {

using std::chrono::seconds;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::promise<void> all;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == 100) all.set_value();
    });
  }
  ASSERT_EQ(all.get_future().wait_for(seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, IsWorkerThreadDistinguishesThreads) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.IsWorkerThread());
  std::promise<bool> inside;
  pool.Submit([&] { inside.set_value(pool.IsWorkerThread()); });
  auto fut = inside.get_future();
  ASSERT_EQ(fut.wait_for(seconds(30)), std::future_status::ready);
  EXPECT_TRUE(fut.get());

  // A different pool's worker is not ours.
  ThreadPool other(1);
  std::promise<bool> foreign;
  other.Submit([&] { foreign.set_value(pool.IsWorkerThread()); });
  auto ffut = foreign.get_future();
  ASSERT_EQ(ffut.wait_for(seconds(30)), std::future_status::ready);
  EXPECT_FALSE(ffut.get());
}

// Regression: a worker that submits a task and blocks on its future used to
// deadlock a single-worker pool (the queued task could never run). Nested
// submissions now run inline.
TEST(ThreadPoolTest, NestedSubmitFromWorkerRunsInline) {
  ThreadPool pool(1);
  std::promise<bool> done;
  pool.Submit([&] {
    auto task = std::make_shared<std::packaged_task<int()>>([] { return 42; });
    std::future<int> fut = task->get_future();
    pool.Submit([task] { (*task)(); });
    const bool ready = fut.wait_for(seconds(5)) == std::future_status::ready;
    done.set_value(ready && fut.get() == 42);
  });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(seconds(30)), std::future_status::ready)
      << "nested Submit deadlocked";
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPoolTest, RunAllCompletesEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, RunAllFromWorkerDoesNotDeadlock) {
  // The caller participates in draining, so RunAll completes even when it
  // is invoked from the pool's only worker (no one else to help).
  ThreadPool pool(1);
  std::promise<int> done;
  pool.Submit([&] {
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&count] { count.fetch_add(1); });
    }
    pool.RunAll(std::move(tasks));
    done.set_value(count.load());
  });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(seconds(30)), std::future_status::ready)
      << "RunAll from worker deadlocked";
  EXPECT_EQ(fut.get(), 16);
}

TEST(ThreadPoolTest, NestedRunAllCompletes) {
  // Sharded Universe nodes inside sharded Universe nodes: RunAll tasks that
  // themselves call RunAll.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&leaves] { leaves.fetch_add(1); });
      }
      pool.RunAll(std::move(inner));
    });
  }
  pool.RunAll(std::move(outer));
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, RunAllHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  pool.RunAll({});
  int ran = 0;
  std::vector<std::function<void()>> one;
  one.push_back([&ran] { ran = 1; });
  pool.RunAll(std::move(one));
  EXPECT_EQ(ran, 1);
}

// Holds a 1-worker pool's only thread on a gate so tasks submitted
// meanwhile pile up on the queue and dequeue order is observable.
class GatedPool {
 public:
  GatedPool() : pool_(1) {
    pool_.Submit([this] { gate_.get_future().wait(); });
    // The gate task must be *running* (not queued) before the test
    // enqueues, or it would compete on priority with the test's tasks.
    while (pool_.queued() > 0) std::this_thread::yield();
  }

  ThreadPool& pool() { return pool_; }
  void Open() { gate_.set_value(); }

 private:
  ThreadPool pool_;
  std::promise<void> gate_;
};

TEST(ThreadPoolTest, HigherPriorityDequeuesFirst) {
  GatedPool gated;
  std::vector<int> order;
  std::mutex mu;
  std::promise<void> done;
  for (int p : {0, 5, -3, 9, 1}) {
    gated.pool().Submit(
        [&, p] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(p);
          if (order.size() == 5) done.set_value();
        },
        TaskAttrs{p, std::nullopt});
  }
  gated.Open();
  ASSERT_EQ(done.get_future().wait_for(seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(order, (std::vector<int>{9, 5, 1, 0, -3}));
}

TEST(ThreadPoolTest, EarliestDeadlineFirstWithinPriority) {
  GatedPool gated;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> order;
  std::mutex mu;
  std::promise<void> done;
  // Same priority; deadlines submitted latest-first, plus one deadline-less
  // task submitted first — it must still dequeue after every deadlined one.
  gated.pool().Submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(99);
        if (order.size() == 5) done.set_value();
      },
      TaskAttrs{0, std::nullopt});
  for (int ms : {400, 300, 200, 100}) {
    gated.pool().Submit(
        [&, ms] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(ms);
          if (order.size() == 5) done.set_value();
        },
        TaskAttrs{0, now + std::chrono::milliseconds(ms)});
  }
  gated.Open();
  ASSERT_EQ(done.get_future().wait_for(seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(order, (std::vector<int>{100, 200, 300, 400, 99}));
}

TEST(ThreadPoolTest, PriorityBeatsDeadline) {
  GatedPool gated;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::string> order;
  std::mutex mu;
  std::promise<void> done;
  // An urgent deadline at low priority still loses to high priority.
  gated.pool().Submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back("urgent-low");
        if (order.size() == 2) done.set_value();
      },
      TaskAttrs{0, now + std::chrono::milliseconds(1)});
  gated.pool().Submit(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back("relaxed-high");
        if (order.size() == 2) done.set_value();
      },
      TaskAttrs{1, std::nullopt});
  gated.Open();
  ASSERT_EQ(done.get_future().wait_for(seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(order,
            (std::vector<std::string>{"relaxed-high", "urgent-low"}));
}

TEST(ThreadPoolTest, QueuedReportsQueueDepthOnly) {
  GatedPool gated;
  EXPECT_EQ(gated.pool().queued(), 0u);  // the gate task is running
  std::promise<void> ran;
  gated.pool().Submit([&] { ran.set_value(); });
  EXPECT_EQ(gated.pool().queued(), 1u);
  gated.Open();
  ASSERT_EQ(ran.get_future().wait_for(seconds(30)),
            std::future_status::ready);
}

}  // namespace
}  // namespace adp
