// Shared helpers for the adp test suite: declarative database construction,
// a naive nested-loop evaluation oracle, and random query / instance
// generators for property tests.

#ifndef ADP_TESTS_TEST_UTIL_H_
#define ADP_TESTS_TEST_UTIL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "util/rng.h"

namespace adp::testing {

/// Builds a root database for `q` from rows keyed by relation name.
inline Database MakeDb(
    const ConjunctiveQuery& q,
    const std::map<std::string, std::vector<Tuple>>& rows) {
  Database db(q.num_relations());
  for (int i = 0; i < q.num_relations(); ++i) {
    auto it = rows.find(q.relation(i).name);
    if (it == rows.end()) continue;
    for (const Tuple& t : it->second) db.rel(i).Add(t);
  }
  return db;
}

/// Oracle: evaluates Q(D) by brute-force nested loops (selections honored),
/// returning the set of distinct head projections.
inline std::set<Tuple> OracleOutputs(const ConjunctiveQuery& q,
                                     const Database& db) {
  std::set<Tuple> outputs;
  const int p = q.num_relations();
  std::vector<std::size_t> idx(p, 0);

  // Assignment of values to attributes, -1-marked via a presence mask.
  std::vector<Value> assign(kMaxAttrs, 0);

  // Recursive enumeration over tuples per relation.
  std::vector<int> order(p);
  for (int i = 0; i < p; ++i) order[i] = i;

  struct Frame {
    int rel;
    std::size_t next = 0;
  };

  // Simple recursive lambda.
  auto rec = [&](auto&& self, int depth, AttrSet bound) -> void {
    if (depth == p) {
      Tuple head;
      for (AttrId a : q.head()) head.push_back(assign[a]);
      outputs.insert(head);
      return;
    }
    const int rel = order[depth];
    const RelationSchema& schema = q.relation(rel);
    const RelationInstance& inst = db.rel(rel);
    for (std::size_t t = 0; t < inst.size(); ++t) {
      const Tuple& row = inst.tuple(t);
      bool ok = true;
      for (const Selection& s : q.selections()[rel]) {
        if (row[schema.ColumnOf(s.attr)] != s.value) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (std::size_t c = 0; c < schema.attrs.size() && ok; ++c) {
        const AttrId a = schema.attrs[c];
        if (bound.Contains(a) && assign[a] != row[c]) ok = false;
      }
      if (!ok) continue;
      AttrSet nbound = bound;
      std::vector<std::pair<AttrId, Value>> saved;
      for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
        const AttrId a = schema.attrs[c];
        if (!bound.Contains(a)) {
          saved.emplace_back(a, assign[a]);
          assign[a] = row[c];
          nbound.Add(a);
        }
      }
      self(self, depth + 1, nbound);
      for (const auto& [a, v] : saved) assign[a] = v;
    }
  };
  rec(rec, 0, AttrSet());
  return outputs;
}

/// |Q(D)| by the oracle.
inline std::int64_t OracleCount(const ConjunctiveQuery& q,
                                const Database& db) {
  return static_cast<std::int64_t>(OracleOutputs(q, db).size());
}

/// Exact ADP optimum by exhaustive subset search over all input tuples
/// (oracle for solver tests). Returns the minimum number of deletions
/// removing >= k outputs, or -1 if infeasible.
inline std::int64_t OracleAdp(const ConjunctiveQuery& q, const Database& db,
                              std::int64_t k) {
  const std::int64_t total = OracleCount(q, db);
  if (k > total) return -1;
  if (k <= 0) return 0;
  struct Candidate {
    int rel;
    std::size_t row;
  };
  std::vector<Candidate> cands;
  for (int r = 0; r < q.num_relations(); ++r) {
    for (std::size_t t = 0; t < db.rel(r).size(); ++t) {
      cands.push_back({r, t});
    }
  }
  const int n = static_cast<int>(cands.size());
  for (int c = 1; c <= n; ++c) {
    std::vector<int> combo(c);
    for (int i = 0; i < c; ++i) combo[i] = i;
    while (true) {
      std::vector<std::vector<char>> removed(q.num_relations());
      for (int r = 0; r < q.num_relations(); ++r) {
        removed[r].assign(db.rel(r).size(), 0);
      }
      for (int i : combo) removed[cands[i].rel][cands[i].row] = 1;
      const Database after = WithTuplesRemoved(db, removed);
      if (total - OracleCount(q, after) >= k) return c;
      int i = c - 1;
      while (i >= 0 && combo[i] == n - (c - i)) --i;
      if (i < 0) break;
      ++combo[i];
      for (int jj = i + 1; jj < c; ++jj) combo[jj] = combo[jj - 1] + 1;
    }
  }
  return -1;
}

/// Random self-join-free CQ: up to `max_rels` relations over `num_attrs`
/// attributes, random head. Ensures every relation is nonempty-or-vacuum
/// and attribute sets are distinct (the paper's standing assumption).
inline ConjunctiveQuery RandomQuery(Rng& rng, int num_attrs, int max_rels,
                                    bool allow_vacuum = false) {
  ConjunctiveQuery q;
  for (int a = 0; a < num_attrs; ++a) {
    q.AddAttribute(std::string(1, static_cast<char>('A' + a)));
  }
  const int p = 1 + static_cast<int>(rng.Uniform(max_rels));
  std::set<std::uint64_t> used_sets;
  for (int i = 0; i < p; ++i) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      AttrSet set;
      for (int a = 0; a < num_attrs; ++a) {
        if (rng.UniformDouble() < 0.45) set.Add(a);
      }
      if (set.Empty() && !allow_vacuum) continue;
      if (!used_sets.insert(set.mask()).second) continue;
      std::vector<AttrId> attrs;
      for (AttrId a : set) attrs.push_back(a);
      q.AddRelation("R" + std::to_string(i + 1), attrs);
      break;
    }
  }
  AttrSet head;
  for (AttrId a : q.all_attrs()) {
    if (rng.UniformDouble() < 0.5) head.Add(a);
  }
  q.SetHead(head);
  return q;
}

/// Random small instance for `q`: each relation gets `rows` tuples over a
/// domain of `domain` values.
inline Database RandomDb(const ConjunctiveQuery& q, Rng& rng,
                         std::int64_t rows, std::int64_t domain) {
  Database db(q.num_relations());
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::size_t arity = q.relation(i).attrs.size();
    if (arity == 0) {
      db.rel(i).Add({});  // vacuum instance {∅}
      continue;
    }
    for (std::int64_t t = 0; t < rows; ++t) {
      Tuple row(arity);
      for (std::size_t c = 0; c < arity; ++c) {
        row[c] = static_cast<Value>(rng.Uniform(domain));
      }
      db.rel(i).Add(std::move(row));
    }
    db.rel(i).Dedup();
  }
  return db;
}

}  // namespace adp::testing

#endif  // ADP_TESTS_TEST_UTIL_H_
