// End-to-end ComputeADP tests: the paper's Figure 1 instance, exactness
// flags, counting vs reporting, infeasible targets, and workload-query
// smoke checks.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;

ConjunctiveQuery Fig1Query(const std::string& head) {
  return ParseQuery("Q(" + head + ") :- R1(A,B), R2(B,C), R3(C,E)");
}

Database Fig1Db(const ConjunctiveQuery& q) {
  return MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                    {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                    {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
}

TEST(ComputeAdpTest, PaperExampleAdpQ1K2) {
  // §3.2: ADP(Q1, D, 2) returns the single tuple R3(c3, e3), removing the
  // last two output tuples.
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 2, options);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.output_count, 4);
  EXPECT_EQ(sol.cost, 1);
  ASSERT_EQ(sol.tuples.size(), 1u);
  EXPECT_GE(sol.removed_outputs, 2);
  // Two single tuples achieve this: R3(c3,e3) (the paper's witness) or
  // R1(a2,b2) (also destroys two outputs). Either is optimal.
  const bool paper_witness =
      sol.tuples[0].relation == 2 && sol.tuples[0].row == 2u;
  const bool alt_witness =
      sol.tuples[0].relation == 0 && sol.tuples[0].row == 1u;
  EXPECT_TRUE(paper_witness || alt_witness);
}

TEST(ComputeAdpTest, InfeasibleTargetFlagged) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const AdpSolution sol = ComputeAdp(q, db, 5, AdpOptions{});
  EXPECT_FALSE(sol.feasible);
}

TEST(ComputeAdpTest, ZeroTargetIsFree) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  const AdpSolution sol = ComputeAdp(q, db, 0, AdpOptions{});
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 0);
  EXPECT_TRUE(sol.tuples.empty());
}

TEST(ComputeAdpTest, RemoveEverything) {
  const ConjunctiveQuery q = Fig1Query("A,B,C,E");
  const Database db = Fig1Db(q);
  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 4, options);
  EXPECT_TRUE(sol.feasible);
  EXPECT_GE(sol.removed_outputs, 4);
  // Resilience-style: 2 tuples suffice (e.g. R1(a1,b1) and R3(c3,e3) leave
  // ... actually removing R2(b2,*) pair? The optimum here is 2.
  EXPECT_LE(sol.cost, 3);
}

TEST(ComputeAdpTest, CountingMatchesReporting) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  Rng rng(21);
  const Database db = testing::RandomDb(q, rng, 20, 6);
  const std::int64_t total = testing::OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  for (std::int64_t k : {std::int64_t{1}, total / 2, total}) {
    if (k <= 0) continue;
    AdpOptions counting;
    counting.counting_only = true;
    AdpOptions reporting;
    reporting.verify = true;
    const AdpSolution a = ComputeAdp(q, db, k, counting);
    const AdpSolution b = ComputeAdp(q, db, k, reporting);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_TRUE(a.tuples.empty());
    EXPECT_EQ(static_cast<std::int64_t>(b.tuples.size()), b.cost);
    EXPECT_GE(b.removed_outputs, k);
  }
}

TEST(ComputeAdpTest, ExactFlagTracksQueryHardness) {
  Rng rng(23);
  // Easy: singleton query.
  {
    const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
    const Database db = testing::RandomDb(q, rng, 10, 4);
    if (testing::OracleCount(q, db) > 0) {
      EXPECT_TRUE(ComputeAdp(q, db, 1, AdpOptions{}).exact);
    }
  }
  // Hard: Qpath — the heuristic leaf clears the flag.
  {
    const ConjunctiveQuery q =
        ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
    const Database db = testing::RandomDb(q, rng, 10, 4);
    if (testing::OracleCount(q, db) > 0) {
      EXPECT_FALSE(ComputeAdp(q, db, 1, AdpOptions{}).exact);
    }
  }
}

TEST(ComputeAdpTest, BooleanResilience) {
  // ADP on a boolean query with k = 1 is the resilience problem.
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}},
                                 {"R3", {{5}, {6}}}});
  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_TRUE(sol.exact);
  EXPECT_EQ(sol.cost, 2);  // two disjoint chains; cut both
  EXPECT_GE(sol.removed_outputs, 1);
}

TEST(ComputeAdpTest, DrasticFallsBackToGreedyUnderProjection) {
  // Drastic is undefined for projections (§7.4); the dispatcher must fall
  // back to GreedyForCQ rather than produce garbage.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  Rng rng(29);
  const Database db = testing::RandomDb(q, rng, 10, 4);
  const std::int64_t total = testing::OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  AdpOptions options;
  options.heuristic = AdpOptions::Heuristic::kDrastic;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_GE(sol.removed_outputs, 1);
}

TEST(ComputeAdpTest, SingletonDisabledStillExactViaUniverse) {
  // With use_singleton = false, Q7-style queries route through Universe and
  // must produce identical optimal costs.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  Rng rng(37);
  const Database db = testing::RandomDb(q, rng, 12, 4);
  const std::int64_t total = testing::OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  AdpOptions with;
  AdpOptions without;
  without.use_singleton = false;
  for (std::int64_t k = 1; k <= total; ++k) {
    const AdpSolution a = ComputeAdp(q, db, k, with);
    const AdpSolution b = ComputeAdp(q, db, k, without);
    EXPECT_EQ(a.cost, b.cost) << "k=" << k;
    EXPECT_TRUE(b.exact);
  }
}

}  // namespace
}  // namespace adp
