// The central correctness property of the unified algorithm: on random
// poly-time queries and instances, ComputeADP's cost equals the exhaustive
// optimum for every feasible k; on NP-hard queries the reported tuple set
// is always feasible (removes >= k outputs). Exactness flags must agree
// with the dichotomy.

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;
using testing::RandomQuery;

class AdpExactnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdpExactnessSweep, PtimeQueriesMatchOracle) {
  Rng rng(2000 + GetParam());
  int tested = 0;
  for (int iter = 0; iter < 60 && tested < 6; ++iter) {
    const ConjunctiveQuery q = RandomQuery(rng, 4, 3);
    if (!IsPtime(q)) continue;
    const Database db = RandomDb(q, rng, 4, 2);
    if (db.TotalTuples() > 12) continue;
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    ++tested;
    AdpOptions options;
    options.verify = true;
    for (std::int64_t k = 1; k <= total; ++k) {
      const AdpSolution sol = ComputeAdp(q, db, k, options);
      ASSERT_TRUE(sol.feasible) << q.ToString() << " k=" << k;
      EXPECT_TRUE(sol.exact) << q.ToString();
      EXPECT_EQ(sol.cost, OracleAdp(q, db, k))
          << q.ToString() << " k=" << k;
      EXPECT_GE(sol.removed_outputs, k) << q.ToString() << " k=" << k;
      EXPECT_EQ(static_cast<std::int64_t>(sol.tuples.size()), sol.cost);
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(RandomPtime, AdpExactnessSweep,
                         ::testing::Range(0, 25));

class AdpFeasibilitySweep : public ::testing::TestWithParam<int> {};

TEST_P(AdpFeasibilitySweep, AnyQueryProducesFeasibleSolutions) {
  Rng rng(3000 + GetParam());
  for (int iter = 0; iter < 8; ++iter) {
    const ConjunctiveQuery q = RandomQuery(rng, 5, 4);
    const Database db = RandomDb(q, rng, 8, 3);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    AdpOptions options;
    options.verify = true;
    for (std::int64_t k :
         {std::int64_t{1}, (total + 1) / 2, total}) {
      if (k <= 0) continue;
      const AdpSolution sol = ComputeAdp(q, db, k, options);
      ASSERT_TRUE(sol.feasible) << q.ToString();
      EXPECT_GE(sol.removed_outputs, k) << q.ToString() << " k=" << k;
      EXPECT_LE(static_cast<std::int64_t>(sol.tuples.size()), sol.cost)
          << q.ToString();
      // Heuristic cost is never better than the optimum.
      const std::int64_t opt = OracleAdp(q, db, k);
      EXPECT_GE(sol.cost, opt) << q.ToString() << " k=" << k;
      if (sol.exact) {
        EXPECT_EQ(sol.cost, opt) << q.ToString() << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, AdpFeasibilitySweep,
                         ::testing::Range(0, 25));

TEST(AdpExactFlagTest, ExactImpliedByPtimeOnRandomQueries) {
  Rng rng(4444);
  for (int iter = 0; iter < 150; ++iter) {
    const ConjunctiveQuery q = RandomQuery(rng, 5, 4);
    const Database db = RandomDb(q, rng, 6, 3);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    const AdpSolution sol = ComputeAdp(q, db, 1, AdpOptions{});
    if (IsPtime(q)) {
      EXPECT_TRUE(sol.exact) << q.ToString();
    }
  }
}

TEST(AdpDeterminismTest, SameSeedSameSolution) {
  Rng rng(555);
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = RandomDb(q, rng, 20, 6);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  const AdpSolution a = ComputeAdp(q, db, total / 2 + 1, AdpOptions{});
  const AdpSolution b = ComputeAdp(q, db, total / 2 + 1, AdpOptions{});
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.tuples.size(), b.tuples.size());
  for (std::size_t i = 0; i < a.tuples.size(); ++i) {
    EXPECT_EQ(a.tuples[i].relation, b.tuples[i].relation);
    EXPECT_EQ(a.tuples[i].row, b.tuples[i].row);
  }
}

}  // namespace
}  // namespace adp
