// Tests for the §9 deletion-restriction extension: protected tuples are
// never deleted, boolean subproblems stay exact, infeasibility is detected,
// and restricted optima match a restricted exhaustive oracle.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "solver/boolean.h"
#include "solver/brute_force.h"
#include "solver/compute_adp.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleCount;

TEST(RestrictionsTest, MaskBasics) {
  DeletionRestrictions r;
  EXPECT_TRUE(r.Empty());
  r.Protect(1, 5);
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE(r.IsProtected(1, 5));
  EXPECT_FALSE(r.IsProtected(1, 4));
  EXPECT_FALSE(r.IsProtected(0, 5));
  EXPECT_FALSE(r.IsProtected(7, 0));
}

TEST(RestrictionsTest, GreedyAvoidsProtectedTuples) {
  // The hub tuple R3(5) is the obvious greedy pick; protect it.
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}, {3}}},
                                 {"R2", {{1, 5}, {2, 5}, {3, 5}}},
                                 {"R3", {{5}}}});
  DeletionRestrictions restrictions;
  restrictions.Protect(2, 0);  // R3(5)
  AdpOptions options;
  options.restrictions = &restrictions;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 2, options);
  ASSERT_TRUE(sol.feasible);
  for (const TupleRef& t : sol.tuples) {
    EXPECT_FALSE(restrictions.IsProtected(t.relation, t.row));
  }
  EXPECT_GE(sol.removed_outputs, 2);
  EXPECT_EQ(sol.cost, 2);  // two R1/R2 tuples instead of the one hub
}

TEST(RestrictionsTest, InfeasibleWhenEverythingProtected) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}}},
                                 {"R2", {{1, 5}}},
                                 {"R3", {{5}}}});
  DeletionRestrictions restrictions;
  for (int r = 0; r < 3; ++r) restrictions.Protect(r, 0);
  AdpOptions options;
  options.restrictions = &restrictions;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_FALSE(sol.feasible);
}

TEST(RestrictionsTest, BooleanStaysExact) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}},
                                 {"R3", {{5}, {6}}}});
  // Unrestricted resilience is 2 (two disjoint chains). Protect R1 fully:
  // the cut must use R3 (R2 is exogenous), still 2.
  DeletionRestrictions restrictions;
  restrictions.Protect(0, 0);
  restrictions.Protect(0, 1);
  const auto res = SolveBooleanExact(q, db, &restrictions);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->resilience, 2);
  for (const TupleRef& t : res->cut) {
    EXPECT_NE(t.relation, 0);
  }
  // ComputeAdp agrees and keeps exactness.
  AdpOptions options;
  options.restrictions = &restrictions;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_TRUE(sol.exact);
  EXPECT_EQ(sol.cost, 2);
}

TEST(RestrictionsTest, BooleanInfeasibleUnderFullProtection) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R3(A)");
  const Database db = MakeDb(q, {{"R1", {{1}}}, {"R3", {{1}}}});
  DeletionRestrictions restrictions;
  restrictions.Protect(0, 0);
  restrictions.Protect(1, 0);
  AdpOptions options;
  options.restrictions = &restrictions;
  const AdpSolution sol = ComputeAdp(q, db, 1, options);
  EXPECT_FALSE(sol.feasible);
}

TEST(RestrictionsTest, BruteForceRespectsMask) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  DeletionRestrictions restrictions;
  restrictions.Protect(0, 0);  // R1(1)
  restrictions.Protect(1, 0);  // R2(1,5)
  const auto sol = BruteForceAdp(q, db, 1, -1, &restrictions);
  ASSERT_TRUE(sol.has_value());
  for (const TupleRef& t : sol->tuples) {
    EXPECT_FALSE(restrictions.IsProtected(t.relation, t.row));
  }
  // Output (1,5) cannot be removed; (2,6) can, via R1(2) or R2(2,6).
  EXPECT_EQ(sol->cost, 1);
  // Removing 2 outputs is impossible now.
  EXPECT_FALSE(BruteForceAdp(q, db, 2, -1, &restrictions).has_value());
}

// Property: restricted ComputeAdp never deletes protected tuples and its
// cost is an upper bound on the restricted brute-force optimum.
class RestrictedSweep : public ::testing::TestWithParam<int> {};

TEST_P(RestrictedSweep, FeasibleAndMaskRespected) {
  Rng rng(13000 + GetParam());
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = testing::RandomDb(q, rng, 5, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total < 2 || db.TotalTuples() > 13) GTEST_SKIP();

  DeletionRestrictions restrictions;
  for (int r = 0; r < q.num_relations(); ++r) {
    for (std::size_t t = 0; t < db.rel(r).size(); ++t) {
      if (rng.UniformDouble() < 0.3) {
        restrictions.Protect(r, static_cast<TupleId>(t));
      }
    }
  }
  AdpOptions options;
  options.restrictions = &restrictions;
  options.verify = true;
  const std::int64_t k = total / 2 + 1;
  const AdpSolution sol = ComputeAdp(q, db, k, options);
  const auto brute = BruteForceAdp(q, db, k, -1, &restrictions);
  if (!brute.has_value()) {
    // Restricted target genuinely infeasible; the solver must agree.
    EXPECT_FALSE(sol.feasible);
    return;
  }
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.removed_outputs, k);
  EXPECT_GE(sol.cost, brute->cost);
  for (const TupleRef& t : sol.tuples) {
    EXPECT_FALSE(restrictions.IsProtected(t.relation, t.row));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RestrictedSweep,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace adp
