// AdpEngine: plan-cache accounting, equivalence with the direct ComputeAdp
// path, database interning, typed Status errors, PreparedQuery hot path,
// cancellation/deadline tickets, coalescing admission, and multi-threaded
// smoke tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/completion_queue.h"
#include "engine/engine.h"
#include "engine/grouped_workload.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::RandomDb;
using testing::RandomQuery;

constexpr char kChainText[] = "Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)";

NamedDatabase Fig1NamedDb() {
  const ConjunctiveQuery q = ParseQuery(kChainText);
  NamedDatabase named;
  named.relation_names = {"R1", "R2", "R3"};
  named.db = MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                        {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                        {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
  return named;
}

/// Occupies the single worker of `engine` until `release` is satisfied, and
/// resolves `plugged` once the worker is provably busy. Used to make "still
/// queued" states deterministic.
struct WorkerPlug {
  std::promise<void> plugged;
  std::promise<void> release;

  void Install(AdpEngine& engine, DbId db) {
    AdpRequest plug;
    plug.query_text = "Q() :- R1(A,B)";
    plug.db = db;
    plug.k = 0;
    auto released = std::make_shared<std::future<void>>(release.get_future());
    engine.SubmitAsync(plug, [this, released](AdpResponse) {
      plugged.set_value();
      released->wait();
    });
    plugged.get_future().wait();
  }
};

TEST(AdpEngineTest, PlanCacheHitAndMissCounting) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;

  AdpResponse first = engine.Execute(req);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_FALSE(first.plan_cache_hit);

  AdpResponse second = engine.Execute(req);
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.failures, 0u);
  EXPECT_EQ(c.plan_misses, 1u);
  EXPECT_EQ(c.plan_hits, 1u);
  EXPECT_EQ(c.plan_cache_size, 1u);

  // A structurally different query is a fresh miss.
  AdpRequest other = req;
  other.query_text = "Q() :- R1(A,B), R2(B,C), R3(C,E)";
  ASSERT_TRUE(engine.Execute(other).ok());
  EXPECT_EQ(engine.counters().plan_misses, 2u);
}

TEST(AdpEngineTest, MatchesDirectComputeAdp) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = MakeDb(
      q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
          {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
          {"R3", {{31, 41}, {32, 43}, {33, 43}}}});

  for (std::int64_t k = 0; k <= 5; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    req.options.verify = true;
    const AdpResponse resp = engine.Execute(req);
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();

    AdpOptions options;
    options.verify = true;
    const AdpSolution direct = ComputeAdp(q, direct_db, k, options);
    EXPECT_EQ(resp.solution.cost, direct.cost) << "k=" << k;
    EXPECT_EQ(resp.solution.exact, direct.exact) << "k=" << k;
    EXPECT_EQ(resp.solution.feasible, direct.feasible) << "k=" << k;
    EXPECT_EQ(resp.solution.output_count, direct.output_count) << "k=" << k;
    EXPECT_EQ(resp.solution.tuples, direct.tuples) << "k=" << k;
    EXPECT_EQ(resp.solution.removed_outputs, direct.removed_outputs)
        << "k=" << k;
  }
}

TEST(AdpEngineTest, PreParsedQueriesShareCanonicalPlans) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query = ParseQuery(kChainText);
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok());

  // A renamed copy canonicalizes to the same plan key.
  AdpRequest renamed;
  renamed.query = ParseQuery("Q(U,V,W,X) :- R1(U,V), R2(V,W), R3(W,X)");
  renamed.db = db;
  renamed.k = 2;
  const AdpResponse resp = engine.Execute(renamed);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_TRUE(resp.plan_cache_hit);
}

TEST(AdpEngineTest, StructurallyIdenticalQueriesOverDifferentRelationsDoNotShareBindings) {
  // Regression: the canonical key ignores relation names, but named-database
  // binding does not — a plan cached for R1/R2 must not serve S1/S2.
  AdpEngine engine(EngineConfig{.num_workers = 1});

  NamedDatabase r_db;
  r_db.relation_names = {"R1", "R2"};
  r_db.db.Append({});
  r_db.db.rel(0).Add({1, 2});
  r_db.db.Append({});
  r_db.db.rel(1).Add({2, 3});
  const DbId r_id = engine.RegisterDatabase(std::move(r_db));

  NamedDatabase s_db;
  s_db.relation_names = {"S1", "S2"};
  s_db.db.Append({});
  s_db.db.rel(0).Add({1, 2});
  s_db.db.Append({});
  s_db.db.rel(1).Add({2, 3});
  const DbId s_id = engine.RegisterDatabase(std::move(s_db));

  AdpRequest r_req;
  r_req.query = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  r_req.db = r_id;
  r_req.k = 1;
  const AdpResponse r_resp = engine.Execute(r_req);
  ASSERT_TRUE(r_resp.ok()) << r_resp.status.ToString();
  EXPECT_EQ(r_resp.solution.output_count, 1);

  AdpRequest s_req;
  s_req.query = ParseQuery("Q(A,B) :- S1(A,B), S2(B,C)");
  s_req.db = s_id;
  s_req.k = 1;
  const AdpResponse s_resp = engine.Execute(s_req);
  ASSERT_TRUE(s_resp.ok()) << s_resp.status.ToString();
  // Before the fix this hit R1/R2's plan, bound empty instances, and
  // reported output_count == 0.
  EXPECT_EQ(s_resp.solution.output_count, 1);
  EXPECT_EQ(s_resp.solution.cost, r_resp.solution.cost);
  EXPECT_FALSE(s_resp.plan_cache_hit);
}

TEST(AdpEngineTest, DatabaseInterningSharesBindings) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine.Execute(req).ok());

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.binding_misses, 1u);
  EXPECT_EQ(c.binding_hits, 4u);
  EXPECT_EQ(c.databases, 1u);
}

TEST(AdpEngineTest, UnregisterDatabaseReleasesAndNeverReusesIds) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  ASSERT_NE(engine.database(db), nullptr);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 1;
  ASSERT_TRUE(engine.Execute(req).ok());

  EXPECT_TRUE(engine.UnregisterDatabase(db));
  EXPECT_EQ(engine.database(db), nullptr);
  EXPECT_FALSE(engine.UnregisterDatabase(db));  // already released
  EXPECT_EQ(engine.counters().databases, 0u);

  // A released id stays dead: requests against it fail typed, and a fresh
  // registration gets a new id (never aliasing the old handle).
  EXPECT_EQ(engine.Execute(req).status.code(), StatusCode::kUnknownDatabase);
  const DbId fresh = engine.RegisterDatabase(Fig1NamedDb());
  EXPECT_NE(fresh, db);
  EXPECT_EQ(engine.counters().databases, 1u);

  // The new instance answers correctly — its bindings were not poisoned by
  // the released database's cache entries.
  req.db = fresh;
  const AdpResponse r = engine.Execute(req);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.solution.feasible);
}

TEST(AdpEngineTest, ErrorsCarryTypedStatusCodes) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest bad_query;
  bad_query.query_text = "this is not datalog";
  bad_query.db = db;
  const AdpResponse r1 = engine.Execute(bad_query);
  EXPECT_EQ(r1.status.code(), StatusCode::kParseError);
  EXPECT_FALSE(r1.status.message().empty());

  AdpRequest bad_db;
  bad_db.query_text = kChainText;
  bad_db.db = 999;
  const AdpResponse r2 = engine.Execute(bad_db);
  EXPECT_EQ(r2.status.code(), StatusCode::kUnknownDatabase);
  EXPECT_NE(r2.status.message().find("database"), std::string::npos);

  AdpRequest bad_rel;
  bad_rel.query_text = "Q(A,B,C) :- R1(A,B), R9(B,C)";  // R9 does not exist
  bad_rel.db = db;
  bad_rel.k = 1;
  const AdpResponse r3 = engine.Execute(bad_rel);
  EXPECT_EQ(r3.status.code(), StatusCode::kUnknownRelation);
  EXPECT_NE(r3.status.message().find("R9"), std::string::npos)
      << r3.status.ToString();

  // A failed parse is not cached: the next occurrence fails afresh.
  const AdpResponse r4 = engine.Execute(bad_query);
  EXPECT_EQ(r4.status.code(), StatusCode::kParseError);
  EXPECT_EQ(engine.counters().failures, 4u);

  // Correctly named atoms still bind.
  bad_rel.query_text = kChainText;
  EXPECT_TRUE(engine.Execute(bad_rel).ok());

  // Every code has a distinct name and exit code.
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_EQ(StatusExitCode(StatusCode::kOk), 0);
  EXPECT_NE(StatusExitCode(StatusCode::kParseError),
            StatusExitCode(StatusCode::kCancelled));
}

TEST(AdpEngineTest, BatchPreservesRequestOrder) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  std::vector<AdpRequest> batch;
  for (std::int64_t k = 0; k <= 4; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    batch.push_back(req);
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 5u);
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;
  // Batch order must match request order: check each k against direct.
  for (std::int64_t k = 0; k <= 4; ++k) {
    ASSERT_TRUE(out[static_cast<std::size_t>(k)].ok());
    const AdpSolution direct = ComputeAdp(q, direct_db, k, AdpOptions{});
    EXPECT_EQ(out[static_cast<std::size_t>(k)].solution.cost, direct.cost);
  }
}

// >= 100 mixed requests across >= 4 workers: every response must be
// bit-identical to the direct single-threaded path.
TEST(AdpEngineTest, ConcurrentMixedWorkloadSmoke) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  ASSERT_GE(engine.num_workers(), 4);

  Rng rng(987654321);
  struct Case {
    ConjunctiveQuery query;
    DbId db;
    std::int64_t k;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 12; ++i) {
    Case c;
    c.query = RandomQuery(rng, 4, 3);
    c.db = engine.RegisterDatabase(RandomDb(c.query, rng, 4, 3));
    c.k = static_cast<std::int64_t>(rng.Uniform(4));
    cases.push_back(std::move(c));
  }

  std::vector<AdpRequest> batch;
  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    AdpRequest req;
    req.query = c.query;
    req.db = c.db;
    req.k = c.k;
    batch.push_back(std::move(req));
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 120u);

  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    const AdpResponse& resp = out[static_cast<std::size_t>(i)];
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    const AdpSolution direct =
        ComputeAdp(c.query, engine.database(c.db)->db, c.k, AdpOptions{});
    ASSERT_EQ(resp.solution.cost, direct.cost) << "request " << i;
    ASSERT_EQ(resp.solution.exact, direct.exact) << "request " << i;
    ASSERT_EQ(resp.solution.feasible, direct.feasible) << "request " << i;
    ASSERT_EQ(resp.solution.tuples, direct.tuples) << "request " << i;
  }

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 120u);
  EXPECT_EQ(c.failures, 0u);
  // 12 distinct structures (at most; random queries may collide), 120
  // requests: every repeat was served either from the plan cache or by
  // joining an identical in-flight solve (single-flight dedup).
  EXPECT_LE(c.plan_misses, 12u);
  EXPECT_GE(c.plan_hits + c.dedup_hits, 108u);
}

// N identical concurrent requests must perform exactly one solve: the first
// becomes the leader, the rest join its in-flight entry and receive copies.
TEST(AdpEngineTest, IdenticalConcurrentRequestsShareOneSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  constexpr int kIdentical = 8;
  std::vector<std::future<AdpResponse>> futures;
  for (int i = 0; i < kIdentical; ++i) futures.push_back(engine.Submit(req));
  plug.release.set_value();

  int deduped = 0;
  for (auto& fut : futures) {
    const AdpResponse resp = fut.get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.solution.cost, 1);
    if (resp.deduped) ++deduped;
  }
  EXPECT_EQ(deduped, kIdentical - 1);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 1u + kIdentical);
  EXPECT_EQ(c.dedup_hits, kIdentical - 1u);
  // Exactly one solve of the chain query: one plan build and one binding
  // for it (the other miss of each is the plug request) and zero lookups
  // from the followers.
  EXPECT_EQ(c.plan_misses, 2u);
  EXPECT_EQ(c.plan_hits, 0u);
  EXPECT_EQ(c.binding_misses, 2u);
  EXPECT_EQ(c.binding_hits, 0u);
}

TEST(AdpEngineTest, SubmitAsyncInvokesCallback) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  std::promise<AdpResponse> done;
  const AdpTicket ticket = engine.SubmitAsync(
      req, [&](AdpResponse r) { done.set_value(std::move(r)); });
  EXPECT_TRUE(ticket.valid());
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  const AdpResponse resp = fut.get();
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.solution.cost, 1);
}

TEST(AdpEngineTest, CompletionQueueDeliversTaggedCompletions) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;

  CompletionQueue cq;
  for (std::int64_t k = 0; k <= 5; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    engine.SubmitToQueue(std::move(req), cq, static_cast<std::uint64_t>(k));
  }

  const std::vector<Completion> done = cq.Drain();
  ASSERT_EQ(done.size(), 6u);
  std::vector<bool> seen(6, false);
  for (const Completion& c : done) {
    ASSERT_LT(c.tag, 6u);
    EXPECT_FALSE(seen[c.tag]);
    seen[c.tag] = true;
    ASSERT_TRUE(c.response.ok()) << c.response.status.ToString();
    const AdpSolution direct =
        ComputeAdp(q, direct_db, static_cast<std::int64_t>(c.tag), {});
    EXPECT_EQ(c.response.solution.cost, direct.cost) << "tag " << c.tag;
  }
  EXPECT_EQ(cq.outstanding(), 0u);
  EXPECT_FALSE(cq.Poll().has_value());
  EXPECT_FALSE(cq.Next().has_value());  // nothing pending: returns, no block

  // Poll/Next also see completions one at a time.
  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  engine.SubmitToQueue(std::move(req), cq, 42);
  const auto next = cq.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->tag, 42u);
  EXPECT_TRUE(next->response.ok());
}

// The typed Status must round-trip through the CompletionQueue unchanged:
// one completion per submission whatever the outcome, each carrying the
// code the synchronous path would have reported.
TEST(AdpEngineTest, StatusRoundTripsThroughCompletionQueue) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  CompletionQueue cq;
  AdpRequest good;
  good.query_text = kChainText;
  good.db = db;
  good.k = 2;
  engine.SubmitToQueue(good, cq, 1);

  AdpRequest bad_parse;
  bad_parse.query_text = "not datalog";
  bad_parse.db = db;
  engine.SubmitToQueue(bad_parse, cq, 2);

  AdpRequest bad_db;
  bad_db.query_text = kChainText;
  bad_db.db = 999;
  engine.SubmitToQueue(bad_db, cq, 3);

  std::vector<Completion> done = cq.Drain();
  ASSERT_EQ(done.size(), 3u);
  for (const Completion& c : done) {
    switch (c.tag) {
      case 1:
        EXPECT_EQ(c.response.status.code(), StatusCode::kOk);
        break;
      case 2:
        EXPECT_EQ(c.response.status.code(), StatusCode::kParseError);
        break;
      case 3:
        EXPECT_EQ(c.response.status.code(), StatusCode::kUnknownDatabase);
        break;
      default:
        FAIL() << "unexpected tag " << c.tag;
    }
  }

  // A cancellation round-trips too — pushed at Cancel() time, while the
  // request is still queued behind the plugged worker.
  WorkerPlug plug;
  plug.Install(engine, db);
  AdpRequest queued;
  queued.query_text = kChainText;
  queued.db = db;
  queued.k = 3;
  AdpTicket ticket = engine.SubmitToQueue(queued, cq, 4);
  EXPECT_TRUE(ticket.Cancel());
  const auto completion = cq.Next();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->tag, 4u);
  EXPECT_EQ(completion->response.status.code(), StatusCode::kCancelled);
  plug.release.set_value();
}

// Regression: ExecuteBatch/Submit from inside a pool worker used to park
// every worker on futures whose tasks nobody was left to run. With one
// worker this deadlocked deterministically; nested submissions now run
// inline.
TEST(AdpEngineTest, NestedBatchFromWorkerRunsInline) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest outer;
  outer.query_text = "Q() :- R1(A,B)";
  outer.db = db;
  outer.k = 0;
  std::promise<std::vector<AdpResponse>> done;
  engine.SubmitAsync(outer, [&](AdpResponse) {
    // Runs on the engine's only worker thread.
    std::vector<AdpRequest> batch;
    for (std::int64_t k = 0; k <= 2; ++k) {
      AdpRequest req;
      req.query_text = kChainText;
      req.db = db;
      req.k = k;
      batch.push_back(std::move(req));
    }
    done.set_value(engine.ExecuteBatch(std::move(batch)));
  });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "nested ExecuteBatch deadlocked";
  const std::vector<AdpResponse> out = fut.get();
  ASSERT_EQ(out.size(), 3u);
  for (const AdpResponse& r : out) EXPECT_TRUE(r.ok()) << r.status.ToString();
}

// Intra-request sharding must be invisible in the results: a sharded solve
// of a Universe-heavy request is bitwise-identical to the sequential one.
TEST(AdpEngineTest, IntraRequestShardingMatchesSequential) {
  EngineConfig sharded_cfg;
  sharded_cfg.num_workers = 4;
  sharded_cfg.min_shard_groups = 2;
  AdpEngine sharded(sharded_cfg);

  EngineConfig sequential_cfg;
  sequential_cfg.num_workers = 4;
  sequential_cfg.min_shard_groups = 0;  // sharding off
  AdpEngine sequential(sequential_cfg);

  Rng rng(4242);
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  int sharded_nodes = 0;
  for (int iter = 0; iter < 10; ++iter) {
    Database db = RandomDb(q, rng, 12, 5);
    AdpRequest req;
    req.query = q;
    req.db = sharded.RegisterDatabase(db);
    req.k = 1 + static_cast<std::int64_t>(rng.Uniform(6));
    req.options.verify = true;
    const AdpResponse a = sharded.Execute(req);

    req.db = sequential.RegisterDatabase(std::move(db));
    const AdpResponse b = sequential.Execute(req);

    ASSERT_EQ(a.ok(), b.ok()) << "iter " << iter << ": "
                              << a.status.ToString() << b.status.ToString();
    if (!a.ok()) continue;
    EXPECT_EQ(a.solution.cost, b.solution.cost) << "iter " << iter;
    EXPECT_EQ(a.solution.exact, b.solution.exact) << "iter " << iter;
    EXPECT_EQ(a.solution.feasible, b.solution.feasible) << "iter " << iter;
    EXPECT_EQ(a.solution.output_count, b.solution.output_count)
        << "iter " << iter;
    EXPECT_EQ(a.solution.tuples, b.solution.tuples) << "iter " << iter;
    EXPECT_EQ(a.solution.removed_outputs, b.solution.removed_outputs)
        << "iter " << iter;
    // The recursion trace must also match: sharding may only differ in the
    // sharded_* engagement markers, never in which cases ran how often.
    EXPECT_TRUE(StatsAgreeModuloSharding(a.stats, b.stats))
        << "iter " << iter;
    sharded_nodes += a.stats.sharded_universe_nodes;
    EXPECT_EQ(b.stats.sharded_universe_nodes, 0) << "iter " << iter;
  }
  // The workload is Universe-shaped: sharding must actually have engaged.
  EXPECT_GT(sharded_nodes, 0);
}

// Decompose-axis twin of the test above: sharding the connected-component
// sub-solves must be invisible in the results, and the engine must roll the
// per-solve engagement up into EngineCounters::sharded_decompose_nodes.
TEST(AdpEngineTest, DecomposeShardingMatchesSequential) {
  EngineConfig sharded_cfg;
  sharded_cfg.num_workers = 4;
  sharded_cfg.min_shard_components = 2;
  sharded_cfg.min_shard_groups = 0;  // isolate the Decompose axis
  AdpEngine sharded(sharded_cfg);

  EngineConfig sequential_cfg;
  sequential_cfg.num_workers = 4;
  sequential_cfg.min_shard_components = 0;
  sequential_cfg.min_shard_groups = 0;
  AdpEngine sequential(sequential_cfg);

  Rng rng(4343);
  // Two connected components ({R1,R2} and {R3,R4}), combined by the
  // cross-product DP.
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E) :- R1(A), R2(A,B), R3(C), R4(C,E)");
  std::uint64_t sharded_nodes = 0;
  for (int iter = 0; iter < 10; ++iter) {
    Database db = RandomDb(q, rng, 12, 5);
    AdpRequest req;
    req.query = q;
    req.db = sharded.RegisterDatabase(db);
    req.k = 1 + static_cast<std::int64_t>(rng.Uniform(6));
    req.options.verify = true;
    const AdpResponse a = sharded.Execute(req);

    req.db = sequential.RegisterDatabase(std::move(db));
    const AdpResponse b = sequential.Execute(req);

    ASSERT_EQ(a.ok(), b.ok()) << "iter " << iter << ": "
                              << a.status.ToString() << b.status.ToString();
    if (!a.ok()) continue;
    EXPECT_EQ(a.solution.cost, b.solution.cost) << "iter " << iter;
    EXPECT_EQ(a.solution.exact, b.solution.exact) << "iter " << iter;
    EXPECT_EQ(a.solution.feasible, b.solution.feasible) << "iter " << iter;
    EXPECT_EQ(a.solution.output_count, b.solution.output_count)
        << "iter " << iter;
    EXPECT_EQ(a.solution.tuples, b.solution.tuples) << "iter " << iter;
    EXPECT_EQ(a.solution.removed_outputs, b.solution.removed_outputs)
        << "iter " << iter;
    // Case-mix equality modulo the engagement markers (see the Universe
    // twin above).
    EXPECT_TRUE(StatsAgreeModuloSharding(a.stats, b.stats))
        << "iter " << iter;
    sharded_nodes +=
        static_cast<std::uint64_t>(a.stats.sharded_decompose_nodes);
    EXPECT_EQ(b.stats.sharded_decompose_nodes, 0) << "iter " << iter;
  }
  // The workload is Decompose-shaped: sharding must actually have engaged,
  // and the engine-level rollup must agree with the per-response stats.
  EXPECT_GT(sharded_nodes, 0u);
  EXPECT_EQ(sharded.counters().sharded_decompose_nodes, sharded_nodes);
  EXPECT_EQ(sequential.counters().sharded_decompose_nodes, 0u);
}

// Cancelling a sharded Decompose request mid-solve must surface kCancelled
// with no partial results — the default-constructed solution, not a
// half-combined profile. The race with solve completion is inherent
// (Cancel may lose), so OK is tolerated; a hang, crash, or partially
// filled kCancelled response is not. Run under TSan in CI.
TEST(AdpEngineTest, CancelledShardedDecomposeHasNoPartialResults) {
  EngineConfig config;
  config.num_workers = 2;
  config.min_shard_components = 2;
  config.min_shard_groups = 0;
  AdpEngine engine(config);

  // Two heavyweight components, each the bench's universe workload.
  constexpr std::int64_t kGroups = 16;
  constexpr std::int64_t kRows = 3000;
  NamedDatabase named;
  Rng rng(17);
  for (int comp = 0; comp < 2; ++comp) {
    const std::string n = std::to_string(comp + 1);
    AppendGroupedComponent(named, rng, kRows, kGroups, "S" + n, "T" + n,
                           "U" + n);
  }
  const DbId db = engine.RegisterDatabase(std::move(named));

  AdpRequest req;
  req.query_text =
      "Q(A1,A2) :- S1(A1,B1), T1(A1,B1,C1), U1(A1,C1), "
      "S2(A2,B2), T2(A2,B2,C2), U2(A2,C2)";
  req.db = db;
  req.k = 4;
  req.options.counting_only = true;

  AdpTicket ticket;
  std::future<AdpResponse> fut = engine.Submit(req, &ticket);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticket.Cancel();

  ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "cancelled sharded Decompose solve hung";
  const AdpResponse resp = fut.get();
  if (resp.status.code() == StatusCode::kCancelled) {
    // No partial results may leak out of an aborted solve.
    EXPECT_TRUE(resp.solution.tuples.empty());
    EXPECT_EQ(resp.solution.cost, 0);
    EXPECT_EQ(resp.solution.output_count, 0);
    EXPECT_GE(engine.counters().cancelled, 1u);
  } else {
    ASSERT_EQ(resp.status.code(), StatusCode::kOk) << resp.status.ToString();
  }

  // The engine stays fully usable afterwards.
  const AdpResponse clean = engine.Execute(req);
  ASSERT_TRUE(clean.ok()) << clean.status.ToString();
  EXPECT_GT(clean.stats.sharded_decompose_nodes, 0);
}

TEST(AdpEngineTest, ClearCachesUnderLoadStaysCorrect) {
  EngineConfig config;
  config.num_workers = 4;
  config.plan_cache_capacity = 4;
  config.binding_cache_capacity = 2;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  // Precompute the expected answers for k = 0..4.
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;
  std::vector<std::int64_t> expected;
  for (std::int64_t k = 0; k <= 4; ++k) {
    expected.push_back(ComputeAdp(q, direct_db, k, {}).cost);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const std::int64_t k = (t + i) % 5;
        AdpRequest req;
        req.query_text = kChainText;
        req.db = db;
        req.k = k;
        const AdpResponse resp = engine.Execute(req);
        if (!resp.ok() ||
            resp.solution.cost != expected[static_cast<std::size_t>(k)]) {
          ++mismatches;
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    engine.ClearCaches();
    std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AdpEngineTest, LruEvictionBoundsCacheSize) {
  EngineConfig config;
  config.num_workers = 1;
  config.plan_cache_capacity = 2;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  const char* texts[] = {
      "Q() :- R1(A,B)",
      "Q(A) :- R1(A,B)",
      "Q(A,B) :- R1(A,B)",
  };
  for (const char* text : texts) {
    AdpRequest req;
    req.query_text = text;
    req.db = db;
    req.k = 0;
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  EXPECT_LE(engine.counters().plan_cache_size, 2u);
}

// --- PreparedQuery -----------------------------------------------------------

// The acceptance bar of the prepared hot path: after Prepare + Bind, a
// request performs ZERO plan-cache and ZERO binding-cache probes, while the
// text path pays one of each per request.
TEST(AdpEngineTest, PreparedHotPathSkipsCacheProbes) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->valid());
  ASSERT_NE(prepared->fingerprint(), 0u);
  ASSERT_TRUE(prepared->Bind(db).ok());
  ASSERT_TRUE(prepared->bound());
  EXPECT_EQ(prepared->bound_db(), db);

  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;

  constexpr int kRequests = 10;
  const EngineCounters before = engine.counters();
  for (int i = 0; i < kRequests; ++i) {
    const AdpResponse resp = engine.Execute(*prepared, /*k=*/2);
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    EXPECT_TRUE(resp.plan_cache_hit);  // static work pinned
    EXPECT_EQ(resp.solution.cost, ComputeAdp(q, direct_db, 2, {}).cost);
    EXPECT_EQ(resp.fingerprint, prepared->fingerprint());
  }
  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.requests, before.requests + kRequests);
  // Zero per-request cache traffic on the prepared path.
  EXPECT_EQ(after.plan_hits, before.plan_hits);
  EXPECT_EQ(after.plan_misses, before.plan_misses);
  EXPECT_EQ(after.binding_hits, before.binding_hits);
  EXPECT_EQ(after.binding_misses, before.binding_misses);

  // Text path: one plan probe and one binding probe per request.
  for (int i = 0; i < kRequests; ++i) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = 2;
    ASSERT_TRUE(engine.Execute(req).ok());
  }
  const EngineCounters text = engine.counters();
  EXPECT_EQ(text.plan_hits + text.plan_misses,
            after.plan_hits + after.plan_misses + kRequests);
  EXPECT_EQ(text.binding_hits + text.binding_misses,
            after.binding_hits + after.binding_misses + kRequests);
}

TEST(AdpEngineTest, PreparedUnboundResolvesDatabasePerRequest) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok());
  ASSERT_FALSE(prepared->bound());

  AdpRequest req;
  req.prepared = *prepared;
  req.db = db;
  req.k = 2;
  const EngineCounters before = engine.counters();
  const AdpResponse resp = engine.Execute(req);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.solution.cost, 1);
  const EngineCounters after = engine.counters();
  // Plan pinned (no plan probe), but the binding resolves per request.
  EXPECT_EQ(after.plan_hits + after.plan_misses,
            before.plan_hits + before.plan_misses);
  EXPECT_EQ(after.binding_hits + after.binding_misses,
            before.binding_hits + before.binding_misses + 1);

  // Unknown database id still fails typed.
  req.db = 777;
  EXPECT_EQ(engine.Execute(req).status.code(), StatusCode::kUnknownDatabase);
}

TEST(AdpEngineTest, PreparedSubmitAndDedupAcrossHandleAndCopies) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind(db).ok());
  const PreparedQuery copy = *prepared;  // handles are cheap value types

  WorkerPlug plug;
  plug.Install(engine, db);

  std::vector<std::future<AdpResponse>> futures;
  futures.push_back(engine.Submit(*prepared, /*k=*/2));
  futures.push_back(engine.Submit(copy, /*k=*/2));  // same pinned identity
  plug.release.set_value();

  int deduped = 0;
  for (auto& fut : futures) {
    const AdpResponse resp = fut.get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.solution.cost, 1);
    if (resp.deduped) ++deduped;
  }
  EXPECT_EQ(deduped, 1);
  EXPECT_EQ(engine.counters().dedup_hits, 1u);
}

TEST(AdpEngineTest, PreparedValidationIsTyped) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  AdpEngine other(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  // Parse failure comes back as a Status, not an exception.
  EXPECT_EQ(engine.Prepare("not a query").status().code(),
            StatusCode::kParseError);

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok());

  // Binding to a database the engine doesn't know.
  EXPECT_EQ(prepared->Bind(123).code(), StatusCode::kUnknownDatabase);
  // Binding a handle that was never prepared.
  PreparedQuery blank;
  EXPECT_EQ(blank.Bind(db).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(prepared->Bind(db).ok());

  // A handle is only valid with the engine that prepared it.
  EXPECT_EQ(other.Execute(*prepared, 2).status.code(),
            StatusCode::kInvalidArgument);

  // Classification-relevant option knobs must match Prepare's.
  AdpOptions mismatched;
  mismatched.use_singleton = false;
  EXPECT_EQ(engine.Execute(*prepared, 2, mismatched).status.code(),
            StatusCode::kInvalidArgument);

  // Solve-only knobs (heuristic choice, counting) are free to vary.
  AdpOptions counting;
  counting.counting_only = true;
  EXPECT_TRUE(engine.Execute(*prepared, 2, counting).ok());
}

// A prepared query naming a relation the database lacks fails at Bind time
// with kUnknownRelation — not at execute time, and never silently.
TEST(AdpEngineTest, PreparedBindReportsUnknownRelation) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  StatusOr<PreparedQuery> prepared =
      engine.Prepare("Q(A,B) :- R1(A,B), R9(B,C)");
  ASSERT_TRUE(prepared.ok());  // static work is data-independent
  const Status bind = prepared->Bind(db);
  EXPECT_EQ(bind.code(), StatusCode::kUnknownRelation);
  EXPECT_NE(bind.message().find("R9"), std::string::npos);
}

// --- Cancellation and deadlines ----------------------------------------------

// A Cancel() issued before the worker dequeues the request must (a) deliver
// kCancelled immediately, (b) drop the queued work without ever running the
// solve — zero plan-cache and binding-cache probes.
TEST(AdpEngineTest, CancelBeforeDequeueNeverRunsSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);
  const EngineCounters before = engine.counters();

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  AdpTicket ticket;
  std::future<AdpResponse> fut = engine.Submit(req, &ticket);
  ASSERT_TRUE(ticket.valid());
  EXPECT_FALSE(ticket.done());

  EXPECT_TRUE(ticket.Cancel());
  // Delivery happens at Cancel() time, not when the worker gets around to
  // the queue entry.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const AdpResponse resp = fut.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(ticket.done());
  EXPECT_FALSE(ticket.Cancel());  // second cancel is a no-op

  plug.release.set_value();
  // Let the worker drain the dropped entry before reading counters.
  AdpRequest sync;
  sync.query_text = "Q() :- R1(A,B)";
  sync.db = db;
  sync.k = 0;
  ASSERT_TRUE(engine.Execute(sync).ok());

  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.cancelled, before.cancelled + 1);
  // The cancelled request itself never touched either cache. (The drain
  // request above accounts for exactly one plan probe and one binding
  // share; the chain query's entries stay untouched.)
  EXPECT_EQ(after.plan_hits + after.plan_misses,
            before.plan_hits + before.plan_misses + 1);
  EXPECT_EQ(after.failures, before.failures);
}

// Cancelling one of N deduped waiters only cancels that waiter's delivery;
// the shared solve still runs for the others. Cancelling every participant
// cancels the solve itself.
TEST(AdpEngineTest, CancelOneOfNDedupedWaiters) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  AdpTicket t0, t1, t2;
  std::future<AdpResponse> f0 = engine.Submit(req, &t0);  // leader
  std::future<AdpResponse> f1 = engine.Submit(req, &t1);  // follower
  std::future<AdpResponse> f2 = engine.Submit(req, &t2);  // follower

  // Cancel one follower: its future completes kCancelled right away...
  EXPECT_TRUE(t1.Cancel());
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f1.get().status.code(), StatusCode::kCancelled);

  plug.release.set_value();

  // ...while the leader and the other follower still get the real answer.
  const AdpResponse r0 = f0.get();
  const AdpResponse r2 = f2.get();
  ASSERT_TRUE(r0.ok()) << r0.status.ToString();
  ASSERT_TRUE(r2.ok()) << r2.status.ToString();
  EXPECT_EQ(r0.solution.cost, 1);
  EXPECT_EQ(r2.solution.cost, 1);
  EXPECT_FALSE(r0.deduped);
  EXPECT_TRUE(r2.deduped);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.dedup_hits, 2u);
}

TEST(AdpEngineTest, AllDedupedWaitersCancelledDropsSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);
  const EngineCounters before = engine.counters();

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  constexpr int kWaiters = 3;
  std::vector<AdpTicket> tickets(kWaiters);
  std::vector<std::future<AdpResponse>> futures;
  for (int i = 0; i < kWaiters; ++i) {
    futures.push_back(engine.Submit(req, &tickets[i]));
  }
  for (AdpTicket& t : tickets) EXPECT_TRUE(t.Cancel());
  for (auto& fut : futures) {
    EXPECT_EQ(fut.get().status.code(), StatusCode::kCancelled);
  }

  plug.release.set_value();
  AdpRequest sync;
  sync.query_text = "Q() :- R1(A,B)";
  sync.db = db;
  sync.k = 0;
  ASSERT_TRUE(engine.Execute(sync).ok());

  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.cancelled, before.cancelled + kWaiters);
  // With every participant cancelled, the solve was dropped at dequeue:
  // only the drain request touched the plan cache.
  EXPECT_EQ(after.plan_hits + after.plan_misses,
            before.plan_hits + before.plan_misses + 1);
}

// A new identical request arriving after every participant of an in-flight
// solve cancelled must not join the torn-down solve: it becomes a fresh
// leader and gets a real answer.
TEST(AdpEngineTest, JoinAfterFullCancelStartsFreshSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  AdpTicket t0, t1;
  std::future<AdpResponse> f0 = engine.Submit(req, &t0);
  std::future<AdpResponse> f1 = engine.Submit(req, &t1);
  EXPECT_TRUE(t0.Cancel());
  EXPECT_TRUE(t1.Cancel());

  // Arrives while the cancelled leader's task is still queued.
  std::future<AdpResponse> f2 = engine.Submit(req);
  plug.release.set_value();

  EXPECT_EQ(f0.get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(f1.get().status.code(), StatusCode::kCancelled);
  const AdpResponse fresh = f2.get();
  ASSERT_TRUE(fresh.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.deduped);
  EXPECT_EQ(fresh.solution.cost, 1);
  EXPECT_EQ(engine.counters().cancelled, 2u);
}

// A request rejected before admission (prepared handle from a different
// engine) still counts as a request and a failure.
TEST(AdpEngineTest, PreparedRejectionCountsAsFailure) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  AdpEngine other(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind(db).ok());

  EXPECT_EQ(other.Execute(*prepared, 2).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(other.Submit(*prepared, 2).get().status.code(),
            StatusCode::kInvalidArgument);
  const EngineCounters c = other.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.failures, 2u);
}

// An already-expired deadline beats a coalesced result on every entry
// point: the sync path must not hand back a ring hit the caller's deadline
// disowned (the async path substitutes at delivery).
TEST(AdpEngineTest, ExpiredDeadlineBeatsCoalescedResult) {
  EngineConfig config;
  config.num_workers = 1;
  config.coalesce_window_ms = 60'000;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok());  // warm the ring

  req.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const AdpResponse sync = engine.Execute(req);
  EXPECT_EQ(sync.status.code(), StatusCode::kDeadlineExceeded);
  const AdpResponse async_resp = engine.Submit(req).get();
  EXPECT_EQ(async_resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.counters().deadline_expired, 2u);
}

// A deadline that passes while the request is still queued drops the solve
// the same way an explicit cancel does.
TEST(AdpEngineTest, DeadlineExpiryWhileQueuedSkipsSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  WorkerPlug plug;
  plug.Install(engine, db);
  const EngineCounters before = engine.counters();

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  req.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  std::future<AdpResponse> fut = engine.Submit(req);

  // Hold the worker until the deadline is decisively in the past.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  plug.release.set_value();

  const AdpResponse resp = fut.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);

  AdpRequest sync;
  sync.query_text = "Q() :- R1(A,B)";
  sync.db = db;
  sync.k = 0;
  ASSERT_TRUE(engine.Execute(sync).ok());

  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.deadline_expired, before.deadline_expired + 1);
  EXPECT_EQ(after.plan_hits + after.plan_misses,
            before.plan_hits + before.plan_misses + 1);
  EXPECT_EQ(after.failures, before.failures);
}

TEST(AdpEngineTest, SyncDeadlineAlreadyExpiredFailsFast) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  req.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const EngineCounters before = engine.counters();
  const AdpResponse resp = engine.Execute(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  const EngineCounters after = engine.counters();
  EXPECT_EQ(after.deadline_expired, before.deadline_expired + 1);
  // The pre-solve check fires before any cache traffic.
  EXPECT_EQ(after.plan_hits + after.plan_misses,
            before.plan_hits + before.plan_misses);
}

// Solver-level: a fired token aborts the recursion with the right reason.
TEST(AdpEngineTest, CancelTokenAbortsComputeAdp) {
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database db = Fig1NamedDb().db;

  const CancelToken cancelled = CancelToken::Make();
  cancelled.Cancel();
  AdpOptions options;
  options.cancel = &cancelled;
  try {
    ComputeAdp(q, db, 2, options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }

  const CancelToken expired = CancelToken::Make();
  expired.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  options.cancel = &expired;
  try {
    ComputeAdp(q, db, 2, options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadlineExceeded);
  }
}

// Solver-level, deterministic: a cancel landing mid-fan-out stops the
// remaining sharded sub-solves at their node boundary.
TEST(AdpEngineTest, CancelMidSolveStopsShardedSubSolves) {
  // A is universal: Algorithm 4 partitions into one group per A value.
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  Database db(2);
  for (Value a = 0; a < 8; ++a) {
    db.rel(0).Add({a, 100 + a});
    db.rel(1).Add({a, 200 + a});
  }
  db.rel(0).set_root_relation(0);
  db.rel(1).set_root_relation(1);

  const CancelToken token = CancelToken::Make();
  std::atomic<int> ran{0};
  Parallelism par;
  par.min_groups = 2;
  // Run the first shard, then cancel; every later shard must abort before
  // doing its work.
  par.run_all = [&](std::vector<std::function<void()>> tasks) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i]();
      ++ran;
      if (i == 0) token.Cancel();
    }
  };

  AdpOptions options;
  options.cancel = &token;
  options.parallelism = &par;
  try {
    ComputeAdp(q, db, 4, options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
  // All tasks were invoked (run_all contract) but only the first solved.
  EXPECT_EQ(ran.load(), 8);
}

// Engine-level: cancel a large sharded request racing the solve. The
// outcome is either kCancelled (cancel landed mid-solve — the common case
// with this workload) or OK (the solve won); what must never happen is a
// hang, a crash, or a corrupted response. Run under TSan in CI.
TEST(AdpEngineTest, CancelMidSolveUnderShardingIsClean) {
  EngineConfig config;
  config.num_workers = 2;
  config.min_shard_groups = 2;
  AdpEngine engine(config);

  // The bench's sharding workload, shrunk: kGroups universe groups with
  // real work per group.
  constexpr std::int64_t kGroups = 16;
  constexpr std::int64_t kRows = 6000;
  NamedDatabase named;
  Rng rng(11);
  AppendGroupedComponent(named, rng, kRows, kGroups, "R1", "R2", "R3");
  const DbId db = engine.RegisterDatabase(std::move(named));

  AdpRequest req;
  req.query_text = "Q(A) :- R1(A,B), R2(A,B,C), R3(A,C)";
  req.db = db;
  req.k = kGroups / 2;
  req.options.counting_only = true;

  AdpTicket ticket;
  std::future<AdpResponse> fut = engine.Submit(req, &ticket);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticket.Cancel();

  ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "cancelled sharded solve hung";
  const AdpResponse resp = fut.get();
  EXPECT_TRUE(resp.status.code() == StatusCode::kCancelled ||
              resp.status.code() == StatusCode::kOk)
      << resp.status.ToString();

  // The engine stays fully usable afterwards.
  AdpRequest again = req;
  const AdpResponse clean = engine.Execute(again);
  ASSERT_TRUE(clean.ok()) << clean.status.ToString();
}

// --- Coalescing admission ----------------------------------------------------

TEST(AdpEngineTest, CoalesceWindowServesRecentResults) {
  EngineConfig config;
  config.num_workers = 1;
  config.coalesce_window_ms = 60'000;  // anything this test does is "recent"
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  const AdpResponse first = engine.Execute(req);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_FALSE(first.coalesced);

  const EngineCounters before = engine.counters();
  const AdpResponse second = engine.Execute(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.coalesced);
  EXPECT_EQ(second.solution.cost, first.solution.cost);
  EXPECT_EQ(second.solution.tuples, first.solution.tuples);
  const EngineCounters mid = engine.counters();
  EXPECT_EQ(mid.coalesce_hits, before.coalesce_hits + 1);
  EXPECT_EQ(mid.requests, before.requests + 1);
  // Served from the ring: no cache traffic, no solve.
  EXPECT_EQ(mid.plan_hits + mid.plan_misses,
            before.plan_hits + before.plan_misses);
  EXPECT_EQ(mid.binding_hits + mid.binding_misses,
            before.binding_hits + before.binding_misses);

  // The async path coalesces too.
  const AdpResponse async_resp = engine.Submit(req).get();
  ASSERT_TRUE(async_resp.ok());
  EXPECT_TRUE(async_resp.coalesced);
  EXPECT_EQ(engine.counters().coalesce_hits, before.coalesce_hits + 2);

  // A different target is a different request — no coalescing.
  req.k = 3;
  const AdpResponse other_k = engine.Execute(req);
  ASSERT_TRUE(other_k.ok());
  EXPECT_FALSE(other_k.coalesced);
}

TEST(AdpEngineTest, CoalescingDisabledByDefault) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok());
  const AdpResponse second = engine.Execute(req);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.coalesced);
  EXPECT_EQ(engine.counters().coalesce_hits, 0u);
}

// --- PrepareBatch ------------------------------------------------------------

TEST(AdpEngineTest, PrepareBatchAmortizesPlanWorkAcrossDuplicates) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  const std::vector<std::string> texts = {
      kChainText,
      "Q(A) :- R1(A,B)",
      kChainText,  // duplicate: must reuse the first resolution
  };
  StatusOr<std::vector<PreparedQuery>> batch = engine.PrepareBatch(texts);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  for (const PreparedQuery& p : *batch) EXPECT_TRUE(p.valid());

  // One plan-cache miss per UNIQUE query, not per entry.
  EXPECT_EQ(engine.counters().plan_misses, 2u);
  // Duplicates share the plan object itself.
  EXPECT_EQ((*batch)[0].plan().get(), (*batch)[2].plan().get());
  EXPECT_EQ((*batch)[0].fingerprint(), (*batch)[2].fingerprint());
  EXPECT_NE((*batch)[0].fingerprint(), (*batch)[1].fingerprint());

  // Handles are ordinary prepared handles: bindable and executable.
  PreparedQuery first = (*batch)[0];
  ASSERT_TRUE(first.Bind(db).ok());
  const AdpResponse resp = engine.Execute(first, /*k=*/2);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.solution.cost,
            ComputeAdp(ParseQuery(kChainText), Fig1NamedDb().db, 2, {}).cost);
}

TEST(AdpEngineTest, PrepareBatchIsAllOrNothingAndTyped) {
  AdpEngine engine(EngineConfig{.num_workers = 1});

  const std::vector<std::string> texts = {kChainText, "not a query"};
  StatusOr<std::vector<PreparedQuery>> batch = engine.PrepareBatch(texts);
  EXPECT_EQ(batch.status().code(), StatusCode::kParseError);

  engine.Shutdown();
  const std::vector<std::string> ok_texts = {kChainText};
  EXPECT_EQ(engine.PrepareBatch(ok_texts).status().code(),
            StatusCode::kShutdown);
}

// --- TupleId capacity guard --------------------------------------------------

// RAII guard so a lowered MaxRows ceiling never leaks into other tests.
struct MaxRowsOverride {
  explicit MaxRowsOverride(std::uint64_t n)
      : previous(RelationInstance::OverrideMaxRowsForTest(n)) {}
  ~MaxRowsOverride() { RelationInstance::OverrideMaxRowsForTest(previous); }
  std::uint64_t previous;
};

TEST(AdpEngineTest, BindRejectsInstancesPastTupleIdCapacity) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());  // R2 has 4 rows

  StatusOr<PreparedQuery> prepared = engine.Prepare(kChainText);
  ASSERT_TRUE(prepared.ok());

  {
    MaxRowsOverride guard(3);
    // Binding surfaces the oversized instance as kInvalidArgument instead of
    // letting a truncated 32-bit row id corrupt solution coordinates.
    EXPECT_EQ(prepared->Bind(db).code(), StatusCode::kInvalidArgument);

    // The text path fails the same way.
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = 1;
    EXPECT_EQ(engine.Execute(req).status.code(),
              StatusCode::kInvalidArgument);
  }

  // With the ceiling restored the same bind succeeds.
  EXPECT_TRUE(prepared->Bind(db).ok());
}

// --- Shutdown ----------------------------------------------------------------

TEST(AdpEngineTest, ShutdownRejectsNewWorkTyped) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok());

  engine.Shutdown();
  EXPECT_EQ(engine.Execute(req).status.code(), StatusCode::kShutdown);
  EXPECT_EQ(engine.Submit(req).get().status.code(), StatusCode::kShutdown);
  EXPECT_EQ(engine.Prepare(kChainText).status().code(),
            StatusCode::kShutdown);

  std::promise<AdpResponse> done;
  engine.SubmitAsync(req,
                     [&](AdpResponse r) { done.set_value(std::move(r)); });
  EXPECT_EQ(done.get_future().get().status.code(), StatusCode::kShutdown);
  engine.Shutdown();  // idempotent
}

TEST(AdpEngineTest, QueueDepthBoundShedsWithTypedError) {
  // One worker, pinned; one queue slot. The second distinct async request
  // must be rejected kOverloaded while the admitted one completes normally.
  AdpEngine engine(
      EngineConfig{.num_workers = 1, .max_queue_depth = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest admitted;
  admitted.query_text = kChainText;
  admitted.db = db;
  admitted.k = 2;
  std::future<AdpResponse> admitted_fut = engine.Submit(admitted);

  AdpRequest shed;
  shed.query_text = "Q(A,B) :- R1(A,B), R2(B)";  // distinct: no dedup join
  shed.db = db;
  shed.k = 1;
  std::promise<AdpResponse> shed_done;
  engine.SubmitAsync(
      shed, [&](AdpResponse r) { shed_done.set_value(std::move(r)); });
  const AdpResponse shed_resp = shed_done.get_future().get();
  EXPECT_EQ(shed_resp.status.code(), StatusCode::kOverloaded);

  plug.release.set_value();
  const AdpResponse ok = admitted_fut.get();
  EXPECT_TRUE(ok.ok()) << ok.status.ToString();

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.shed, 1u);
  EXPECT_EQ(c.failures, 0u);  // shedding is admission control, not failure
}

TEST(AdpEngineTest, OverloadStillJoinsInflightSolve) {
  // A duplicate of an in-flight request costs no queue slot: under
  // overload it joins the leader's solve instead of being shed.
  AdpEngine engine(
      EngineConfig{.num_workers = 1, .max_queue_depth = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  std::future<AdpResponse> leader = engine.Submit(req);
  std::future<AdpResponse> joiner = engine.Submit(req);  // queue is full

  plug.release.set_value();
  const AdpResponse lead_resp = leader.get();
  const AdpResponse join_resp = joiner.get();
  ASSERT_TRUE(lead_resp.ok()) << lead_resp.status.ToString();
  ASSERT_TRUE(join_resp.ok()) << join_resp.status.ToString();
  EXPECT_TRUE(join_resp.deduped);
  EXPECT_EQ(engine.counters().shed, 0u);
}

TEST(AdpEngineTest, SyncExecuteIsNeverShed) {
  AdpEngine engine(
      EngineConfig{.num_workers = 1, .max_queue_depth = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest filler;
  filler.query_text = "Q(A,B) :- R1(A,B), R2(B)";
  filler.db = db;
  filler.k = 1;
  std::future<AdpResponse> filler_fut = engine.Submit(filler);

  // Queue is at the bound; sync Execute runs on this thread regardless.
  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  const AdpResponse resp = engine.Execute(req);
  EXPECT_TRUE(resp.ok()) << resp.status.ToString();

  plug.release.set_value();
  EXPECT_TRUE(filler_fut.get().ok());
  EXPECT_EQ(engine.counters().shed, 0u);
}

TEST(AdpEngineTest, StreamAdpShedsWithTerminalOverloaded) {
  AdpEngine engine(
      EngineConfig{.num_workers = 1, .max_queue_depth = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(engine, db);

  AdpRequest filler;
  filler.query_text = "Q(A,B) :- R1(A,B), R2(B)";
  filler.db = db;
  filler.k = 1;
  std::future<AdpResponse> filler_fut = engine.Submit(filler);

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  ResultStream stream = engine.StreamAdp(req);
  std::optional<StreamItem> item = stream.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->kind, StreamItem::Kind::kEnd);
  EXPECT_EQ(item->status.code(), StatusCode::kOverloaded);

  plug.release.set_value();
  EXPECT_TRUE(filler_fut.get().ok());
  EXPECT_EQ(engine.counters().shed, 1u);
}

TEST(AdpEngineTest, RequestPriorityOrdersSaturatedQueue) {
  // Three distinct requests queued behind a plugged single worker drain in
  // priority order, not arrival order.
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  WorkerPlug plug;
  plug.Install(engine, db);

  const char* texts[] = {
      "Q(A,B) :- R1(A,B), R2(B)",
      "Q(B,C) :- R2(B,C), R3(C,E)",
      "Q(A) :- R1(A,B), R2(B,C)",
  };
  std::vector<int> completion_order;
  std::mutex mu;
  std::promise<void> all;
  for (int i = 0; i < 3; ++i) {
    AdpRequest req;
    req.query_text = texts[i];
    req.db = db;
    req.k = 1;
    req.priority = i;  // later submissions more urgent
    engine.SubmitAsync(req, [&, i](AdpResponse r) {
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      std::lock_guard<std::mutex> lock(mu);
      completion_order.push_back(i);
      if (completion_order.size() == 3) all.set_value();
    });
  }
  plug.release.set_value();
  ASSERT_EQ(all.get_future().wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(completion_order, (std::vector<int>{2, 1, 0}));
}

}  // namespace
}  // namespace adp
