// AdpEngine: plan-cache accounting, equivalence with the direct ComputeAdp
// path, database interning, error handling, and a multi-threaded smoke test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "engine/completion_queue.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "util/rng.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::RandomDb;
using testing::RandomQuery;

constexpr char kChainText[] = "Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)";

NamedDatabase Fig1NamedDb() {
  const ConjunctiveQuery q = ParseQuery(kChainText);
  NamedDatabase named;
  named.relation_names = {"R1", "R2", "R3"};
  named.db = MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                        {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                        {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
  return named;
}

TEST(AdpEngineTest, PlanCacheHitAndMissCounting) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;

  AdpResponse first = engine.Execute(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.plan_cache_hit);

  AdpResponse second = engine.Execute(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.failures, 0u);
  EXPECT_EQ(c.plan_misses, 1u);
  EXPECT_EQ(c.plan_hits, 1u);
  EXPECT_EQ(c.plan_cache_size, 1u);

  // A structurally different query is a fresh miss.
  AdpRequest other = req;
  other.query_text = "Q() :- R1(A,B), R2(B,C), R3(C,E)";
  ASSERT_TRUE(engine.Execute(other).ok);
  EXPECT_EQ(engine.counters().plan_misses, 2u);
}

TEST(AdpEngineTest, MatchesDirectComputeAdp) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = MakeDb(
      q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
          {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
          {"R3", {{31, 41}, {32, 43}, {33, 43}}}});

  for (std::int64_t k = 0; k <= 5; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    req.options.verify = true;
    const AdpResponse resp = engine.Execute(req);
    ASSERT_TRUE(resp.ok) << resp.error;

    AdpOptions options;
    options.verify = true;
    const AdpSolution direct = ComputeAdp(q, direct_db, k, options);
    EXPECT_EQ(resp.solution.cost, direct.cost) << "k=" << k;
    EXPECT_EQ(resp.solution.exact, direct.exact) << "k=" << k;
    EXPECT_EQ(resp.solution.feasible, direct.feasible) << "k=" << k;
    EXPECT_EQ(resp.solution.output_count, direct.output_count) << "k=" << k;
    EXPECT_EQ(resp.solution.tuples, direct.tuples) << "k=" << k;
    EXPECT_EQ(resp.solution.removed_outputs, direct.removed_outputs)
        << "k=" << k;
  }
}

TEST(AdpEngineTest, PreParsedQueriesShareCanonicalPlans) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query = ParseQuery(kChainText);
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok);

  // A renamed copy canonicalizes to the same plan key.
  AdpRequest renamed;
  renamed.query = ParseQuery("Q(U,V,W,X) :- R1(U,V), R2(V,W), R3(W,X)");
  renamed.db = db;
  renamed.k = 2;
  const AdpResponse resp = engine.Execute(renamed);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.plan_cache_hit);
}

TEST(AdpEngineTest, StructurallyIdenticalQueriesOverDifferentRelationsDoNotShareBindings) {
  // Regression: the canonical key ignores relation names, but named-database
  // binding does not — a plan cached for R1/R2 must not serve S1/S2.
  AdpEngine engine(EngineConfig{.num_workers = 1});

  NamedDatabase r_db;
  r_db.relation_names = {"R1", "R2"};
  r_db.db.Append({});
  r_db.db.rel(0).Add({1, 2});
  r_db.db.Append({});
  r_db.db.rel(1).Add({2, 3});
  const DbId r_id = engine.RegisterDatabase(std::move(r_db));

  NamedDatabase s_db;
  s_db.relation_names = {"S1", "S2"};
  s_db.db.Append({});
  s_db.db.rel(0).Add({1, 2});
  s_db.db.Append({});
  s_db.db.rel(1).Add({2, 3});
  const DbId s_id = engine.RegisterDatabase(std::move(s_db));

  AdpRequest r_req;
  r_req.query = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  r_req.db = r_id;
  r_req.k = 1;
  const AdpResponse r_resp = engine.Execute(r_req);
  ASSERT_TRUE(r_resp.ok) << r_resp.error;
  EXPECT_EQ(r_resp.solution.output_count, 1);

  AdpRequest s_req;
  s_req.query = ParseQuery("Q(A,B) :- S1(A,B), S2(B,C)");
  s_req.db = s_id;
  s_req.k = 1;
  const AdpResponse s_resp = engine.Execute(s_req);
  ASSERT_TRUE(s_resp.ok) << s_resp.error;
  // Before the fix this hit R1/R2's plan, bound empty instances, and
  // reported output_count == 0.
  EXPECT_EQ(s_resp.solution.output_count, 1);
  EXPECT_EQ(s_resp.solution.cost, r_resp.solution.cost);
  EXPECT_FALSE(s_resp.plan_cache_hit);
}

TEST(AdpEngineTest, DatabaseInterningSharesBindings) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine.Execute(req).ok);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.binding_misses, 1u);
  EXPECT_EQ(c.binding_hits, 4u);
  EXPECT_EQ(c.databases, 1u);
}

TEST(AdpEngineTest, ErrorsAreReportedNotThrown) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest bad_query;
  bad_query.query_text = "this is not datalog";
  bad_query.db = db;
  const AdpResponse r1 = engine.Execute(bad_query);
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());

  AdpRequest bad_db;
  bad_db.query_text = kChainText;
  bad_db.db = 999;
  const AdpResponse r2 = engine.Execute(bad_db);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("database"), std::string::npos);

  // A failed parse is not cached: the next occurrence fails afresh (miss).
  const AdpResponse r3 = engine.Execute(bad_query);
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(engine.counters().failures, 3u);
}

TEST(AdpEngineTest, BatchPreservesRequestOrder) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  std::vector<AdpRequest> batch;
  for (std::int64_t k = 0; k <= 4; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    batch.push_back(req);
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 5u);
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;
  // Batch order must match request order: check each k against direct.
  for (std::int64_t k = 0; k <= 4; ++k) {
    ASSERT_TRUE(out[static_cast<std::size_t>(k)].ok);
    const AdpSolution direct = ComputeAdp(q, direct_db, k, AdpOptions{});
    EXPECT_EQ(out[static_cast<std::size_t>(k)].solution.cost, direct.cost);
  }
}

// >= 100 mixed requests across >= 4 workers: every response must be
// bit-identical to the direct single-threaded path.
TEST(AdpEngineTest, ConcurrentMixedWorkloadSmoke) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  ASSERT_GE(engine.num_workers(), 4);

  Rng rng(987654321);
  struct Case {
    ConjunctiveQuery query;
    DbId db;
    std::int64_t k;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 12; ++i) {
    Case c;
    c.query = RandomQuery(rng, 4, 3);
    c.db = engine.RegisterDatabase(RandomDb(c.query, rng, 4, 3));
    c.k = static_cast<std::int64_t>(rng.Uniform(4));
    cases.push_back(std::move(c));
  }

  std::vector<AdpRequest> batch;
  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    AdpRequest req;
    req.query = c.query;
    req.db = c.db;
    req.k = c.k;
    batch.push_back(std::move(req));
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 120u);

  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    const AdpResponse& resp = out[static_cast<std::size_t>(i)];
    ASSERT_TRUE(resp.ok) << resp.error;
    const AdpSolution direct =
        ComputeAdp(c.query, engine.database(c.db)->db, c.k, AdpOptions{});
    ASSERT_EQ(resp.solution.cost, direct.cost) << "request " << i;
    ASSERT_EQ(resp.solution.exact, direct.exact) << "request " << i;
    ASSERT_EQ(resp.solution.feasible, direct.feasible) << "request " << i;
    ASSERT_EQ(resp.solution.tuples, direct.tuples) << "request " << i;
  }

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 120u);
  EXPECT_EQ(c.failures, 0u);
  // 12 distinct structures (at most; random queries may collide), 120
  // requests: every repeat was served either from the plan cache or by
  // joining an identical in-flight solve (single-flight dedup).
  EXPECT_LE(c.plan_misses, 12u);
  EXPECT_GE(c.plan_hits + c.dedup_hits, 108u);
}

TEST(AdpEngineTest, MissingRelationNameIsAnError) {
  // Regression: a query atom whose name is absent from the named database
  // used to bind a default-constructed empty instance, silently turning a
  // typo into a wrong (zero-output) answer.
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = "Q(A,B,C) :- R1(A,B), R9(B,C)";  // R9 does not exist
  req.db = db;
  req.k = 1;
  const AdpResponse resp = engine.Execute(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("R9"), std::string::npos) << resp.error;
  EXPECT_EQ(engine.counters().failures, 1u);

  // Correctly named atoms still bind.
  req.query_text = kChainText;
  EXPECT_TRUE(engine.Execute(req).ok);
}

// N identical concurrent requests must perform exactly one solve: the first
// becomes the leader, the rest join its in-flight entry and receive copies.
TEST(AdpEngineTest, IdenticalConcurrentRequestsShareOneSolve) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  // Plug the single worker: its completion callback blocks until released,
  // so every submission below is provably in flight at the same time.
  std::promise<void> plugged;
  std::promise<void> release;
  AdpRequest plug;
  plug.query_text = "Q() :- R1(A,B)";
  plug.db = db;
  plug.k = 0;
  engine.SubmitAsync(plug, [&](AdpResponse) {
    plugged.set_value();
    release.get_future().wait();
  });
  plugged.get_future().wait();

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  constexpr int kIdentical = 8;
  std::vector<std::future<AdpResponse>> futures;
  for (int i = 0; i < kIdentical; ++i) futures.push_back(engine.Submit(req));
  release.set_value();

  int deduped = 0;
  for (auto& fut : futures) {
    const AdpResponse resp = fut.get();
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.solution.cost, 1);
    if (resp.deduped) ++deduped;
  }
  EXPECT_EQ(deduped, kIdentical - 1);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 1u + kIdentical);
  EXPECT_EQ(c.dedup_hits, kIdentical - 1u);
  // Exactly one solve of the chain query: one plan build and one binding
  // for it (the other miss of each is the plug request) and zero lookups
  // from the followers.
  EXPECT_EQ(c.plan_misses, 2u);
  EXPECT_EQ(c.plan_hits, 0u);
  EXPECT_EQ(c.binding_misses, 2u);
  EXPECT_EQ(c.binding_hits, 0u);
}

TEST(AdpEngineTest, SubmitAsyncInvokesCallback) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  std::promise<AdpResponse> done;
  engine.SubmitAsync(req, [&](AdpResponse r) { done.set_value(std::move(r)); });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  const AdpResponse resp = fut.get();
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.solution.cost, 1);
}

TEST(AdpEngineTest, CompletionQueueDeliversTaggedCompletions) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;

  CompletionQueue cq;
  for (std::int64_t k = 0; k <= 5; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    engine.SubmitToQueue(std::move(req), cq, static_cast<std::uint64_t>(k));
  }

  const std::vector<Completion> done = cq.Drain();
  ASSERT_EQ(done.size(), 6u);
  std::vector<bool> seen(6, false);
  for (const Completion& c : done) {
    ASSERT_LT(c.tag, 6u);
    EXPECT_FALSE(seen[c.tag]);
    seen[c.tag] = true;
    ASSERT_TRUE(c.response.ok) << c.response.error;
    const AdpSolution direct =
        ComputeAdp(q, direct_db, static_cast<std::int64_t>(c.tag), {});
    EXPECT_EQ(c.response.solution.cost, direct.cost) << "tag " << c.tag;
  }
  EXPECT_EQ(cq.outstanding(), 0u);
  EXPECT_FALSE(cq.Poll().has_value());
  EXPECT_FALSE(cq.Next().has_value());  // nothing pending: returns, no block

  // Poll/Next also see completions one at a time.
  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;
  engine.SubmitToQueue(std::move(req), cq, 42);
  const auto next = cq.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->tag, 42u);
  EXPECT_TRUE(next->response.ok);
}

// Regression: ExecuteBatch/Submit from inside a pool worker used to park
// every worker on futures whose tasks nobody was left to run. With one
// worker this deadlocked deterministically; nested submissions now run
// inline.
TEST(AdpEngineTest, NestedBatchFromWorkerRunsInline) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest outer;
  outer.query_text = "Q() :- R1(A,B)";
  outer.db = db;
  outer.k = 0;
  std::promise<std::vector<AdpResponse>> done;
  engine.SubmitAsync(outer, [&](AdpResponse) {
    // Runs on the engine's only worker thread.
    std::vector<AdpRequest> batch;
    for (std::int64_t k = 0; k <= 2; ++k) {
      AdpRequest req;
      req.query_text = kChainText;
      req.db = db;
      req.k = k;
      batch.push_back(std::move(req));
    }
    done.set_value(engine.ExecuteBatch(std::move(batch)));
  });
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "nested ExecuteBatch deadlocked";
  const std::vector<AdpResponse> out = fut.get();
  ASSERT_EQ(out.size(), 3u);
  for (const AdpResponse& r : out) EXPECT_TRUE(r.ok) << r.error;
}

// Intra-request sharding must be invisible in the results: a sharded solve
// of a Universe-heavy request is bitwise-identical to the sequential one.
TEST(AdpEngineTest, IntraRequestShardingMatchesSequential) {
  EngineConfig sharded_cfg;
  sharded_cfg.num_workers = 4;
  sharded_cfg.min_shard_groups = 2;
  AdpEngine sharded(sharded_cfg);

  EngineConfig sequential_cfg;
  sequential_cfg.num_workers = 4;
  sequential_cfg.min_shard_groups = 0;  // sharding off
  AdpEngine sequential(sequential_cfg);

  Rng rng(4242);
  const ConjunctiveQuery q = ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)");
  int sharded_nodes = 0;
  for (int iter = 0; iter < 10; ++iter) {
    Database db = RandomDb(q, rng, 12, 5);
    AdpRequest req;
    req.query = q;
    req.db = sharded.RegisterDatabase(db);
    req.k = 1 + static_cast<std::int64_t>(rng.Uniform(6));
    req.options.verify = true;
    const AdpResponse a = sharded.Execute(req);

    req.db = sequential.RegisterDatabase(std::move(db));
    const AdpResponse b = sequential.Execute(req);

    ASSERT_EQ(a.ok, b.ok) << "iter " << iter << ": " << a.error << b.error;
    if (!a.ok) continue;
    EXPECT_EQ(a.solution.cost, b.solution.cost) << "iter " << iter;
    EXPECT_EQ(a.solution.exact, b.solution.exact) << "iter " << iter;
    EXPECT_EQ(a.solution.feasible, b.solution.feasible) << "iter " << iter;
    EXPECT_EQ(a.solution.output_count, b.solution.output_count)
        << "iter " << iter;
    EXPECT_EQ(a.solution.tuples, b.solution.tuples) << "iter " << iter;
    EXPECT_EQ(a.solution.removed_outputs, b.solution.removed_outputs)
        << "iter " << iter;
    sharded_nodes += a.stats.sharded_universe_nodes;
    EXPECT_EQ(b.stats.sharded_universe_nodes, 0) << "iter " << iter;
  }
  // The workload is Universe-shaped: sharding must actually have engaged.
  EXPECT_GT(sharded_nodes, 0);
}

TEST(AdpEngineTest, ClearCachesUnderLoadStaysCorrect) {
  EngineConfig config;
  config.num_workers = 4;
  config.plan_cache_capacity = 4;
  config.binding_cache_capacity = 2;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  // Precompute the expected answers for k = 0..4.
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;
  std::vector<std::int64_t> expected;
  for (std::int64_t k = 0; k <= 4; ++k) {
    expected.push_back(ComputeAdp(q, direct_db, k, {}).cost);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const std::int64_t k = (t + i) % 5;
        AdpRequest req;
        req.query_text = kChainText;
        req.db = db;
        req.k = k;
        const AdpResponse resp = engine.Execute(req);
        if (!resp.ok ||
            resp.solution.cost != expected[static_cast<std::size_t>(k)]) {
          ++mismatches;
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    engine.ClearCaches();
    std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AdpEngineTest, LruEvictionBoundsCacheSize) {
  EngineConfig config;
  config.num_workers = 1;
  config.plan_cache_capacity = 2;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  const char* texts[] = {
      "Q() :- R1(A,B)",
      "Q(A) :- R1(A,B)",
      "Q(A,B) :- R1(A,B)",
  };
  for (const char* text : texts) {
    AdpRequest req;
    req.query_text = text;
    req.db = db;
    req.k = 0;
    ASSERT_TRUE(engine.Execute(req).ok);
  }
  EXPECT_LE(engine.counters().plan_cache_size, 2u);
}

}  // namespace
}  // namespace adp
