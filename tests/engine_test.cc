// AdpEngine: plan-cache accounting, equivalence with the direct ComputeAdp
// path, database interning, error handling, and a multi-threaded smoke test.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"
#include "util/rng.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::RandomDb;
using testing::RandomQuery;

constexpr char kChainText[] = "Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)";

NamedDatabase Fig1NamedDb() {
  const ConjunctiveQuery q = ParseQuery(kChainText);
  NamedDatabase named;
  named.relation_names = {"R1", "R2", "R3"};
  named.db = MakeDb(q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
                        {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
                        {"R3", {{31, 41}, {32, 43}, {33, 43}}}});
  return named;
}

TEST(AdpEngineTest, PlanCacheHitAndMissCounting) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 2;

  AdpResponse first = engine.Execute(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.plan_cache_hit);

  AdpResponse second = engine.Execute(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 2u);
  EXPECT_EQ(c.failures, 0u);
  EXPECT_EQ(c.plan_misses, 1u);
  EXPECT_EQ(c.plan_hits, 1u);
  EXPECT_EQ(c.plan_cache_size, 1u);

  // A structurally different query is a fresh miss.
  AdpRequest other = req;
  other.query_text = "Q() :- R1(A,B), R2(B,C), R3(C,E)";
  ASSERT_TRUE(engine.Execute(other).ok);
  EXPECT_EQ(engine.counters().plan_misses, 2u);
}

TEST(AdpEngineTest, MatchesDirectComputeAdp) {
  AdpEngine engine(EngineConfig{.num_workers = 2});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = MakeDb(
      q, {{"R1", {{11, 21}, {12, 22}, {13, 23}}},
          {"R2", {{21, 31}, {22, 32}, {22, 33}, {23, 33}}},
          {"R3", {{31, 41}, {32, 43}, {33, 43}}}});

  for (std::int64_t k = 0; k <= 5; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    req.options.verify = true;
    const AdpResponse resp = engine.Execute(req);
    ASSERT_TRUE(resp.ok) << resp.error;

    AdpOptions options;
    options.verify = true;
    const AdpSolution direct = ComputeAdp(q, direct_db, k, options);
    EXPECT_EQ(resp.solution.cost, direct.cost) << "k=" << k;
    EXPECT_EQ(resp.solution.exact, direct.exact) << "k=" << k;
    EXPECT_EQ(resp.solution.feasible, direct.feasible) << "k=" << k;
    EXPECT_EQ(resp.solution.output_count, direct.output_count) << "k=" << k;
    EXPECT_EQ(resp.solution.tuples, direct.tuples) << "k=" << k;
    EXPECT_EQ(resp.solution.removed_outputs, direct.removed_outputs)
        << "k=" << k;
  }
}

TEST(AdpEngineTest, PreParsedQueriesShareCanonicalPlans) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query = ParseQuery(kChainText);
  req.db = db;
  req.k = 2;
  ASSERT_TRUE(engine.Execute(req).ok);

  // A renamed copy canonicalizes to the same plan key.
  AdpRequest renamed;
  renamed.query = ParseQuery("Q(U,V,W,X) :- R1(U,V), R2(V,W), R3(W,X)");
  renamed.db = db;
  renamed.k = 2;
  const AdpResponse resp = engine.Execute(renamed);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.plan_cache_hit);
}

TEST(AdpEngineTest, StructurallyIdenticalQueriesOverDifferentRelationsDoNotShareBindings) {
  // Regression: the canonical key ignores relation names, but named-database
  // binding does not — a plan cached for R1/R2 must not serve S1/S2.
  AdpEngine engine(EngineConfig{.num_workers = 1});

  NamedDatabase r_db;
  r_db.relation_names = {"R1", "R2"};
  r_db.db.Append({});
  r_db.db.rel(0).Add({1, 2});
  r_db.db.Append({});
  r_db.db.rel(1).Add({2, 3});
  const DbId r_id = engine.RegisterDatabase(std::move(r_db));

  NamedDatabase s_db;
  s_db.relation_names = {"S1", "S2"};
  s_db.db.Append({});
  s_db.db.rel(0).Add({1, 2});
  s_db.db.Append({});
  s_db.db.rel(1).Add({2, 3});
  const DbId s_id = engine.RegisterDatabase(std::move(s_db));

  AdpRequest r_req;
  r_req.query = ParseQuery("Q(A,B) :- R1(A,B), R2(B,C)");
  r_req.db = r_id;
  r_req.k = 1;
  const AdpResponse r_resp = engine.Execute(r_req);
  ASSERT_TRUE(r_resp.ok) << r_resp.error;
  EXPECT_EQ(r_resp.solution.output_count, 1);

  AdpRequest s_req;
  s_req.query = ParseQuery("Q(A,B) :- S1(A,B), S2(B,C)");
  s_req.db = s_id;
  s_req.k = 1;
  const AdpResponse s_resp = engine.Execute(s_req);
  ASSERT_TRUE(s_resp.ok) << s_resp.error;
  // Before the fix this hit R1/R2's plan, bound empty instances, and
  // reported output_count == 0.
  EXPECT_EQ(s_resp.solution.output_count, 1);
  EXPECT_EQ(s_resp.solution.cost, r_resp.solution.cost);
  EXPECT_FALSE(s_resp.plan_cache_hit);
}

TEST(AdpEngineTest, DatabaseInterningSharesBindings) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest req;
  req.query_text = kChainText;
  req.db = db;
  req.k = 1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine.Execute(req).ok);

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.binding_misses, 1u);
  EXPECT_EQ(c.binding_hits, 4u);
  EXPECT_EQ(c.databases, 1u);
}

TEST(AdpEngineTest, ErrorsAreReportedNotThrown) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  AdpRequest bad_query;
  bad_query.query_text = "this is not datalog";
  bad_query.db = db;
  const AdpResponse r1 = engine.Execute(bad_query);
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());

  AdpRequest bad_db;
  bad_db.query_text = kChainText;
  bad_db.db = 999;
  const AdpResponse r2 = engine.Execute(bad_db);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("database"), std::string::npos);

  // A failed parse is not cached: the next occurrence fails afresh (miss).
  const AdpResponse r3 = engine.Execute(bad_query);
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(engine.counters().failures, 3u);
}

TEST(AdpEngineTest, BatchPreservesRequestOrder) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  std::vector<AdpRequest> batch;
  for (std::int64_t k = 0; k <= 4; ++k) {
    AdpRequest req;
    req.query_text = kChainText;
    req.db = db;
    req.k = k;
    batch.push_back(req);
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 5u);
  const ConjunctiveQuery q = ParseQuery(kChainText);
  const Database direct_db = Fig1NamedDb().db;
  // Batch order must match request order: check each k against direct.
  for (std::int64_t k = 0; k <= 4; ++k) {
    ASSERT_TRUE(out[static_cast<std::size_t>(k)].ok);
    const AdpSolution direct = ComputeAdp(q, direct_db, k, AdpOptions{});
    EXPECT_EQ(out[static_cast<std::size_t>(k)].solution.cost, direct.cost);
  }
}

// >= 100 mixed requests across >= 4 workers: every response must be
// bit-identical to the direct single-threaded path.
TEST(AdpEngineTest, ConcurrentMixedWorkloadSmoke) {
  AdpEngine engine(EngineConfig{.num_workers = 4});
  ASSERT_GE(engine.num_workers(), 4);

  Rng rng(987654321);
  struct Case {
    ConjunctiveQuery query;
    DbId db;
    std::int64_t k;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 12; ++i) {
    Case c;
    c.query = RandomQuery(rng, 4, 3);
    c.db = engine.RegisterDatabase(RandomDb(c.query, rng, 4, 3));
    c.k = static_cast<std::int64_t>(rng.Uniform(4));
    cases.push_back(std::move(c));
  }

  std::vector<AdpRequest> batch;
  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    AdpRequest req;
    req.query = c.query;
    req.db = c.db;
    req.k = c.k;
    batch.push_back(std::move(req));
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), 120u);

  for (int i = 0; i < 120; ++i) {
    const Case& c = cases[static_cast<std::size_t>(i) % cases.size()];
    const AdpResponse& resp = out[static_cast<std::size_t>(i)];
    ASSERT_TRUE(resp.ok) << resp.error;
    const AdpSolution direct =
        ComputeAdp(c.query, engine.database(c.db)->db, c.k, AdpOptions{});
    ASSERT_EQ(resp.solution.cost, direct.cost) << "request " << i;
    ASSERT_EQ(resp.solution.exact, direct.exact) << "request " << i;
    ASSERT_EQ(resp.solution.feasible, direct.feasible) << "request " << i;
    ASSERT_EQ(resp.solution.tuples, direct.tuples) << "request " << i;
  }

  const EngineCounters c = engine.counters();
  EXPECT_EQ(c.requests, 120u);
  EXPECT_EQ(c.failures, 0u);
  // 12 distinct structures (at most; random queries may collide), 120
  // requests: the cache must have served the overwhelming majority.
  EXPECT_LE(c.plan_misses, 12u);
  EXPECT_GE(c.plan_hits, 108u);
}

TEST(AdpEngineTest, LruEvictionBoundsCacheSize) {
  EngineConfig config;
  config.num_workers = 1;
  config.plan_cache_capacity = 2;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(Fig1NamedDb());

  const char* texts[] = {
      "Q() :- R1(A,B)",
      "Q(A) :- R1(A,B)",
      "Q(A,B) :- R1(A,B)",
  };
  for (const char* text : texts) {
    AdpRequest req;
    req.query_text = text;
    req.db = db;
    req.k = 0;
    ASSERT_TRUE(engine.Execute(req).ok);
  }
  EXPECT_LE(engine.counters().plan_cache_size, 2u);
}

}  // namespace
}  // namespace adp
