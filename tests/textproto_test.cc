// net::textproto (the command grammar + JSON rendering shared by the stdin
// and TCP front ends) and net::wire (frame encode/decode, correlation ids).

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "net/textproto.h"
#include "net/wire.h"
#include "util/stopwatch.h"

namespace adp::net {
namespace {

// --- Command grammar ---------------------------------------------------------

TEST(TextProtoTest, SplitWsTokenizes) {
  EXPECT_EQ(SplitWs("  a  bb\tccc "),
            (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(SplitWs("").empty());
  EXPECT_TRUE(SplitWs("   \t ").empty());
}

TEST(TextProtoTest, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(TextProtoTest, ParseRelationSpecRowsAndVacuum) {
  auto [name, inst] = ParseRelationSpec("R1=11,21/12,22");
  EXPECT_EQ(name, "R1");
  EXPECT_EQ(inst.size(), 2u);

  auto [vname, vacuum] = ParseRelationSpec("V=()");
  EXPECT_EQ(vname, "V");
  ASSERT_EQ(vacuum.size(), 1u);
  EXPECT_TRUE(vacuum.tuple(0).empty());

  auto [ename, empty] = ParseRelationSpec("E=");
  EXPECT_EQ(ename, "E");
  EXPECT_EQ(empty.size(), 0u);

  EXPECT_THROW(ParseRelationSpec("no-equals"), std::runtime_error);
}

TEST(TextProtoTest, ParseDbLineBindsNamesInOrder) {
  const ParsedDb parsed =
      ParseDbLine(SplitWs("DB d1 R1=1,2/3,4 R2=5,6"));
  EXPECT_EQ(parsed.name, "d1");
  EXPECT_EQ(parsed.db.relation_names,
            (std::vector<std::string>{"R1", "R2"}));
  EXPECT_EQ(parsed.db.db.num_relations(), 2u);

  EXPECT_THROW(ParseDbLine(SplitWs("DB")), std::runtime_error);
}

TEST(TextProtoTest, ParseRequestLineBasics) {
  const ParsedRequest parsed = ParseRequestLine(
      SplitWs("REQ d1 2 Q(A) :- R1(A,B), R2(B)"), "usage", 0);
  EXPECT_EQ(parsed.db_name, "d1");
  EXPECT_EQ(parsed.req.k, 2);
  EXPECT_EQ(parsed.query_text, "Q(A) :- R1(A,B), R2(B)");
  EXPECT_EQ(parsed.req.query_text, parsed.query_text);
  EXPECT_EQ(parsed.req.db, kInvalidDbId);  // caller resolves the name
  EXPECT_EQ(parsed.req.priority, 0);
  EXPECT_FALSE(parsed.req.deadline.has_value());
  EXPECT_FALSE(parsed.req.stream_intermediate_witnesses);
}

TEST(TextProtoTest, ParseRequestLineOptionTokens) {
  const auto before = Now();
  const ParsedRequest parsed = ParseRequestLine(
      SplitWs("STREAM d1 3 +p7 +d500 +iw Q(A) :- R1(A,B)"), "usage", 0);
  EXPECT_EQ(parsed.req.priority, 7);
  EXPECT_TRUE(parsed.req.stream_intermediate_witnesses);
  ASSERT_TRUE(parsed.req.deadline.has_value());
  EXPECT_GE(*parsed.req.deadline, before + std::chrono::milliseconds(400));
  EXPECT_LE(*parsed.req.deadline, Now() + std::chrono::milliseconds(500));
  // Options never leak into the query text.
  EXPECT_EQ(parsed.query_text, "Q(A) :- R1(A,B)");
}

TEST(TextProtoTest, ParseRequestLineNegativePriority) {
  const ParsedRequest parsed =
      ParseRequestLine(SplitWs("REQ d1 1 +p-3 Q(A) :- R1(A,B)"), "usage", 0);
  EXPECT_EQ(parsed.req.priority, -3);
}

TEST(TextProtoTest, ParseRequestLineDefaultTimeoutAndOverride) {
  const ParsedRequest defaulted =
      ParseRequestLine(SplitWs("REQ d1 1 Q(A) :- R1(A,B)"), "usage", 250);
  ASSERT_TRUE(defaulted.req.deadline.has_value());

  const auto before = Now();
  const ParsedRequest overridden = ParseRequestLine(
      SplitWs("REQ d1 1 +d5000 Q(A) :- R1(A,B)"), "usage", 250);
  ASSERT_TRUE(overridden.req.deadline.has_value());
  // +d wins over the front end's default.
  EXPECT_GE(*overridden.req.deadline,
            before + std::chrono::milliseconds(4000));
}

TEST(TextProtoTest, ParseRequestLineRejectsMalformedInput) {
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1"), "usage", 0),
               std::runtime_error);
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1 x Q(A) :- R1(A,B)"),
                                "usage", 0),
               std::runtime_error);
  // Options but no query left.
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1 2 +p1"), "usage", 0),
               std::runtime_error);
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1 2 +bogus Q(A) :- R1(A,B)"),
                                "usage", 0),
               std::runtime_error);
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1 2 +p Q(A) :- R1(A,B)"),
                                "usage", 0),
               std::runtime_error);
  EXPECT_THROW(ParseRequestLine(SplitWs("REQ d1 2 +d-5 Q(A) :- R1(A,B)"),
                                "usage", 0),
               std::runtime_error);
}

// --- Rendering ---------------------------------------------------------------

TEST(TextProtoTest, FormatResponseLineErrorAndSuccess) {
  AdpResponse err;
  err.status = Status(StatusCode::kParseError, "bad \"query\"");
  EXPECT_EQ(FormatResponseLine(7, "d1", 2, err, nullptr),
            "{\"req\":7,\"db\":\"d1\",\"k\":2,\"status\":\"PARSE_ERROR\","
            "\"error\":\"bad \\\"query\\\"\"}");

  AdpResponse ok;
  ok.solution.feasible = true;
  ok.solution.exact = true;
  ok.solution.cost = 3;
  ok.solution.output_count = 9;
  const std::string line = FormatResponseLine(8, "d1", 2, ok, nullptr);
  EXPECT_NE(line.find("\"req\":8"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"OK\""), std::string::npos);
  EXPECT_NE(line.find("\"cost\":3"), std::string::npos);
  EXPECT_NE(line.find("\"output_count\":9"), std::string::npos);
  EXPECT_NE(line.find("\"tuples\":[]"), std::string::npos);
}

TEST(TextProtoTest, FormatResponseLineCapsWitnessBytes) {
  AdpResponse ok;
  ok.solution.feasible = true;
  ok.solution.exact = true;
  ok.solution.cost = 1000;
  ok.solution.output_count = 0;
  for (TupleId i = 0; i < 1000; ++i) {
    ok.solution.tuples.push_back(TupleRef{0, i});
  }
  const std::string full = FormatResponseLine(1, "d1", 2, ok, nullptr);
  EXPECT_EQ(full.find("tuples_truncated"), std::string::npos);

  // A tiny byte budget caps the rendered list and flags the truncation
  // with the real total; everything after the list still renders.
  const std::string capped = FormatResponseLine(1, "d1", 2, ok, nullptr, 128);
  EXPECT_LT(capped.size(), full.size());
  EXPECT_NE(capped.find("\"tuples_truncated\":true"), std::string::npos);
  EXPECT_NE(capped.find("\"tuples_total\":1000"), std::string::npos);
  EXPECT_NE(capped.find("\"cache_hit\""), std::string::npos);

  // A budget bigger than the full line changes nothing.
  EXPECT_EQ(FormatResponseLine(1, "d1", 2, ok, nullptr, 1u << 20), full);
}

TEST(TextProtoTest, FormatStreamItemLineTagsWitnessTargets) {
  StreamItem item;
  item.kind = StreamItem::Kind::kWitnesses;
  item.k = 2;
  item.witnesses = {TupleRef{0, 4}, TupleRef{1, 1}};
  // Without a query, relations render by index.
  EXPECT_EQ(FormatStreamItemLine(5, "d1", item, nullptr, 3),
            "{\"stream\":5,\"db\":\"d1\",\"k\":2,"
            "\"witnesses\":[[\"0\",4],[\"1\",1]]}");
}

TEST(TextProtoTest, FormatStreamItemLineProfileAndEnd) {
  StreamItem profile;
  profile.kind = StreamItem::Kind::kProfile;
  profile.k = 1;
  profile.cost = 2;
  profile.feasible = true;
  EXPECT_EQ(FormatStreamItemLine(4, "d1", profile, nullptr, 1),
            "{\"stream\":4,\"db\":\"d1\",\"k\":1,\"cost\":2,"
            "\"feasible\":true}");

  StreamItem end;
  end.kind = StreamItem::Kind::kEnd;
  end.status = Status(StatusCode::kCancelled, "cancelled");
  const std::string line = FormatStreamItemLine(4, "d1", end, nullptr, 5);
  EXPECT_NE(line.find("\"end\":true"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"CANCELLED\""), std::string::npos);
  EXPECT_NE(line.find("\"items\":5"), std::string::npos);
}

TEST(TextProtoTest, FormatStatsJsonCarriesShedCounter) {
  AdpEngine engine(EngineConfig{.num_workers = 1});
  const std::string stats = FormatStatsJson(engine);
  EXPECT_NE(stats.find("\"requests\":0"), std::string::npos);
  EXPECT_NE(stats.find("\"shed\":0"), std::string::npos);
  EXPECT_NE(stats.find("\"latency_ms\""), std::string::npos);
}

// --- Wire framing ------------------------------------------------------------

TEST(WireTest, FrameRoundTrip) {
  std::string buf;
  ASSERT_TRUE(AppendFrame(buf, FrameType::kReq, "1 REQ d1 2 Q(A) :- R1(A,B)"));
  ASSERT_TRUE(AppendFrame(buf, FrameType::kStats, "2 STATS"));
  ASSERT_TRUE(AppendFrame(buf, FrameType::kBye, ""));  // empty payload is legal

  FrameReader reader;
  reader.Feed(buf.data(), buf.size());
  std::optional<Frame> f1 = reader.Next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::kReq);
  EXPECT_EQ(f1->payload, "1 REQ d1 2 Q(A) :- R1(A,B)");
  std::optional<Frame> f2 = reader.Next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::kStats);
  std::optional<Frame> f3 = reader.Next();
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->type, FrameType::kBye);
  EXPECT_TRUE(f3->payload.empty());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.bad());
}

TEST(WireTest, ByteAtATimeFeedingReassembles) {
  std::string buf;
  ASSERT_TRUE(AppendFrame(buf, FrameType::kResult, "42 {\"req\":42}"));
  FrameReader reader;
  std::optional<Frame> got;
  for (char c : buf) {
    reader.Feed(&c, 1);
    if (std::optional<Frame> f = reader.Next()) got = std::move(f);
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, "42 {\"req\":42}");
}

TEST(WireTest, TruncatedFrameStaysPending) {
  std::string buf;
  ASSERT_TRUE(AppendFrame(buf, FrameType::kReq, "1 REQ d1 2 Q(A) :- R1(A,B)"));
  FrameReader reader;
  reader.Feed(buf.data(), buf.size() - 5);  // cut mid-payload
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.bad());
  reader.Feed(buf.data() + buf.size() - 5, 5);
  EXPECT_TRUE(reader.Next().has_value());
}

TEST(WireTest, AppendFrameRejectsOversizedPayload) {
  // One byte over the cap: refused outright, buffer untouched. Encoding it
  // anyway would poison every FrameReader that met it (and a >4 GiB
  // payload would silently truncate the u32 length prefix).
  std::string payload(kMaxFramePayload + 1, 'x');
  std::string buf;
  EXPECT_FALSE(AppendFrame(buf, FrameType::kResult, payload));
  EXPECT_TRUE(buf.empty());

  // Exactly at the cap still round-trips.
  payload.resize(kMaxFramePayload);
  ASSERT_TRUE(AppendFrame(buf, FrameType::kResult, payload));
  FrameReader reader;
  reader.Feed(buf.data(), buf.size());
  std::optional<Frame> frame = reader.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), kMaxFramePayload);
  EXPECT_FALSE(reader.bad());
}

TEST(WireTest, OversizedLengthPoisonsReader) {
  // length = kMaxFramePayload + 2 exceeds the cap; the stream is
  // unrecoverable.
  const std::uint32_t len = kMaxFramePayload + 2;
  std::string buf;
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  FrameReader reader;
  reader.Feed(buf.data(), buf.size());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.bad());
  // A poisoned reader never yields frames again.
  std::string more;
  ASSERT_TRUE(AppendFrame(more, FrameType::kStats, "1 STATS"));
  reader.Feed(more.data(), more.size());
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(WireTest, ZeroLengthPoisonsReader) {
  const char zeros[4] = {0, 0, 0, 0};
  FrameReader reader;
  reader.Feed(zeros, 4);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.bad());
}

TEST(WireTest, SplitCorrelationIdCases) {
  std::int64_t id = 0;
  std::string rest;
  ASSERT_TRUE(SplitCorrelationId("42 REQ d1 2 Q(A) :- R1(A,B)", &id, &rest));
  EXPECT_EQ(id, 42);
  EXPECT_EQ(rest, "REQ d1 2 Q(A) :- R1(A,B)");

  ASSERT_TRUE(SplitCorrelationId("7", &id, &rest));  // bare id
  EXPECT_EQ(id, 7);
  EXPECT_TRUE(rest.empty());

  EXPECT_FALSE(SplitCorrelationId("", &id, &rest));
  EXPECT_FALSE(SplitCorrelationId("abc 1", &id, &rest));
  EXPECT_FALSE(SplitCorrelationId("12x rest", &id, &rest));
  // 19 digits can overflow int64; rejected outright.
  EXPECT_FALSE(SplitCorrelationId("1234567890123456789 x", &id, &rest));
}

TEST(WireTest, IsKnownFrameTypeCoversEnumOnly) {
  EXPECT_TRUE(IsKnownFrameType(0x01));  // kHello
  EXPECT_TRUE(IsKnownFrameType(0xFF));  // kError
  EXPECT_FALSE(IsKnownFrameType(0x00));
  EXPECT_FALSE(IsKnownFrameType(0x40));
}

}  // namespace
}  // namespace adp::net
