// Universe solver tests (Algorithm 4): partitioning correctness, the convex
// merge fast path vs the plain DP, the one-by-one ablation strategy, and an
// oracle sweep.

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "query/parser.h"
#include "solver/solution.h"
#include "solver/universe.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;
using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

// Q(A,B,C) :- R1(A,B), R2(A,C): A universal; groups solved independently.
ConjunctiveQuery UQ() { return ParseQuery("Q(A,B,C) :- R1(A,B), R2(A,C)"); }

TEST(UniverseTest, PartitionedOptimum) {
  const ConjunctiveQuery q = UQ();
  const Database db = MakeDb(q, {{"R1", {{1, 5}, {1, 6}, {2, 5}}},
                                 {"R2", {{1, 7}, {2, 7}, {2, 8}}}});
  // Group a=1: 2x1 = 2 outputs; group a=2: 1x2 = 2 outputs.
  AdpOptions options;
  const AdpNode node = UniverseNode(q, db, 4, options);
  EXPECT_TRUE(node.exact);
  // Removing 2 outputs: cheapest is one tuple (R2(1,7) kills group 1;
  // R1(2,5) kills group 2).
  EXPECT_EQ(node.profile.At(1), 1);
  EXPECT_EQ(node.profile.At(2), 1);
  EXPECT_EQ(node.profile.At(4), 2);
  const auto tuples = node.report(4);
  EXPECT_EQ(CountRemovedOutputs(q, db, tuples), 4);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(UniverseTest, ConvexAndDpPathsAgree) {
  Rng rng(71);
  const ConjunctiveQuery q = UQ();
  for (int iter = 0; iter < 20; ++iter) {
    const Database db = RandomDb(q, rng, 10, 4);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    AdpOptions fast;
    AdpOptions slow;
    slow.universe_convex_merge = false;
    const AdpNode a = UniverseNode(q, db, total, fast);
    const AdpNode b = UniverseNode(q, db, total, slow);
    for (std::int64_t j = 0; j <= total; ++j) {
      EXPECT_EQ(a.profile.At(j), b.profile.At(j)) << "iter " << iter;
    }
  }
}

TEST(UniverseTest, OneByOneStrategySameCosts) {
  // Two universal attributes: peeling one at a time must agree with the
  // combined removal on optimal costs (it is just slower).
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C) :- R1(A,B,C), R2(A,B)");
  Rng rng(72);
  const Database db = RandomDb(q, rng, 12, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  AdpOptions combined;
  AdpOptions one_by_one;
  one_by_one.universe_strategy = AdpOptions::UniverseStrategy::kOneByOne;
  const AdpNode a = UniverseNode(q, db, total, combined);
  const AdpNode b = UniverseNode(q, db, total, one_by_one);
  for (std::int64_t j = 0; j <= total; ++j) {
    EXPECT_EQ(a.profile.At(j), b.profile.At(j)) << "j=" << j;
  }
}

// Sharding the partition groups across an executor must not change any
// profile entry or witness: children land at fixed indices and are combined
// in partition order.
TEST(UniverseTest, ShardedGroupsMatchSequential) {
  ThreadPool pool(4);
  Parallelism par;
  par.min_groups = 2;
  par.run_all = [&pool](std::vector<std::function<void()>> tasks) {
    pool.RunAll(std::move(tasks));
  };

  Rng rng(73);
  const ConjunctiveQuery q = UQ();
  int sharded_nodes = 0;
  for (int iter = 0; iter < 20; ++iter) {
    const Database db = RandomDb(q, rng, 10, 4);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;

    AdpOptions sequential;
    AdpStats seq_stats;
    sequential.stats = &seq_stats;
    const AdpNode a = UniverseNode(q, db, total, sequential);

    AdpOptions sharded = sequential;
    AdpStats shard_stats;
    sharded.stats = &shard_stats;
    sharded.parallelism = &par;
    const AdpNode b = UniverseNode(q, db, total, sharded);

    for (std::int64_t j = 0; j <= total; ++j) {
      ASSERT_EQ(a.profile.At(j), b.profile.At(j))
          << "iter " << iter << " j " << j;
    }
    EXPECT_EQ(a.exact, b.exact);
    for (std::int64_t j = 1; j <= total; ++j) {
      EXPECT_EQ(a.report(j), b.report(j)) << "iter " << iter << " j " << j;
    }
    sharded_nodes += shard_stats.sharded_universe_nodes;
    EXPECT_EQ(seq_stats.sharded_universe_nodes, 0);
    // Sharding must not perturb the recursion accounting: every AdpStats
    // field agrees (also guards MergeAdpStats against dropping a field).
    EXPECT_EQ(seq_stats.boolean_nodes, shard_stats.boolean_nodes)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.boolean_fallbacks, shard_stats.boolean_fallbacks)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.singleton_nodes, shard_stats.singleton_nodes)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.universe_nodes, shard_stats.universe_nodes)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.decompose_nodes, shard_stats.decompose_nodes)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.greedy_leaves, shard_stats.greedy_leaves)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.drastic_leaves, shard_stats.drastic_leaves)
        << "iter " << iter;
    EXPECT_EQ(seq_stats.universe_groups, shard_stats.universe_groups)
        << "iter " << iter;
  }
  EXPECT_GT(sharded_nodes, 0);
}

class UniverseOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(UniverseOracleSweep, OptimalForAllK) {
  Rng rng(700 + GetParam());
  const ConjunctiveQuery q = UQ();
  const Database db = RandomDb(q, rng, 6, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0 || db.TotalTuples() > 14) GTEST_SKIP();
  AdpOptions options;
  const AdpNode node = UniverseNode(q, db, total, options);
  ASSERT_TRUE(node.exact);
  for (std::int64_t k = 1; k <= total; ++k) {
    EXPECT_EQ(node.profile.At(k), OracleAdp(q, db, k)) << "k=" << k;
    const auto tuples = node.report(k);
    EXPECT_GE(CountRemovedOutputs(q, db, tuples), k);
    EXPECT_LE(static_cast<std::int64_t>(tuples.size()), node.profile.At(k));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, UniverseOracleSweep,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace adp
