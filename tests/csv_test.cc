// CSV I/O tests: parsing, headers, comments, vacuum relations, error
// handling, database loading, and solution round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "query/parser.h"
#include "solver/compute_adp.h"

namespace adp {
namespace {

TEST(CsvTest, ParsesPlainRows) {
  std::istringstream in("1,2\n3,4\n");
  const auto rows = ReadTuplesCsv(in, 2, "test");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], Tuple({1, 2}));
  EXPECT_EQ(rows[1], Tuple({3, 4}));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# edges\n\n1,2\n\n# more\n3,4\n");
  EXPECT_EQ(ReadTuplesCsv(in, 2, "test").size(), 2u);
}

TEST(CsvTest, IgnoresHeaderLine) {
  std::istringstream in("src,dst\n1,2\n");
  const auto rows = ReadTuplesCsv(in, 2, "test");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], Tuple({1, 2}));
}

TEST(CsvTest, HandlesWhitespaceAndNegatives) {
  std::istringstream in(" 1 , -2 \n");
  const auto rows = ReadTuplesCsv(in, 2, "test");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], Tuple({1, -2}));
}

TEST(CsvTest, RejectsWrongArity) {
  std::istringstream in("1,2,3\n");
  EXPECT_THROW(ReadTuplesCsv(in, 2, "test"), CsvError);
}

TEST(CsvTest, RejectsNonNumericDataAfterHeader) {
  std::istringstream in("a,b\n1,2\nx,y\n");
  EXPECT_THROW(ReadTuplesCsv(in, 2, "test"), CsvError);
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(LoadTuplesCsv("/nonexistent/nope.csv", 2), CsvError);
}

class CsvDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("adp_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvDirTest, LoadsDatabaseAndSolves) {
  WriteFile("R1.csv", "1\n2\n3\n");
  WriteFile("R2.csv", "1,5\n2,5\n3,5\n1,6\n");
  WriteFile("R3.csv", "5\n6\n");
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  const Database db = LoadDatabaseCsv(q, dir_.string());
  EXPECT_EQ(db.rel(0).size(), 3u);
  EXPECT_EQ(db.rel(1).size(), 4u);
  EXPECT_EQ(db.rel(2).size(), 2u);

  AdpOptions options;
  options.verify = true;
  const AdpSolution sol = ComputeAdp(q, db, 3, options);
  EXPECT_TRUE(sol.feasible);
  EXPECT_GE(sol.removed_outputs, 3);
  // R3(5) alone removes the three (·,5) outputs.
  EXPECT_EQ(sol.cost, 1);
}

TEST_F(CsvDirTest, DeduplicatesOnLoad) {
  WriteFile("R1.csv", "1\n1\n2\n");
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A)");
  const Database db = LoadDatabaseCsv(q, dir_.string());
  EXPECT_EQ(db.rel(0).size(), 2u);
}

TEST_F(CsvDirTest, MissingRelationFileThrows) {
  WriteFile("R1.csv", "1\n");
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  EXPECT_THROW(LoadDatabaseCsv(q, dir_.string()), CsvError);
}

TEST_F(CsvDirTest, SolutionCsvRoundTrip) {
  WriteFile("R1.csv", "1\n2\n");
  WriteFile("R2.csv", "1,5\n2,6\n");
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = LoadDatabaseCsv(q, dir_.string());
  const AdpSolution sol = ComputeAdp(q, db, 1, AdpOptions{});
  std::ostringstream out;
  WriteSolutionCsv(out, q, db, sol.tuples);
  const std::string text = out.str();
  EXPECT_NE(text.find("# relation,row,values..."), std::string::npos);
  // One data line per removed tuple.
  std::int64_t lines = 0;
  for (char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 1 + static_cast<std::int64_t>(sol.tuples.size()));
}

}  // namespace
}  // namespace adp
