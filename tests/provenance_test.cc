// ProvenanceIndex tests: profits, incremental deletion, group accounting.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "relational/provenance.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::MakeDb;

TEST(ProvenanceTest, FullCqProfitsAreRowCounts) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {1, 6}, {2, 7}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.total_outputs(), 3);
  EXPECT_EQ(index.alive_outputs(), 3);
  // R1(1) supports rows (1,5) and (1,6).
  EXPECT_EQ(index.Profit(0, 0), 2);
  EXPECT_EQ(index.Profit(0, 1), 1);
  EXPECT_EQ(index.Profit(1, 2), 1);
}

TEST(ProvenanceTest, DeleteCascades) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {1, 6}, {2, 7}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.Delete(0, 0), 2);  // kills both R1(1) outputs
  EXPECT_EQ(index.alive_outputs(), 1);
  EXPECT_FALSE(index.IsRelevant(1, 0));  // R2(1,5) now irrelevant
  EXPECT_TRUE(index.IsRelevant(0, 1));
  EXPECT_EQ(index.Delete(1, 2), 1);
  EXPECT_EQ(index.alive_outputs(), 0);
}

TEST(ProvenanceTest, ProjectionProfitsCountDyingGroups) {
  // Q(A) :- R2(A,B), R3(B): output a dies only when all its rows die.
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R2", {{1, 10}, {1, 11}, {2, 10}}},
                                 {"R3", {{10}, {11}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.total_outputs(), 2);
  // Deleting R3(10) kills rows (1,10) and (2,10): output 2 dies, output 1
  // survives via (1,11).
  EXPECT_EQ(index.Profit(1, 0), 1);
  // Deleting R2(1,10) kills one of output 1's two rows: profit 0.
  EXPECT_EQ(index.Profit(0, 0), 0);
  EXPECT_EQ(index.Delete(1, 0), 1);
  // Now output 1 hangs on row (1,11) alone: R2(1,11) has profit 1.
  EXPECT_EQ(index.Profit(0, 1), 1);
  // And R2(1,10) is dead weight.
  EXPECT_FALSE(index.IsRelevant(0, 0));
}

TEST(ProvenanceTest, InitialProfitIgnoresDeletions) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R2(A,B), R3(B)");
  const Database db = MakeDb(q, {{"R2", {{1, 10}, {1, 11}}},
                                 {"R3", {{10}, {11}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.InitialProfit(1, 0), 0);  // output 1 has another row
  index.Delete(1, 1);
  // InitialProfit is defined against the pristine state.
  EXPECT_EQ(index.InitialProfit(1, 0), 0);
  // Current profit reflects the deletion.
  EXPECT_EQ(index.Profit(1, 0), 1);
}

TEST(ProvenanceTest, DoubleDeleteIsIdempotent) {
  const ConjunctiveQuery q = ParseQuery("Q(A) :- R1(A)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.Delete(0, 0), 1);
  EXPECT_EQ(index.Delete(0, 0), 0);
  EXPECT_EQ(index.alive_outputs(), 1);
}

TEST(ProvenanceTest, BooleanQuerySingleGroup) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}}, {"R2", {{1}, {2}}}});
  ProvenanceIndex index(q.body(), q.head(), db);
  EXPECT_EQ(index.total_outputs(), 1);
  // Deleting R1(1) leaves the (2,2) row: the single boolean output lives.
  EXPECT_EQ(index.Profit(0, 0), 0);
  index.Delete(0, 0);
  EXPECT_EQ(index.alive_outputs(), 1);
  EXPECT_EQ(index.Profit(0, 1), 1);
}

}  // namespace
}  // namespace adp
