// Partial Set Cover tests (§6, Theorem 5): greedy H_k bound, primal-dual
// factor, exact oracle agreement, and the full-CQ ADP reduction.

#include <gtest/gtest.h>

#include <cmath>

#include "approx/adp_psc.h"
#include "approx/set_cover.h"
#include "query/parser.h"
#include "solver/solution.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleAdp;
using testing::OracleCount;
using testing::RandomDb;

PscInstance SmallInstance() {
  PscInstance inst;
  inst.num_elements = 6;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0}, {5}};
  return inst;
}

TEST(PscGreedyTest, CoversTarget) {
  const PscInstance inst = SmallInstance();
  const PscResult res = GreedyPartialSetCover(inst, 5);
  EXPECT_GE(res.covered, 5);
  EXPECT_LE(res.chosen.size(), 3u);
}

TEST(PscGreedyTest, FullCoverUsesBothBigSets) {
  const PscInstance inst = SmallInstance();
  const PscResult res = GreedyPartialSetCover(inst, 6);
  EXPECT_EQ(res.covered, 6);
  EXPECT_EQ(res.chosen.size(), 2u);  // {0,1,2} then {3,4,5} cover everything
}

TEST(PscGreedyTest, PartialTargetCheaper) {
  const PscInstance inst = SmallInstance();
  const PscResult res = GreedyPartialSetCover(inst, 3);
  EXPECT_GE(res.covered, 3);
  EXPECT_EQ(res.chosen.size(), 1u);
}

TEST(PscPrimalDualTest, FeasibleAndPruned) {
  const PscInstance inst = SmallInstance();
  for (std::int64_t k = 1; k <= 6; ++k) {
    const PscResult res = PrimalDualPartialSetCover(inst, k);
    EXPECT_GE(res.covered, k) << "k=" << k;
  }
}

TEST(PscExactTest, KnownOptimum) {
  const PscInstance inst = SmallInstance();
  EXPECT_EQ(ExactPartialSetCover(inst, 3).chosen.size(), 1u);
  EXPECT_EQ(ExactPartialSetCover(inst, 5).chosen.size(), 2u);
  EXPECT_EQ(ExactPartialSetCover(inst, 6).chosen.size(), 2u);
}

TEST(PscRandomSweep, ApproximationBoundsHold) {
  Rng rng(90);
  for (int iter = 0; iter < 40; ++iter) {
    PscInstance inst;
    inst.num_elements = 2 + static_cast<std::int64_t>(rng.Uniform(8));
    const int m = 2 + static_cast<int>(rng.Uniform(6));
    std::int64_t freq_bound = 0;
    std::vector<int> freq(inst.num_elements, 0);
    for (int s = 0; s < m; ++s) {
      std::vector<std::int64_t> set;
      for (std::int64_t e = 0; e < inst.num_elements; ++e) {
        if (rng.UniformDouble() < 0.4) {
          set.push_back(e);
          ++freq[e];
        }
      }
      inst.sets.push_back(set);
    }
    for (int f : freq) freq_bound = std::max<std::int64_t>(freq_bound, f);
    // Coverable elements bound the target.
    std::int64_t coverable = 0;
    for (int f : freq) coverable += (f > 0) ? 1 : 0;
    if (coverable == 0) continue;
    const std::int64_t k = 1 + static_cast<std::int64_t>(
                                   rng.Uniform(coverable));
    const PscResult exact = ExactPartialSetCover(inst, k);
    ASSERT_FALSE(exact.chosen.empty());
    const std::int64_t opt =
        static_cast<std::int64_t>(exact.chosen.size());

    const PscResult greedy = GreedyPartialSetCover(inst, k);
    EXPECT_GE(greedy.covered, k);
    const double hk = std::log(static_cast<double>(k)) + 1.0;
    EXPECT_LE(static_cast<double>(greedy.chosen.size()),
              hk * static_cast<double>(opt) + 1e-9)
        << "greedy beyond H_k bound";

    const PscResult pd = PrimalDualPartialSetCover(inst, k);
    EXPECT_GE(pd.covered, k);
    // Unit-cost primal-dual: within f * OPT + f of optimal (the +f slack
    // accounts for the final crossing set in the partial regime).
    EXPECT_LE(static_cast<std::int64_t>(pd.chosen.size()),
              freq_bound * opt + freq_bound)
        << "primal-dual beyond factor bound";
  }
}

TEST(AdpPscReductionTest, EveryElementInExactlyPSets) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(91);
  const Database db = RandomDb(q, rng, 10, 4);
  const AdpPscReduction red = ReduceFullCqToPsc(q, db);
  std::vector<int> freq(red.instance.num_elements, 0);
  for (const auto& set : red.instance.sets) {
    for (std::int64_t e : set) ++freq[e];
  }
  for (int f : freq) EXPECT_EQ(f, 3);  // p = 3 relations
}

TEST(AdpPscReductionTest, SolutionsAreFeasibleAndBounded) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Rng rng(92);
  for (int iter = 0; iter < 8; ++iter) {
    const Database db = RandomDb(q, rng, 6, 3);
    const std::int64_t total = OracleCount(q, db);
    if (total == 0) continue;
    const std::int64_t k = (total + 1) / 2;
    for (PscAlgorithm alg :
         {PscAlgorithm::kGreedy, PscAlgorithm::kPrimalDual}) {
      const AdpSolution sol = SolveFullCqViaPsc(q, db, k, alg);
      ASSERT_TRUE(sol.feasible);
      EXPECT_GE(CountRemovedOutputs(q, db, sol.tuples), k);
      const std::int64_t opt = OracleAdp(q, db, k);
      EXPECT_GE(sol.cost, opt);
      // p-approximation plus the partial-cover slack.
      EXPECT_LE(sol.cost, 3 * opt + 3);
    }
  }
}

TEST(AdpPscReductionTest, InfeasibleTarget) {
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
  Database db(3);
  db.Load(0, {{1}});
  db.Load(1, {{1, 5}});
  db.Load(2, {{5}});
  const AdpSolution sol = SolveFullCqViaPsc(q, db, 2, PscAlgorithm::kGreedy);
  EXPECT_FALSE(sol.feasible);
}

}  // namespace
}  // namespace adp
