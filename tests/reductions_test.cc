// Machine-checks the Lemma 5 / §4.2.1 hardness reductions: the three
// bipartite problems and the ADP instances they encode into must have
// identical optimal values on randomized graphs.

#include <gtest/gtest.h>

#include "reductions/bipartite.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleAdp;
using testing::OracleCount;

BipartiteGraph StarPlusStar() {
  // The counterexample from DESIGN discussions: A = {0,1,2}, B = {0,1,2},
  // edges a0-{b0,b1,b2}, a1-b0, a2-b0. Max matching 2 < min side 3.
  BipartiteGraph g;
  g.na = 3;
  g.nb = 3;
  g.edges = {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}};
  return g;
}

TEST(BipartiteExactTest, PartialVertexCoverSmall) {
  const BipartiteGraph g = StarPlusStar();
  // Removing vertex a0 removes 3 edges.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kPartialVertexCover, 3)
                .cost,
            1);
  // All 5 edges: a0 and b0.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kPartialVertexCover, 5)
                .cost,
            2);
}

TEST(BipartiteExactTest, RemoveBKillA) {
  const BipartiteGraph g = StarPlusStar();
  // Killing a1 (or a2) needs only b0; killing a0 needs all of b0,b1,b2.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveBKillA, 1).cost,
            1);
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveBKillA, 2).cost,
            1);  // b0 kills both a1 and a2
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveBKillA, 3).cost,
            3);
}

TEST(BipartiteExactTest, RemoveAnyKillA) {
  const BipartiteGraph g = StarPlusStar();
  // Direct deletion of an A vertex counts.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveAnyKillA, 1).cost,
            1);
  // Three A-vertices: b0 kills a1,a2; then delete a0 directly -> cost 2.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveAnyKillA, 3).cost,
            2);
}

TEST(BipartiteExactTest, InfeasibleTarget) {
  BipartiteGraph g;
  g.na = 2;
  g.nb = 1;
  g.edges = {{0, 0}};
  // Only one A-vertex is non-isolated; killing 2 is impossible.
  EXPECT_EQ(SolveBipartiteExact(g, BipartiteProblem::kRemoveBKillA, 2).cost,
            -1);
}

TEST(EncodingTest, QueriesMatchCoreShapes) {
  const BipartiteGraph g = StarPlusStar();
  EXPECT_EQ(EncodeAsAdp(g, BipartiteProblem::kPartialVertexCover)
                .query.num_relations(),
            3);
  EXPECT_EQ(EncodeAsAdp(g, BipartiteProblem::kRemoveBKillA)
                .query.num_relations(),
            2);
  EXPECT_EQ(EncodeAsAdp(g, BipartiteProblem::kRemoveAnyKillA)
                .query.num_relations(),
            3);
}

// The reduction property: optimal values coincide between the bipartite
// problem and its ADP encoding, for every feasible target.
class ReductionEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReductionEquivalence, OptimaCoincide) {
  const auto& [problem_idx, seed] = GetParam();
  const BipartiteProblem problem = static_cast<BipartiteProblem>(problem_idx);
  Rng rng(11000 + seed);
  BipartiteGraph g;
  g.na = 2 + static_cast<int>(rng.Uniform(3));
  g.nb = 2 + static_cast<int>(rng.Uniform(3));
  for (int a = 0; a < g.na; ++a) {
    for (int b = 0; b < g.nb; ++b) {
      if (rng.UniformDouble() < 0.4) g.edges.emplace_back(a, b);
    }
  }
  if (g.edges.empty()) GTEST_SKIP();

  const BipartiteAdpInstance enc = EncodeAsAdp(g, problem);
  const std::int64_t total = OracleCount(enc.query, enc.db);
  for (std::int64_t k = 1; k <= total; ++k) {
    const BipartiteResult graph_opt = SolveBipartiteExact(g, problem, k);
    const std::int64_t adp_opt = OracleAdp(enc.query, enc.db, k);
    EXPECT_EQ(graph_opt.cost, adp_opt)
        << "problem " << problem_idx << " seed " << seed << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ReductionEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Range(0, 10)));

}  // namespace
}  // namespace adp
