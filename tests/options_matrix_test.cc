// Options-matrix stress test: every combination of solver options must
// produce feasible solutions, identical optimal costs on exact paths, and
// verified effects, across a fixed pool of random queries/instances.

#include <gtest/gtest.h>

#include "dichotomy/is_ptime.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "test_util.h"

namespace adp {
namespace {

using testing::OracleCount;
using testing::RandomDb;
using testing::RandomQuery;

struct OptionCombo {
  AdpOptions::Heuristic heuristic;
  bool counting_only;
  AdpOptions::UniverseStrategy universe;
  bool convex_merge;
  AdpOptions::DecomposeStrategy decompose;
  bool use_singleton;
};

std::vector<OptionCombo> AllCombos() {
  std::vector<OptionCombo> out;
  for (auto h : {AdpOptions::Heuristic::kGreedy,
                 AdpOptions::Heuristic::kDrastic}) {
    for (bool counting : {false, true}) {
      for (auto u : {AdpOptions::UniverseStrategy::kAllAtOnce,
                     AdpOptions::UniverseStrategy::kOneByOne}) {
        for (bool cm : {true, false}) {
          for (auto d : {AdpOptions::DecomposeStrategy::kImprovedDP,
                         AdpOptions::DecomposeStrategy::kPairwiseNaive,
                         AdpOptions::DecomposeStrategy::kFullEnumeration}) {
            for (bool s : {true, false}) {
              out.push_back({h, counting, u, cm, d, s});
            }
          }
        }
      }
    }
  }
  return out;
}

class OptionsMatrix : public ::testing::TestWithParam<int> {};

TEST_P(OptionsMatrix, AllCombosConsistent) {
  Rng rng(16000 + GetParam());
  const ConjunctiveQuery q = RandomQuery(rng, 4, 3);
  const Database db = RandomDb(q, rng, 6, 3);
  const std::int64_t total = OracleCount(q, db);
  if (total == 0) GTEST_SKIP();
  const std::int64_t k = (total + 1) / 2;
  const bool ptime = IsPtime(q);

  std::int64_t exact_cost = -1;
  for (const OptionCombo& combo : AllCombos()) {
    AdpOptions options;
    options.heuristic = combo.heuristic;
    options.counting_only = combo.counting_only;
    options.universe_strategy = combo.universe;
    options.universe_convex_merge = combo.convex_merge;
    options.decompose_strategy = combo.decompose;
    options.use_singleton = combo.use_singleton;
    options.verify = !combo.counting_only;

    const AdpSolution sol = ComputeAdp(q, db, k, options);
    ASSERT_TRUE(sol.feasible) << q.ToString();
    if (!combo.counting_only) {
      EXPECT_GE(sol.removed_outputs, k) << q.ToString();
    } else {
      EXPECT_TRUE(sol.tuples.empty());
    }
    if (ptime) {
      // Every combination stays exact on poly-time queries and all exact
      // costs agree.
      EXPECT_TRUE(sol.exact) << q.ToString();
      if (exact_cost < 0) exact_cost = sol.cost;
      EXPECT_EQ(sol.cost, exact_cost) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OptionsMatrix,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace adp
