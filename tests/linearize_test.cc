// Linearization tests (§7.1): contiguous arrangements exist exactly for the
// shapes the Boolean solver needs.

#include <gtest/gtest.h>

#include "dichotomy/linearize.h"
#include "dichotomy/triad.h"
#include "query/parser.h"
#include "test_util.h"

namespace adp {
namespace {

TEST(LinearizeTest, ChainIsLinearInGivenOrder) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,E)");
  EXPECT_TRUE(IsLinearOrder(q, {0, 1, 2}));
  EXPECT_FALSE(IsLinearOrder(q, {0, 2, 1}));
  ASSERT_TRUE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, PathWithEndpointsIsLinear) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3(B)");
  const auto order = FindLinearOrder(q);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(IsLinearOrder(q, *order));
}

TEST(LinearizeTest, TriangleIsNotLinear) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B), R2(B,C), R3(C,A)");
  EXPECT_FALSE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, QtIsNotLinear) {
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(A,B,C), R2(A), R3(B), R4(C)");
  EXPECT_FALSE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, StarWithTwoLegsIsLinear) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B,C), R2(A), R3(B)");
  ASSERT_TRUE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, VacuumRelationFitsAnywhere) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(A,B), R3()");
  ASSERT_TRUE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, DisconnectedBodyIsLinear) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A), R2(B)");
  ASSERT_TRUE(FindLinearOrder(q).has_value());
}

TEST(LinearizeTest, SingleRelation) {
  const ConjunctiveQuery q = ParseQuery("Q() :- R1(A,B)");
  ASSERT_TRUE(FindLinearOrder(q).has_value());
}

// Soundness direction of §7.1: a linear arrangement implies the query is
// triad-free (linear queries are poly-time solvable). The converse does NOT
// hold without the query transformations of Freire et al. [11]; the solver
// falls back to the greedy heuristic (exact = false) on such shapes — see
// DESIGN.md.
class LinearizableImpliesTriadFree : public ::testing::TestWithParam<int> {};

TEST_P(LinearizableImpliesTriadFree, Holds) {
  Rng rng(3000 + GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    ConjunctiveQuery q = testing::RandomQuery(rng, 5, 4);
    q.SetHead(AttrSet());  // force boolean
    if (FindLinearOrder(q).has_value()) {
      EXPECT_FALSE(FindTriad(q).has_value()) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, LinearizableImpliesTriadFree,
                         ::testing::Range(0, 10));

TEST(LinearizeTest, TriadFreeDoesNotImplyLinearizable) {
  // A documented counterexample: two endogenous atoms only (hence no
  // triad), but the exogenous atoms' attribute overlaps admit no contiguous
  // arrangement. The Boolean solver uses its greedy fallback here.
  const ConjunctiveQuery q =
      ParseQuery("Q() :- R1(C,D,E), R2(B,D), R3(B), R4(B,C)");
  EXPECT_FALSE(FindTriad(q).has_value());
  EXPECT_FALSE(FindLinearOrder(q).has_value());
}

}  // namespace
}  // namespace adp
