// Tests for the observability layer (src/obs/): the metrics registry's
// histogram bucketing and quantiles against a sorted-vector oracle,
// counter/histogram behavior under concurrent updates, span
// nesting/parentage in the tracer, exporter output (Chrome trace-event
// JSON, Prometheus text exposition), and the engine integration —
// collect_trace responses whose span tree matches the solve's AdpStats and
// a metrics endpoint that reports real quantiles after a request burst.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "test_util.h"
#include "util/rng.h"

namespace adp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::Span;
using obs::Trace;
using obs::TraceSink;
using obs::TraceSpan;
using testing::MakeDb;
using testing::RandomDb;

// ---------------------------------------------------------------------------
// Histogram bucketing

TEST(ObsHistogramTest, BucketBoundaries) {
  // Bucket 0 is [0, kFirstUpperMs]; negatives and NaN land there too.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(-1.0), 0);
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<double>::quiet_NaN()),
            0);
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstUpperMs), 0);
  // Strictly above a bound falls into the next bucket.
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstUpperMs * 1.0001), 1);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::UpperBound(i)), i) << i;
  }
  // Beyond the last finite bound: the overflow bucket — even many
  // doublings past it (a naive ceil(log2) index would run off the array).
  const double last = Histogram::UpperBound(Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(last * 2.0), Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::BucketFor(last * 4.0), Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<double>::max()),
            Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets);
}

TEST(ObsHistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
}

// The documented quantile contract, against a sorted-vector oracle: for
// the ceil(p*n)-th smallest observation v, the histogram reports the upper
// bound of v's bucket — so Quantile(p) >= v and, buckets being doubling,
// Quantile(p) <= max(2*v, kFirstUpperMs).
TEST(ObsHistogramTest, QuantileMatchesSortedOracleWithinOneBucket) {
  Rng rng(99);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~9 decades, the shape latencies actually have.
    const double v = std::pow(10.0, -3.0 + 9.0 * (static_cast<double>(
                                                      rng.Uniform(1000000)) /
                                                  1000000.0));
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double p : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size())));
    const double v = values[std::max<std::size_t>(rank, 1) - 1];
    const double q = h.Quantile(p);
    EXPECT_GE(q, v) << "p=" << p;
    EXPECT_LE(q, std::max(2.0 * v, Histogram::kFirstUpperMs)) << "p=" << p;
  }
}

TEST(ObsHistogramTest, SumAndCountTrackObservations) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.5);
  h.Observe(0.5);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 4.0);
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry

TEST(ObsCounterTest, RecordTotalIsMonotonic) {
  Counter c;
  c.RecordTotal(5);
  EXPECT_EQ(c.Value(), 5u);
  c.RecordTotal(3);  // stale mirror update: must not regress
  EXPECT_EQ(c.Value(), 5u);
  c.RecordTotal(9);
  EXPECT_EQ(c.Value(), 9u);
}

TEST(ObsRegistryTest, InstrumentsAreStableAndKindChecked) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("adp_test_total");
  Counter& c2 = reg.GetCounter("adp_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.Increment(7);
  EXPECT_EQ(reg.Snapshot().counters.at("adp_test_total"), 7u);
  EXPECT_THROW(reg.GetGauge("adp_test_total"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("adp_test_total"), std::logic_error);
  Gauge& g = reg.GetGauge("adp_test_gauge");
  g.Set(41);
  g.Add(1);
  EXPECT_EQ(reg.Snapshot().gauges.at("adp_test_gauge"), 42);
}

// Relaxed-atomic instruments must not lose updates under the same pool the
// engine shards on. Joined by the TSan CI job.
TEST(ObsConcurrencyTest, CountersAndHistogramsUnderThreadPool) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("adp_conc_total");
  Histogram& h = reg.GetHistogram("adp_conc_ms");
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&c, &h, t] {
      for (int i = 0; i < kPerTask; ++i) {
        c.Increment();
        h.Observe(0.001 * (t + 1));
      }
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kTasks) * kPerTask);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTraceTest, SpanNestingAndParentage) {
  TraceSink sink;
  Span root(&sink, "adp.request");
  ASSERT_NE(root.id(), 0u);
  {
    Span child(&sink, "adp.solve", root.id());
    ASSERT_NE(child.id(), 0u);
    child.Tag("cap", static_cast<std::int64_t>(3));
    Span grandchild(&sink, "adp.node.universe", child.id());
    ASSERT_NE(grandchild.id(), 0u);
  }
  root.End();
  const Trace trace = sink.Take();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.dropped, 0u);
  const TraceSpan& rs = trace.spans[0];
  const TraceSpan& cs = trace.spans[1];
  const TraceSpan& gs = trace.spans[2];
  EXPECT_EQ(rs.parent, 0u);
  EXPECT_EQ(cs.parent, rs.id);
  EXPECT_EQ(gs.parent, cs.id);
  ASSERT_EQ(cs.tags.size(), 1u);
  EXPECT_EQ(cs.tags[0].first, "cap");
  EXPECT_EQ(cs.tags[0].second, "3");
  // All closed: durations stamped, children contained in their parents.
  for (const TraceSpan& s : trace.spans) EXPECT_GE(s.duration_ms, 0.0);
  EXPECT_LE(rs.start_ms, cs.start_ms);
  EXPECT_LE(cs.start_ms + cs.duration_ms,
            rs.start_ms + rs.duration_ms + 1e-6);
  EXPECT_LE(gs.start_ms + gs.duration_ms,
            cs.start_ms + cs.duration_ms + 1e-6);
}

TEST(ObsTraceTest, SinkBoundCountsDropped) {
  TraceSink sink(/*max_spans=*/2);
  Span a(&sink, "adp.request");
  Span b(&sink, "adp.solve", a.id());
  Span c(&sink, "adp.node.boolean", b.id());
  EXPECT_EQ(c.id(), 0u);  // over the bound: dropped, inert
  c.End();
  b.End();
  a.End();
  const Trace trace = sink.Take();
  EXPECT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.dropped, 1u);
}

TEST(ObsTraceTest, BackdatedOriginPlacesQueueSpanFirst) {
  TraceSink sink(TraceSink::kDefaultMaxSpans, /*backdate_ms=*/5.0);
  sink.AddCompleteSpan("adp.queue", 0, 0.0, 5.0);
  Span root(&sink, "adp.request");
  root.End();
  const Trace trace = sink.Take();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "adp.queue");
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 5.0);
  // The instrumented span starts at (or after) the queue span's end.
  EXPECT_GE(trace.spans[1].start_ms, 5.0 - 1e-6);
}

// Crude but real structural validation of the Chrome trace-event export:
// balanced braces/brackets, the required top-level keys, one "X" event per
// span, names and parent links present in args.
TEST(ObsTraceTest, WriteJsonIsStructurallyValid) {
  TraceSink sink;
  Span root(&sink, "adp.request");
  Span child(&sink, "adp.solve", root.id());
  child.Tag("k", static_cast<std::int64_t>(2));
  child.End();
  root.End();
  const Trace trace = sink.Take();
  std::ostringstream out;
  trace.WriteJson(out);
  const std::string json = out.str();
  std::int64_t braces = 0, brackets = 0;
  for (const char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"adp.request\""), std::string::npos);
  EXPECT_NE(json.find("\"adp.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"2\""), std::string::npos);
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, trace.spans.size());
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(ObsRegistryTest, PrometheusExpositionIsWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("adp_requests_total").Increment(3);
  reg.GetGauge("adp_databases").Set(2);
  Histogram& h = reg.GetHistogram("adp_request_latency_ms");
  h.Observe(0.5);
  h.Observe(4.0);
  std::ostringstream out;
  reg.WritePrometheus(out);
  std::istringstream in(out.str());
  std::string line;
  std::uint64_t inf_bucket = 0, count = 0;
  int type_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      continue;
    }
    // Every sample line is "name{labels} value" or "name value".
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    if (line.rfind("adp_request_latency_ms_bucket{le=\"+Inf\"}", 0) == 0) {
      inf_bucket = std::stoull(line.substr(space + 1));
    }
    if (line.rfind("adp_request_latency_ms_count", 0) == 0) {
      count = std::stoull(line.substr(space + 1));
    }
  }
  EXPECT_EQ(type_lines, 3);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(inf_bucket, count);  // +Inf bucket is cumulative == _count
}

// ---------------------------------------------------------------------------
// Engine integration

// collect_trace: the response carries a span tree whose node spans match
// the solve's own AdpStats case counts, rooted in the request pipeline.
TEST(ObsEngineTest, CollectTraceSpansMatchSolverStats) {
  EngineConfig config;
  config.num_workers = 2;
  AdpEngine engine(config);
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E) :- R1(A), R2(A,B), R3(C), R4(C,E)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}},
                                 {"R3", {{7}, {8}}},
                                 {"R4", {{7, 9}, {8, 9}}}});
  AdpRequest req;
  req.query = q;
  req.db = engine.RegisterDatabase(db);
  req.k = 2;
  req.collect_trace = true;
  const AdpResponse resp = engine.Execute(req);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  ASSERT_NE(resp.trace, nullptr);
  EXPECT_EQ(resp.trace->dropped, 0u);

  std::uint64_t node_spans = 0;
  std::uint64_t pipeline_spans = 0;
  for (const TraceSpan& s : resp.trace->spans) {
    EXPECT_GE(s.duration_ms, 0.0) << s.name;  // everything closed
    if (s.name.rfind("adp.node.", 0) == 0) ++node_spans;
    if (s.name == obs::kSpanPlan || s.name == obs::kSpanBind ||
        s.name == obs::kSpanSolve) {
      ++pipeline_spans;
    }
    // Parent links resolve within the trace (ids are 1-based indices).
    if (s.parent != 0) {
      ASSERT_LE(s.parent, resp.trace->spans.size());
      EXPECT_LT(resp.trace->spans[s.parent - 1].start_ms,
                s.start_ms + 1e-6);
    }
  }
  const std::uint64_t stats_nodes =
      static_cast<std::uint64_t>(resp.stats.boolean_nodes) +
      static_cast<std::uint64_t>(resp.stats.singleton_nodes) +
      static_cast<std::uint64_t>(resp.stats.universe_nodes) +
      static_cast<std::uint64_t>(resp.stats.decompose_nodes) +
      static_cast<std::uint64_t>(resp.stats.greedy_leaves) +
      static_cast<std::uint64_t>(resp.stats.drastic_leaves);
  EXPECT_EQ(node_spans, stats_nodes);
  EXPECT_EQ(pipeline_spans, 3u);
  EXPECT_EQ(resp.trace->spans[0].name, obs::kSpanRequest);

  // Untraced requests carry no trace — and must not have coalesced with
  // the traced one.
  req.collect_trace = false;
  const AdpResponse plain = engine.Execute(req);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.trace, nullptr);
}

// A traced sharded-Decompose request: shard spans recorded from pool
// threads parent correctly, and the trace covers (nearly) the whole
// request wall time — the acceptance bar for "spans over the solver tree".
TEST(ObsEngineTest, ShardedDecomposeTraceCoversWallTime) {
  EngineConfig config;
  config.num_workers = 2;
  config.min_shard_components = 2;
  config.min_shard_groups = 0;
  AdpEngine engine(config);
  Rng rng(7);
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E) :- R1(A), R2(A,B), R3(C), R4(C,E)");
  AdpRequest req;
  req.query = q;
  req.db = engine.RegisterDatabase(RandomDb(q, rng, 60, 30));
  req.k = 4;
  req.collect_trace = true;
  const AdpResponse resp = engine.Execute(req);
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  ASSERT_NE(resp.trace, nullptr);
  EXPECT_GT(resp.stats.sharded_decompose_nodes, 0);

  std::uint64_t shard_spans = 0;
  double first_start = std::numeric_limits<double>::infinity();
  double last_end = 0.0;
  for (const TraceSpan& s : resp.trace->spans) {
    if (s.name == obs::kSpanShardDecompose) {
      ++shard_spans;
      ASSERT_NE(s.parent, 0u);  // always a child of its Decompose node
    }
    first_start = std::min(first_start, s.start_ms);
    last_end = std::max(last_end, s.start_ms + std::max(s.duration_ms, 0.0));
  }
  EXPECT_GT(shard_spans, 0u);
  // The root request span opens with the pipeline and closes at response
  // assembly, so recorded spans cover >= 95% of the measured wall time.
  EXPECT_GE(last_end - first_start, 0.95 * resp.total_ms);
}

// After a burst of requests the registry reports real latency quantiles
// through the engine's Prometheus endpoint.
TEST(ObsEngineTest, MetricsReportQuantilesAfterBurst) {
  EngineConfig config;
  config.num_workers = 4;
  AdpEngine engine(config);
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  const DbId id = engine.RegisterDatabase(db);
  std::vector<AdpRequest> batch;
  for (int i = 0; i < 100; ++i) {
    AdpRequest req;
    req.query = q;
    req.db = id;
    // Distinct k per request: identical (query, k) pairs would be absorbed
    // by single-flight dedup and never observe a latency sample. k beyond
    // |Q(D)| is fine — infeasible solves are still OK responses.
    req.k = 1 + i;
    batch.push_back(std::move(req));
  }
  const std::vector<AdpResponse> out = engine.ExecuteBatch(std::move(batch));
  ASSERT_EQ(out.size(), 100u);
  for (const AdpResponse& r : out) ASSERT_TRUE(r.ok());

  obs::MetricsRegistry& metrics = engine.metrics();
  const HistogramSnapshot lat =
      metrics.GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  EXPECT_EQ(lat.count, 100u);
  EXPECT_GT(lat.Quantile(0.99), 0.0);

  std::ostringstream text;
  engine.WriteMetricsText(text);
  const std::string exposition = text.str();
  EXPECT_NE(exposition.find("# TYPE adp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("adp_request_latency_ms_count 100"),
            std::string::npos);
  EXPECT_NE(exposition.find("# TYPE adp_request_latency_ms histogram"),
            std::string::npos);
}

// Streaming twin: the kEnd item of a traced stream carries the trace.
TEST(ObsEngineTest, StreamEndItemCarriesTrace) {
  EngineConfig config;
  config.num_workers = 2;
  AdpEngine engine(config);
  const ConjunctiveQuery q = ParseQuery("Q(A,B) :- R1(A), R2(A,B)");
  const Database db = MakeDb(q, {{"R1", {{1}, {2}}},
                                 {"R2", {{1, 5}, {2, 6}}}});
  AdpRequest req;
  req.query = q;
  req.db = engine.RegisterDatabase(db);
  req.k = 2;
  req.collect_trace = true;
  ResultStream stream = engine.StreamAdp(std::move(req));
  ASSERT_TRUE(stream.valid());
  std::optional<StreamItem> end;
  while (auto item = stream.Next()) {
    if (item->kind == StreamItem::Kind::kEnd) {
      end = std::move(item);
    } else {
      EXPECT_EQ(item->trace, nullptr);  // only the terminal carries it
    }
  }
  ASSERT_TRUE(end.has_value());
  ASSERT_TRUE(end->status.ok()) << end->status.ToString();
  ASSERT_NE(end->trace, nullptr);
  // The stream's root span is present (preceded by the synthetic queue
  // span when the producer waited for a worker).
  std::uint64_t stream_spans = 0;
  for (const TraceSpan& s : end->trace->spans) {
    if (s.name == obs::kSpanStream) ++stream_spans;
  }
  EXPECT_EQ(stream_spans, 1u);
}

}  // namespace
}  // namespace adp
