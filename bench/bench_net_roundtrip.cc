// Network round-trip overhead: the AdpNetServer front door versus direct
// AdpEngine calls on the same workload.
//
// NetReqRoundTrip measures single-client REQ latency over loopback — one
// frame out, one kResult frame back — against an in-process server. The
// engine work is a warm-cache chain solve, so the measured time is
// dominated by framing, the event loop, and two loopback hops; comparing
// against EngineThroughput's per-request latency isolates the wire tax.
//
// NetPipelinedThroughput measures the serving regime the front door is
// built for: `clients` concurrent connections each pipelining `batch`
// REQs before draining the replies, so the event loop, worker pool, and
// per-connection outboxes all stay busy. items_per_second counts
// completed request round-trips across all clients.
//
// EmitNetTrajectory writes BENCH_net.json (ADP_BENCH_JSON overrides the
// path): a fixed 4-client × 64-request pipelined run plus the server-side
// frame counters, one flat diffable JSON object per run, the same perf
// trajectory contract as BENCH_engine.json (docs/OBSERVABILITY.md).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/stopwatch.h"

namespace adp::bench {
namespace {

using net::AdpNetClient;
using net::AdpNetServer;
using net::Frame;
using net::FrameType;
using net::NetServerConfig;

constexpr char kDbLine[] =
    "DB d1 R1=11,21/12,22/13,23 R2=21,31/22,32/22,33/23,33 "
    "R3=31,41/32,43/33,43";
constexpr char kReqLine[] = "REQ d1 2 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)";

/// Engine + started server, shared by every iteration of one benchmark.
struct ServerHarness {
  explicit ServerHarness(int workers) : engine(MakeConfig(workers)) {
    server = std::make_unique<AdpNetServer>(engine);
    if (!server->Start().ok()) std::abort();
  }
  ~ServerHarness() {
    server->Stop();
    engine.Shutdown();
  }

  static EngineConfig MakeConfig(int workers) {
    EngineConfig config;
    config.num_workers = workers;
    return config;
  }

  AdpNetClient Connect() {
    AdpNetClient client;
    if (!client.Connect("127.0.0.1", server->port())) std::abort();
    std::string body;
    if (!client.Call(FrameType::kDb, kDbLine, &body)) std::abort();
    return client;
  }

  AdpEngine engine;
  std::unique_ptr<AdpNetServer> server;
};

/// One pipelined batch on an already-connected client; returns completed
/// round-trips (aborts on protocol failure — a bench must not lie).
std::int64_t RunBatch(AdpNetClient& client, int batch) {
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const std::int64_t id = client.NextId();
    if (!client.Send(FrameType::kReq, id, kReqLine)) std::abort();
    ids.push_back(id);
  }
  for (const std::int64_t id : ids) {
    if (!client.WaitReply(id).has_value()) std::abort();
  }
  return batch;
}

void NetReqRoundTrip(benchmark::State& state) {
  ServerHarness harness(static_cast<int>(state.range(0)));
  AdpNetClient client = harness.Connect();
  std::string body;
  client.Call(FrameType::kReq, kReqLine, &body);  // warm the plan cache
  for (auto _ : state) {
    if (!client.Call(FrameType::kReq, kReqLine, &body)) std::abort();
    benchmark::DoNotOptimize(body.data());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(NetReqRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("workers")
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void NetPipelinedThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  if (SkipIfCoresCannotScale(state, clients)) return;
  ServerHarness harness(/*workers=*/4);
  std::vector<AdpNetClient> conns;
  for (int c = 0; c < clients; ++c) conns.push_back(harness.Connect());
  std::string body;
  conns[0].Call(FrameType::kReq, kReqLine, &body);  // warm the plan cache

  std::int64_t total = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(conns.size());
    for (AdpNetClient& conn : conns) {
      threads.emplace_back([&conn, batch] { RunBatch(conn, batch); });
    }
    for (std::thread& t : threads) t.join();
    total += static_cast<std::int64_t>(clients) * batch;
  }
  state.SetItemsProcessed(total);
}

BENCHMARK(NetPipelinedThroughput)
    ->Args({1, 32})
    ->Args({4, 32})
    ->Args({8, 32})
    ->ArgNames({"clients", "batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Machine-readable perf trajectory: one fixed pipelined run against a
// fresh server, written to BENCH_net.json. Successive CI runs are the
// trajectory — flat object, stable keys, diffable.
void EmitNetTrajectory() {
  const char* env = std::getenv("ADP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_net.json";

  constexpr int kClients = 4;
  constexpr int kBatch = 64;
  ServerHarness harness(/*workers=*/4);
  std::vector<AdpNetClient> conns;
  for (int c = 0; c < kClients; ++c) conns.push_back(harness.Connect());
  std::string body;
  conns[0].Call(FrameType::kReq, kReqLine, &body);  // warm the plan cache

  const MonotonicClock::time_point start = Now();
  std::vector<std::thread> threads;
  for (AdpNetClient& conn : conns) {
    threads.emplace_back([&conn] { RunBatch(conn, kBatch); });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = MsBetween(start, Now());
  const std::int64_t requests =
      static_cast<std::int64_t>(kClients) * kBatch;

  const EngineCounters counters = harness.engine.counters();
  BenchJsonWriter json;
  json.Add("clients", kClients);
  json.Add("batch", kBatch);
  json.Add("requests", static_cast<double>(requests));
  json.Add("wall_ms", wall_ms);
  json.Add("requests_per_sec",
           wall_ms > 0.0 ? requests / (wall_ms / 1000.0) : 0.0);
  json.Add("engine_requests", static_cast<double>(counters.requests));
  json.Add("engine_failures", static_cast<double>(counters.failures));
  json.Add("engine_shed", static_cast<double>(counters.shed));
  json.Add("plan_cache_hits", static_cast<double>(counters.plan_hits));
  if (json.WriteTo(path)) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace adp::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adp::bench::EmitNetTrajectory();
  return 0;
}
