// Approximation-quality study (§6 / Theorem 5, no figure in the paper):
// on the full CQ Qpath, compare the two Partial-Set-Cover algorithms
// against the heuristic leaves. Counters report the solution sizes so the
// O(log k) greedy and the p-approximate primal-dual can be judged against
// DrasticGreedy at identical targets.

#include <benchmark/benchmark.h>

#include "approx/adp_psc.h"
#include "bench_util.h"
#include "workload/zipf_data.h"

namespace adp::bench {
namespace {

enum Method { kPscGreedy = 0, kPscPrimalDual = 1, kDrastic = 2, kGreedy = 3 };

void ApproxQuality(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t rho = state.range(1);
  const Method method = static_cast<Method>(state.range(2));

  const ConjunctiveQuery q = MakeQPath();
  const Database db = MakeZipfDatabase(q, n, /*alpha=*/0.5, /*seed=*/42);
  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  options.heuristic = method == kDrastic ? AdpOptions::Heuristic::kDrastic
                                         : AdpOptions::Heuristic::kGreedy;
  AdpSolution sol;
  for (auto _ : state) {
    switch (method) {
      case kPscGreedy:
        sol = SolveFullCqViaPsc(q, db, k, PscAlgorithm::kGreedy);
        break;
      case kPscPrimalDual:
        sol = SolveFullCqViaPsc(q, db, k, PscAlgorithm::kPrimalDual);
        break;
      case kDrastic:
      case kGreedy:
        sol = ComputeAdp(q, db, k, options);
        break;
    }
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {1000, 5000}) {
    for (std::int64_t rho : {10, 50}) {
      for (std::int64_t m : {kPscGreedy, kPscPrimalDual, kDrastic, kGreedy}) {
        b->Args({n, rho, m});
      }
    }
  }
}

BENCHMARK(ApproxQuality)
    ->Apply(Sweep)
    ->ArgNames({"N", "rho_pct", "method"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
