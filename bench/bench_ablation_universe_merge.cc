// Design-choice ablation (this implementation, called out in DESIGN.md):
// the Universe combination step can run either as the plain min-plus DP
// (Eq. 1) or, when every class profile has concave gains, as a greedy merge
// of marginal gains. This bench measures the gap on a singleton-per-class
// workload with many classes — the regime the Figure 28 "improved" strategy
// lives in.
//
// The query is forced through the Universe path (Singleton base case
// disabled) so the combination step is what dominates.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/rng.h"

namespace adp::bench {
namespace {

// Q(A,B) :- R1(A), R2(A,B): A universal; every class is a vacuum-singleton.
void AblationUniverseMerge(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool convex_merge = state.range(1) != 0;

  ConjunctiveQuery q;
  const AttrId a = q.AddAttribute("A");
  const AttrId b = q.AddAttribute("B");
  q.AddRelation("R1", {a});
  q.AddRelation("R2", {a, b});
  q.SetHead(AttrSet({a, b}));

  Rng rng(42);
  Database db(2);
  const std::int64_t keys = std::max<std::int64_t>(2, n / 6);
  for (std::int64_t i = 0; i < keys; ++i) db.rel(0).Add({i});
  for (std::int64_t i = 0; i < n; ++i) {
    db.rel(1).Add({static_cast<Value>(rng.Uniform(keys)),
                   static_cast<Value>(rng.Uniform(n))});
  }
  db.DedupAll();

  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs / 2);

  AdpOptions options;
  options.use_singleton = false;  // force the Universe path
  options.universe_convex_merge = convex_merge;
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(q, db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* bench) {
  for (std::int64_t n : {2000, 10000, 50000}) {
    bench->Args({n, 1});
    bench->Args({n, 0});
  }
}

BENCHMARK(AblationUniverseMerge)
    ->Apply(Sweep)
    ->ArgNames({"N", "convex_merge"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
