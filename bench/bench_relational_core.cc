// Ablation for the columnar relational core: row-at-a-time baselines (the
// pre-columnar implementations, reconstructed here) vs the shipped
// code-native paths, on the two DP-heavy substrates the refactor targeted:
//
//   1. Universe grouping (Algorithm 4's partition step / the join build
//      side): Tuple-keyed hashing over materialized rows vs HashGroupIndex
//      over dictionary codes.
//   2. Witness normalization (NormalizeTupleRefs on large solutions):
//      struct sort+unique with a two-field comparator vs the packed-uint64
//      sort the solver ships.
//
// Each comparison asserts bit-identical outputs before reporting. After the
// registered micro-benchmarks run (CI skips them with --benchmark_filter of
// '^$'), EmitRelationalAblation() times both sides on the paper's DP-heavy
// workloads (Zipf Q6 and the correlated Q7 instance, §8.4/§8.5) and writes
// BENCH_relational.json (path overridable via ADP_BENCH_JSON) next to the
// engine trajectory artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "relational/group_index.h"
#include "solver/solution.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/synthetic.h"
#include "workload/zipf_data.h"

namespace adp::bench {
namespace {

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (Value v : t) h = HashMix(h, static_cast<std::uint64_t>(v));
    return static_cast<std::size_t>(h);
  }
};

using RowGroups = std::unordered_map<Tuple, std::vector<TupleId>, TupleHash>;

// The pre-columnar grouping substrate: materialize each row's key as a
// Tuple and hash it. One reused key buffer keeps the baseline honest (the
// row store accessed key fields directly; re-materializing the whole row
// per tuple would overstate the columnar win).
RowGroups GroupRowAtATime(const RelationInstance& inst,
                          const std::vector<int>& key_cols) {
  RowGroups groups;
  Tuple key(key_cols.size());
  for (std::size_t t = 0; t < inst.size(); ++t) {
    for (std::size_t j = 0; j < key_cols.size(); ++j) {
      key[j] = inst.ValueAt(t, key_cols[j]);
    }
    groups[key].push_back(static_cast<TupleId>(t));
  }
  return groups;
}

// Canonical (sorted, decoded) form of either grouping for the equality
// assertion.
std::map<Tuple, std::vector<TupleId>> Canonical(const RowGroups& groups) {
  return {groups.begin(), groups.end()};
}

std::map<Tuple, std::vector<TupleId>> Canonical(const HashGroupIndex& index) {
  std::map<Tuple, std::vector<TupleId>> out;
  for (std::size_t g = 0; g < index.num_groups(); ++g) {
    out[index.KeyValues(g)] = index.rows(g);
  }
  return out;
}

// The pre-columnar NormalizeTupleRefs: sort with a two-field comparator,
// then unique on struct equality.
void NormalizeRowAtATime(std::vector<TupleRef>& tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const TupleRef& a, const TupleRef& b) {
              if (a.relation != b.relation) return a.relation < b.relation;
              return a.row < b.row;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

// A large duplicate-heavy witness list in scrambled order, as the
// Universe/Decompose reporters hand NormalizeTupleRefs on DP-heavy solves.
std::vector<TupleRef> MakeWitnessList(const Database& db, int copies,
                                      std::uint64_t seed) {
  std::vector<TupleRef> refs;
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    for (std::size_t t = 0; t < db.rel(r).size(); ++t) {
      for (int c = 0; c < copies; ++c) {
        refs.push_back({static_cast<int>(r), static_cast<TupleId>(t)});
      }
    }
  }
  Rng rng(seed);
  for (std::size_t i = refs.size(); i > 1; --i) {
    std::swap(refs[i - 1], refs[rng.Uniform(static_cast<std::uint64_t>(i))]);
  }
  return refs;
}

// --- Registered micro-benchmarks (skipped by CI's filter) ---

Database ZipfDb(std::int64_t n) {
  return MakeZipfDatabase(MakeQ6(), n, /*alpha=*/1.0, /*seed=*/42);
}

void BM_UniverseGroupingRow(benchmark::State& state) {
  const Database db = ZipfDb(state.range(0));
  const RelationInstance& inst = db.rel(1);  // R2(A,B); group by A
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupRowAtATime(inst, {0}));
  }
  state.counters["rows"] = static_cast<double>(inst.size());
}
BENCHMARK(BM_UniverseGroupingRow)->Arg(10000)->Arg(100000);

void BM_UniverseGroupingColumnar(benchmark::State& state) {
  const Database db = ZipfDb(state.range(0));
  const RelationInstance& inst = db.rel(1);
  for (auto _ : state) {
    const HashGroupIndex index(inst, {0});
    benchmark::DoNotOptimize(index.num_groups());
  }
  state.counters["rows"] = static_cast<double>(inst.size());
}
BENCHMARK(BM_UniverseGroupingColumnar)->Arg(10000)->Arg(100000);

void BM_WitnessNormalizeRow(benchmark::State& state) {
  const Database db = ZipfDb(state.range(0));
  const std::vector<TupleRef> refs = MakeWitnessList(db, 3, 7);
  for (auto _ : state) {
    std::vector<TupleRef> work = refs;
    NormalizeRowAtATime(work);
    benchmark::DoNotOptimize(work.size());
  }
  state.counters["refs"] = static_cast<double>(refs.size());
}
BENCHMARK(BM_WitnessNormalizeRow)->Arg(10000)->Arg(100000);

void BM_WitnessNormalizeColumnar(benchmark::State& state) {
  const Database db = ZipfDb(state.range(0));
  const std::vector<TupleRef> refs = MakeWitnessList(db, 3, 7);
  for (auto _ : state) {
    std::vector<TupleRef> work = refs;
    NormalizeTupleRefs(work);
    benchmark::DoNotOptimize(work.size());
  }
  state.counters["refs"] = static_cast<double>(refs.size());
}
BENCHMARK(BM_WitnessNormalizeColumnar)->Arg(10000)->Arg(100000);

// --- JSON ablation artifact ---

constexpr int kReps = 7;  // best-of to shed scheduler noise

template <typename Fn>
double BestMs(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < kReps; ++i) {
    const MonotonicClock::time_point start = Now();
    fn();
    const double ms = MsBetween(start, Now());
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void AblateGrouping(BenchJsonWriter& json, const std::string& name,
                    const RelationInstance& inst,
                    const std::vector<int>& key_cols) {
  const RowGroups row_groups = GroupRowAtATime(inst, key_cols);
  const HashGroupIndex col_index(inst, key_cols);
  const bool identical = Canonical(row_groups) == Canonical(col_index);

  const double row_ms =
      BestMs([&] { benchmark::DoNotOptimize(GroupRowAtATime(inst, key_cols)); });
  const double col_ms = BestMs([&] {
    const HashGroupIndex index(inst, key_cols);
    benchmark::DoNotOptimize(index.num_groups());
  });

  json.Add(name + "_rows", static_cast<double>(inst.size()));
  json.Add(name + "_row_ms", row_ms);
  json.Add(name + "_columnar_ms", col_ms);
  json.Add(name + "_speedup", col_ms > 0.0 ? row_ms / col_ms : 0.0);
  json.Add(name + "_identical", identical ? 1.0 : 0.0);
}

void AblateNormalize(BenchJsonWriter& json, const std::string& name,
                     const std::vector<TupleRef>& refs) {
  std::vector<TupleRef> a = refs, b = refs;
  NormalizeRowAtATime(a);
  NormalizeTupleRefs(b);
  const bool identical = a == b;

  const double row_ms = BestMs([&] {
    std::vector<TupleRef> work = refs;
    NormalizeRowAtATime(work);
    benchmark::DoNotOptimize(work.size());
  });
  const double col_ms = BestMs([&] {
    std::vector<TupleRef> work = refs;
    NormalizeTupleRefs(work);
    benchmark::DoNotOptimize(work.size());
  });

  json.Add(name + "_refs", static_cast<double>(refs.size()));
  json.Add(name + "_row_ms", row_ms);
  json.Add(name + "_columnar_ms", col_ms);
  json.Add(name + "_speedup", col_ms > 0.0 ? row_ms / col_ms : 0.0);
  json.Add(name + "_identical", identical ? 1.0 : 0.0);
}

void EmitRelationalAblation() {
  const char* env = std::getenv("ADP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_relational.json";

  BenchJsonWriter json;

  // Universe grouping on the Zipf Q6 instance: R2(A,B) grouped by the
  // universal attribute A (skewed group sizes, §8.4).
  const Database zipf = ZipfDb(200000);
  AblateGrouping(json, "group_zipf_q6", zipf.rel(1), {0});

  // Universe grouping on the correlated Q7 instance: R2(A,B,C,D,E) grouped
  // by the universal (A,B,C) prefix (dense keys, §8.5).
  const ConjunctiveQuery q7 = MakeQ7();
  const Database q7db =
      MakeQ7Database(q7, /*num_keys=*/2000, /*rows_per_key=*/50, /*seed=*/7);
  AblateGrouping(json, "group_q7", q7db.rel(1), {0, 1, 2});

  // Witness normalization over duplicate-heavy scrambled solutions from
  // both workloads.
  AblateNormalize(json, "normalize_zipf_q6", MakeWitnessList(zipf, 3, 11));
  AblateNormalize(json, "normalize_q7", MakeWitnessList(q7db, 3, 13));

  if (!json.WriteTo(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adp::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adp::bench::EmitRelationalAblation();
  return 0;
}
