// Shared helpers for the figure-reproduction benchmarks.
//
// Sizing: every sweep uses BenchSizes(), which defaults to laptop-friendly
// input sizes and extends toward the paper's 10M-tuple points when the
// environment variable ADP_BENCH_MAX_N is raised (e.g. ADP_BENCH_MAX_N=1000000).
// Heavier algorithms take a per-bench cap so the slow curves stop early, the
// same way the paper stops Greedy/BruteForce curves once they become
// infeasible (§8.2).

#ifndef ADP_BENCH_BENCH_UTIL_H_
#define ADP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "query/transform.h"
#include "relational/join.h"
#include "solver/compute_adp.h"

namespace adp::bench {

/// Default largest input size; override with ADP_BENCH_MAX_N.
inline std::int64_t MaxN(std::int64_t fallback = 100000) {
  if (const char* env = std::getenv("ADP_BENCH_MAX_N")) {
    const std::int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Geometric size ladder 1k, 10k, ... up to min(cap, MaxN()).
inline std::vector<std::int64_t> BenchSizes(std::int64_t cap) {
  const std::int64_t lim = std::min(cap, MaxN());
  std::vector<std::int64_t> out;
  for (std::int64_t n = 1000; n <= lim; n *= 10) out.push_back(n);
  if (out.empty()) out.push_back(lim);
  return out;
}

/// The paper's removal ratios (×100).
inline const std::vector<std::int64_t>& Ratios() {
  static const std::vector<std::int64_t> r = {10, 25, 50, 75};
  return r;
}

/// |Q(D)| with selections honored.
inline std::int64_t OutputCount(const ConjunctiveQuery& q,
                                const Database& db) {
  if (q.HasSelections()) {
    const QueryDb pushed = ApplySelections(q, db);
    return static_cast<std::int64_t>(
        CountOutputs(pushed.query.body(), pushed.query.head(), pushed.db));
  }
  return static_cast<std::int64_t>(CountOutputs(q.body(), q.head(), db));
}

/// Gate for scaling claims: a benchmark configuration whose point is
/// multi-way parallelism (workers > 1, clients > 1) is meaningless on a
/// single-core host — the measured "speedup" is just scheduler noise.
/// Returns true (after marking the run skipped) when the claim cannot be
/// exhibited here; the caller must bail out of the benchmark body.
inline bool SkipIfCoresCannotScale(benchmark::State& state, int parallelism) {
  if (parallelism > 1 && std::thread::hardware_concurrency() < 2) {
    state.SkipWithError(
        "scaling configuration skipped: host has a single core");
    return true;
  }
  return false;
}

/// Attaches the standard quality counters to a benchmark state.
inline void Report(benchmark::State& state, std::int64_t outputs,
                   std::int64_t k, const AdpSolution& sol) {
  state.counters["outputs"] = static_cast<double>(outputs);
  state.counters["k"] = static_cast<double>(k);
  state.counters["tuples_removed"] = static_cast<double>(sol.cost);
  state.counters["exact"] = sol.exact ? 1.0 : 0.0;
}

/// Minimal flat-JSON writer for machine-readable bench artifacts (the
/// BENCH_*.json perf trajectories CI uploads, docs/OBSERVABILITY.md).
/// Keys are emitted sorted so diffs of successive trajectories are stable.
class BenchJsonWriter {
 public:
  void Add(const std::string& key, double value) { fields_[key] = value; }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{";
    const char* sep = "";
    for (const auto& [key, value] : fields_) {
      out << sep << "\"" << key << "\":" << value;
      sep = ",";
    }
    out << "}\n";
    return out.good();
  }

 private:
  std::map<std::string, double> fields_;
};

}  // namespace adp::bench

#endif  // ADP_BENCH_BENCH_UTIL_H_
