// Figure 7: running time of the exact algorithm on σθQ1 (poly-time
// solvable), counting vs reporting versions, over input size N and removal
// ratio ρ.
//
// Paper shape to reproduce: both versions grow with N and ρ; the counting
// version is cheaper and scales further than reporting.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/tpch.h"

namespace adp::bench {
namespace {

void Fig07EasyExact(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t rho = state.range(1);
  const bool counting = state.range(2) != 0;

  const TpchWorkload w = MakeTpchSelected(n, /*seed=*/42);
  const std::int64_t outputs = OutputCount(w.query, w.db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  options.counting_only = counting;
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(w.query, w.db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : BenchSizes(/*cap=*/10000000)) {
    for (std::int64_t rho : Ratios()) {
      for (std::int64_t counting : {1, 0}) {
        b->Args({n, rho, counting});
      }
    }
  }
}

BENCHMARK(Fig07EasyExact)
    ->Apply(Sweep)
    ->ArgNames({"N", "rho_pct", "counting"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
