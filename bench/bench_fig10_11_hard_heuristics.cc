// Figures 10 & 11: Greedy vs Drastic on the NP-hard query Q1 (no
// selection) over input size and removal ratio.
//
// Shape to reproduce: Drastic computes profits once and is much faster;
// Greedy rescans profits after every deletion and stops scaling around
// 10^4-10^5 tuples (the paper stops its Greedy curves there too). Quality
// (Fig 11 counters): both heuristics remove nearly the same number of
// tuples on this distribution.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/tpch.h"

namespace adp::bench {
namespace {

void Fig1011HardHeuristics(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t rho = state.range(1);
  const bool drastic = state.range(2) != 0;

  const TpchWorkload w = MakeTpchHard(n, /*seed=*/42);
  const std::int64_t outputs = OutputCount(w.query, w.db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  options.heuristic = drastic ? AdpOptions::Heuristic::kDrastic
                              : AdpOptions::Heuristic::kGreedy;
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(w.query, w.db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : BenchSizes(/*cap=*/1000000)) {
    for (std::int64_t rho : Ratios()) {
      b->Args({n, rho, /*drastic=*/1});
      if (n <= 10000) b->Args({n, rho, /*drastic=*/0});
    }
  }
}

BENCHMARK(Fig1011HardHeuristics)
    ->Apply(Sweep)
    ->ArgNames({"N", "rho_pct", "drastic"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
