// Figures 16–27: data-distribution study on Zipf(α) instances,
// α ∈ {0, 0.25, 0.5, 1}, for
//   * the NP-hard Qpath(A,B) :- R1(A), R2(A,B), R3(B)  (Greedy / Drastic;
//     Figures 16–19 and 24–27), and
//   * the easy singleton Q6(A,B) :- R1(A), R2(A,B)     (Exact;
//     Figures 20–23).
//
// Shape to reproduce: for fixed N and ρ, the number of removed tuples
// decreases as α grows (skew lets fewer deletions remove more outputs);
// Drastic/Exact runtimes are insensitive to α while Greedy's runtime falls
// with the solution size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/zipf_data.h"

namespace adp::bench {
namespace {

enum Method { kExactQ6 = 0, kGreedyPath = 1, kDrasticPath = 2 };

void Fig1627Zipf(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t rho = state.range(1);
  const std::int64_t alpha_x100 = state.range(2);
  const Method method = static_cast<Method>(state.range(3));
  const double alpha = static_cast<double>(alpha_x100) / 100.0;

  const ConjunctiveQuery q = method == kExactQ6 ? MakeQ6() : MakeQPath();
  const Database db = MakeZipfDatabase(q, n, alpha, /*seed=*/42);
  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  options.heuristic = method == kDrasticPath
                          ? AdpOptions::Heuristic::kDrastic
                          : AdpOptions::Heuristic::kGreedy;
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(q, db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
  state.counters["alpha_x100"] = static_cast<double>(alpha_x100);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t alpha : {0, 25, 50, 100}) {
    for (std::int64_t n : BenchSizes(/*cap=*/1000000)) {
      for (std::int64_t rho : Ratios()) {
        b->Args({n, rho, alpha, kExactQ6});
        b->Args({n, rho, alpha, kDrasticPath});
        if (n <= 10000) b->Args({n, rho, alpha, kGreedyPath});
      }
    }
  }
}

BENCHMARK(Fig1627Zipf)
    ->Apply(Sweep)
    ->ArgNames({"N", "rho_pct", "alpha_x100", "method"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
