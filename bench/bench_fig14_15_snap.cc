// Figures 14 & 15: the ego-network queries Q2 (3-path), Q3 (triangle),
// Q4 (two disjoint 2-paths, projection), Q5 (common friend, projection)
// over the removal ratio, Greedy vs Drastic.
//
// Shape to reproduce: Drastic beats Greedy where applicable (Q2, Q3 — full
// CQs only); Q4 routes through Decompose and has a larger, ratio-stable
// runtime dominated by its per-component subproblems; quality counters
// (Fig 15) show Greedy ≈ Drastic and Q4 removing the fewest tuples.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/egonet.h"

namespace adp::bench {
namespace {

enum Which { kQ2 = 2, kQ3 = 3, kQ4 = 4, kQ5 = 5 };

ConjunctiveQuery MakeQuery(Which which) {
  switch (which) {
    case kQ2:
      return MakeQ2();
    case kQ3:
      return MakeQ3();
    case kQ4:
      return MakeQ4();
    case kQ5:
      return MakeQ5();
  }
  return MakeQ2();
}

void Fig1415Snap(benchmark::State& state) {
  const Which which = static_cast<Which>(state.range(0));
  const std::int64_t rho = state.range(1);
  const bool drastic = state.range(2) != 0;

  const EgonetTables tables = MakePaperEgonet(/*seed=*/414);
  const ConjunctiveQuery q = MakeQuery(which);
  const Database db = MakeEdgeDatabase(q, tables);
  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  options.heuristic = drastic ? AdpOptions::Heuristic::kDrastic
                              : AdpOptions::Heuristic::kGreedy;
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(q, db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t rho : Ratios()) {
    for (std::int64_t which : {kQ2, kQ3, kQ4, kQ5}) {
      b->Args({which, rho, /*drastic=*/0});
      // Drastic applies to full CQs only (Q2, Q3), as in the paper.
      if (which == kQ2 || which == kQ3) {
        b->Args({which, rho, /*drastic=*/1});
      }
    }
  }
}

BENCHMARK(Fig1415Snap)
    ->Apply(Sweep)
    ->ArgNames({"query", "rho_pct", "drastic"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
