// Figure 29: ablation of the Decompose optimization (§7.3, §8.5) on
//   Q8 :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), R31(A3), R32(A3,B3)
// with 25 tuples in each Ri1 and 50 in each Ri2 over domain [1, 100].
//
// Three strategies, as in the paper:
//   1. full enumeration of (k1, k2, k3) vectors (Eq. 2);
//   2. pairwise decomposition with the printed Algorithm 5 inner loop;
//   3. the improved dynamic program (closed-form minimal k1).
// Shape to reproduce: improved DP << pairwise << full enumeration.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/synthetic.h"

namespace adp::bench {
namespace {

enum Strategy { kFullEnum = 0, kPairwise = 1, kImproved = 2 };

void Fig29DecomposeOpt(benchmark::State& state) {
  const std::int64_t rho_tenths = state.range(0);  // ρ in tenths of percent
  const Strategy strategy = static_cast<Strategy>(state.range(1));
  const bool large = state.range(2) != 0;

  const ConjunctiveQuery q = MakeQ8();
  // Small scale runs all three strategies; the large scale drops the
  // exponential full enumeration (as the paper stops its curve).
  const Database db = large
                          ? MakeUniformDatabase(q, {25, 300}, 100, /*seed=*/42)
                          : MakeUniformDatabase(q, {25, 50}, 100, /*seed=*/42);
  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k =
      std::max<std::int64_t>(1, outputs * rho_tenths / 1000);

  AdpOptions options;
  switch (strategy) {
    case kFullEnum:
      options.decompose_strategy =
          AdpOptions::DecomposeStrategy::kFullEnumeration;
      break;
    case kPairwise:
      options.decompose_strategy =
          AdpOptions::DecomposeStrategy::kPairwiseNaive;
      break;
    case kImproved:
      options.decompose_strategy =
          AdpOptions::DecomposeStrategy::kImprovedDP;
      break;
  }
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(q, db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  // The paper plots ρ = 1% and 10%; 25% extends the exponential blowup
  // of the full-enumeration strategy.
  for (std::int64_t rho_tenths : {10, 100, 250}) {
    for (std::int64_t strategy : {kFullEnum, kPairwise, kImproved}) {
      b->Args({rho_tenths, strategy, /*large=*/0});
    }
    for (std::int64_t strategy : {kPairwise, kImproved}) {
      b->Args({rho_tenths, strategy, /*large=*/1});
    }
  }
}

BENCHMARK(Fig29DecomposeOpt)
    ->Apply(Sweep)
    ->ArgNames({"rho_tenths", "strategy", "large"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
