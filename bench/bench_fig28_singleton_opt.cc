// Figure 28: ablation of the Singleton optimization (§7.3, §8.5) on
//   Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G),
//                        R4(A,B,C,F)
// over a correlated instance: 400 shared (A,B,C) keys with 4 rows per key
// in each wide relation. (The paper quotes 500 independent uniform tuples
// over domain [1,100], which leaves the four-way join empty with
// overwhelming probability — see EXPERIMENTS.md.)
//
// Three strategies, as in the paper:
//   1. remove the universal attributes A, B, C one at a time (nested
//      Universe partitions);
//   2. remove them as one combined attribute (single Universe level, plain
//      DP combination);
//   3. the Singleton base case (direct sort).
// Shape to reproduce: improved (3) << whole (2) << one-by-one (1).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/synthetic.h"

namespace adp::bench {
namespace {

enum Strategy { kOneByOne = 0, kWhole = 1, kSingletonSort = 2 };

void Fig28SingletonOpt(benchmark::State& state) {
  const std::int64_t rho = state.range(0);
  const Strategy strategy = static_cast<Strategy>(state.range(1));

  const ConjunctiveQuery q = MakeQ7();
  const Database db = MakeQ7Database(q, /*num_keys=*/400,
                                    /*rows_per_key=*/4, /*seed=*/42);
  const std::int64_t outputs = OutputCount(q, db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  switch (strategy) {
    case kOneByOne:
      options.use_singleton = false;
      options.universe_strategy = AdpOptions::UniverseStrategy::kOneByOne;
      options.universe_convex_merge = false;
      break;
    case kWhole:
      options.use_singleton = false;
      options.universe_strategy = AdpOptions::UniverseStrategy::kAllAtOnce;
      options.universe_convex_merge = false;
      break;
    case kSingletonSort:
      options.use_singleton = true;
      break;
  }
  AdpSolution sol;
  for (auto _ : state) {
    sol = ComputeAdp(q, db, k, options);
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  // The paper plots ρ = 50% and 75%.
  for (std::int64_t rho : {50, 75}) {
    for (std::int64_t strategy : {kOneByOne, kWhole, kSingletonSort}) {
      b->Args({rho, strategy});
    }
  }
}

BENCHMARK(Fig28SingletonOpt)
    ->Apply(Sweep)
    ->ArgNames({"rho_pct", "strategy"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
