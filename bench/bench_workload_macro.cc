// Macro-bench: end-to-end engine load through the workload generator and
// LoadDriver (src/workload/families.h, src/workload/driver.h) instead of
// hand-rolled batches — the first bench that exercises the full serving
// surface (Execute, prepared handles, streams, cancels, expired deadlines)
// under a sustained mix.
//
// Two traffic blends run against each of four query families spanning the
// Algorithm-2 cases:
//
//   steady — 70% text Execute + 30% prepared Execute: the cache-friendly
//     request/response regime; throughput here is the serving capacity
//     number.
//   mixed  — 40% execute, 20% prepared, 20% stream, 10% cancel, 10%
//     pre-expired deadline: the hostile blend the soak test uses; it keeps
//     the cancel/deadline/stream teardown paths honest under load.
//
// The registered benchmarks are for interactive runs; the trajectory file
// BENCH_workload.json (ADP_BENCH_JSON overrides the path) is written by
// EmitWorkloadTrajectory() after they finish, one flat JSON object per
// run: per-(family, blend) closed-loop throughput — raw ops/sec as
// `_raw` context plus the gateable `throughput_rel` ratio against a
// same-emit calibration run (cancels host-speed drift between emits) —
// p50/p99 latency (client-observed and engine-side, from the
// MetricsRegistry), one rate-bound open-loop run, and a worker-scaling
// ratio that is only emitted when the host has enough cores to make the
// claim meaningful (std::thread::hardware_concurrency() >= 4) — on
// smaller hosts the "scaling_skipped_cores" key records the skip instead
// of publishing a misleading ~1x ratio. tools/bench_trend.py gates
// successive runs (docs/WORKLOAD.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "workload/driver.h"
#include "workload/families.h"

namespace adp::bench {
namespace {

using workload::DriverConfig;
using workload::DriverReport;
using workload::FamilyInstance;
using workload::FamilySpec;
using workload::LoadDriver;
using workload::TrafficMix;

constexpr std::uint64_t kSeed = 42;

TrafficMix SteadyMix() { return {.execute = 0.7, .prepared = 0.3}; }

TrafficMix MixedMix() {
  return {.execute = 0.4,
          .prepared = 0.2,
          .stream = 0.2,
          .cancel = 0.1,
          .expired = 0.1};
}

// The bench families: one per easy Algorithm-2 case plus one hard shape.
std::vector<FamilySpec> BenchFamilies() {
  using S = workload::FamilyShape;
  using H = workload::HeadClass;
  using C = workload::CardinalityClass;
  using D = workload::DomainClass;
  return {
      {S::kChain, 3, H::kBoolean, C::kSmall, D::kMid},      // Boolean
      {S::kStar, 3, H::kProjected, C::kSmall, D::kMid},     // Singleton
      {S::kDisconnected, 3, H::kFull, C::kSmall, D::kMid},  // Decompose
      {S::kChain, 3, H::kFull, C::kTiny, D::kSparse},       // Heuristic
  };
}

DriverReport RunBlend(const FamilySpec& spec, const TrafficMix& mix,
                      int requests, int workers, int concurrency) {
  EngineConfig config;
  config.num_workers = workers;
  AdpEngine engine(config);
  DriverConfig dc;
  dc.concurrency = concurrency;
  dc.requests = requests;
  dc.seed = kSeed;
  dc.mix = mix;
  LoadDriver driver(engine, workload::MakeFamilySet({spec}, kSeed), dc);
  return driver.Run();
}

// Interactive closed-loop run over the full family set: args are
// (blend: 0 = steady, 1 = mixed; requests).
void MacroClosedLoop(benchmark::State& state) {
  const bool mixed = state.range(0) != 0;
  const int requests = static_cast<int>(state.range(1));

  EngineConfig config;
  config.num_workers = 4;
  AdpEngine engine(config);
  DriverConfig dc;
  dc.concurrency = 4;
  dc.requests = requests;
  dc.seed = kSeed;
  dc.mix = mixed ? MixedMix() : SteadyMix();
  LoadDriver driver(engine, workload::MakeFamilySet(BenchFamilies(), kSeed),
                    dc);

  double ops_per_sec = 0;
  for (auto _ : state) {
    const DriverReport rep = driver.Run();
    ops_per_sec = rep.throughput_ops_per_sec;
    benchmark::DoNotOptimize(rep.answer_checksum);
  }
  state.SetItemsProcessed(state.iterations() * requests);
  state.counters["ops_per_sec"] = ops_per_sec;
}

BENCHMARK(MacroClosedLoop)
    ->Args({0, 160})
    ->Args({1, 160})
    ->ArgNames({"mixed", "requests"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ref > 0: capacity runs — the raw ops/sec is context (host-speed
// dependent, `_raw` keys are not trend-gated) and the gated signal is the
// ratio to the same-emit calibration reference, which cancels host-speed
// drift between emits. ref <= 0: rate-bound runs whose raw throughput is
// pinned by the offered rate and therefore gate-stable as is.
void AddReport(BenchJsonWriter& json, const std::string& prefix,
               const DriverReport& rep, double ref) {
  if (ref > 0) {
    json.Add(prefix + ".ops_per_sec_raw", rep.throughput_ops_per_sec);
    json.Add(prefix + ".throughput_rel", rep.throughput_ops_per_sec / ref);
  } else {
    json.Add(prefix + ".ops_per_sec", rep.throughput_ops_per_sec);
  }
  json.Add(prefix + ".client_p50_ms", rep.client_p50_ms);
  json.Add(prefix + ".client_p99_ms", rep.client_p99_ms);
  json.Add(prefix + ".engine_p50_ms", rep.engine_p50_ms);
  json.Add(prefix + ".engine_p99_ms", rep.engine_p99_ms);
  json.Add(prefix + ".issued", static_cast<double>(rep.outcomes.issued +
                                                   rep.outcomes.streams_issued));
  json.Add(prefix + ".ok", static_cast<double>(rep.outcomes.ok +
                                               rep.outcomes.streams_ok));
  json.Add(prefix + ".checksum", static_cast<double>(rep.answer_checksum));
}

// The persisted trajectory: BENCH_workload.json.
void EmitWorkloadTrajectory() {
  const char* env = std::getenv("ADP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_workload.json";
  // Large enough that each blend's measurement window spans many
  // scheduler quanta — tiny windows make the throughput numbers
  // jitter far beyond any trend tolerance.
  constexpr int kRequests = 400;
  // Threads sized to the host: oversubscribing a small box turns the
  // closed loop into scheduler roulette and the trajectory into noise.
  // Same-fleet CI runs see a constant value; across hardware changes the
  // snapshot must be refreshed anyway (tools/bench_trend.py docstring).
  const int kThreads = static_cast<int>(std::min(
      4u, std::max(1u, std::thread::hardware_concurrency())));

  BenchJsonWriter json;
  const std::vector<FamilySpec> specs = BenchFamilies();
  const struct {
    const char* name;
    TrafficMix mix;
  } blends[] = {{"steady", SteadyMix()}, {"mixed", MixedMix()}};

  // Closed-loop capacity per (family, blend), measured to survive a
  // shared/loaded host:
  //   * request counts are calibrated so every measured window spans at
  //     least ~250ms — a few-ms window is scheduler noise, not capacity;
  //   * three trials per pair, taken as whole sweeps over all pairs so
  //     the trials of one pair are spread seconds apart in time — a
  //     transient contention episode (CPU steal, co-tenant burst) then
  //     cannot depress every trial of the same key;
  //   * the best trial is the capacity signal the trend gate compares.
  constexpr int kSweeps = 3;
  // Measurement list: every (family, blend) pair plus one calibration
  // run — a pure-execute loop on a fixed reference family measured under
  // the identical regime. Its throughput is the same-emit yardstick the
  // capacity ratios are published against.
  struct Cell {
    std::string name;
    FamilySpec spec;
    TrafficMix mix;
  };
  const FamilySpec ref_spec = {workload::FamilyShape::kChain, 2,
                               workload::HeadClass::kFull,
                               workload::CardinalityClass::kSmall,
                               workload::DomainClass::kMid};
  std::vector<Cell> cells;
  for (const FamilySpec& spec : specs) {
    for (const auto& blend : blends) {
      cells.push_back(
          {workload::FamilyName(spec) + "." + blend.name, spec, blend.mix});
    }
  }
  cells.push_back({"calibration.ref", ref_spec, TrafficMix{.execute = 1.0}});

  std::vector<int> calibrated(cells.size(), kRequests);
  std::vector<DriverReport> best(cells.size());
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::size_t at = 0; at < cells.size(); ++at) {
      const DriverReport t =
          RunBlend(cells[at].spec, cells[at].mix, calibrated[at],
                   /*workers=*/kThreads, /*concurrency=*/kThreads);
      if (sweep == 0) {
        best[at] = t;
        if (t.wall_ms > 0 && t.wall_ms < 250.0) {
          calibrated[at] = static_cast<int>(
              std::min(20000.0, calibrated[at] * (250.0 / t.wall_ms)));
        }
      } else if (t.throughput_ops_per_sec > best[at].throughput_ops_per_sec) {
        best[at] = t;
      }
    }
  }
  const double ref = best.back().throughput_ops_per_sec;
  json.Add("calibration.ref_throughput_raw", ref);
  for (std::size_t at = 0; at + 1 < cells.size(); ++at) {
    AddReport(json, cells[at].name, best[at], ref);
  }

  // One open-loop run across the whole family set at a fixed offered rate:
  // tracks queueing behavior, not capacity.
  {
    EngineConfig config;
    config.num_workers = kThreads;
    AdpEngine engine(config);
    DriverConfig dc;
    dc.open_loop = true;
    dc.offered_rps = 400.0;
    dc.concurrency = kThreads;
    dc.requests = kRequests;
    dc.seed = kSeed;
    dc.mix = MixedMix();
    LoadDriver driver(engine, workload::MakeFamilySet(specs, kSeed), dc);
    AddReport(json, "openloop.mixed", driver.Run(), /*ref=*/0.0);
  }

  // Worker-scaling claim, core-count gated: published only where the
  // hardware can actually exhibit scaling.
  const unsigned cores = std::thread::hardware_concurrency();
  json.Add("hardware_cores", static_cast<double>(cores));
  if (cores >= 4) {
    const DriverReport w1 = RunBlend(specs[0], SteadyMix(), kRequests, 1, 4);
    const DriverReport w4 = RunBlend(specs[0], SteadyMix(), kRequests, 4, 4);
    json.Add("scaling.steady_1w_ops_per_sec_raw", w1.throughput_ops_per_sec);
    json.Add("scaling.steady_4w_ops_per_sec_raw", w4.throughput_ops_per_sec);
    json.Add("scaling.steady_speedup_4w",
             w1.throughput_ops_per_sec > 0
                 ? w4.throughput_ops_per_sec / w1.throughput_ops_per_sec
                 : 0.0);
  } else {
    json.Add("scaling_skipped_cores", static_cast<double>(cores));
  }

  if (json.WriteTo(path)) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace adp::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adp::bench::EmitWorkloadTrajectory();
  return 0;
}
