// Figures 8 & 9: heuristics vs the exact algorithm on σθQ1 (easy).
//
// The paper invokes the heuristic leaves directly (Line 5 of Algorithm 2)
// on the selected query. Shape to reproduce:
//   Fig 8 (time):   Drastic < Greedy, both below Exact reporting at scale
//                   in the paper's SQL setting; in-memory the exact
//                   decomposition is very cheap, so the interesting ordering
//                   is Drastic << Greedy (see EXPERIMENTS.md).
//   Fig 9 (quality, counters): all three coincide — the heuristics find
//                   optimal solutions on this distribution.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "solver/drastic.h"
#include "solver/greedy.h"
#include "workload/tpch.h"

namespace adp::bench {
namespace {

enum Method { kExact = 0, kGreedy = 1, kDrastic = 2 };

void Fig0809EasyHeuristics(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t rho = state.range(1);
  const Method method = static_cast<Method>(state.range(2));

  const TpchWorkload w = MakeTpchSelected(n, /*seed=*/42);
  // Heuristic leaves run on the residual (selection-free) query.
  const QueryDb pushed = ApplySelections(w.query, w.db);
  const std::int64_t outputs = static_cast<std::int64_t>(
      CountOutputs(pushed.query.body(), pushed.query.head(), pushed.db));
  const std::int64_t k = std::max<std::int64_t>(1, outputs * rho / 100);

  AdpOptions options;
  AdpSolution sol;
  for (auto _ : state) {
    switch (method) {
      case kExact:
        sol = ComputeAdp(w.query, w.db, k, options);
        break;
      case kGreedy: {
        const AdpNode node = GreedyNode(pushed.query, pushed.db, k, options);
        sol.cost = node.profile.At(k);
        sol.tuples = node.report(k);
        sol.exact = false;
        break;
      }
      case kDrastic: {
        const AdpNode node = DrasticNode(pushed.query, pushed.db, k, options);
        sol.cost = node.profile.At(k);
        sol.tuples = node.report(k);
        sol.exact = false;
        break;
      }
    }
    benchmark::DoNotOptimize(sol.cost);
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : BenchSizes(/*cap=*/1000000)) {
    for (std::int64_t rho : Ratios()) {
      b->Args({n, rho, kExact});
      b->Args({n, rho, kDrastic});
      // Greedy materializes the full provenance index and rescans profits
      // every round; cap it like the paper's stopped curves.
      if (n <= 30000) b->Args({n, rho, kGreedy});
    }
  }
}

BENCHMARK(Fig0809EasyHeuristics)
    ->Apply(Sweep)
    ->ArgNames({"N", "rho_pct", "method"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
