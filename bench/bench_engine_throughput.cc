// Engine throughput: requests/sec of the plan-caching, thread-pooled
// AdpEngine at 1, 4, and 8 workers versus the direct ComputeAdp path
// (which re-parses, re-classifies, and re-linearizes every request).
//
// The workload is a cached-plan mix: a handful of distinct query shapes
// (poly-time chains with and without selections, a projection, a boolean
// resilience probe) repeated across a batch, the regime a request-serving
// deployment lives in. Counters report the plan-cache hit rate so the
// requests/sec numbers can be attributed.
//
// items_per_second is the figure of merit. Expect the 4-worker engine to
// clearly beat 1 worker on multi-core hardware; on a single core the gain
// collapses to the plan-cache savings alone.
//
// EngineIntraRequestSharding measures the other axis: ONE large
// Universe-partitioned request whose per-group sub-solves are fanned out
// across the pool (EngineConfig::min_shard_groups) versus the same request
// solved sequentially. Again multi-core hardware is needed to see the
// speedup; the sharded/sequential parity on one core shows the dispatch
// overhead is negligible.
//
// EngineDecomposeSharding measures the second sharding axis: ONE request
// whose query is disconnected (Algorithm 5), so its connected components'
// per-k profiles are independent sub-solves fanned out across the pool
// (EngineConfig::min_shard_components) while the cross-product DP combining
// them stays on the solving thread. The sharded_decompose_nodes counter
// proves the sharded path engaged.
//
// EngineStreamVsBatch measures the streaming results path (StreamAdp /
// ResultStream, docs/STREAMING.md) against the one-shot Execute on a
// large-witness workload: a singleton projection whose optimal witness set
// is thousands of tuples. mode=0 runs Execute and reports its full-response
// latency; mode=1 drains a stream and reports time-to-first-witness
// (ttfw_ms) and time-to-first-item (ttfi_ms) next to the same end-to-end
// drain time. The streaming figures of merit: ttfi_ms ≈ the DP alone
// (profile increments arrive before witness enumeration starts), and
// ttfw_ms < the batch path's full_batch_ms (the first batch arrives while
// later batches and the terminal are still being produced and the batch
// path is still deep-copying its monolithic response).
//
// EnginePreparedVsText measures the prepare-once / execute-many hot path:
// the same batch submitted through bound PreparedQuery handles (zero key
// derivation, zero plan/binding-cache probes per request) versus query
// text served from a warm plan cache (one probe of each per request). The
// counters confirm the probe skip: plan_probes_per_req is ~1 for the text
// path and 0 for the prepared path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "engine/grouped_workload.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "query/parser.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/synthetic.h"

namespace adp::bench {
namespace {

struct Workload {
  NamedDatabase named;
  std::vector<std::string> queries;
};

// A shared database for a 6-relation chain schema plus the query mix.
Workload MakeWorkload(std::int64_t rows) {
  Workload w;
  w.named.relation_names = {"R1", "R2", "R3", "R4", "R5", "R6"};
  Rng rng(7);
  for (int r = 0; r < 6; ++r) {
    RelationInstance inst;
    const std::int64_t domain = rows / 2 + 1;
    for (std::int64_t i = 0; i < rows; ++i) {
      inst.Add({static_cast<Value>(rng.Uniform(domain)),
                static_cast<Value>(rng.Uniform(domain))});
    }
    inst.Dedup();
    w.named.db.Append(std::move(inst));
  }
  w.queries = {
      // 6-chain boolean: the §7.1 linearization is the dominant static cost.
      "Q() :- R1(A,B), R2(B,C), R3(C,E), R4(E,F), R5(F,G), R6(G,H)",
      "Q() :- R1(A,B), R2(B,C), R3(C,E)",          // boolean resilience
      "Q(A) :- R1(A,B), R2(B,C), R3(C,E)",         // projection
      "Q(A,B) :- R1(A,B), R2(B,C)",                // 2-chain
      "Q() :- R1(A,B), R2(B,C)",                   // boolean 2-chain
      "Q(B) :- R1(A,B), R2(B,C=1)",                // with selection
  };
  return w;
}

// k varies with the request index so every (query, k) pair in a batch is
// distinct: ExecuteBatch submits the whole batch concurrently, and
// duplicate pairs would be absorbed by the engine's single-flight dedup,
// overstating solve throughput.
std::int64_t RequestK(int i, std::size_t num_queries) {
  return 1 + static_cast<std::int64_t>(i) /
                 static_cast<std::int64_t>(num_queries);
}

std::vector<AdpRequest> MakeBatch(const Workload& w, DbId db, int requests) {
  std::vector<AdpRequest> batch;
  batch.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    AdpRequest req;
    req.query_text = w.queries[static_cast<std::size_t>(i) % w.queries.size()];
    req.db = db;
    req.k = RequestK(i, w.queries.size());
    req.options.counting_only = true;
    batch.push_back(std::move(req));
  }
  return batch;
}

// Baseline: the pre-engine path — every request parses, classifies,
// linearizes, and solves from scratch, single-threaded.
void DirectPath(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int requests = static_cast<int>(state.range(1));
  const Workload w = MakeWorkload(rows);

  // Positional database per query (bind once outside the loop is *not*
  // representative: the direct path has no interning, so binding is in).
  for (auto _ : state) {
    std::int64_t checksum = 0;
    for (int i = 0; i < requests; ++i) {
      const ConjunctiveQuery q = ParseQuery(
          w.queries[static_cast<std::size_t>(i) % w.queries.size()]);
      Database db(static_cast<std::size_t>(q.num_relations()));
      for (int r = 0; r < q.num_relations(); ++r) {
        for (std::size_t j = 0; j < w.named.relation_names.size(); ++j) {
          if (w.named.relation_names[j] == q.relation(r).name) {
            RelationInstance inst = w.named.db.rel(j);
            inst.set_root_relation(r);
            db.rel(static_cast<std::size_t>(r)) = std::move(inst);
          }
        }
      }
      AdpOptions options;
      options.counting_only = true;
      const AdpSolution sol =
          ComputeAdp(q, db, RequestK(i, w.queries.size()), options);
      checksum += sol.cost;
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * requests);
}

void EngineThroughput(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int requests = static_cast<int>(state.range(1));
  const int workers = static_cast<int>(state.range(2));
  if (SkipIfCoresCannotScale(state, workers)) return;

  Workload w = MakeWorkload(rows);
  EngineConfig config;
  config.num_workers = workers;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(w.named));

  // Warm the plan and binding caches once: steady-state serving is the
  // regime of interest.
  engine.ExecuteBatch(MakeBatch(w, db, static_cast<int>(w.queries.size())));

  for (auto _ : state) {
    const std::vector<AdpResponse> out =
        engine.ExecuteBatch(MakeBatch(w, db, requests));
    std::int64_t checksum = 0;
    for (const AdpResponse& r : out) checksum += r.solution.cost;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * requests);

  const EngineCounters c = engine.counters();
  state.counters["workers"] = workers;
  state.counters["plan_hit_rate"] =
      c.plan_hits + c.plan_misses == 0
          ? 0.0
          : static_cast<double>(c.plan_hits) /
                static_cast<double>(c.plan_hits + c.plan_misses);
  // Should stay 0 (distinct (query, k) pairs); nonzero means dedup is
  // absorbing part of the batch and items_per_second overstates solves.
  state.counters["dedup_hits"] = static_cast<double>(c.dedup_hits);
}

// Identical batch, two admission paths: bound PreparedQuery handles
// versus warm-cache query text.
void EnginePreparedVsText(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int requests = static_cast<int>(state.range(1));
  const bool use_prepared = state.range(2) != 0;

  Workload w = MakeWorkload(rows);
  EngineConfig config;
  config.num_workers = 1;  // isolate the per-request admission cost
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(w.named));

  AdpOptions options;
  options.counting_only = true;
  std::vector<PreparedQuery> handles;
  for (const std::string& text : w.queries) {
    StatusOr<PreparedQuery> prepared = engine.Prepare(text, options);
    if (!prepared.ok() || !prepared->Bind(db).ok()) {
      state.SkipWithError("Prepare/Bind failed");
      return;
    }
    handles.push_back(*std::move(prepared));
  }
  // Warm the text path's plan and binding caches too.
  engine.ExecuteBatch(MakeBatch(w, db, static_cast<int>(w.queries.size())));
  const EngineCounters warm = engine.counters();

  for (auto _ : state) {
    std::vector<AdpRequest> batch;
    batch.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      AdpRequest req;
      if (use_prepared) {
        req.prepared = handles[static_cast<std::size_t>(i) % handles.size()];
      } else {
        req.query_text =
            w.queries[static_cast<std::size_t>(i) % w.queries.size()];
        req.db = db;
      }
      req.k = RequestK(i, w.queries.size());
      req.options = options;
      batch.push_back(std::move(req));
    }
    const std::vector<AdpResponse> out =
        engine.ExecuteBatch(std::move(batch));
    std::int64_t checksum = 0;
    for (const AdpResponse& r : out) checksum += r.solution.cost;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * requests);

  const EngineCounters c = engine.counters();
  const double measured =
      static_cast<double>(state.iterations()) * requests;
  state.counters["plan_probes_per_req"] =
      measured == 0 ? 0.0
                    : static_cast<double>((c.plan_hits + c.plan_misses) -
                                          (warm.plan_hits + warm.plan_misses)) /
                          measured;
  state.counters["binding_probes_per_req"] =
      measured == 0
          ? 0.0
          : static_cast<double>((c.binding_hits + c.binding_misses) -
                                (warm.binding_hits + warm.binding_misses)) /
                measured;
}

// Streaming vs one-shot on a large-witness workload: a singleton projection
// Q(A) :- R1(A,B) over 64 A-groups with `group_rows` B-rows each, target
// k = 32 — the optimal witness set is 32 * group_rows tuples (every row of
// the 32 cheapest groups), dwarfing the 32 profile increments. See the
// header comment for what ttfi_ms / ttfw_ms / full_batch_ms mean.
void EngineStreamVsBatch(benchmark::State& state) {
  const std::int64_t group_rows = state.range(0);
  const bool streaming = state.range(1) != 0;
  constexpr std::int64_t kGroups = 64;

  NamedDatabase named;
  named.relation_names = {"R1"};
  RelationInstance inst;
  for (std::int64_t a = 0; a < kGroups; ++a) {
    for (std::int64_t b = 0; b < group_rows; ++b) {
      inst.Add({static_cast<Value>(a), static_cast<Value>(b)});
    }
  }
  named.db.Append(std::move(inst));

  EngineConfig config;
  config.num_workers = 2;  // the stream producer runs on a worker
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(named));

  AdpRequest req;
  req.query_text = "Q(A) :- R1(A,B)";
  req.db = db;
  req.k = kGroups / 2;

  engine.Execute(req);  // warm the plan and binding caches

  double ttfi_sum = 0.0, ttfw_sum = 0.0, full_sum = 0.0;
  std::int64_t witnesses = 0;
  for (auto _ : state) {
    Stopwatch sw;
    std::int64_t checksum = 0;
    witnesses = 0;
    if (streaming) {
      ResultStream stream = engine.StreamAdp(req);
      double ttfi = -1.0, ttfw = -1.0;
      while (std::optional<StreamItem> item = stream.Next()) {
        if (ttfi < 0) ttfi = sw.ElapsedMs();
        if (item->kind == StreamItem::Kind::kWitnesses) {
          if (ttfw < 0) ttfw = sw.ElapsedMs();
          witnesses += static_cast<std::int64_t>(item->witnesses.size());
          for (const TupleRef& t : item->witnesses) checksum += t.row;
        }
      }
      ttfi_sum += ttfi;
      ttfw_sum += ttfw;
    } else {
      const AdpResponse resp = engine.Execute(req);
      witnesses = static_cast<std::int64_t>(resp.solution.tuples.size());
      for (const TupleRef& t : resp.solution.tuples) checksum += t.row;
      full_sum += sw.ElapsedMs();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations());
  const double iters = static_cast<double>(state.iterations());
  state.counters["witnesses"] = static_cast<double>(witnesses);
  if (streaming) {
    state.counters["ttfi_ms"] = ttfi_sum / iters;
    state.counters["ttfw_ms"] = ttfw_sum / iters;
  } else {
    state.counters["full_batch_ms"] = full_sum / iters;
  }
}

// One large request: Q(A) :- R1(A,B), R2(A,B,C), R3(A,C). A is universal,
// so Algorithm 4 partitions the AppendGroupedComponent instance
// (engine/grouped_workload.h, shared with engine_test) into kGroups
// classes with real max-flow work per group.
void EngineIntraRequestSharding(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int workers = static_cast<int>(state.range(1));
  const bool shard = state.range(2) != 0;
  if (SkipIfCoresCannotScale(state, workers)) return;
  constexpr std::int64_t kGroups = 16;

  NamedDatabase named;
  Rng rng(11);
  AppendGroupedComponent(named, rng, rows, kGroups, "R1", "R2", "R3");

  EngineConfig config;
  config.num_workers = workers;
  config.min_shard_groups = shard ? 2 : 0;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(named));

  AdpRequest req;
  req.query_text = "Q(A) :- R1(A,B), R2(A,B,C), R3(A,C)";
  req.db = db;
  req.k = kGroups / 2;
  req.options.counting_only = true;

  engine.Execute(req);  // warm the plan and binding caches

  double sharded_nodes = 0;
  for (auto _ : state) {
    const AdpResponse resp = engine.Execute(req);
    benchmark::DoNotOptimize(resp.solution.cost);
    sharded_nodes = resp.stats.sharded_universe_nodes;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["workers"] = workers;
  state.counters["sharded_nodes"] = sharded_nodes;
}

// One large disconnected request: kComponents copies of the Universe
// workload above, each over its own relations (Si, Ti, Ui), joined only by
// the cross product. Algorithm 5 solves each component independently —
// exactly the profile-per-component work the Decompose axis shards.
void EngineDecomposeSharding(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int workers = static_cast<int>(state.range(1));
  const bool shard = state.range(2) != 0;
  if (SkipIfCoresCannotScale(state, workers)) return;
  constexpr int kComponents = 4;
  constexpr std::int64_t kGroups = 8;

  NamedDatabase named;
  Rng rng(13);
  std::string query = "Q(";
  for (int comp = 0; comp < kComponents; ++comp) {
    const std::string n = std::to_string(comp + 1);
    query += (comp ? ",A" : "A") + n;
    AppendGroupedComponent(named, rng, rows, kGroups, "S" + n, "T" + n,
                           "U" + n);
  }
  query += ") :- ";
  for (int comp = 0; comp < kComponents; ++comp) {
    const std::string n = std::to_string(comp + 1);
    if (comp) query += ", ";
    query += "S" + n + "(A" + n + ",B" + n + "), T" + n + "(A" + n + ",B" +
             n + ",C" + n + "), U" + n + "(A" + n + ",C" + n + ")";
  }

  EngineConfig config;
  config.num_workers = workers;
  config.min_shard_groups = 0;  // isolate the Decompose axis
  config.min_shard_components = shard ? 2 : 0;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(named));

  AdpRequest req;
  req.query_text = query;
  req.db = db;
  req.k = kGroups;
  req.options.counting_only = true;

  engine.Execute(req);  // warm the plan and binding caches

  double sharded_nodes = 0;
  for (auto _ : state) {
    const AdpResponse resp = engine.Execute(req);
    benchmark::DoNotOptimize(resp.solution.cost);
    sharded_nodes = resp.stats.sharded_decompose_nodes;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["workers"] = workers;
  state.counters["sharded_decompose_nodes"] = sharded_nodes;
}

void DirectSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t rows : {200, 1000}) {
    b->Args({rows, /*requests=*/64});
  }
}

void EngineSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t rows : {200, 1000}) {
    for (std::int64_t workers : {1, 4, 8}) {
      b->Args({rows, /*requests=*/64, workers});
    }
  }
}

BENCHMARK(DirectPath)
    ->Apply(DirectSweep)
    ->ArgNames({"rows", "requests"})
    ->Unit(benchmark::kMillisecond);

void ShardingSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t workers : {1, 4}) {
    for (std::int64_t shard : {0, 1}) {
      b->Args({/*rows=*/20000, workers, shard});
    }
  }
}

BENCHMARK(EngineThroughput)
    ->Apply(EngineSweep)
    ->ArgNames({"rows", "requests", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void PreparedSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t rows : {200, 1000}) {
    for (std::int64_t prepared : {0, 1}) {
      b->Args({rows, /*requests=*/64, prepared});
    }
  }
}

BENCHMARK(EnginePreparedVsText)
    ->Apply(PreparedSweep)
    ->ArgNames({"rows", "requests", "prepared"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(EngineIntraRequestSharding)
    ->Apply(ShardingSweep)
    ->ArgNames({"rows", "workers", "shard"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void StreamVsBatchSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t group_rows : {500, 2000}) {
    for (std::int64_t stream : {0, 1}) {
      b->Args({group_rows, stream});
    }
  }
}

BENCHMARK(EngineStreamVsBatch)
    ->Apply(StreamVsBatchSweep)
    ->ArgNames({"group_rows", "stream"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void DecomposeShardingSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t workers : {1, 4}) {
    for (std::int64_t shard : {0, 1}) {
      b->Args({/*rows=*/6000, workers, shard});
    }
  }
}

BENCHMARK(EngineDecomposeSharding)
    ->Apply(DecomposeShardingSweep)
    ->ArgNames({"rows", "workers", "shard"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Machine-readable perf trajectory (docs/OBSERVABILITY.md): after the
// registered benchmarks run, push one fixed steady-state batch through a
// fresh engine and write throughput plus the registry's latency quantiles
// to BENCH_engine.json (path overridable via ADP_BENCH_JSON). Successive
// CI runs of this file ARE the trajectory — one flat JSON object per run,
// stable keys, diffable.
void EmitEngineTrajectory() {
  const char* env = std::getenv("ADP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_engine.json";

  constexpr std::int64_t kRows = 2000;
  constexpr int kRequests = 120;
  Workload w = MakeWorkload(kRows);
  EngineConfig config;
  config.num_workers = 4;
  AdpEngine engine(config);
  const DbId db = engine.RegisterDatabase(std::move(w.named));

  // Warm the plan and binding caches: the trajectory tracks steady-state
  // serving, not cold-start parsing.
  engine.ExecuteBatch(MakeBatch(w, db, static_cast<int>(w.queries.size())));

  const MonotonicClock::time_point start = Now();
  const std::vector<AdpResponse> out =
      engine.ExecuteBatch(MakeBatch(w, db, kRequests));
  const double wall_ms = MsBetween(start, Now());

  std::int64_t failures = 0;
  for (const AdpResponse& r : out) {
    if (!r.ok()) ++failures;
  }

  obs::MetricsRegistry& metrics = engine.metrics();
  const obs::HistogramSnapshot latency =
      metrics.GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  const obs::HistogramSnapshot solve =
      metrics.GetHistogram(obs::kMSolveMs).Snapshot();
  const obs::HistogramSnapshot queue_wait =
      metrics.GetHistogram(obs::kMQueueWaitMs).Snapshot();

  BenchJsonWriter json;
  json.Add("rows", static_cast<double>(kRows));
  json.Add("requests", static_cast<double>(kRequests));
  json.Add("workers", static_cast<double>(config.num_workers));
  json.Add("failures", static_cast<double>(failures));
  json.Add("wall_ms", wall_ms);
  json.Add("requests_per_sec",
           wall_ms > 0.0 ? kRequests / (wall_ms / 1000.0) : 0.0);
  json.Add("latency_ms_count", static_cast<double>(latency.count));
  json.Add("latency_ms_p50", latency.Quantile(0.50));
  json.Add("latency_ms_p95", latency.Quantile(0.95));
  json.Add("latency_ms_p99", latency.Quantile(0.99));
  json.Add("solve_ms_p50", solve.Quantile(0.50));
  json.Add("solve_ms_p99", solve.Quantile(0.99));
  json.Add("queue_wait_ms_p50", queue_wait.Quantile(0.50));
  json.Add("queue_wait_ms_p99", queue_wait.Quantile(0.99));
  if (json.WriteTo(path)) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace adp::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adp::bench::EmitEngineTrajectory();
  return 0;
}
