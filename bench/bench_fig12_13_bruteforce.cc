// Figures 12 & 13: the BruteForce baseline vs the two heuristics on small
// hard-Q1 instances at ρ = 10%.
//
// Shape to reproduce: BruteForce's runtime explodes combinatorially with
// the input size while the heuristics stay flat (Fig 12); solution sizes
// coincide at these scales (Fig 13). The paper could not finish BruteForce
// at N = 1000 or ρ = 0.2 — our sweep likewise stops while the subset
// enumeration is still tractable.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "solver/brute_force.h"
#include "workload/tpch.h"

namespace adp::bench {
namespace {

enum Method { kBruteForce = 0, kGreedy = 1, kDrastic = 2 };

void Fig1213BruteForce(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Method method = static_cast<Method>(state.range(1));

  const TpchWorkload w = MakeTpchHard(n, /*seed=*/42);
  const std::int64_t outputs = OutputCount(w.query, w.db);
  const std::int64_t k = std::max<std::int64_t>(1, outputs / 10);

  AdpOptions options;
  options.heuristic = method == kDrastic ? AdpOptions::Heuristic::kDrastic
                                         : AdpOptions::Heuristic::kGreedy;
  AdpSolution sol;
  for (auto _ : state) {
    if (method == kBruteForce) {
      auto res = BruteForceAdp(w.query, w.db, k);
      if (res) sol = *res;
      benchmark::DoNotOptimize(res);
    } else {
      sol = ComputeAdp(w.query, w.db, k, options);
      benchmark::DoNotOptimize(sol.cost);
    }
  }
  Report(state, outputs, k, sol);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {60, 100, 140, 180, 220}) {
    b->Args({n, kBruteForce});
    b->Args({n, kGreedy});
    b->Args({n, kDrastic});
  }
}

BENCHMARK(Fig1213BruteForce)
    ->Apply(Sweep)
    ->ArgNames({"N", "method"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace adp::bench

BENCHMARK_MAIN();
