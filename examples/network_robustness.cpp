// Example 3 from the paper's introduction: measuring the robustness of a
// layered communication network with the 3-path query
//
//   Q3path(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)
//
// ADP(Q3path, D, k) asks: how few links must fail to disrupt k of the
// end-to-end paths? Sweeping k produces a disruption curve — a steep curve
// (most paths killed by few link failures) means a fragile network, a flat
// one means a robust network.
//
// We compare two topologies of identical size: a "hub" network where most
// traffic funnels through a few middle nodes, and a "mesh" with evenly
// spread links. The paper's robustness story predicts the hub network's
// curve collapses far earlier — and it does.

#include <cstdio>

#include "analysis/robustness.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "util/rng.h"

namespace {

using namespace adp;

// Layered network: layer0 -> layer1 -> layer2 -> layer3.
Database MakeLayered(const ConjunctiveQuery& q, int width, bool hub,
                     std::uint64_t seed) {
  Rng rng(seed);
  Database db(q.num_relations());
  auto link = [&](int rel, int from, int to) {
    db.rel(rel).Add({from, to});
  };
  for (int rel = 0; rel < 3; ++rel) {
    for (int from = 0; from < width; ++from) {
      const int fanout = 3;
      for (int i = 0; i < fanout; ++i) {
        int to;
        if (hub && rel == 1) {
          to = static_cast<int>(rng.Uniform(3));  // funnel into 3 hub nodes
        } else {
          to = static_cast<int>(rng.Uniform(width));
        }
        link(rel, from, to);
      }
    }
  }
  db.DedupAll();
  return db;
}

void PrintCurve(const char* label, const Database& db,
                const ConjunctiveQuery& q) {
  const DisruptionCurve curve =
      ComputeDisruptionCurve(q, db, {0.2, 0.4, 0.6, 0.8});
  std::printf("%s: %lld links, %lld end-to-end paths\n", label,
              static_cast<long long>(curve.input_count),
              static_cast<long long>(curve.output_count));
  std::printf("  %% paths disrupted | links removed | %% links removed\n");
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    const DisruptionPoint& pt = curve.points[i];
    if (!pt.feasible) continue;
    std::printf("  %17.0f | %13lld | %14.1f\n", pt.fraction * 100,
                static_cast<long long>(pt.deletions),
                100.0 * curve.InputFraction(i));
  }
}

}  // namespace

int main() {
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)");
  const int width = 30;

  std::printf("== Example 3: network robustness via ADP ==\n");
  std::printf("query: %s\n\n", q.ToString().c_str());

  const Database hub = MakeLayered(q, width, /*hub=*/true, 1);
  PrintCurve("hub topology ", hub, q);
  std::printf("\n");
  const Database mesh = MakeLayered(q, width, /*hub=*/false, 1);
  PrintCurve("mesh topology", mesh, q);

  std::printf(
      "\nReading the curves: the hub network loses most of its paths after\n"
      "a handful of link deletions (the middle layer is a chokepoint),\n"
      "while the mesh requires a large fraction of its links to fail for\n"
      "the same damage — precisely the robustness signal ADP quantifies.\n");
  return 0;
}
