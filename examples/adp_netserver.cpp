// adp_netserver: the ADP engine behind a TCP socket (src/net/server.h).
//
// Starts an AdpEngine, puts AdpNetServer in front of it, prints one line
//
//   listening on <host>:<port>
//
// to stdout (port is the actually-bound one, so --port=0 callers — tests,
// tools/net_smoke.sh — can parse it), and serves until stdin reaches EOF
// or the process is terminated. Wire protocol: docs/PROTOCOL.md; drive it
// with examples/adp_netclient.cpp.
//
// Usage:  adp_netserver [--host=A] [--port=P] [--workers=N]
//                       [--min-shard-groups=G] [--min-shard-components=C]
//                       [--coalesce-window-ms=W] [--timeout-ms=T]
//                       [--stream-batch-tuples=B] [--max-queue-depth=Q]
//                       [--max-connections=M]
//
//   --host=A                 listen address (default 127.0.0.1)
//   --port=P                 listen port; 0 (default) binds an ephemeral
//                            port, reported on the "listening on" line
//   --timeout-ms=T           default per-request deadline (0 = none); a
//                            +d request option overrides it
//   --max-queue-depth=Q      load shedding: async requests arriving while
//                            more than Q tasks wait on the pool are
//                            rejected with OVERLOADED (0 = unbounded)
//   --max-connections=M      connections beyond M are refused (default 256)
//
// Engine knobs (--workers, --min-shard-*, --coalesce-window-ms,
// --stream-batch-tuples) mean the same as for adp_server.

#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/engine.h"
#include "net/server.h"

namespace {

std::int64_t ParseFlagValue(const std::string& arg, std::size_t prefix_len,
                            std::int64_t min_value, std::int64_t max_value) {
  const std::string value = arg.substr(prefix_len);
  std::size_t pos = 0;
  std::int64_t out = min_value - 1;
  try {
    out = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty() || out < min_value ||
      out > max_value) {
    std::cerr << "bad flag value: " << arg << "\n";
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  adp::EngineConfig config;
  adp::net::NetServerConfig net;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      net.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      net.port =
          static_cast<int>(ParseFlagValue(arg, 7, /*min_value=*/0,
                                          /*max_value=*/65535));
    } else if (arg.rfind("--workers=", 0) == 0) {
      config.num_workers = static_cast<int>(
          ParseFlagValue(arg, 10, /*min_value=*/1, /*max_value=*/4096));
    } else if (arg.rfind("--min-shard-groups=", 0) == 0) {
      config.min_shard_groups = static_cast<std::size_t>(
          ParseFlagValue(arg, 19, /*min_value=*/0, /*max_value=*/1 << 20));
    } else if (arg.rfind("--min-shard-components=", 0) == 0) {
      config.min_shard_components = static_cast<std::size_t>(
          ParseFlagValue(arg, 23, /*min_value=*/0, /*max_value=*/1 << 20));
    } else if (arg.rfind("--coalesce-window-ms=", 0) == 0) {
      config.coalesce_window_ms = static_cast<double>(
          ParseFlagValue(arg, 21, /*min_value=*/0, /*max_value=*/86'400'000));
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      net.default_timeout_ms =
          ParseFlagValue(arg, 13, /*min_value=*/0, /*max_value=*/86'400'000);
    } else if (arg.rfind("--stream-batch-tuples=", 0) == 0) {
      config.stream_batch_tuples = static_cast<std::size_t>(
          ParseFlagValue(arg, 22, /*min_value=*/0, /*max_value=*/1 << 24));
    } else if (arg.rfind("--max-queue-depth=", 0) == 0) {
      config.max_queue_depth = static_cast<std::size_t>(
          ParseFlagValue(arg, 18, /*min_value=*/0, /*max_value=*/1 << 24));
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      net.max_connections = static_cast<int>(
          ParseFlagValue(arg, 18, /*min_value=*/1, /*max_value=*/1 << 20));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  adp::AdpEngine engine(config);
  adp::net::AdpNetServer server(engine, net);
  const adp::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "start failed: " << status.message() << "\n";
    return adp::StatusExitCode(status.code());
  }
  std::cout << "listening on " << net.host << ":" << server.port() << "\n"
            << std::flush;

  // Serve until stdin closes — the natural lifetime under a harness that
  // holds our stdin open (tools/net_smoke.sh, tests), and Ctrl-D
  // interactively. SIGTERM/SIGINT end the process the default way.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.Stop();
  engine.Shutdown();
  return 0;
}
