// Interactive dichotomy explorer: classify any self-join-free conjunctive
// query under both of the paper's characterizations.
//
// Usage:
//   ./dichotomy_explorer "Q(A,B) :- R1(A), R2(A,B), R3(B)" ...
//   ./dichotomy_explorer            # runs the paper's query zoo
//
// For each query it reports the procedural verdict (IsPtime, Algorithm 1),
// the structural witness (Theorem 3: triad-like / strand / non-hierarchical
// head join), and the relation classifications the structures are built on.

#include <cstdio>
#include <vector>

#include "dichotomy/is_ptime.h"
#include "dichotomy/relations.h"
#include "dichotomy/structures.h"
#include "query/parser.h"

namespace {

using namespace adp;

void Classify(const std::string& text) {
  std::printf("----------------------------------------------------------\n");
  std::printf("query: %s\n", text.c_str());
  ConjunctiveQuery q;
  try {
    q = ParseQuery(text);
  } catch (const ParseError& e) {
    std::printf("  parse error: %s\n", e.what());
    return;
  }

  std::printf("  shape: %s%s%s\n", q.IsBoolean() ? "boolean" : "",
              q.IsFull() ? "full (no projection)" : "",
              !q.IsBoolean() && !q.IsFull() ? "projection" : "");

  const std::vector<char> exo = ExogenousFlags(q);
  const std::vector<char> dom = DominatedFlags(q);
  for (int i = 0; i < q.num_relations(); ++i) {
    std::printf("  %-12s %-10s %s\n", q.relation(i).name.c_str(),
                exo[i] ? "exogenous" : "endogenous",
                dom[i] ? "dominated" : "non-dominated");
  }

  const bool ptime = IsPtime(q);
  std::printf("  IsPtime (Algorithm 1): %s\n",
              ptime ? "TRUE  -> ADP is poly-time solvable"
                    : "FALSE -> ADP is NP-hard");
  const HardStructure hs = FindHardStructure(q);
  std::printf("  structural (Theorem 3): %s\n", hs.description.c_str());
  if (ptime == (hs.kind == HardStructureKind::kNone)) {
    std::printf("  (the two characterizations agree, as Theorem 3 demands)\n");
  } else {
    std::printf("  *** DISAGREEMENT — please report this query as a bug\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Classify(argv[i]);
    return 0;
  }
  // No arguments: walk the paper's zoo.
  const char* zoo[] = {
      "Qcover(A,B) :- R1(A), R2(A,B), R3(B)",
      "Qswing(A) :- R2(A,B), R3(B)",
      "Qseesaw(A) :- R1(A), R2(A,B), R3(B)",
      "Qtriangle() :- R1(A,B), R2(B,C), R3(C,A)",
      "QT() :- R1(A,B,C), R2(A), R3(B), R4(C)",
      "Qchain() :- R1(A,B), R2(B,C), R3(C,E)",
      "Q(A) :- R1(A,C,E), R2(A,E,F), R3(A,F,H)",
      "Q(A,B) :- R1(A,C,E), R2(A,B,E,F), R3(B,F,H)",
      "Q(A,B,C) :- R1(A,B,E), R2(A,C,E)",
      "Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)",
      "QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)",
      "Q1(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)",
      "SelectedQ1(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK=13370), L(OK,PK=13370)",
      "Q6(A,B) :- R1(A), R2(A,B)",
      "Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G), "
      "R4(A,B,C,F)",
  };
  for (const char* text : zoo) Classify(text);
  return 0;
}
