// adp_cli: run ADP on your own data from the command line, through the
// engine's Prepare/Bind/Execute session API.
//
// Usage:
//   adp_cli "<query>" <data-dir> <k|P%> [options]
//
//   <query>     datalog syntax, e.g. "Q(A,B) :- R(A,B), S(B,C=5)"
//   <data-dir>  directory holding <RelationName>.csv per body relation
//   <k|P%>      absolute output-removal target, or a percentage of |Q(D)|
//
// Options:
//   --counting        cost only, skip the witness tuples
//   --drastic         use DrasticGreedy on NP-hard leaves (full CQs)
//   --verify          re-evaluate the query after deletion
//   --classify-only   print the dichotomy verdict and exit
//   --timeout-ms=N    abort the solve after N milliseconds
//                     (exit code = StatusExitCode(kDeadlineExceeded))
//
// Exit codes: 0 success, 1 usage error, 2 infeasible target, and
// StatusExitCode(code) — a distinct code per Status — for engine failures
// (parse errors, missing relations, deadline expiry, ...).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "engine/engine.h"
#include "io/csv.h"
#include "query/parser.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace adp;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s \"<query>\" <data-dir> <k|P%%> "
                 "[--counting] [--drastic] [--verify] [--classify-only] "
                 "[--timeout-ms=N]\n",
                 argv[0]);
    return 1;
  }

  AdpOptions options;
  options.verify = false;
  bool classify_only = false;
  long long timeout_ms = 0;
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--counting")) options.counting_only = true;
    else if (!std::strcmp(argv[i], "--drastic"))
      options.heuristic = AdpOptions::Heuristic::kDrastic;
    else if (!std::strcmp(argv[i], "--verify")) options.verify = true;
    else if (!std::strcmp(argv[i], "--classify-only")) classify_only = true;
    else if (!std::strncmp(argv[i], "--timeout-ms=", 13))
      timeout_ms = std::atoll(argv[i] + 13);
    else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 1;
    }
  }

  AdpEngine engine({.num_workers = 2});

  // Prepare once: parse + dichotomy + linearization + dispatch plan. Every
  // failure from here on is a typed Status with its own exit code.
  StatusOr<PreparedQuery> prepared = engine.Prepare(argv[1], options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 prepared.status().ToString().c_str());
    return StatusExitCode(prepared.status().code());
  }
  const ConjunctiveQuery& q = prepared->plan()->query;

  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("dichotomy: %s\n", prepared->plan()->verdict.Summary().c_str());
  if (classify_only) return 0;

  Database db;
  try {
    db = LoadDatabaseCsv(q, argv[2]);
  } catch (const CsvError& e) {
    std::fprintf(stderr, "data error: %s\n", e.what());
    return 1;
  }
  std::printf("loaded %zu tuples across %d relations\n", db.TotalTuples(),
              q.num_relations());

  const DbId db_id = engine.RegisterDatabase(std::move(db));
  if (Status bind = prepared->Bind(db_id); !bind.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bind.ToString().c_str());
    return StatusExitCode(bind.code());
  }

  // Resolve the target: absolute k or percentage of |Q(D)|.
  const std::string target = argv[3];
  std::int64_t k;
  if (!target.empty() && target.back() == '%') {
    const double pct = std::atof(target.substr(0, target.size() - 1).c_str());
    // Probe run (k = 0) to learn |Q(D)|; served through the bound handle.
    const AdpResponse probe = engine.Execute(*prepared, 0, options);
    if (!probe.ok()) {
      std::fprintf(stderr, "probe error: %s\n",
                   probe.status.ToString().c_str());
      return StatusExitCode(probe.status.code());
    }
    k = static_cast<std::int64_t>(pct / 100.0 *
                                  static_cast<double>(
                                      probe.solution.output_count));
    if (k < 1) k = 1;
  } else {
    k = std::atoll(target.c_str());
  }

  AdpRequest req;
  req.prepared = *prepared;
  req.k = k;
  req.options = options;
  if (timeout_ms > 0) {
    req.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeout_ms);
  }
  const AdpResponse resp = engine.Execute(req);
  if (!resp.ok()) {
    std::fprintf(stderr, "solve error: %s\n", resp.status.ToString().c_str());
    return StatusExitCode(resp.status.code());
  }
  const AdpSolution& sol = resp.solution;

  std::printf("|Q(D)| = %lld, target k = %lld\n",
              static_cast<long long>(sol.output_count),
              static_cast<long long>(k));
  if (!sol.feasible) {
    std::printf("infeasible: k exceeds |Q(D)|\n");
    return 2;
  }
  std::printf("tuples to delete: %lld (%s) in %.2f ms\n",
              static_cast<long long>(sol.cost),
              sol.exact ? "optimal" : "heuristic", resp.solve_ms);
  const AdpStats& stats = resp.stats;
  std::printf("recursion: %d boolean, %d singleton, %d universe (%lld "
              "classes), %d decompose, %d greedy, %d drastic\n",
              stats.boolean_nodes, stats.singleton_nodes,
              stats.universe_nodes,
              static_cast<long long>(stats.universe_groups),
              stats.decompose_nodes, stats.greedy_leaves,
              stats.drastic_leaves);
  if (!options.counting_only) {
    WriteSolutionCsv(std::cout, q, engine.database(db_id)->db, sol.tuples);
  }
  if (options.verify) {
    std::printf("verified outputs removed: %lld\n",
                static_cast<long long>(sol.removed_outputs));
  }
  return 0;
}
