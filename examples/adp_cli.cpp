// adp_cli: run ADP on your own data from the command line.
//
// Usage:
//   adp_cli "<query>" <data-dir> <k|P%> [options]
//
//   <query>     datalog syntax, e.g. "Q(A,B) :- R(A,B), S(B,C=5)"
//   <data-dir>  directory holding <RelationName>.csv per body relation
//   <k|P%>      absolute output-removal target, or a percentage of |Q(D)|
//
// Options:
//   --counting       cost only, skip the witness tuples
//   --drastic        use DrasticGreedy on NP-hard leaves (full CQs)
//   --verify         re-evaluate the query after deletion
//   --classify-only  print the dichotomy verdict and exit
//
// Exit codes: 0 success, 1 usage/parse error, 2 infeasible target.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "dichotomy/is_ptime.h"
#include "dichotomy/structures.h"
#include "io/csv.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace adp;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s \"<query>\" <data-dir> <k|P%%> "
                 "[--counting] [--drastic] [--verify] [--classify-only]\n",
                 argv[0]);
    return 1;
  }

  ConjunctiveQuery q;
  try {
    q = ParseQuery(argv[1]);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "query error: %s\n", e.what());
    return 1;
  }

  AdpOptions options;
  options.verify = false;
  bool classify_only = false;
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--counting")) options.counting_only = true;
    else if (!std::strcmp(argv[i], "--drastic"))
      options.heuristic = AdpOptions::Heuristic::kDrastic;
    else if (!std::strcmp(argv[i], "--verify")) options.verify = true;
    else if (!std::strcmp(argv[i], "--classify-only")) classify_only = true;
    else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("query: %s\n", q.ToString().c_str());
  const bool ptime = IsPtime(q);
  std::printf("dichotomy: %s (%s)\n",
              ptime ? "poly-time solvable" : "NP-hard",
              FindHardStructure(q).description.c_str());
  if (classify_only) return 0;

  Database db;
  try {
    db = LoadDatabaseCsv(q, argv[2]);
  } catch (const CsvError& e) {
    std::fprintf(stderr, "data error: %s\n", e.what());
    return 1;
  }
  std::printf("loaded %zu tuples across %d relations\n", db.TotalTuples(),
              q.num_relations());

  // Resolve the target: absolute k or percentage of |Q(D)|.
  AdpStats stats;
  options.stats = &stats;
  const std::string target = argv[3];
  std::int64_t k;
  Stopwatch watch;
  if (!target.empty() && target.back() == '%') {
    const double pct = std::atof(target.substr(0, target.size() - 1).c_str());
    // Probe run to learn |Q(D)|.
    const AdpSolution probe = ComputeAdp(q, db, 0, options);
    k = static_cast<std::int64_t>(pct / 100.0 *
                                  static_cast<double>(probe.output_count));
    if (k < 1) k = 1;
  } else {
    k = std::atoll(target.c_str());
  }

  watch.Reset();
  const AdpSolution sol = ComputeAdp(q, db, k, options);
  const double ms = watch.ElapsedMs();

  std::printf("|Q(D)| = %lld, target k = %lld\n",
              static_cast<long long>(sol.output_count),
              static_cast<long long>(k));
  if (!sol.feasible) {
    std::printf("infeasible: k exceeds |Q(D)|\n");
    return 2;
  }
  std::printf("tuples to delete: %lld (%s) in %.2f ms\n",
              static_cast<long long>(sol.cost),
              sol.exact ? "optimal" : "heuristic", ms);
  std::printf("recursion: %d boolean, %d singleton, %d universe (%lld "
              "classes), %d decompose, %d greedy, %d drastic\n",
              stats.boolean_nodes, stats.singleton_nodes,
              stats.universe_nodes,
              static_cast<long long>(stats.universe_groups),
              stats.decompose_nodes, stats.greedy_leaves,
              stats.drastic_leaves);
  if (!options.counting_only) {
    WriteSolutionCsv(std::cout, q, db, sol.tuples);
  }
  if (options.verify) {
    std::printf("verified outputs removed: %lld\n",
                static_cast<long long>(sol.removed_outputs));
  }
  return 0;
}
