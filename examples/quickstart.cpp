// Quickstart: the smallest end-to-end use of the adp engine.
//
// Reproduces the paper's running example (Figure 1 + §3.2): a 3-relation
// chain query over 10 tuples, where ADP(Q1, D, 2) finds a single input
// tuple whose deletion removes two output tuples — through the session
// API: register a database, Prepare the query once (parse + dichotomy +
// dispatch plan, cached), Bind it to the database, then Execute the
// prepared handle.
//
// Every outcome below arrives as AdpResponse::status (a typed adp::Status;
// docs/ENGINE.md has the full code table) — responses also carry the
// deduped/coalesced admission flags and per-solve AdpStats, none of which
// this single-request walkthrough exercises.
//
// Exit codes: 0 on success, StatusExitCode(code) on engine failures.
//
// Build & run:  ./build/quickstart

#include <cstdio>

#include "engine/engine.h"

int main() {
  using namespace adp;

  AdpEngine engine({.num_workers = 2});

  // 1. Load the instance (Figure 1; a_i -> 10+i, b_i -> 20+i, ...) and
  //    register it. Relations are addressed by name at bind time.
  NamedDatabase named;
  named.relation_names = {"R1", "R2", "R3"};
  named.db = Database(3);
  named.db.Load(0, {{11, 21}, {12, 22}, {13, 23}});
  named.db.Load(1, {{21, 31}, {22, 32}, {22, 33}, {23, 33}});
  named.db.Load(2, {{31, 41}, {32, 43}, {33, 43}});
  const DbId db = engine.RegisterDatabase(std::move(named));

  // 2. Prepare the query once: parse, dichotomy verdict, linearization,
  //    dispatch plan. Failures are typed — no exceptions to catch.
  AdpOptions options;
  options.verify = true;  // re-evaluate the query to confirm the effect
  StatusOr<PreparedQuery> prepared =
      engine.Prepare("Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)", options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return StatusExitCode(prepared.status().code());
  }

  // 3. Pin the database binding into the handle. From here every
  //    Execute/Submit through the handle skips all cache probes.
  if (Status bind = prepared->Bind(db); !bind.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", bind.ToString().c_str());
    return StatusExitCode(bind.code());
  }

  // 4. Ask: what is the cheapest way to remove at least 2 of the 4 outputs?
  //    resp.ok() is shorthand for resp.status.ok(); on failure the typed
  //    code (kCancelled, kDeadlineExceeded, ...) picks the exit code.
  const AdpResponse resp = engine.Execute(*prepared, /*k=*/2, options);
  if (!resp.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 resp.status.ToString().c_str());
    return StatusExitCode(resp.status.code());
  }

  const AdpSolution& sol = resp.solution;
  const auto& plan = *prepared->plan();
  std::printf("query:            %s\n", plan.query.ToString().c_str());
  std::printf("dichotomy:        %s\n", plan.verdict.Summary().c_str());
  std::printf("|Q(D)|:           %lld\n",
              static_cast<long long>(sol.output_count));
  std::printf("target k:         2\n");
  std::printf("tuples to delete: %lld (%s)\n",
              static_cast<long long>(sol.cost),
              sol.exact ? "optimal — query is poly-time solvable"
                        : "heuristic — query is NP-hard");
  const Database& data = engine.database(db)->db;
  for (const TupleRef& t : sol.tuples) {
    std::printf("  delete %s row %u: (",
                plan.query.relation(t.relation).name.c_str(), t.row);
    const Tuple& row = data.rel(t.relation).tuple(t.row);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%lld", c ? ", " : "", static_cast<long long>(row[c]));
    }
    std::printf(")\n");
  }
  std::printf("outputs removed:  %lld (verified)\n",
              static_cast<long long>(sol.removed_outputs));
  return 0;
}
