// Quickstart: the smallest end-to-end use of the adp library.
//
// Reproduces the paper's running example (Figure 1 + §3.2): a 3-relation
// chain query over 10 tuples, where ADP(Q1, D, 2) finds a single input
// tuple whose deletion removes two output tuples.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "query/parser.h"
#include "solver/compute_adp.h"

int main() {
  using namespace adp;

  // 1. Declare the query in datalog syntax. Relation names are free-form;
  //    the head lists the output attributes (projection is allowed).
  const ConjunctiveQuery q =
      ParseQuery("Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)");

  // 2. Load the instance (Figure 1; a_i -> 10+i, b_i -> 20+i, ...).
  Database db(q.num_relations());
  db.Load(q.FindRelation("R1"), {{11, 21}, {12, 22}, {13, 23}});
  db.Load(q.FindRelation("R2"), {{21, 31}, {22, 32}, {22, 33}, {23, 33}});
  db.Load(q.FindRelation("R3"), {{31, 41}, {32, 43}, {33, 43}});

  // 3. Ask: what is the cheapest way to remove at least 2 of the 4 outputs?
  AdpOptions options;
  options.verify = true;  // re-evaluate the query to confirm the effect
  const AdpSolution sol = ComputeAdp(q, db, /*k=*/2, options);

  std::printf("query:            %s\n", q.ToString().c_str());
  std::printf("|Q(D)|:           %lld\n",
              static_cast<long long>(sol.output_count));
  std::printf("target k:         2\n");
  std::printf("tuples to delete: %lld (%s)\n",
              static_cast<long long>(sol.cost),
              sol.exact ? "optimal — query is poly-time solvable"
                        : "heuristic — query is NP-hard");
  for (const TupleRef& t : sol.tuples) {
    std::printf("  delete %s row %u: (",
                q.relation(t.relation).name.c_str(), t.row);
    const Tuple& row = db.rel(t.relation).tuple(t.row);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%lld", c ? ", " : "", static_cast<long long>(row[c]));
    }
    std::printf(")\n");
  }
  std::printf("outputs removed:  %lld (verified)\n",
              static_cast<long long>(sol.removed_outputs));
  return 0;
}
