// adp_loadgen: command-line load generator over the workload family
// generator and LoadDriver (docs/WORKLOAD.md).
//
// Runs a seeded, reproducible traffic blend against an in-process
// AdpEngine — or, with --net, against an in-process AdpNetServer over
// loopback so the whole wire path (framing, per-connection databases,
// PREPARE/EXEC, CANCEL, deadlines) is under load too — and prints the
// outcome buckets, throughput, and latency quantiles.
//
//   adp_loadgen                                # catalog, pure-execute blend
//   adp_loadgen --list-families
//   adp_loadgen --mix=execute:4,stream:2,cancel:1 --requests=500
//   adp_loadgen --open-loop --rate=300 --requests=400
//   adp_loadgen --net --concurrency=8
//   adp_loadgen --family=star3.proj.small.mid --json=report.json
//
// Exit codes: 0 success, 1 outcome-invariant violation, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "net/server.h"
#include "workload/driver.h"
#include "workload/families.h"

namespace {

using namespace adp;           // NOLINT
using namespace adp::workload; // NOLINT

const char* CaseName(AdpCase c) {
  switch (c) {
    case AdpCase::kBoolean: return "Boolean";
    case AdpCase::kSingleton: return "Singleton";
    case AdpCase::kUniverse: return "Universe";
    case AdpCase::kDecompose: return "Decompose";
    case AdpCase::kHeuristic: return "Heuristic";
  }
  return "?";
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --list-families          print the default catalog and exit\n"
      "  --family=NAME            run only the catalog family NAME\n"
      "                           (repeatable; default: whole catalog)\n"
      "  --mix=K:W,K:W,...        traffic mix weights; keys execute,\n"
      "                           prepared, stream, cancel, expired\n"
      "  --requests=N             ops in the plan (default 256)\n"
      "  --concurrency=N          driver threads / stream slots (default 4)\n"
      "  --workers=N              engine worker threads (default 4)\n"
      "  --max-k=N                per-op k drawn from [1,N] (default 3)\n"
      "  --seed=N                 plan + data seed (default 1)\n"
      "  --open-loop --rate=RPS   paced arrivals instead of closed loop\n"
      "  --coalesce-window-ms=MS  engine coalescing admission window\n"
      "  --max-queue-depth=N      engine shedding bound (0 = unbounded)\n"
      "  --net                    drive through a loopback AdpNetServer\n"
      "  --json=PATH              also write the report as flat JSON\n",
      argv0);
}

bool ParseI64(const char* s, std::int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseF64(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig dc;
  dc.seed = 1;
  EngineConfig ec;
  bool net = false;
  std::string json_path;
  std::vector<std::string> family_names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    std::int64_t n = 0;
    double f = 0;
    if (arg == "--list-families") {
      for (const FamilySpec& spec : DefaultFamilyCatalog()) {
        const FamilyLabel label = LabelFor(spec);
        std::printf("%-26s %s  %s\n", FamilyName(spec).c_str(),
                    label.ptime ? "ptime" : "hard ",
                    CaseName(label.root_case));
      }
      return 0;
    } else if (arg.rfind("--family=", 0) == 0) {
      family_names.push_back(value("--family="));
    } else if (arg.rfind("--mix=", 0) == 0) {
      try {
        dc.mix = ParseTrafficMix(value("--mix="));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg.rfind("--requests=", 0) == 0 &&
               ParseI64(value("--requests="), &n)) {
      dc.requests = static_cast<int>(n);
    } else if (arg.rfind("--concurrency=", 0) == 0 &&
               ParseI64(value("--concurrency="), &n)) {
      dc.concurrency = static_cast<int>(n);
    } else if (arg.rfind("--workers=", 0) == 0 &&
               ParseI64(value("--workers="), &n)) {
      ec.num_workers = static_cast<int>(n);
    } else if (arg.rfind("--max-k=", 0) == 0 &&
               ParseI64(value("--max-k="), &n)) {
      dc.max_k = n;
    } else if (arg.rfind("--seed=", 0) == 0 && ParseI64(value("--seed="), &n)) {
      dc.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--open-loop") {
      dc.open_loop = true;
    } else if (arg.rfind("--rate=", 0) == 0 && ParseF64(value("--rate="), &f)) {
      dc.offered_rps = f;
    } else if (arg.rfind("--coalesce-window-ms=", 0) == 0 &&
               ParseF64(value("--coalesce-window-ms="), &f)) {
      ec.coalesce_window_ms = f;
    } else if (arg.rfind("--max-queue-depth=", 0) == 0 &&
               ParseI64(value("--max-queue-depth="), &n)) {
      ec.max_queue_depth = static_cast<std::size_t>(n);
    } else if (arg == "--net") {
      net = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value("--json=");
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Resolve the family set: the whole catalog, or the named subset.
  std::vector<FamilySpec> specs;
  for (const FamilySpec& spec : DefaultFamilyCatalog()) {
    if (family_names.empty()) {
      specs.push_back(spec);
      continue;
    }
    const std::string name = FamilyName(spec);
    for (const std::string& want : family_names) {
      if (name == want) specs.push_back(spec);
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no catalog family matched; try --list-families\n");
    return 2;
  }

  AdpEngine engine(ec);
  LoadDriver driver(engine, MakeFamilySet(specs, dc.seed), dc);

  DriverReport rep;
  if (net) {
    net::NetServerConfig sc;
    sc.port = 0;  // ephemeral
    net::AdpNetServer server(engine, sc);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "net server failed to start: %s\n",
                   started.message().c_str());
      return 2;
    }
    rep = driver.RunOverNet("127.0.0.1", server.port());
    server.Stop();
  } else {
    rep = driver.Run();
  }

  const DriverOutcomes& o = rep.outcomes;
  std::printf("families=%zu ops=%llu+%llu streams  wall=%.1fms  %s %s\n",
              specs.size(), static_cast<unsigned long long>(o.issued),
              static_cast<unsigned long long>(o.streams_issued), rep.wall_ms,
              dc.open_loop ? "open-loop" : "closed-loop",
              net ? "over-net" : "in-process");
  std::printf("requests: ok=%llu cancelled=%llu expired=%llu shed=%llu "
              "failed=%llu\n",
              static_cast<unsigned long long>(o.ok),
              static_cast<unsigned long long>(o.cancelled),
              static_cast<unsigned long long>(o.expired),
              static_cast<unsigned long long>(o.shed),
              static_cast<unsigned long long>(o.failed));
  std::printf("streams:  ok=%llu torn_down=%llu shed=%llu failed=%llu "
              "items=%llu\n",
              static_cast<unsigned long long>(o.streams_ok),
              static_cast<unsigned long long>(o.streams_torn_down),
              static_cast<unsigned long long>(o.streams_shed),
              static_cast<unsigned long long>(o.streams_failed),
              static_cast<unsigned long long>(o.stream_items));
  std::printf("throughput=%.1f ops/s  client p50=%.3fms p99=%.3fms  "
              "engine p50=%.3fms p99=%.3fms  checksum=%lld\n",
              rep.throughput_ops_per_sec, rep.client_p50_ms, rep.client_p99_ms,
              rep.engine_p50_ms, rep.engine_p99_ms,
              static_cast<long long>(rep.answer_checksum));

  if (!json_path.empty()) {
    // Flat sorted-key JSON, same shape as the BENCH_*.json trajectories.
    std::map<std::string, double> kv = {
        {"ops_per_sec", rep.throughput_ops_per_sec},
        {"client_p50_ms", rep.client_p50_ms},
        {"client_p99_ms", rep.client_p99_ms},
        {"engine_p50_ms", rep.engine_p50_ms},
        {"engine_p99_ms", rep.engine_p99_ms},
        {"wall_ms", rep.wall_ms},
        {"issued", static_cast<double>(o.issued)},
        {"streams_issued", static_cast<double>(o.streams_issued)},
        {"ok", static_cast<double>(o.ok)},
        {"cancelled", static_cast<double>(o.cancelled)},
        {"expired", static_cast<double>(o.expired)},
        {"shed", static_cast<double>(o.shed)},
        {"failed", static_cast<double>(o.failed)},
        {"checksum", static_cast<double>(rep.answer_checksum)},
    };
    std::ofstream out(json_path);
    out << "{";
    bool first = true;
    for (const auto& [key, val] : kv) {
      if (!first) out << ",";
      first = false;
      out << "\n  \"" << key << "\": " << val;
    }
    out << "\n}\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    }
  }

  if (!OutcomesConsistent(o)) {
    std::fprintf(stderr, "FAIL: outcome buckets do not sum to issued ops\n");
    return 1;
  }
  return 0;
}
