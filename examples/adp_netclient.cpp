// adp_netclient: drives an adp_netserver over TCP with the same line
// protocol adp_server reads from stdin.
//
// Reads commands from a file (or stdin) — DB / REQ / STREAM / CANCEL /
// STATS / METRICS, grammar in src/net/textproto.h — sends each as one
// protocol frame (docs/PROTOCOL.md), and prints the server's reply bodies:
// the same JSON result lines adp_server would print for the same input.
// REQ is pipelined (replies are collected in request order at STATS /
// METRICS / EOF); STREAM drains its pushed frames in place.
//
// Usage:  adp_netclient --port=P [--host=A] [requests.txt]
//
// Exit code: 0 when every request succeeded (or was explicitly CANCELled);
// otherwise StatusExitCode of the first failing reply — mirroring
// adp_server's exit-code contract.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/status.h"
#include "net/client.h"
#include "net/textproto.h"
#include "net/wire.h"

namespace {

using adp::Status;
using adp::StatusCode;
using adp::net::AdpNetClient;
using adp::net::Frame;
using adp::net::FrameType;

/// Reverse of StatusCodeName, for mirroring server-reported failures into
/// this process's exit code. Unknown names map to kInternal.
StatusCode StatusCodeFromName(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kOverloaded); ++c) {
    if (name == adp::StatusCodeName(static_cast<StatusCode>(c))) {
      return static_cast<StatusCode>(c);
    }
  }
  return StatusCode::kInternal;
}

/// Pulls the "status":"NAME" field out of one JSON result line ("" when
/// absent — e.g. DB_OK / CANCEL_OK bodies, which carry no status).
std::string ExtractStatusName(const std::string& body) {
  const std::string key = "\"status\":\"";
  const std::size_t at = body.find(key);
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

// Mirrors adp_server: CANCELLED is operator-initiated, not a failure.
void NoteBody(const Frame& frame, Status& first_error) {
  std::string name;
  if (frame.type == FrameType::kError) {
    // "<id> <STATUS_NAME> <message>"
    std::int64_t id = 0;
    std::string rest;
    adp::net::SplitCorrelationId(frame.payload, &id, &rest);
    const std::vector<std::string> toks = adp::net::SplitWs(rest);
    if (!toks.empty()) name = toks[0];
  } else {
    name = ExtractStatusName(frame.payload);
  }
  if (name.empty() || name == "OK" || name == "CANCELLED") return;
  if (first_error.ok()) {
    first_error = Status(StatusCodeFromName(name), "server reported " + name);
  }
}

/// Prints a reply's body (payload after the correlation id).
void PrintBody(const Frame& frame) {
  std::int64_t id = 0;
  std::string body;
  if (!adp::net::SplitCorrelationId(frame.payload, &id, &body)) {
    body = frame.payload;
  }
  std::cout << body << "\n";
}

bool DrainPending(AdpNetClient& client, std::vector<std::int64_t>& pending,
                  Status& first_error) {
  for (std::int64_t id : pending) {
    std::optional<Frame> reply = client.WaitReply(id);
    if (!reply.has_value()) return false;
    NoteBody(*reply, first_error);
    PrintBody(*reply);
  }
  pending.clear();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      try {
        port = std::stoi(arg.substr(7));
      } catch (const std::exception&) {
        port = 0;
      }
    } else {
      path = arg;
    }
  }
  if (port <= 0) {
    std::cerr << "usage: adp_netclient --port=P [--host=A] [requests.txt]\n";
    return 1;
  }

  std::ifstream file;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
  }
  std::istream& in = path.empty() ? std::cin : file;

  AdpNetClient client;
  if (!client.Connect(host, port)) {
    std::cerr << "connect failed: " << client.error() << "\n";
    return 1;
  }

  Status first_error;
  std::vector<std::int64_t> pending;  // REQ ids awaiting kResult, in order

  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> toks = adp::net::SplitWs(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];

    FrameType type;
    if (cmd == "DB") {
      type = FrameType::kDb;
    } else if (cmd == "REQ") {
      type = FrameType::kReq;
    } else if (cmd == "STREAM") {
      type = FrameType::kStream;
    } else if (cmd == "PREPARE") {
      type = FrameType::kPrepare;
    } else if (cmd == "EXEC") {
      type = FrameType::kExec;
    } else if (cmd == "CANCEL") {
      type = FrameType::kCancel;
    } else if (cmd == "STATS") {
      type = FrameType::kStats;
    } else if (cmd == "METRICS") {
      type = FrameType::kMetrics;
    } else {
      std::cout << "{\"req\":null,\"status\":\"INVALID_ARGUMENT\",\"error\":\""
                << adp::net::JsonEscape("unknown command " + cmd) << "\"}\n";
      if (first_error.ok()) {
        first_error = Status(StatusCode::kInvalidArgument,
                             "unknown command " + cmd);
      }
      continue;
    }

    // STATS/METRICS first drain pipelined REQs, mirroring adp_server's
    // request-order output.
    if ((type == FrameType::kStats || type == FrameType::kMetrics) &&
        !DrainPending(client, pending, first_error)) {
      break;
    }

    const std::int64_t id = client.NextId();
    if (!client.Send(type, id, line)) break;

    if (type == FrameType::kReq) {
      pending.push_back(id);  // reply arrives whenever; drain later
      continue;
    }
    if (type == FrameType::kStream) {
      // Pushed frames: items until kStreamEnd (or kError).
      for (;;) {
        std::optional<Frame> frame = client.WaitReply(id);
        if (!frame.has_value()) break;
        NoteBody(*frame, first_error);
        PrintBody(*frame);
        if (frame->type != FrameType::kStreamItem) break;
      }
      continue;
    }
    std::optional<Frame> reply = client.WaitReply(id);
    if (!reply.has_value()) break;
    NoteBody(*reply, first_error);
    PrintBody(*reply);
  }

  if (client.connected()) {
    DrainPending(client, pending, first_error);
    client.Call(FrameType::kBye, "BYE");
  } else if (first_error.ok()) {
    std::cerr << "connection lost: " << client.error() << "\n";
    first_error = Status(StatusCode::kInternal, client.error());
  }
  return StatusExitCode(first_error.code());
}
