// adp_server: line-oriented batch driver for the concurrent ADP engine.
//
// Reads requests from a file (or stdin), executes them on AdpEngine's
// worker pool, and prints one JSON-ish result line per request, in request
// order. The command grammar and the result-line rendering live in
// src/net/textproto.h, shared with the TCP front end (src/net/server.cc,
// examples/adp_netserver.cpp) so the two cannot drift.
//
// Protocol (one command per line; '#' starts a comment):
//
//   DB <name> <Rel>=<row>/<row>/... <Rel>=...
//       Registers a database. Rows are comma-separated integers; "()"
//       denotes the empty tuple (vacuum instance); "<Rel>=" alone is an
//       empty instance. Relations bind to query atoms by name.
//
//   REQ <db> <k> [+opt ...] <query>
//       Submits ADP(query, db, k), e.g.:  REQ d1 2 Q(A) :- R1(A,B), R2(B)
//       Options: +p<N> priority, +d<MS> per-request deadline (overrides
//       --timeout-ms), +iw intermediate witnesses (STREAM only) — see
//       src/net/textproto.h.
//
//   STREAM <db> <k> [+opt ...] <query>
//       Streaming ranked-witness enumeration (AdpEngine::StreamAdp): runs
//       ONE solve and prints incremental lines as items arrive — one line
//       per profile increment {"stream":id,"k":j,"cost":c}, one per witness
//       batch {"stream":id,"k":j,"witnesses":[...]}, then a terminal
//       {"stream":id,"end":true,...} line. Emitted in-place, ahead of any
//       still-pending REQ results (protocol: docs/STREAMING.md).
//
//   CANCEL
//       Cancels every request still pending (AdpTicket::Cancel); their
//       result lines report status CANCELLED.
//
//   STATS
//       Drains pending requests, then prints engine counters plus request-
//       latency quantiles (p50/p95/p99, from the metrics registry).
//
//   METRICS
//       Drains pending requests, then prints the engine's metrics registry
//       in Prometheus text exposition format (docs/OBSERVABILITY.md).
//
//   TRACE <on|off>
//       Toggles span tracing (AdpRequest::collect_trace) for subsequent
//       REQ/STREAM lines. Result lines gain "trace_spans";
//       with --trace-dir, slow requests dump their full trace JSON.
//
// Usage:  adp_server [--workers=N] [--min-shard-groups=G]
//                    [--min-shard-components=C] [--coalesce-window-ms=W]
//                    [--timeout-ms=T] [--stream-batch-tuples=B]
//                    [--max-queue-depth=Q]
//                    [--trace-dir=DIR] [--slow-ms=S]
//                    [requests.txt]
//
//   --min-shard-groups=G     Universe nodes with >= G partition groups
//                            shard their sub-solves across the pool (0
//                            disables the Universe axis; default 4).
//   --min-shard-components=C Decompose nodes with >= C connected
//                            components shard their per-component
//                            sub-solves across the pool (0 disables the
//                            Decompose axis; default 4). STATS reports
//                            engagement of both axes (sharded_universe_
//                            nodes / sharded_decompose_nodes).
//   --coalesce-window-ms=W   serve a request identical to one completed
//                            within the last W ms from the recent-results
//                            ring instead of re-solving (0 = off).
//   --timeout-ms=T           per-request deadline: queued or running work
//                            past it reports DEADLINE_EXCEEDED (0 = none);
//                            also bounds STREAM solves.
//   --stream-batch-tuples=B  max witness tuples per STREAM batch line
//                            (0 = one batch; default 256).
//   --max-queue-depth=Q      load shedding: async requests arriving while
//                            more than Q tasks wait on the pool are
//                            rejected with OVERLOADED (0 = unbounded).
//   --trace-dir=DIR          slow-query log: collect a trace for every
//                            REQ/STREAM (implies TRACE on) and write
//                            DIR/trace-<id>.json (Chrome trace-event JSON,
//                            Perfetto-loadable) for each request slower
//                            than --slow-ms end to end.
//   --slow-ms=S              threshold for --trace-dir dumps (default 0:
//                            every traced request is dumped).
//
// Exit code: 0 when every request succeeded (or was explicitly CANCELled);
// otherwise StatusExitCode of the first failing response — one distinct
// code per Status code.
//
// Example input:
//   DB d1 R1=11,21/12,22/13,23 R2=21,31/22,32/22,33/23,33 R3=31,41/32,43/33,43
//   REQ d1 2 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)
//   STREAM d1 3 Q(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)
//   STATS

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "net/textproto.h"
#include "obs/trace.h"

namespace {

using adp::AdpEngine;
using adp::AdpRequest;
using adp::AdpResponse;
using adp::AdpTicket;
using adp::Status;
using adp::StatusCode;

struct Pending {
  int id;
  std::string db_name;
  std::string query_text;
  std::int64_t k;
  std::future<AdpResponse> future;
  AdpTicket ticket;
};

// Strict integer flag value in [min_value, max_value]: rejects trailing
// junk, out-of-range, and non-numeric input with a usage error instead of
// wrapping, clamping, or aborting.
std::int64_t ParseFlagValue(const std::string& arg, std::size_t prefix_len,
                            std::int64_t min_value, std::int64_t max_value) {
  const std::string value = arg.substr(prefix_len);
  std::size_t pos = 0;
  std::int64_t out = min_value - 1;
  try {
    out = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty() || out < min_value ||
      out > max_value) {
    std::cerr << "bad flag value: " << arg << "\n";
    std::exit(1);
  }
  return out;
}

/// Span tracing / slow-query-log settings (TRACE command, --trace-dir,
/// --slow-ms).
struct TraceConfig {
  bool on = false;        // TRACE on|off toggle
  std::string dir;        // --trace-dir; empty = no dumps
  std::int64_t slow_ms = 0;  // --slow-ms dump threshold

  bool collect() const { return on || !dir.empty(); }
};

/// Slow-query log: writes one request's trace JSON as DIR/trace-<id>.json
/// when its end-to-end time crosses the --slow-ms threshold.
void MaybeDumpTrace(const TraceConfig& tc, int id,
                    const std::shared_ptr<const adp::obs::Trace>& trace,
                    double end_to_end_ms) {
  if (tc.dir.empty() || trace == nullptr ||
      end_to_end_ms < static_cast<double>(tc.slow_ms)) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(tc.dir, ec);
  std::ofstream out(std::filesystem::path(tc.dir) /
                    ("trace-" + std::to_string(id) + ".json"));
  if (out) trace->WriteJson(out);
}

// First failing status decides the process exit code; explicit CANCELs are
// operator-initiated, not failures.
void NoteStatus(const Status& status, Status& first_error) {
  if (status.ok() || status.code() == StatusCode::kCancelled) return;
  if (first_error.ok()) first_error = status;
}

// Drains one StreamAdp call synchronously, printing one line per item as it
// arrives: time-to-first-line is one DP solve, not the full enumeration.
void RunStreamCommand(AdpEngine& engine, int id, const std::string& db,
                      AdpRequest req, const TraceConfig& tc,
                      Status& first_error) {
  // Fetch the parsed query (a plan-cache probe) to render relation names.
  std::shared_ptr<const adp::CachedPlan> plan = engine.PlanFor(req);
  const adp::ConjunctiveQuery* query = plan ? &plan->query : nullptr;

  adp::ResultStream stream = engine.StreamAdp(std::move(req));
  std::size_t items = 0;
  while (std::optional<adp::StreamItem> item = stream.Next()) {
    ++items;
    if (item->kind == adp::StreamItem::Kind::kEnd) {
      NoteStatus(item->status, first_error);
      if (item->trace != nullptr) {
        MaybeDumpTrace(tc, id, item->trace, item->queue_ms + item->total_ms);
      }
    }
    std::cout << adp::net::FormatStreamItemLine(id, db, *item, query, items)
              << "\n";
  }
}

void Drain(AdpEngine& engine, std::vector<Pending>& pending,
           const TraceConfig& tc, Status& first_error) {
  for (Pending& p : pending) {
    const AdpResponse r = p.future.get();
    NoteStatus(r.status, first_error);
    // Fetch the parsed query (a plan-cache hit) to render relation names.
    std::shared_ptr<const adp::CachedPlan> plan;
    if (r.ok()) {
      AdpRequest probe;
      probe.query_text = p.query_text;
      plan = engine.PlanFor(probe);
    }
    std::cout << adp::net::FormatResponseLine(p.id, p.db_name, p.k, r,
                                              plan ? &plan->query : nullptr)
              << "\n";
    MaybeDumpTrace(tc, p.id, r.trace, r.queue_ms + r.total_ms);
  }
  pending.clear();
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 4;
  std::size_t min_shard_groups = 4;
  std::size_t min_shard_components = 4;
  std::int64_t coalesce_window_ms = 0;
  std::int64_t timeout_ms = 0;
  std::int64_t stream_batch_tuples = 256;
  std::int64_t max_queue_depth = 0;
  TraceConfig trace_cfg;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<int>(ParseFlagValue(arg, 10, /*min_value=*/1,
                                                /*max_value=*/4096));
    } else if (arg.rfind("--min-shard-groups=", 0) == 0) {
      min_shard_groups = static_cast<std::size_t>(
          ParseFlagValue(arg, 19, /*min_value=*/0, /*max_value=*/1 << 20));
    } else if (arg.rfind("--min-shard-components=", 0) == 0) {
      min_shard_components = static_cast<std::size_t>(
          ParseFlagValue(arg, 23, /*min_value=*/0, /*max_value=*/1 << 20));
    } else if (arg.rfind("--coalesce-window-ms=", 0) == 0) {
      coalesce_window_ms = ParseFlagValue(arg, 21, /*min_value=*/0,
                                          /*max_value=*/86'400'000);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      timeout_ms = ParseFlagValue(arg, 13, /*min_value=*/0,
                                  /*max_value=*/86'400'000);
    } else if (arg.rfind("--stream-batch-tuples=", 0) == 0) {
      stream_batch_tuples = ParseFlagValue(arg, 22, /*min_value=*/0,
                                           /*max_value=*/1 << 24);
    } else if (arg.rfind("--max-queue-depth=", 0) == 0) {
      max_queue_depth = ParseFlagValue(arg, 18, /*min_value=*/0,
                                       /*max_value=*/1 << 24);
    } else if (arg.rfind("--trace-dir=", 0) == 0) {
      trace_cfg.dir = arg.substr(12);
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      trace_cfg.slow_ms = ParseFlagValue(arg, 10, /*min_value=*/0,
                                         /*max_value=*/86'400'000);
    } else {
      path = arg;
    }
  }

  std::ifstream file;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
  }
  std::istream& in = path.empty() ? std::cin : file;

  adp::EngineConfig config;
  config.num_workers = workers;
  config.min_shard_groups = min_shard_groups;
  config.min_shard_components = min_shard_components;
  config.coalesce_window_ms = static_cast<double>(coalesce_window_ms);
  config.stream_batch_tuples = static_cast<std::size_t>(stream_batch_tuples);
  config.max_queue_depth = static_cast<std::size_t>(max_queue_depth);
  AdpEngine engine(config);
  std::unordered_map<std::string, adp::DbId> dbs;
  std::vector<Pending> pending;
  Status first_error;
  int next_id = 0;

  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> toks = adp::net::SplitWs(line);
    if (toks.empty()) continue;

    try {
      if (toks[0] == "DB") {
        adp::net::ParsedDb parsed = adp::net::ParseDbLine(toks);
        dbs[parsed.name] = engine.RegisterDatabase(std::move(parsed.db));
      } else if (toks[0] == "REQ") {
        adp::net::ParsedRequest parsed = adp::net::ParseRequestLine(
            toks, "REQ <db> <k> [+opt ...] <query>", timeout_ms);
        auto it = dbs.find(parsed.db_name);
        if (it == dbs.end()) {
          throw std::runtime_error("unknown database " + parsed.db_name);
        }
        parsed.req.db = it->second;
        parsed.req.collect_trace = trace_cfg.collect();
        Pending p{next_id++, parsed.db_name, parsed.query_text, parsed.req.k,
                  {}, {}};
        p.future = engine.Submit(std::move(parsed.req), &p.ticket);
        pending.push_back(std::move(p));
      } else if (toks[0] == "STREAM") {
        adp::net::ParsedRequest parsed = adp::net::ParseRequestLine(
            toks, "STREAM <db> <k> [+opt ...] <query>", timeout_ms);
        auto it = dbs.find(parsed.db_name);
        if (it == dbs.end()) {
          throw std::runtime_error("unknown database " + parsed.db_name);
        }
        parsed.req.db = it->second;
        parsed.req.collect_trace = trace_cfg.collect();
        RunStreamCommand(engine, next_id++, parsed.db_name,
                         std::move(parsed.req), trace_cfg, first_error);
      } else if (toks[0] == "TRACE") {
        if (toks.size() != 2 || (toks[1] != "on" && toks[1] != "off")) {
          throw std::runtime_error("TRACE <on|off>");
        }
        trace_cfg.on = toks[1] == "on";
        std::cout << "{\"trace\":\"" << toks[1] << "\"}\n";
      } else if (toks[0] == "CANCEL") {
        int cancelled = 0;
        for (Pending& p : pending) {
          if (p.ticket.Cancel()) ++cancelled;
        }
        std::cout << "{\"cancelled\":" << cancelled
                  << ",\"pending\":" << pending.size() << "}\n";
      } else if (toks[0] == "METRICS") {
        Drain(engine, pending, trace_cfg, first_error);
        engine.WriteMetricsText(std::cout);
      } else if (toks[0] == "STATS") {
        Drain(engine, pending, trace_cfg, first_error);
        std::cout << adp::net::FormatStatsJson(engine) << "\n";
      } else {
        throw std::runtime_error("unknown command " + toks[0]);
      }
    } catch (const std::exception& e) {
      std::cout << "{\"req\":null,\"status\":\"INVALID_ARGUMENT\",\"error\":\""
                << adp::net::JsonEscape(e.what()) << "\"}\n";
      if (first_error.ok()) {
        first_error = Status(StatusCode::kInvalidArgument, e.what());
      }
    }
  }
  Drain(engine, pending, trace_cfg, first_error);
  return StatusExitCode(first_error.code());
}
