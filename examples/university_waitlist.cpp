// Examples 1 & 2 from the paper's introduction: course waitlist management
// and semester-planning robustness at a university.
//
//   QWL(S,C)     :- Major(S,M), Req(M,C), NoSeat(C)
//     A student S is waitlisted for class C if S majors in M, M requires C,
//     and C has no free seats. The university wants the *fewest
//     interventions* (steer students off a major, relax a requirement, add
//     seats) that shrink the waitlist by a target amount — exactly
//     ADP(QWL, D, k).
//
//   QPossible(C) :- Teaches(P,C), NotOnLeave(P)
//     A course is offerable if some professor able to teach it is not on
//     leave. How few leave approvals / teaching withdrawals would wipe out
//     10% of the catalogue? The answer measures robustness.
//
// Both queries are NP-hard for ADP (the dichotomy explorer shows why), so
// ComputeADP returns high-quality greedy solutions.

#include <cstdio>

#include "dichotomy/is_ptime.h"
#include "dichotomy/structures.h"
#include "query/parser.h"
#include "solver/compute_adp.h"
#include "util/rng.h"

namespace {

using namespace adp;

// Builds a small synthetic university: students pick 1-2 majors, majors
// require 3-5 classes, and a fraction of classes are full.
Database MakeUniversity(const ConjunctiveQuery& q, int students, int majors,
                        int classes, std::uint64_t seed) {
  Rng rng(seed);
  Database db(q.num_relations());
  const int major_rel = q.FindRelation("Major");
  const int req_rel = q.FindRelation("Req");
  const int noseat_rel = q.FindRelation("NoSeat");
  for (int s = 0; s < students; ++s) {
    db.rel(major_rel).Add({s, static_cast<Value>(rng.Uniform(majors))});
    if (rng.UniformDouble() < 0.3) {
      db.rel(major_rel).Add({s, static_cast<Value>(rng.Uniform(majors))});
    }
  }
  for (int m = 0; m < majors; ++m) {
    const int reqs = 3 + static_cast<int>(rng.Uniform(3));
    for (int r = 0; r < reqs; ++r) {
      db.rel(req_rel).Add({m, static_cast<Value>(rng.Uniform(classes))});
    }
  }
  for (int c = 0; c < classes; ++c) {
    if (rng.UniformDouble() < 0.4) db.rel(noseat_rel).Add({c});
  }
  db.DedupAll();
  return db;
}

void RunWaitlist() {
  const ConjunctiveQuery q =
      ParseQuery("QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)");
  const Database db = MakeUniversity(q, 200, 8, 30, /*seed=*/2020);

  std::printf("== Example 1: shrinking the waitlist ==\n");
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("dichotomy: %s\n",
              IsPtime(q) ? "poly-time solvable"
                         : FindHardStructure(q).description.c_str());

  AdpOptions options;
  options.verify = true;
  AdpSolution probe = ComputeAdp(q, db, 1, options);
  std::printf("waitlist entries |QWL(D)|: %lld\n",
              static_cast<long long>(probe.output_count));

  for (double rho : {0.25, 0.5}) {
    const auto k =
        static_cast<std::int64_t>(rho * static_cast<double>(probe.output_count));
    const AdpSolution sol = ComputeAdp(q, db, k, options);
    int steer = 0, relax = 0, seats = 0;
    for (const TupleRef& t : sol.tuples) {
      if (q.relation(t.relation).name == "Major") ++steer;
      if (q.relation(t.relation).name == "Req") ++relax;
      if (q.relation(t.relation).name == "NoSeat") ++seats;
    }
    std::printf(
        "  cut %2.0f%% of the waitlist (k=%lld): %lld interventions "
        "(%d steers, %d requirement waivers, %d seat expansions), "
        "%lld entries actually removed\n",
        rho * 100, static_cast<long long>(k),
        static_cast<long long>(sol.cost), steer, relax, seats,
        static_cast<long long>(sol.removed_outputs));
  }
}

void RunRobustness() {
  const ConjunctiveQuery q =
      ParseQuery("QPossible(C) :- Teaches(P,C), NotOnLeave(P)");
  Rng rng(77);
  Database db(q.num_relations());
  const int professors = 40;
  const int courses = 60;
  for (int p = 0; p < professors; ++p) {
    const int load = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < load; ++i) {
      db.rel(0).Add({p, static_cast<Value>(rng.Uniform(courses))});
    }
    db.rel(1).Add({p});
  }
  db.DedupAll();

  std::printf("\n== Example 2: robustness of the course catalogue ==\n");
  std::printf("query: %s\n", q.ToString().c_str());

  AdpOptions options;
  options.verify = true;
  const AdpSolution probe = ComputeAdp(q, db, 1, options);
  std::printf("offerable courses: %lld\n",
              static_cast<long long>(probe.output_count));
  const std::int64_t k =
      std::max<std::int64_t>(1, probe.output_count / 10);
  const AdpSolution sol = ComputeAdp(q, db, k, options);
  std::printf(
      "  losing just %lld assignments/leaves would cancel %lld courses "
      "(10%% of the catalogue)%s\n",
      static_cast<long long>(sol.cost),
      static_cast<long long>(sol.removed_outputs),
      sol.cost <= 3 ? " — the catalogue is fragile!" : "");
}

}  // namespace

int main() {
  RunWaitlist();
  RunRobustness();
  return 0;
}
