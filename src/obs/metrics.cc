#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace adp::obs {

// --- HistogramSnapshot -------------------------------------------------------

double HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target observation, 1-based; p = 0 maps to the smallest.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The overflow bucket has no finite bound; report one more doubling
      // past the last finite bound so the value stays orderable/plottable.
      return i < bounds.size() ? bounds[i] : bounds.back() * 2.0;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back() * 2.0;
}

// --- Histogram ---------------------------------------------------------------

double Histogram::UpperBound(int i) {
  return kFirstUpperMs * std::ldexp(1.0, i);  // kFirstUpperMs * 2^i
}

int Histogram::BucketFor(double value_ms) {
  if (!(value_ms > kFirstUpperMs)) return 0;  // also catches <= 0 and NaN
  // Past the last finite bound (+inf included): the overflow bucket. Must
  // be decided before the cast below — float-to-int of ceil(log2(inf)) is
  // UB, and a finite value a few doublings past the last bound would
  // otherwise index beyond the overflow slot.
  if (!(value_ms <= UpperBound(kNumBuckets - 1))) return kNumBuckets;
  int idx = static_cast<int>(std::ceil(std::log2(value_ms / kFirstUpperMs)));
  // log2/ceil rounding can be off by one at exact powers of two; nudge to
  // restore the invariant UpperBound(idx-1) < value <= UpperBound(idx).
  while (idx > 0 && value_ms <= UpperBound(idx - 1)) --idx;
  while (idx < kNumBuckets && value_ms > UpperBound(idx)) ++idx;
  return idx;
}

void Histogram::Observe(double value_ms) {
  buckets_[BucketFor(value_ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clean = std::isnan(value_ms) ? 0.0 : value_ms;
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + clean),
      std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets + 1);
  snap.bounds.resize(kNumBuckets);
  std::uint64_t total = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    snap.buckets[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.bounds[static_cast<std::size_t>(i)] = UpperBound(i);
  }
  // Derive count from the buckets actually read: Observe's two updates are
  // not atomic together, and `count <= sum(buckets)` keeps Quantile's rank
  // walk in range.
  snap.count = total;
  snap.sum = Sum();
  return snap;
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(
    const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(name, std::move(inst)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return *GetOrCreate(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return *GetOrCreate(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return *GetOrCreate(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::kCounter:
        snap.counters[name] = inst.counter->Value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = inst.gauge->Value();
        break;
      case Kind::kHistogram:
        snap.histograms[name] = inst.histogram->Snapshot();
        break;
    }
  }
  return snap;
}

namespace {

/// Prometheus sample values: integers print exactly, doubles shortest-form.
void WriteValue(std::ostream& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out << static_cast<std::int64_t>(v);
  } else {
    out << v;
  }
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const MetricsSnapshot snap = Snapshot();
  for (const auto& [name, value] : snap.counters) {
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.buckets[i];
      out << name << "_bucket{le=\"";
      WriteValue(out, hist.bounds[i]);
      out << "\"} " << cumulative << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << hist.count << '\n';
    out << name << "_sum ";
    WriteValue(out, hist.sum);
    out << '\n';
    out << name << "_count " << hist.count << '\n';
  }
}

}  // namespace adp::obs
