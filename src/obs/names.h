// Central catalog of metric and span names emitted by the engine.
//
// Every metric registered with the engine's MetricsRegistry and every span
// name opened on a TraceSink must be a constant from this header: the CI
// docs job (tools/check_docs.py) runs a two-way drift check between the
// string literals declared here and the name catalog in
// docs/OBSERVABILITY.md, so an undocumented metric — or a documented one
// that no longer exists — fails the build.
//
// Naming conventions:
//   * metrics use Prometheus style: `adp_` prefix, snake_case, `_total`
//     suffix on monotonic counters, `_ms` suffix on latency histograms;
//   * spans use dotted lowercase: `adp.` prefix, with `adp.node.*` for
//     solver recursion nodes and `adp.shard.*` for sharded sub-solve fan-out.

#ifndef ADP_OBS_NAMES_H_
#define ADP_OBS_NAMES_H_

namespace adp::obs {

// --- Metrics: counters -------------------------------------------------------

inline constexpr char kMRequests[] = "adp_requests_total";
inline constexpr char kMFailures[] = "adp_failures_total";
inline constexpr char kMPlanCacheHits[] = "adp_plan_cache_hits_total";
inline constexpr char kMPlanCacheMisses[] = "adp_plan_cache_misses_total";
inline constexpr char kMBindingHits[] = "adp_binding_cache_hits_total";
inline constexpr char kMBindingMisses[] = "adp_binding_cache_misses_total";
inline constexpr char kMDedupHits[] = "adp_dedup_hits_total";
inline constexpr char kMCoalesceHits[] = "adp_coalesce_hits_total";
inline constexpr char kMCancelled[] = "adp_cancelled_total";
inline constexpr char kMDeadlineExpired[] = "adp_deadline_expired_total";
inline constexpr char kMShardedUniverse[] = "adp_sharded_universe_nodes_total";
inline constexpr char kMShardedDecompose[] =
    "adp_sharded_decompose_nodes_total";
inline constexpr char kMStreamsOpened[] = "adp_streams_opened_total";
inline constexpr char kMStreamItems[] = "adp_stream_items_total";
inline constexpr char kMStreamCancelled[] = "adp_stream_cancelled_total";
inline constexpr char kMTracesCollected[] = "adp_traces_collected_total";
inline constexpr char kMShed[] = "adp_shed_total";

// --- Metrics: network front door (src/net/server.cc) -------------------------

inline constexpr char kMNetConnections[] = "adp_net_connections_total";
inline constexpr char kMNetFramesIn[] = "adp_net_frames_in_total";
inline constexpr char kMNetFramesOut[] = "adp_net_frames_out_total";
inline constexpr char kMNetProtocolErrors[] = "adp_net_protocol_errors_total";

// --- Metrics: gauges ---------------------------------------------------------

inline constexpr char kMPlanCacheSize[] = "adp_plan_cache_size";
inline constexpr char kMDatabases[] = "adp_databases";
inline constexpr char kMNetOpenConnections[] = "adp_net_open_connections";
inline constexpr char kMNetOutboundQueueBytes[] =
    "adp_net_outbound_queue_bytes";

// --- Metrics: histograms (milliseconds) --------------------------------------

inline constexpr char kMRequestLatencyMs[] = "adp_request_latency_ms";
inline constexpr char kMQueueWaitMs[] = "adp_queue_wait_ms";
inline constexpr char kMSolveMs[] = "adp_solve_ms";
inline constexpr char kMStreamFirstItemMs[] = "adp_stream_first_item_ms";

// --- Metrics: histograms (dimensionless) -------------------------------------

// Observed at every network request admission: how many requests/streams
// that connection already had in flight. The spread shows whether load is a
// few greedy pipelining clients or many light ones.
inline constexpr char kMNetConnInflight[] = "adp_net_conn_inflight_requests";

// --- Spans: request pipeline -------------------------------------------------

inline constexpr char kSpanQueue[] = "adp.queue";
inline constexpr char kSpanRequest[] = "adp.request";
inline constexpr char kSpanPlan[] = "adp.plan";
inline constexpr char kSpanBind[] = "adp.bind";
inline constexpr char kSpanSolve[] = "adp.solve";
inline constexpr char kSpanNormalize[] = "adp.normalize";
inline constexpr char kSpanVerify[] = "adp.verify";
inline constexpr char kSpanWitnesses[] = "adp.witnesses";
inline constexpr char kSpanStream[] = "adp.stream";

// --- Spans: solver recursion -------------------------------------------------

inline constexpr char kSpanNodeBoolean[] = "adp.node.boolean";
inline constexpr char kSpanNodeSingleton[] = "adp.node.singleton";
inline constexpr char kSpanNodeUniverse[] = "adp.node.universe";
inline constexpr char kSpanNodeDecompose[] = "adp.node.decompose";
inline constexpr char kSpanNodeHeuristic[] = "adp.node.heuristic";
inline constexpr char kSpanShardUniverse[] = "adp.shard.universe";
inline constexpr char kSpanShardDecompose[] = "adp.shard.decompose";

}  // namespace adp::obs

#endif  // ADP_OBS_NAMES_H_
