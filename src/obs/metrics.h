// MetricsRegistry: thread-safe named counters, gauges, and log-bucketed
// latency histograms, with a Snapshot() API and Prometheus text exposition.
//
// The registry is the engine's one sink for numeric observability:
// EngineCounters is assembled as a *view* over it (engine.cc), the
// `adp_server` METRICS command serializes it, and the bench harness reads
// its quantiles into BENCH_engine.json. Metric names come from
// src/obs/names.h — the catalog CI drift-checks against
// docs/OBSERVABILITY.md.
//
// Concurrency model: instrument registration (GetCounter / GetGauge /
// GetHistogram) takes the registry mutex once per *name*; the returned
// reference is stable for the registry's lifetime, so hot paths hold a
// pointer and update lock-free (relaxed atomics). Updates are monotonic or
// idempotent, so torn snapshots cannot happen — a Snapshot() observes each
// instrument atomically, though not the set of instruments as one instant.

#ifndef ADP_OBS_METRICS_H_
#define ADP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace adp::obs {

/// Monotonic counter. Increment-only from instrumentation; RecordTotal
/// exists for mirroring an external monotonic source (e.g. a cache's own
/// hit count) into the registry without double counting.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Monotonic absolute update: the stored value only ever grows. Used to
  /// mirror counters whose source of truth lives outside the registry.
  void RecordTotal(std::uint64_t total) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < total && !value_.compare_exchange_weak(
                              cur, total, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (cache sizes, registered databases).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One histogram's state at a point in time, with quantile estimation.
struct HistogramSnapshot {
  /// bucket[i] counts observations v with bounds[i-1] < v <= bounds[i]
  /// (bucket 0: v <= bounds[0]); the last bucket is the overflow bucket
  /// and has no finite bound.
  std::vector<std::uint64_t> buckets;
  /// Upper bounds of the finite buckets; parallel to buckets[0..n-2].
  std::vector<double> bounds;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Upper bound of the bucket holding the ceil(p * count)-th smallest
  /// observation (p in [0, 1]). The true quantile q satisfies
  /// Quantile(p)/growth < q <= Quantile(p) for in-range observations —
  /// a one-bucket-factor guarantee, tested against a sorted-vector oracle
  /// in tests/obs_test.cc. 0 when the histogram is empty.
  double Quantile(double p) const;
};

/// Log-bucketed latency histogram (milliseconds). Fixed geometric bucket
/// boundaries: bucket i covers (kFirstUpperMs * 2^(i-1), kFirstUpperMs * 2^i]
/// for i >= 1 and [0, kFirstUpperMs] for i == 0, spanning 1 µs to ~9 days
/// before overflow. Observations are two relaxed atomic updates.
class Histogram {
 public:
  /// Upper bound of the first bucket: 1 microsecond, in milliseconds.
  static constexpr double kFirstUpperMs = 0.001;
  /// Finite buckets; bucket kNumBuckets is the overflow bucket.
  static constexpr int kNumBuckets = 40;

  /// Upper bound of finite bucket `i` (kFirstUpperMs * 2^i).
  static double UpperBound(int i);

  /// Index of the bucket `value_ms` falls in (<= 0 and NaN land in bucket
  /// 0; values beyond the last finite bound land in the overflow bucket).
  static int BucketFor(double value_ms);

  void Observe(double value_ms);

  std::uint64_t Count() const;
  double Sum() const;
  HistogramSnapshot Snapshot() const;

  /// Shorthand for Snapshot().Quantile(p).
  double Quantile(double p) const { return Snapshot().Quantile(p); }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  // Bits of a double, CAS-accumulated: std::atomic<double>::fetch_add is
  // not guaranteed lock-free everywhere, and the sum is cold-path-read.
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Full-registry snapshot: plain values, safe to read without the registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers `name` on first use; later calls return the same instrument.
  /// The reference is stable for the registry's lifetime. A name must keep
  /// one instrument kind — reusing it with a different kind throws
  /// std::logic_error (an instrumentation bug, not a runtime condition).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition (version 0.0.4): `# TYPE` comments, plain
  /// samples for counters/gauges, and cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count` for histograms.
  void WritePrometheus(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  // std::map: exporters walk it in name order, so output is deterministic.
  std::map<std::string, Instrument> instruments_;
};

}  // namespace adp::obs

#endif  // ADP_OBS_METRICS_H_
