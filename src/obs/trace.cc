#include "obs/trace.h"

#include <chrono>

namespace adp::obs {
namespace {

/// JSON string escaping for span names and tag keys/values.
void WriteJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void Trace::WriteJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    WriteJsonString(out, span.name);
    // Complete ("X") events; timestamps and durations in microseconds. An
    // open span (duration -1) is clamped to 0 so viewers still render it.
    out << ",\"cat\":\"adp\",\"ph\":\"X\",\"ts\":"
        << static_cast<std::int64_t>(span.start_ms * 1000.0) << ",\"dur\":"
        << static_cast<std::int64_t>(
               (span.duration_ms < 0 ? 0.0 : span.duration_ms) * 1000.0)
        << ",\"pid\":1,\"tid\":" << span.tid << ",\"args\":{\"id\":"
        << span.id << ",\"parent\":" << span.parent;
    for (const auto& [key, value] : span.tags) {
      out << ',';
      WriteJsonString(out, key);
      out << ':';
      WriteJsonString(out, value);
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"";
  if (dropped > 0) {
    out << ",\"otherData\":{\"dropped_spans\":\"" << dropped << "\"}";
  }
  out << '}';
}

TraceSink::TraceSink(std::size_t max_spans, double backdate_ms)
    : max_spans_(max_spans == 0 ? 1 : max_spans),
      origin_(Now() - std::chrono::duration_cast<MonotonicClock::duration>(
                          std::chrono::duration<double, std::milli>(
                              backdate_ms < 0 ? 0.0 : backdate_ms))) {}

int TraceSink::TidOfCallingThread() {
  const auto [it, inserted] = tids_.emplace(
      std::this_thread::get_id(), static_cast<int>(tids_.size()));
  return it->second;
}

std::uint32_t TraceSink::OpenSpan(std::string_view name,
                                  std::uint32_t parent) {
  const double start = MsBetween(origin_, Now());
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  TraceSpan span;
  span.id = static_cast<std::uint32_t>(spans_.size()) + 1;
  span.parent = parent;
  span.name.assign(name);
  span.tid = TidOfCallingThread();
  span.start_ms = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceSink::CloseSpan(std::uint32_t id) {
  const auto now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  TraceSpan& span = spans_[id - 1];
  if (span.duration_ms < 0) {
    span.duration_ms = MsBetween(origin_, now) - span.start_ms;
  }
}

void TraceSink::Annotate(std::uint32_t id, std::string_view key,
                         std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].tags.emplace_back(std::string(key), std::move(value));
}

void TraceSink::AddCompleteSpan(std::string_view name, std::uint32_t parent,
                                double start_ms, double duration_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  TraceSpan span;
  span.id = static_cast<std::uint32_t>(spans_.size()) + 1;
  span.parent = parent;
  span.name.assign(name);
  span.tid = TidOfCallingThread();
  span.start_ms = start_ms;
  span.duration_ms = duration_ms < 0 ? 0.0 : duration_ms;
  spans_.push_back(std::move(span));
}

Trace TraceSink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  Trace trace;
  trace.spans = std::move(spans_);
  trace.dropped = dropped_;
  spans_.clear();  // moved-from: make the empty state explicit
  dropped_ = 0;
  return trace;
}

}  // namespace adp::obs
