// Per-request span tracing: RAII Span objects recorded into a bounded
// TraceSink, exported as Chrome trace-event JSON (Perfetto-loadable).
//
// One TraceSink exists per traced request (AdpRequest::collect_trace); the
// engine threads a `TraceSink*` through AdpOptions::trace into the solver
// recursion, so every ComputeAdpNode dispatch — including sharded
// Universe/Decompose sub-solves running on other pool threads — opens one
// span, tagged with its case kind and fan-out facts. With tracing disabled
// the pointer is null and the entire layer costs one pointer compare per
// node (the same boundaries that poll the CancelToken).
//
// Spans carry parent links (span ids, 0 = root), so the recorded Trace is
// the solver tree plus the request pipeline around it. The sink is bounded:
// past kDefaultMaxSpans the excess spans are counted in Trace::dropped
// instead of recorded, so a pathological recursion cannot balloon a trace.
//
// Thread safety: OpenSpan/CloseSpan/Annotate take the sink mutex — fine at
// node granularity (a node does orders of magnitude more work than a lock).
// Span objects themselves are single-owner (movable, not copyable).

#ifndef ADP_OBS_TRACE_H_
#define ADP_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace adp::obs {

/// One recorded span. Times are milliseconds relative to the trace origin
/// (the sink's construction, backdated by queue wait for queued requests).
struct TraceSpan {
  std::uint32_t id = 0;      // 1-based; 0 is "no span"
  std::uint32_t parent = 0;  // parent span id; 0 = root
  std::string name;          // from src/obs/names.h
  int tid = 0;               // per-sink thread index (shard visualization)
  double start_ms = 0.0;
  double duration_ms = -1.0;  // -1 while open
  std::vector<std::pair<std::string, std::string>> tags;
};

/// A completed trace: the spans of one request, in open order.
struct Trace {
  std::vector<TraceSpan> spans;
  /// Spans not recorded because the sink's bound was hit.
  std::uint64_t dropped = 0;

  /// Chrome trace-event JSON ("X" complete events, µs timestamps): load the
  /// output in Perfetto / chrome://tracing directly. Span ids/parents and
  /// tags ride in each event's "args".
  void WriteJson(std::ostream& out) const;
};

/// The bounded per-request span collector.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultMaxSpans = 8192;

  /// `backdate_ms` shifts the trace origin into the past — the engine uses
  /// it to place a synthetic queue-wait span before the solve's first span.
  explicit TraceSink(std::size_t max_spans = kDefaultMaxSpans,
                     double backdate_ms = 0.0);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Records a span start; returns its id, or 0 when the sink is full (the
  /// span is then counted in Trace::dropped and every later call with this
  /// id is a no-op).
  std::uint32_t OpenSpan(std::string_view name, std::uint32_t parent);

  /// Stamps the span's duration. No-op for id 0 or an already-closed span.
  void CloseSpan(std::uint32_t id);

  /// Attaches a key/value tag to an open-or-closed span. No-op for id 0.
  void Annotate(std::uint32_t id, std::string_view key, std::string value);

  /// Records an already-measured span (used for the synthetic queue span,
  /// whose interval predates the sink's instrumentation window).
  void AddCompleteSpan(std::string_view name, std::uint32_t parent,
                       double start_ms, double duration_ms);

  /// Moves the recorded spans out as a Trace. Call after every Span into
  /// this sink has been closed; spans still open keep duration -1.
  Trace Take();

 private:
  int TidOfCallingThread();  // requires mu_

  const std::size_t max_spans_;
  const MonotonicClock::time_point origin_;

  std::mutex mu_;
  std::vector<TraceSpan> spans_;  // index = id - 1
  std::unordered_map<std::thread::id, int> tids_;
  std::uint64_t dropped_ = 0;
};

/// RAII span: opens on construction (no-op when `sink` is null — the
/// tracing-disabled fast path), closes on destruction or End().
class Span {
 public:
  /// Inert span: id() is 0, destruction is a no-op.
  Span() = default;

  Span(TraceSink* sink, std::string_view name, std::uint32_t parent = 0)
      : sink_(sink), id_(sink != nullptr ? sink->OpenSpan(name, parent) : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span(Span&& other) noexcept
      : sink_(other.sink_), id_(other.id_) {
    other.sink_ = nullptr;
    other.id_ = 0;
  }

  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      sink_ = other.sink_;
      id_ = other.id_;
      other.sink_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  ~Span() { End(); }

  /// Closes the span now (idempotent; implied by destruction). Useful when
  /// the trace must be Take()n before scope exit.
  void End() {
    if (sink_ != nullptr) {
      sink_->CloseSpan(id_);
      sink_ = nullptr;
      id_ = 0;
    }
  }

  /// This span's id, for parent links. 0 when inert or dropped.
  std::uint32_t id() const { return id_; }

  void Tag(std::string_view key, std::string value) {
    if (sink_ != nullptr) sink_->Annotate(id_, key, std::move(value));
  }

  void Tag(std::string_view key, std::int64_t value) {
    if (sink_ != nullptr) {
      sink_->Annotate(id_, key, std::to_string(value));
    }
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace adp::obs

#endif  // ADP_OBS_TRACE_H_
