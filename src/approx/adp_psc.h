// The Theorem 5 reduction: full-CQ ADP(Q, D, k) -> Partial Set Cover.
// Sets correspond to input tuples, elements to output tuples (full-join
// rows); a set contains the outputs its tuple's deletion destroys. Every
// element belongs to exactly p sets, so greedy gives O(log k) and
// primal-dual gives p-approximation.

#ifndef ADP_APPROX_ADP_PSC_H_
#define ADP_APPROX_ADP_PSC_H_

#include <cstdint>
#include <vector>

#include "approx/set_cover.h"
#include "query/query.h"
#include "relational/database.h"
#include "solver/solution.h"

namespace adp {

/// The materialized reduction with the tuple <-> set correspondence.
struct AdpPscReduction {
  PscInstance instance;
  std::vector<TupleRef> set_tuple;  // set id -> root tuple
};

/// Builds the PSC instance for a full CQ. Precondition: q.IsFull().
AdpPscReduction ReduceFullCqToPsc(const ConjunctiveQuery& q,
                                  const Database& db);

/// Which PSC algorithm to run on the reduction.
enum class PscAlgorithm { kGreedy, kPrimalDual };

/// Solves full-CQ ADP approximately through the PSC reduction and pulls the
/// chosen sets back to input tuples.
AdpSolution SolveFullCqViaPsc(const ConjunctiveQuery& q, const Database& db,
                              std::int64_t k, PscAlgorithm algorithm);

}  // namespace adp

#endif  // ADP_APPROX_ADP_PSC_H_
