#include "approx/set_cover.h"

#include <algorithm>
#include <limits>

namespace adp {
namespace {

// Residual coverage of a set given the covered mask.
std::int64_t Residual(const std::vector<std::int64_t>& set,
                      const std::vector<char>& covered) {
  std::int64_t r = 0;
  for (std::int64_t e : set) r += covered[e] ? 0 : 1;
  return r;
}

void MarkCovered(const std::vector<std::int64_t>& set,
                 std::vector<char>& covered, std::int64_t& count) {
  for (std::int64_t e : set) {
    if (!covered[e]) {
      covered[e] = 1;
      ++count;
    }
  }
}

}  // namespace

PscResult GreedyPartialSetCover(const PscInstance& instance, std::int64_t k) {
  PscResult result;
  std::vector<char> covered(instance.num_elements, 0);
  while (result.covered < k) {
    int best = -1;
    std::int64_t best_gain = 0;
    for (std::size_t s = 0; s < instance.sets.size(); ++s) {
      const std::int64_t gain = Residual(instance.sets[s], covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;  // nothing left to cover
    result.chosen.push_back(best);
    MarkCovered(instance.sets[best], covered, result.covered);
  }
  return result;
}

PscResult PrimalDualPartialSetCover(const PscInstance& instance,
                                    std::int64_t k) {
  // Unit-cost primal-dual: raise the duals of all uncovered elements
  // uniformly; sets become tight when the dual mass inside them reaches 1;
  // tight sets are bought. A final reverse pruning pass drops sets whose
  // unique contribution is not needed for the target. On full coverage this
  // is the classic f-approximation ([13]); on partial coverage the unit-cost
  // setting avoids the cost-guessing step of [13].
  PscResult result;
  const std::size_t m = instance.sets.size();
  std::vector<char> covered(instance.num_elements, 0);
  std::vector<char> bought(m, 0);
  // slack[s]: remaining dual mass before set s becomes tight, scaled by a
  // common denominator to stay integral: we advance in "epochs" where all
  // uncovered elements raise duals by 1/|uncovered|; instead track per-set
  // residual uncovered counts and fractional tightness via doubles.
  std::vector<double> tightness(m, 0.0);

  while (result.covered < k) {
    // Raise rate for set s = number of uncovered elements in s.
    double best_dt = std::numeric_limits<double>::infinity();
    int best_set = -1;
    for (std::size_t s = 0; s < m; ++s) {
      if (bought[s]) continue;
      const std::int64_t rate = Residual(instance.sets[s], covered);
      if (rate == 0) continue;
      const double dt = (1.0 - tightness[s]) / static_cast<double>(rate);
      if (dt < best_dt) {
        best_dt = dt;
        best_set = static_cast<int>(s);
      }
    }
    if (best_set < 0) break;  // nothing can cover more
    for (std::size_t s = 0; s < m; ++s) {
      if (bought[s]) continue;
      const std::int64_t rate = Residual(instance.sets[s], covered);
      tightness[s] += best_dt * static_cast<double>(rate);
    }
    bought[best_set] = 1;
    result.chosen.push_back(best_set);
    MarkCovered(instance.sets[best_set], covered, result.covered);
  }

  // Reverse pruning: drop sets whose removal keeps coverage >= k.
  std::vector<char> keep(result.chosen.size(), 1);
  for (std::size_t i = result.chosen.size(); i-- > 0;) {
    // Recompute coverage without set i (and without already-dropped sets).
    std::vector<char> cov(instance.num_elements, 0);
    std::int64_t cnt = 0;
    for (std::size_t jj = 0; jj < result.chosen.size(); ++jj) {
      if (!keep[jj] || jj == i) continue;
      MarkCovered(instance.sets[result.chosen[jj]], cov, cnt);
    }
    if (cnt >= k) keep[i] = 0;
  }
  PscResult pruned;
  std::vector<char> cov(instance.num_elements, 0);
  for (std::size_t i = 0; i < result.chosen.size(); ++i) {
    if (!keep[i]) continue;
    pruned.chosen.push_back(result.chosen[i]);
    MarkCovered(instance.sets[result.chosen[i]], cov, pruned.covered);
  }
  return pruned;
}

PscResult ExactPartialSetCover(const PscInstance& instance, std::int64_t k) {
  const int m = static_cast<int>(instance.sets.size());
  PscResult best;
  best.chosen.assign(instance.sets.size(), 0);  // sentinel: worse than any
  bool found = false;
  // Subsets in increasing popcount via sorted enumeration.
  for (int size = 0; size <= m && !found; ++size) {
    std::vector<int> combo(size);
    for (int i = 0; i < size; ++i) combo[i] = i;
    bool more = size <= m;
    while (more) {
      std::vector<char> cov(instance.num_elements, 0);
      std::int64_t cnt = 0;
      for (int s : combo) MarkCovered(instance.sets[s], cov, cnt);
      if (cnt >= k) {
        best.chosen.assign(combo.begin(), combo.end());
        best.covered = cnt;
        found = true;
        break;
      }
      // next combination
      more = false;
      for (int i = size - 1; i >= 0; --i) {
        if (combo[i] < m - (size - i)) {
          ++combo[i];
          for (int jj = i + 1; jj < size; ++jj) combo[jj] = combo[jj - 1] + 1;
          more = true;
          break;
        }
      }
    }
  }
  if (!found) best.chosen.clear();
  return best;
}

}  // namespace adp
