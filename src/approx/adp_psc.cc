#include "approx/adp_psc.h"

#include "relational/join.h"
#include "solver/profile.h"

namespace adp {

AdpPscReduction ReduceFullCqToPsc(const ConjunctiveQuery& q,
                                  const Database& db) {
  AdpPscReduction red;
  JoinResult join = FullJoin(q.body(), db, /*with_support=*/true);
  const std::size_t p = q.body().size();
  red.instance.num_elements = static_cast<std::int64_t>(join.NumRows());

  // One set per input tuple that participates in at least one row.
  std::vector<std::vector<int>> set_of(p);
  for (std::size_t r = 0; r < p; ++r) {
    set_of[r].assign(db.rel(r).size(), -1);
  }
  for (std::size_t row = 0; row < join.NumRows(); ++row) {
    for (std::size_t r = 0; r < p; ++r) {
      const TupleId t = join.SupportOf(row, r);
      if (set_of[r][t] < 0) {
        set_of[r][t] = static_cast<int>(red.instance.sets.size());
        red.instance.sets.emplace_back();
        const RelationInstance& inst = db.rel(r);
        red.set_tuple.push_back(
            TupleRef{inst.root_relation(), inst.OriginOf(t)});
      }
      red.instance.sets[set_of[r][t]].push_back(
          static_cast<std::int64_t>(row));
    }
  }
  return red;
}

AdpSolution SolveFullCqViaPsc(const ConjunctiveQuery& q, const Database& db,
                              std::int64_t k, PscAlgorithm algorithm) {
  AdpPscReduction red = ReduceFullCqToPsc(q, db);
  AdpSolution solution;
  solution.output_count = red.instance.num_elements;
  solution.exact = false;
  if (k > solution.output_count) {
    solution.feasible = false;
    solution.cost = kInfCost;
    return solution;
  }
  const PscResult res = algorithm == PscAlgorithm::kGreedy
                            ? GreedyPartialSetCover(red.instance, k)
                            : PrimalDualPartialSetCover(red.instance, k);
  for (int s : res.chosen) solution.tuples.push_back(red.set_tuple[s]);
  NormalizeTupleRefs(solution.tuples);
  solution.cost = static_cast<std::int64_t>(solution.tuples.size());
  solution.removed_outputs = res.covered;
  return solution;
}

}  // namespace adp
