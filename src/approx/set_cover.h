// Partial Set Cover (Definition 9) with the two approximation algorithms
// cited by Theorem 5 (Gandhi–Khuller–Srinivasan [13]):
//   * greedy — picks the set covering most uncovered elements until k'
//     elements are covered; O(log k) approximation;
//   * primal-dual — f-approximation where f is the maximum number of sets
//     any element belongs to (f == p for full-CQ ADP instances).

#ifndef ADP_APPROX_SET_COVER_H_
#define ADP_APPROX_SET_COVER_H_

#include <cstdint>
#include <vector>

namespace adp {

/// A PSC instance: `sets[s]` lists the element ids covered by set s.
struct PscInstance {
  std::int64_t num_elements = 0;
  std::vector<std::vector<std::int64_t>> sets;
};

/// Result: chosen set ids plus how many elements they cover.
struct PscResult {
  std::vector<int> chosen;
  std::int64_t covered = 0;
};

/// Greedy partial set cover: H_k-approximate.
/// Requires k <= num_elements coverable by the union of all sets.
PscResult GreedyPartialSetCover(const PscInstance& instance, std::int64_t k);

/// Primal-dual partial set cover: f-approximate, f = max element frequency.
/// Implementation follows the local-ratio view of [13]: repeatedly pick an
/// uncovered element, raise its dual until some containing set becomes
/// tight, add that set; prune over-picked sets at the end.
PscResult PrimalDualPartialSetCover(const PscInstance& instance,
                                    std::int64_t k);

/// Exact minimum by subset enumeration (testing oracle; exponential).
PscResult ExactPartialSetCover(const PscInstance& instance, std::int64_t k);

}  // namespace adp

#endif  // ADP_APPROX_SET_COVER_H_
