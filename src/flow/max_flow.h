// Max-flow / min-cut substrate for the Boolean (resilience) solver (§7.1).
//
// Dinic's algorithm on an explicit residual graph. The Boolean solver models
// tuple deletion as a unit-capacity *node* by splitting each tuple into an
// in/out pair; this module only deals in edge capacities.

#ifndef ADP_FLOW_MAX_FLOW_H_
#define ADP_FLOW_MAX_FLOW_H_

#include <cstdint>
#include <vector>

namespace adp {

/// Effectively-infinite capacity. Small enough that millions of saturated
/// infinite edges sum without overflowing 64 bits (a cut made entirely of
/// protected tuples can carry that many).
inline constexpr std::int64_t kInfCapacity = std::int64_t{1} << 40;

/// Dinic max-flow over a growable directed graph.
class MaxFlow {
 public:
  /// Creates a graph with `n` initial nodes (more can be added).
  explicit MaxFlow(int n = 0) : head_(n, -1) {}

  /// Adds a node; returns its id.
  int AddNode() {
    head_.push_back(-1);
    return static_cast<int>(head_.size()) - 1;
  }

  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Adds a directed edge u -> v with capacity `cap`; returns the edge id
  /// (its reverse edge is id ^ 1).
  int AddEdge(int u, int v, std::int64_t cap);

  /// Computes the max flow from `s` to `t`. May be called once per graph.
  std::int64_t Compute(int s, int t);

  /// After Compute: nodes reachable from `s` in the residual graph (the
  /// source side of a minimum cut).
  std::vector<char> SourceSide(int s) const;

  /// After Compute: true iff edge `e` crosses the cut (source side ->
  /// sink side) and is saturated.
  bool EdgeInCut(int e, const std::vector<char>& source_side) const;

 private:
  struct Edge {
    int to;
    int next;           // next edge id in the adjacency list
    std::int64_t cap;   // residual capacity
  };

  bool Bfs(int s, int t);
  std::int64_t Dfs(int u, int t, std::int64_t limit);

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace adp

#endif  // ADP_FLOW_MAX_FLOW_H_
