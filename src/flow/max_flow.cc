#include "flow/max_flow.h"

#include <algorithm>
#include <queue>

namespace adp {

int MaxFlow::AddEdge(int u, int v, std::int64_t cap) {
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{v, head_[u], cap});
  head_[u] = id;
  edges_.push_back(Edge{u, head_[v], 0});
  head_[v] = id + 1;
  return id;
}

bool MaxFlow::Bfs(int s, int t) {
  level_.assign(num_nodes(), -1);
  std::queue<int> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop();
    for (int e = head_[u]; e >= 0; e = edges_[e].next) {
      if (edges_[e].cap > 0 && level_[edges_[e].to] < 0) {
        level_[edges_[e].to] = level_[u] + 1;
        queue.push(edges_[e].to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlow::Dfs(int u, int t, std::int64_t limit) {
  if (u == t || limit == 0) return limit;
  std::int64_t pushed = 0;
  for (int& e = iter_[u]; e >= 0; e = edges_[e].next) {
    Edge& edge = edges_[e];
    if (edge.cap <= 0 || level_[edge.to] != level_[u] + 1) continue;
    std::int64_t got = Dfs(edge.to, t, std::min(limit - pushed, edge.cap));
    if (got > 0) {
      edge.cap -= got;
      edges_[e ^ 1].cap += got;
      pushed += got;
      if (pushed == limit) return pushed;
    }
  }
  level_[u] = -1;  // dead end; prune
  return pushed;
}

std::int64_t MaxFlow::Compute(int s, int t) {
  std::int64_t flow = 0;
  while (Bfs(s, t)) {
    iter_ = head_;
    flow += Dfs(s, t, kInfCapacity);
  }
  return flow;
}

std::vector<char> MaxFlow::SourceSide(int s) const {
  std::vector<char> reach(num_nodes(), 0);
  std::vector<int> stack = {s};
  reach[s] = 1;
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int e = head_[u]; e >= 0; e = edges_[e].next) {
      if (edges_[e].cap > 0 && !reach[edges_[e].to]) {
        reach[edges_[e].to] = 1;
        stack.push_back(edges_[e].to);
      }
    }
  }
  return reach;
}

bool MaxFlow::EdgeInCut(int e, const std::vector<char>& source_side) const {
  const Edge& fwd = edges_[e];
  const Edge& rev = edges_[e ^ 1];
  return source_side[rev.to] && !source_side[fwd.to] && fwd.cap == 0;
}

}  // namespace adp
