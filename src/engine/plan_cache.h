// Thread-safe, single-flight LRU cache of per-query static work.
//
// A CachedPlan bundles everything about an ADP request that does not depend
// on the data: the parsed query, the Lemma-12 residual query, the dichotomy
// verdict (IsPtime / triad witness / linearization), and the Algorithm-2
// dispatch plan. Building one costs a parse plus several query-complexity
// searches (the linearization alone is an exhaustive permutation search);
// serving one is a hash lookup.
//
// Concurrency: lookups share one mutex, but plan *construction* happens
// outside it. Concurrent requests for the same key are single-flighted —
// the first caller builds, the rest block on a shared_future — so a burst
// of identical queries does the static work exactly once.
//
// Entries are handed out as shared_ptr<const CachedPlan>, so holders —
// in-flight solves, and PreparedQuery handles, which pin their plan for
// the handle's whole lifetime — keep a plan alive across LRU eviction and
// Clear(); the cache only controls what future lookups can *find*.

#ifndef ADP_ENGINE_PLAN_CACHE_H_
#define ADP_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dichotomy/classification.h"
#include "query/query.h"
#include "solver/plan.h"

namespace adp {

/// Immutable per-query static work, shared across requests and threads.
struct CachedPlan {
  /// The parsed query, selections intact. Requests are solved against this
  /// instance, so a cached parse is reused verbatim.
  ConjunctiveQuery query;

  /// Residual query after Lemma-12 selection pushdown (== `query` when
  /// selection-free). The dispatch plan is rooted here, matching what
  /// ComputeAdp recurses on.
  ConjunctiveQuery residual;

  /// Dichotomy analysis of the residual query.
  DichotomyVerdict verdict;

  /// Algorithm-2 dispatch skeleton, fed to AdpOptions::plan.
  DispatchPlan dispatch;

  /// 64-bit canonical fingerprint of `query`.
  std::uint64_t fingerprint = 0;
};

class PlanCache {
 public:
  /// `capacity` bounds the number of cached plans (LRU eviction); 0 means
  /// unbounded.
  explicit PlanCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  using Builder = std::function<std::shared_ptr<const CachedPlan>()>;

  /// Returns the plan for `key`, invoking `builder` on a miss. Throws
  /// whatever `builder` throws (for every caller waiting on the same
  /// in-flight build); a failed build is not cached.
  /// `hit`, if non-null, receives whether the lookup was served from cache.
  std::shared_ptr<const CachedPlan> GetOrBuild(const std::string& key,
                                               const Builder& builder,
                                               bool* hit = nullptr);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Drops every cached plan (in-flight builds are unaffected; counters
  /// are kept).
  void Clear();

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const CachedPlan>> plan;
    std::list<std::string>::iterator lru_pos;
    /// Identity of the insertion, so a failed build only removes its own
    /// entry (the key may have been evicted and re-inserted meanwhile).
    std::uint64_t generation = 0;
  };

  void Touch(Entry& entry);  // requires mu_ held

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t next_generation_ = 0;
};

}  // namespace adp

#endif  // ADP_ENGINE_PLAN_CACHE_H_
