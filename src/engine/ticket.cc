#include "engine/ticket.h"

namespace adp {
namespace internal {

bool SolveCancelGroup::AddParticipant(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  if (solve_.Check() != CancelReason::kNone) return false;
  ++participants_;
  if (!deadline.has_value()) {
    // An open-ended participant: the solve must not expire under it.
    deadline_applies_ = false;
    solve_.ClearDeadline();
  } else if (deadline_applies_) {
    if (!latest_deadline_.has_value() || *deadline > *latest_deadline_) {
      latest_deadline_ = *deadline;
      solve_.SetDeadline(*latest_deadline_);
    }
  }
  return true;
}

void SolveCancelGroup::ParticipantCancelled(CancelReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  ++cancelled_;
  if (cancelled_ >= participants_) solve_.Cancel(reason);
}

bool Deliver(TicketImpl& t, AdpResponse resp) {
  if (resp.status.ok() &&
      t.own.Check() == CancelReason::kDeadlineExceeded) {
    // The result exists, but this request's own deadline passed first
    // (e.g. a deduped sibling without a deadline kept the solve running).
    AdpResponse expired;
    expired.status = Status(StatusCode::kDeadlineExceeded,
                            "deadline exceeded before the result arrived");
    expired.fingerprint = resp.fingerprint;
    expired.plan_cache_hit = resp.plan_cache_hit;
    expired.deduped = resp.deduped;
    resp = std::move(expired);
  }
  if (t.delivered.exchange(true, std::memory_order_acq_rel)) return false;
  if (t.counters != nullptr) {
    if (resp.status.code() == StatusCode::kCancelled) {
      t.counters->cancelled.fetch_add(1, std::memory_order_relaxed);
    } else if (resp.status.code() == StatusCode::kDeadlineExceeded) {
      t.counters->deadline_expired.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (t.done) {
    try {
      t.done(std::move(resp));
    } catch (...) {
      // A throwing user callback must not starve other waiters, break the
      // engine's never-throws contract, or kill a worker thread.
    }
  }
  return true;
}

}  // namespace internal

bool AdpTicket::done() const {
  return impl_ == nullptr ||
         impl_->delivered.load(std::memory_order_acquire);
}

bool AdpTicket::Cancel() {
  if (impl_ == nullptr) return false;
  // The own-token transition is the once-only gate: a second Cancel(), or a
  // Cancel() racing a deadline expiry, must not double-count the group
  // participant.
  if (!impl_->own.Cancel(CancelReason::kCancelled)) return false;
  AdpResponse resp;
  resp.status = Status(StatusCode::kCancelled, "cancelled by caller");
  const bool delivered = internal::Deliver(*impl_, std::move(resp));
  if (impl_->group != nullptr) {
    impl_->group->ParticipantCancelled(CancelReason::kCancelled);
  }
  return delivered;
}

}  // namespace adp
