#include "engine/engine.h"

#include <stdexcept>
#include <utility>

#include "query/fingerprint.h"
#include "query/parser.h"
#include "query/transform.h"
#include "solver/restrictions.h"
#include "util/stopwatch.h"

namespace adp {
namespace {

// Option knobs that influence Algorithm-2 classification (and hence the
// dispatch plan). Part of every plan-cache key so that requests with
// different knobs never share a plan built for the wrong configuration.
std::string OptionBits(const AdpOptions& options) {
  const bool restricted =
      options.restrictions != nullptr && !options.restrictions->Empty();
  std::string bits;
  bits += options.use_singleton ? 's' : '-';
  bits += options.universe_strategy == AdpOptions::UniverseStrategy::kOneByOne
              ? '1'
              : 'a';
  bits += restricted ? 'r' : '-';
  return bits;
}

/// The two cache identities of one request; solve is an extension of plan.
struct RequestKeys {
  std::string plan;   // plan-cache key
  std::string solve;  // single-flight dedup key
};

std::string PlanKey(const AdpRequest& req) {
  if (req.query.has_value()) {
    // The canonical key ignores relation names, but requests are solved
    // against plan->query and bound to named databases by relation name —
    // so names must be part of the key, or a structurally identical query
    // over different relations would silently bind the wrong instances.
    std::string key = "q|" + OptionBits(req.options);
    for (int i = 0; i < req.query->num_relations(); ++i) {
      key += '|';
      key += req.query->relation(i).name;
    }
    return key + "|" + CanonicalQueryKey(*req.query);
  }
  return "t|" + OptionBits(req.options) + "|" + req.query_text;
}

// Remaining knobs that influence the *solution* (not just the plan), so two
// requests may share one solve only when these agree too.
std::string SolveBits(const AdpOptions& options) {
  std::string bits;
  bits += options.heuristic == AdpOptions::Heuristic::kDrastic ? 'd' : 'g';
  bits += options.counting_only ? 'c' : '-';
  bits += options.verify ? 'v' : '-';
  bits += options.universe_convex_merge ? 'm' : '-';
  switch (options.decompose_strategy) {
    case AdpOptions::DecomposeStrategy::kImprovedDP: bits += 'i'; break;
    case AdpOptions::DecomposeStrategy::kPairwiseNaive: bits += 'p'; break;
    case AdpOptions::DecomposeStrategy::kFullEnumeration: bits += 'f'; break;
  }
  return bits;
}

// Single-flight identity of the data-dependent work: plan key (query
// structure + relation names + classification knobs) plus database, target,
// and solve knobs. Restriction sets are compared by pointer — distinct
// pointers never dedup, which is conservative but always sound.
// Both keys are derived in one pass so the request path formats the plan
// key exactly once.
RequestKeys MakeKeys(const AdpRequest& req) {
  RequestKeys keys;
  keys.plan = PlanKey(req);
  std::string& key = keys.solve;
  key = keys.plan;
  key += "|d";
  key += std::to_string(req.db);
  key += "|k";
  key += std::to_string(req.k);
  key += '|';
  key += SolveBits(req.options);
  if (req.options.restrictions != nullptr &&
      !req.options.restrictions->Empty()) {
    key += "|r";
    key += std::to_string(
        reinterpret_cast<std::uintptr_t>(req.options.restrictions));
  }
  return keys;
}

std::shared_ptr<const CachedPlan> BuildPlan(const AdpRequest& req) {
  auto plan = std::make_shared<CachedPlan>();
  plan->query = req.query.has_value() ? *req.query : ParseQuery(req.query_text);
  plan->residual =
      plan->query.HasSelections()
          ? RemoveAttributes(plan->query, plan->query.SelectedAttrs())
          : plan->query;
  plan->dispatch = BuildDispatchPlan(plan->residual, req.options);
  // The dispatch build already ran the linearization search for a boolean
  // residual; reuse its result instead of searching again.
  const PlanEntry* root = plan->dispatch.Find(plan->residual);
  plan->verdict = ClassifyResidual(
      plan->residual, root != nullptr && root->op == AdpCase::kBoolean
                          ? root->linear_order
                          : std::nullopt);
  plan->fingerprint = QueryFingerprint(plan->query);
  return plan;
}

}  // namespace

AdpEngine::AdpEngine(const EngineConfig& config)
    : config_(config),
      plan_cache_(config.plan_cache_capacity),
      pool_(config.num_workers) {
  if (config_.min_shard_groups > 0) {
    sharding_.min_groups = config_.min_shard_groups;
    sharding_.run_all = [this](std::vector<std::function<void()>> tasks) {
      pool_.RunAll(std::move(tasks));
    };
  }
}

AdpEngine::~AdpEngine() = default;

DbId AdpEngine::RegisterDatabase(NamedDatabase db) {
  if (!db.relation_names.empty() &&
      db.relation_names.size() != db.db.num_relations()) {
    throw std::invalid_argument(
        "RegisterDatabase: relation_names must parallel the instances");
  }
  auto shared = std::make_shared<const NamedDatabase>(std::move(db));
  std::lock_guard<std::mutex> lock(mu_);
  databases_.push_back(std::move(shared));
  return static_cast<DbId>(databases_.size()) - 1;
}

DbId AdpEngine::RegisterDatabase(Database db) {
  return RegisterDatabase(NamedDatabase{{}, std::move(db)});
}

std::shared_ptr<const NamedDatabase> AdpEngine::database(DbId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= databases_.size()) {
    return nullptr;
  }
  return databases_[static_cast<std::size_t>(id)];
}

std::shared_ptr<const CachedPlan> AdpEngine::GetPlan(
    const AdpRequest& req, const std::string& plan_key, bool* hit) {
  return plan_cache_.GetOrBuild(
      plan_key, [&req] { return BuildPlan(req); }, hit);
}

std::shared_ptr<const Database> AdpEngine::BindDatabase(
    const std::shared_ptr<const NamedDatabase>& named, const CachedPlan& plan) {
  const ConjunctiveQuery& q = plan.query;
  if (named->relation_names.empty()) {
    // Positional database: shared as-is, no copy.
    if (named->db.num_relations() !=
        static_cast<std::size_t>(q.num_relations())) {
      throw std::runtime_error(
          "positional database has " +
          std::to_string(named->db.num_relations()) + " relations, query has " +
          std::to_string(q.num_relations()));
    }
    return std::shared_ptr<const Database>(named, &named->db);
  }

  // Named database: bind by relation name, memoized per (database, body
  // name sequence) so batches share one bound copy.
  std::string key;
  key.reserve(32);
  key += std::to_string(reinterpret_cast<std::uintptr_t>(named.get()));
  for (int i = 0; i < q.num_relations(); ++i) {
    key += '|';
    key += q.relation(i).name;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bindings_.find(key);
    if (it != bindings_.end()) {
      ++binding_hits_;
      return it->second;
    }
    ++binding_misses_;
  }

  auto bound = std::make_shared<Database>(
      static_cast<std::size_t>(q.num_relations()));
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::string& name = q.relation(i).name;
    bool found = false;
    for (std::size_t j = 0; j < named->relation_names.size(); ++j) {
      if (named->relation_names[j] == name) {
        RelationInstance inst = named->db.rel(j);
        inst.set_root_relation(i);
        bound->rel(static_cast<std::size_t>(i)) = std::move(inst);
        found = true;
        break;
      }
    }
    if (!found) {
      // Binding an empty instance here would silently turn a relation-name
      // typo into a wrong (usually zero-output) answer.
      throw std::runtime_error("database has no relation named '" + name +
                               "' (query body atom " + std::to_string(i) +
                               ")");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (config_.binding_cache_capacity != 0 &&
      bindings_.size() >= config_.binding_cache_capacity) {
    bindings_.clear();  // coarse but rare; entries are cheap to rebuild
  }
  auto [it, inserted] = bindings_.emplace(key, std::move(bound));
  return it->second;
}

AdpResponse AdpEngine::SolveNow(const AdpRequest& req,
                                const std::string& plan_key) {
  AdpResponse resp;
  Stopwatch total;
  try {
    Stopwatch plan_sw;
    bool hit = false;
    const std::shared_ptr<const CachedPlan> plan = GetPlan(req, plan_key, &hit);
    resp.plan_ms = plan_sw.ElapsedMs();
    resp.plan_cache_hit = hit;
    resp.fingerprint = plan->fingerprint;

    const std::shared_ptr<const NamedDatabase> named = database(req.db);
    if (named == nullptr) {
      throw std::runtime_error("unknown database id " +
                               std::to_string(req.db));
    }
    const std::shared_ptr<const Database> bound = BindDatabase(named, *plan);

    AdpOptions options = req.options;
    options.plan = &plan->dispatch;
    options.stats = &resp.stats;
    options.parallelism = sharding_.run_all ? &sharding_ : nullptr;
    Stopwatch solve_sw;
    resp.solution = ComputeAdp(plan->query, *bound, req.k, options);
    resp.solve_ms = solve_sw.ElapsedMs();
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.error = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++failures_;
  }
  resp.total_ms = total.ElapsedMs();
  return resp;
}

std::shared_ptr<AdpEngine::InflightSolve> AdpEngine::Lead(
    const std::string& key, std::function<void(const AdpResponse&)> on_done) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;  // every request passes through Lead exactly once
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    if (on_done != nullptr) {
      ++dedup_hits_;
      it->second->waiters.push_back(std::move(on_done));
    }
    return nullptr;
  }
  auto state = std::make_shared<InflightSolve>();
  inflight_.emplace(key, state);
  return state;
}

void AdpEngine::PublishInflight(const std::string& key,
                                const std::shared_ptr<InflightSolve>& state,
                                const AdpResponse& resp) {
  std::vector<std::function<void(const AdpResponse&)>> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == state) inflight_.erase(it);
    waiters.swap(state->waiters);
  }
  if (waiters.empty()) return;
  AdpResponse shared = resp;
  shared.deduped = true;
  for (const auto& w : waiters) {
    try {
      w(shared);
    } catch (...) {
      // A throwing user callback must not starve the remaining waiters,
      // break Execute's never-throws contract, or kill a pool worker.
    }
  }
}

AdpResponse AdpEngine::Execute(const AdpRequest& req) {
  // The synchronous path leads but never follows: an identical in-flight
  // leader may still be *queued* behind arbitrary pool work, so joining it
  // would couple this call's latency to queue depth (and from a worker
  // thread could deadlock outright). Solving immediately keeps Execute's
  // one-solve latency promise; async arrivals may still join this solve.
  const RequestKeys keys = MakeKeys(req);
  const std::shared_ptr<InflightSolve> lead = Lead(keys.solve, nullptr);
  AdpResponse resp;
  try {
    resp = SolveNow(req, keys.plan);
  } catch (...) {
    // SolveNow absorbs std::exception itself; anything else must still
    // retire the in-flight entry (followers would hang forever on a
    // leaked leader) and keep Execute's never-throws contract.
    resp.ok = false;
    resp.error = "internal error: solve terminated abnormally";
    std::lock_guard<std::mutex> lock(mu_);
    ++failures_;
  }
  if (lead != nullptr) PublishInflight(keys.solve, lead, resp);
  return resp;
}

std::future<AdpResponse> AdpEngine::Submit(AdpRequest req) {
  // Future-flavored SubmitAsync: same dedup, same nested-submission
  // inlining (a worker-thread caller gets a ready future back).
  auto promise = std::make_shared<std::promise<AdpResponse>>();
  std::future<AdpResponse> fut = promise->get_future();
  SubmitAsync(std::move(req),
              [promise](AdpResponse r) { promise->set_value(std::move(r)); });
  return fut;
}

void AdpEngine::SubmitAsync(AdpRequest req,
                            std::function<void(AdpResponse)> done) {
  if (pool_.IsWorkerThread()) {
    AdpResponse resp = Execute(req);
    try {
      done(std::move(resp));
    } catch (...) {
      // See PublishInflight: callbacks must not take the engine down.
    }
    return;
  }
  auto shared_done =
      std::make_shared<std::function<void(AdpResponse)>>(std::move(done));
  const RequestKeys keys = MakeKeys(req);
  const std::shared_ptr<InflightSolve> lead = Lead(
      keys.solve, [shared_done](const AdpResponse& r) { (*shared_done)(r); });
  if (lead == nullptr) return;
  // From here the in-flight entry MUST be retired on every path — a leaked
  // leader would hang all future identical requests — so both the solve
  // and the enqueue are exception-proofed.
  try {
    pool_.Submit([this, req = std::move(req), keys, lead, shared_done] {
      AdpResponse resp;
      try {
        resp = SolveNow(req, keys.plan);
      } catch (...) {
        resp.ok = false;
        resp.error = "internal error: solve terminated abnormally";
        std::lock_guard<std::mutex> lock(mu_);
        ++failures_;
      }
      PublishInflight(keys.solve, lead, resp);
      try {
        (*shared_done)(std::move(resp));
      } catch (...) {
        // See PublishInflight: callbacks must not take the engine down.
      }
    });
  } catch (...) {
    // The callback is the sole failure signal (`done` fires exactly once);
    // rethrowing too would double-report the submission.
    AdpResponse failure;
    failure.error = "internal error: failed to enqueue request";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++failures_;
    }
    PublishInflight(keys.solve, lead, failure);
    try {
      (*shared_done)(std::move(failure));
    } catch (...) {
    }
  }
}

void AdpEngine::SubmitToQueue(AdpRequest req, CompletionQueue& cq,
                              std::uint64_t tag) {
  cq.AddPending();
  SubmitAsync(std::move(req), [&cq, tag](AdpResponse resp) {
    cq.Push(Completion{tag, std::move(resp)});
  });
}

std::vector<AdpResponse> AdpEngine::ExecuteBatch(
    std::vector<AdpRequest> reqs) {
  std::vector<std::future<AdpResponse>> futures;
  futures.reserve(reqs.size());
  for (AdpRequest& req : reqs) futures.push_back(Submit(std::move(req)));
  std::vector<AdpResponse> out;
  out.reserve(futures.size());
  for (auto& fut : futures) out.push_back(fut.get());
  return out;
}

EngineCounters AdpEngine::counters() const {
  EngineCounters c;
  c.plan_hits = plan_cache_.hits();
  c.plan_misses = plan_cache_.misses();
  c.plan_cache_size = plan_cache_.size();
  std::lock_guard<std::mutex> lock(mu_);
  c.requests = requests_;
  c.failures = failures_;
  c.binding_hits = binding_hits_;
  c.binding_misses = binding_misses_;
  c.dedup_hits = dedup_hits_;
  c.databases = databases_.size();
  return c;
}

void AdpEngine::ClearCaches() {
  plan_cache_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  bindings_.clear();
}

std::shared_ptr<const CachedPlan> AdpEngine::PlanFor(const AdpRequest& req,
                                                     std::string* error) {
  try {
    return GetPlan(req, PlanKey(req), nullptr);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
}

}  // namespace adp
