#include "engine/engine.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "query/fingerprint.h"
#include "query/parser.h"
#include "query/transform.h"
#include "relational/join.h"
#include "solver/restrictions.h"
#include "util/stopwatch.h"

namespace adp {
namespace {

/// Recent-results ring capacity (coalescing admission). Deliberately tiny:
/// the window is short, and a probe is a linear scan under the engine lock.
constexpr std::size_t kRecentResultsCapacity = 64;

/// Stream buffer capacity, in items. Small on purpose: the buffer exists to
/// decouple producer and consumer, not to hold the result — backpressure
/// (a blocked producer) is the intended steady state for slow consumers.
constexpr std::size_t kStreamBufferItems = 8;

/// Engine-internal failure carrying the Status code the response should
/// surface. Thrown by the resolution steps (database lookup, binding) and
/// mapped back to a Status in SolveNow's catch ladder.
class EngineError : public std::runtime_error {
 public:
  EngineError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

AdpResponse FailureResponse(Status status) {
  AdpResponse resp;
  resp.status = std::move(status);
  return resp;
}

AdpResponse ShutdownResponse() {
  return FailureResponse(Status(StatusCode::kShutdown, "engine is shut down"));
}

/// Response for a request shed at admission: the pool backlog exceeded
/// EngineConfig::max_queue_depth, so enqueueing it would only add latency
/// for everyone. Callers should back off and retry.
AdpResponse OverloadedResponse() {
  return FailureResponse(Status(
      StatusCode::kOverloaded,
      "request shed: worker queue exceeds EngineConfig::max_queue_depth"));
}

/// Response for a request dropped before its solve ever ran (cancelled or
/// expired while queued).
AdpResponse DroppedResponse(CancelReason reason) {
  return FailureResponse(
      reason == CancelReason::kDeadlineExceeded
          ? Status(StatusCode::kDeadlineExceeded,
                   "deadline expired before the solve started")
          : Status(StatusCode::kCancelled,
                   "cancelled before the solve started"));
}

// Option knobs that influence Algorithm-2 classification (and hence the
// dispatch plan). Part of every plan-cache key so that requests with
// different knobs never share a plan built for the wrong configuration.
std::string OptionBits(const AdpOptions& options) {
  const bool restricted =
      options.restrictions != nullptr && !options.restrictions->Empty();
  std::string bits;
  bits += options.use_singleton ? 's' : '-';
  bits += options.universe_strategy == AdpOptions::UniverseStrategy::kOneByOne
              ? '1'
              : 'a';
  bits += restricted ? 'r' : '-';
  return bits;
}

std::string PlanKey(const AdpRequest& req) {
  if (req.query.has_value()) {
    // The canonical key ignores relation names, but requests are solved
    // against plan->query and bound to named databases by relation name —
    // so names must be part of the key, or a structurally identical query
    // over different relations would silently bind the wrong instances.
    std::string key = "q|" + OptionBits(req.options);
    for (int i = 0; i < req.query->num_relations(); ++i) {
      key += '|';
      key += req.query->relation(i).name;
    }
    return key + "|" + CanonicalQueryKey(*req.query);
  }
  return "t|" + OptionBits(req.options) + "|" + req.query_text;
}

// Remaining knobs that influence the *solution* (not just the plan), so two
// requests may share one solve only when these agree too.
std::string SolveBits(const AdpOptions& options) {
  std::string bits;
  bits += options.heuristic == AdpOptions::Heuristic::kDrastic ? 'd' : 'g';
  bits += options.counting_only ? 'c' : '-';
  bits += options.verify ? 'v' : '-';
  bits += options.universe_convex_merge ? 'm' : '-';
  switch (options.decompose_strategy) {
    case AdpOptions::DecomposeStrategy::kImprovedDP: bits += 'i'; break;
    case AdpOptions::DecomposeStrategy::kPairwiseNaive: bits += 'p'; break;
    case AdpOptions::DecomposeStrategy::kFullEnumeration: bits += 'f'; break;
  }
  return bits;
}

std::shared_ptr<const CachedPlan> BuildPlan(const AdpRequest& req) {
  auto plan = std::make_shared<CachedPlan>();
  plan->query = req.query.has_value() ? *req.query : ParseQuery(req.query_text);
  plan->residual =
      plan->query.HasSelections()
          ? RemoveAttributes(plan->query, plan->query.SelectedAttrs())
          : plan->query;
  plan->dispatch = BuildDispatchPlan(plan->residual, req.options);
  // The dispatch build already ran the linearization search for a boolean
  // residual; reuse its result instead of searching again.
  const PlanEntry* root = plan->dispatch.Find(plan->residual);
  plan->verdict = ClassifyResidual(
      plan->residual, root != nullptr && root->op == AdpCase::kBoolean
                          ? root->linear_order
                          : std::nullopt);
  plan->fingerprint = QueryFingerprint(plan->query);
  return plan;
}

std::string PointerKey(const void* p) {
  return std::to_string(reinterpret_cast<std::uintptr_t>(p));
}

/// Maps the exception currently being handled (call only from a catch
/// block) to the Status its response / stream terminal should carry.
/// Shared by SolveNow and RunStream so the two catch ladders cannot
/// drift. `shutdown_requested` upgrades a plain cancellation to kShutdown
/// (stream producers torn down by Shutdown()). Sets *genuine_failure for
/// the outcomes EngineCounters::failures counts (cancellation/expiry are
/// tracked separately).
Status MapSolveException(bool shutdown_requested, bool* genuine_failure) {
  *genuine_failure = true;
  try {
    throw;
  } catch (const CancelledError& e) {
    *genuine_failure = false;
    return Status(e.reason() == CancelReason::kDeadlineExceeded
                      ? StatusCode::kDeadlineExceeded
                      : (shutdown_requested ? StatusCode::kShutdown
                                            : StatusCode::kCancelled),
                  e.what());
  } catch (const ParseError& e) {
    return Status(StatusCode::kParseError, e.what());
  } catch (const EngineError& e) {
    return Status(e.code(), e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status(StatusCode::kInternal, "solve terminated abnormally");
  }
}

}  // namespace

// --- PreparedQuery -----------------------------------------------------------

Status PreparedQuery::Bind(DbId db) {
  if (engine_ == nullptr || plan_ == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "Bind on a default-constructed PreparedQuery");
  }
  return engine_->BindPrepared(*this, db);
}

// --- AdpEngine ---------------------------------------------------------------

AdpEngine::AdpEngine(const EngineConfig& config)
    : config_(config),
      plan_cache_(config.plan_cache_capacity),
      ticket_counters_(std::make_shared<internal::TicketCounters>()),
      stream_counters_(std::make_shared<internal::StreamCounters>()),
      registry_(std::make_shared<obs::MetricsRegistry>()),
      pool_(config.num_workers) {
  // Pre-register the engine's instruments once; the hot paths then update
  // through these stable pointers, lock-free.
  requests_ = &registry_->GetCounter(obs::kMRequests);
  failures_ = &registry_->GetCounter(obs::kMFailures);
  binding_hits_ = &registry_->GetCounter(obs::kMBindingHits);
  binding_misses_ = &registry_->GetCounter(obs::kMBindingMisses);
  dedup_hits_ = &registry_->GetCounter(obs::kMDedupHits);
  coalesce_hits_ = &registry_->GetCounter(obs::kMCoalesceHits);
  shed_ = &registry_->GetCounter(obs::kMShed);
  sharded_universe_nodes_ = &registry_->GetCounter(obs::kMShardedUniverse);
  sharded_decompose_nodes_ = &registry_->GetCounter(obs::kMShardedDecompose);
  traces_collected_ = &registry_->GetCounter(obs::kMTracesCollected);
  request_latency_ms_ = &registry_->GetHistogram(obs::kMRequestLatencyMs);
  queue_wait_ms_ = &registry_->GetHistogram(obs::kMQueueWaitMs);
  solve_ms_ = &registry_->GetHistogram(obs::kMSolveMs);
  stream_first_item_ms_ = &registry_->GetHistogram(obs::kMStreamFirstItemMs);
  // Externally-sourced instruments (mirrored by MirrorExternalMetrics) are
  // registered up front too, so exporters see them at zero rather than
  // absent before the first mirror.
  registry_->GetCounter(obs::kMPlanCacheHits);
  registry_->GetCounter(obs::kMPlanCacheMisses);
  registry_->GetCounter(obs::kMCancelled);
  registry_->GetCounter(obs::kMDeadlineExpired);
  registry_->GetCounter(obs::kMStreamsOpened);
  registry_->GetCounter(obs::kMStreamItems);
  registry_->GetCounter(obs::kMStreamCancelled);
  registry_->GetGauge(obs::kMPlanCacheSize);
  registry_->GetGauge(obs::kMDatabases);
  if (config_.min_shard_groups > 0 || config_.min_shard_components > 0) {
    // A zero threshold disables that axis inside the solver (see
    // Parallelism); run_all is bound once for whichever axes are live.
    sharding_.min_groups = config_.min_shard_groups;
    sharding_.min_components = config_.min_shard_components;
    sharding_.run_all = [this](std::vector<std::function<void()>> tasks) {
      pool_.RunAll(std::move(tasks));
    };
  }
}

AdpEngine::~AdpEngine() {
  // A stream whose consumer stopped draining would leave its producer
  // blocked on the buffer forever, and the pool (last member) joins its
  // workers below — cancel open streams first so every producer can finish.
  CancelOpenStreams();
}

DbId AdpEngine::RegisterDatabase(NamedDatabase db) {
  if (!db.relation_names.empty() &&
      db.relation_names.size() != db.db.num_relations()) {
    throw std::invalid_argument(
        "RegisterDatabase: relation_names must parallel the instances");
  }
  auto shared = std::make_shared<const NamedDatabase>(std::move(db));
  std::lock_guard<std::mutex> lock(mu_);
  const DbId id = next_db_id_++;
  databases_.emplace(id, std::move(shared));
  return id;
}

DbId AdpEngine::RegisterDatabase(Database db) {
  return RegisterDatabase(NamedDatabase{{}, std::move(db)});
}

std::shared_ptr<const NamedDatabase> AdpEngine::database(DbId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = databases_.find(id);
  return it == databases_.end() ? nullptr : it->second;
}

bool AdpEngine::UnregisterDatabase(DbId id) {
  std::shared_ptr<const NamedDatabase> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = databases_.find(id);
    if (it == databases_.end()) return false;
    victim = std::move(it->second);
    databases_.erase(it);
    // The binding cache keys on the NamedDatabase's heap address; a later
    // registration may land at the same address, so this instance's
    // entries must go now or they could serve another database's data.
    const std::string pk = PointerKey(victim.get());
    const std::string prefix = pk + '|';
    for (auto bit = bindings_.begin(); bit != bindings_.end();) {
      if (bit->first == pk ||
          bit->first.compare(0, prefix.size(), prefix) == 0) {
        bit = bindings_.erase(bit);
      } else {
        ++bit;
      }
    }
  }
  // `victim` releases outside the lock; requests still holding the
  // shared_ptr keep the data alive until they finish.
  return true;
}

void AdpEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  CancelOpenStreams();
}

void AdpEngine::CancelOpenStreams() {
  std::vector<std::shared_ptr<internal::StreamState>> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& weak : streams_) {
      if (auto state = weak.lock()) open.push_back(std::move(state));
    }
    streams_.clear();
  }
  for (const auto& state : open) {
    // The flag makes the producer's CancelledError surface as kShutdown
    // rather than kCancelled (a deadline that already fired keeps its
    // kDeadlineExceeded reason).
    state->NoteShutdown();
    state->Cancel();
  }
}

bool AdpEngine::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

// --- Keys and admission ------------------------------------------------------

AdpEngine::RequestKeys AdpEngine::KeysFor(const AdpRequest& req) const {
  RequestKeys keys;
  if (req.prepared.valid()) {
    // Prepared hot path: the dedup key is built from pinned-object
    // identities — no canonical-key derivation, no query-text hashing.
    keys.solve = req.prepared.base_key_;
    if (!req.prepared.bound()) {
      keys.solve += "|d";
      keys.solve += std::to_string(req.db);
    }
  } else {
    keys.plan = PlanKey(req);
    keys.solve = keys.plan;
    keys.solve += "|d";
    keys.solve += std::to_string(req.db);
  }
  std::string& key = keys.solve;
  key += "|k";
  key += std::to_string(req.k);
  key += '|';
  key += SolveBits(req.options);
  // Traced requests must never share a solve with untraced ones: a shared
  // response could carry a trace its joiners did not ask for — or worse,
  // none for the one that did.
  if (req.collect_trace) key += "|T";
  // Restriction sets are compared by pointer — distinct pointers never
  // dedup, which is conservative but always sound.
  if (req.options.restrictions != nullptr &&
      !req.options.restrictions->Empty()) {
    key += "|r";
    key += PointerKey(req.options.restrictions);
  }
  return keys;
}

Status AdpEngine::ValidatePrepared(const AdpRequest& req) const {
  const PreparedQuery& prepared = req.prepared;
  if (prepared.engine_ != this) {
    return Status(StatusCode::kInvalidArgument,
                  "PreparedQuery belongs to a different engine");
  }
  if (OptionBits(req.options) != prepared.option_bits_) {
    return Status(StatusCode::kInvalidArgument,
                  "request options disagree with the PreparedQuery's "
                  "classification knobs (use_singleton / universe_strategy "
                  "/ restrictions); re-Prepare with these options");
  }
  return Status();
}

std::optional<AdpResponse> AdpEngine::Admit(const std::string& solve_key) {
  requests_->Increment();
  std::shared_ptr<const AdpResponse> hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (config_.coalesce_window_ms <= 0 || recent_.empty()) {
      return std::nullopt;
    }
    const auto now = Now();
    // Newest first; the first key match decides (an older match is staler).
    for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
      if (it->key != solve_key) continue;
      const double age_ms = MsBetween(it->completed, now);
      if (age_ms > config_.coalesce_window_ms) break;
      coalesce_hits_->Increment();
      hit = it->response;
      break;
    }
  }
  if (hit == nullptr) return std::nullopt;
  // The deep copy (witness tuples can be large) happens outside the lock.
  AdpResponse resp = *hit;
  resp.coalesced = true;
  return resp;
}

AdpResponse AdpEngine::CountRejected(Status status) {
  requests_->Increment();
  failures_->Increment();
  return FailureResponse(std::move(status));
}

std::optional<AdpEngine::RecentResult> AdpEngine::MakeRecent(
    const AdpRequest& req, const std::string& solve_key,
    const AdpResponse& resp) const {
  if (config_.coalesce_window_ms <= 0 || !resp.status.ok()) {
    return std::nullopt;
  }
  if (req.options.restrictions != nullptr &&
      !req.options.restrictions->Empty()) {
    // The key names the restriction set by address but the engine does not
    // own it; remembering would let a freed-and-reallocated set match.
    return std::nullopt;
  }
  RecentResult entry;
  entry.key = solve_key;
  entry.completed = Now();
  entry.response = std::make_shared<const AdpResponse>(resp);
  if (req.prepared.valid()) {
    entry.pins.push_back(req.prepared.plan_);
    if (req.prepared.bound_ != nullptr) {
      entry.pins.push_back(req.prepared.bound_);
    }
  }
  return entry;
}

// --- Prepared queries --------------------------------------------------------

StatusOr<PreparedQuery> AdpEngine::Prepare(const std::string& query_text,
                                           const AdpOptions& options) {
  AdpRequest req;
  req.query_text = query_text;
  req.options = options;
  return PrepareRequest(req);
}

StatusOr<PreparedQuery> AdpEngine::Prepare(const ConjunctiveQuery& query,
                                           const AdpOptions& options) {
  AdpRequest req;
  req.query = query;
  req.options = options;
  return PrepareRequest(req);
}

StatusOr<PreparedQuery> AdpEngine::PrepareRequest(const AdpRequest& req) {
  if (IsShutdown()) {
    return Status(StatusCode::kShutdown, "engine is shut down");
  }
  const std::string plan_key = PlanKey(req);
  std::shared_ptr<const CachedPlan> plan;
  try {
    plan = GetPlan(req, plan_key, nullptr);
  } catch (const ParseError& e) {
    return Status(StatusCode::kParseError, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
  PreparedQuery prepared;
  prepared.engine_ = this;
  prepared.plan_ = plan;
  prepared.fingerprint_ = plan->fingerprint;
  prepared.plan_key_ = plan_key;
  prepared.option_bits_ = OptionBits(req.options);
  prepared.base_key_ = "P|" + PointerKey(plan.get());
  return prepared;
}

StatusOr<std::vector<PreparedQuery>> AdpEngine::PrepareBatch(
    std::span<const std::string> query_texts, const AdpOptions& options) {
  if (IsShutdown()) {
    return Status(StatusCode::kShutdown, "engine is shut down");
  }
  std::vector<PreparedQuery> out;
  out.reserve(query_texts.size());
  // One plan-cache pass per *unique* plan key: duplicates within the batch
  // reuse the already-resolved plan instead of re-probing (and possibly
  // re-parsing under) the shared cache.
  std::unordered_map<std::string, std::shared_ptr<const CachedPlan>> resolved;
  for (const std::string& text : query_texts) {
    AdpRequest req;
    req.query_text = text;
    req.options = options;
    const std::string plan_key = PlanKey(req);
    std::shared_ptr<const CachedPlan> plan;
    auto it = resolved.find(plan_key);
    if (it != resolved.end()) {
      plan = it->second;
    } else {
      try {
        plan = GetPlan(req, plan_key, nullptr);
      } catch (const ParseError& e) {
        return Status(StatusCode::kParseError,
                      std::string(e.what()) + " (batch query " +
                          std::to_string(out.size()) + ")");
      } catch (const std::exception& e) {
        return Status(StatusCode::kInternal, e.what());
      }
      resolved.emplace(plan_key, plan);
    }
    PreparedQuery prepared;
    prepared.engine_ = this;
    prepared.plan_ = plan;
    prepared.fingerprint_ = plan->fingerprint;
    prepared.plan_key_ = plan_key;
    prepared.option_bits_ = OptionBits(options);
    prepared.base_key_ = "P|" + PointerKey(plan.get());
    out.push_back(std::move(prepared));
  }
  return out;
}

Status AdpEngine::BindPrepared(PreparedQuery& prepared, DbId db) {
  std::shared_ptr<const NamedDatabase> named = database(db);
  if (named == nullptr) {
    return Status(StatusCode::kUnknownDatabase,
                  "unknown database id " + std::to_string(db));
  }
  std::shared_ptr<const Database> bound;
  try {
    bound = BindDatabase(named, *prepared.plan_);
  } catch (const EngineError& e) {
    return Status(e.code(), e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
  prepared.named_ = std::move(named);
  prepared.bound_ = std::move(bound);
  prepared.db_ = db;
  prepared.base_key_ =
      "P|" + PointerKey(prepared.plan_.get()) + "|b" +
      PointerKey(prepared.bound_.get());
  return Status();
}

// --- Resolution --------------------------------------------------------------

std::shared_ptr<const CachedPlan> AdpEngine::GetPlan(
    const AdpRequest& req, const std::string& plan_key, bool* hit) {
  return plan_cache_.GetOrBuild(
      plan_key, [&req] { return BuildPlan(req); }, hit);
}

std::shared_ptr<const Database> AdpEngine::BindDatabase(
    const std::shared_ptr<const NamedDatabase>& named, const CachedPlan& plan) {
  const ConjunctiveQuery& q = plan.query;
  // Row-capacity guard: solutions address tuples as (relation, TupleId) and
  // TupleId is 32-bit, so an instance past RelationInstance::MaxRows() could
  // not be reported against. Surfaces as kInvalidArgument rather than a
  // truncated row id downstream.
  for (std::size_t j = 0; j < named->db.num_relations(); ++j) {
    if (named->db.rel(j).size() > RelationInstance::MaxRows()) {
      throw EngineError(
          StatusCode::kInvalidArgument,
          "relation " + std::to_string(j) + " has " +
              std::to_string(named->db.rel(j).size()) +
              " tuples, past the TupleId capacity (" +
              std::to_string(RelationInstance::MaxRows()) + ")");
    }
  }
  if (named->relation_names.empty()) {
    // Positional database: shared as-is, no copy.
    if (named->db.num_relations() !=
        static_cast<std::size_t>(q.num_relations())) {
      throw EngineError(
          StatusCode::kInvalidArgument,
          "positional database has " +
              std::to_string(named->db.num_relations()) +
              " relations, query has " + std::to_string(q.num_relations()));
    }
    return std::shared_ptr<const Database>(named, &named->db);
  }

  // Named database: bind by relation name, memoized per (database, body
  // name sequence) so batches share one bound copy.
  std::string key;
  key.reserve(32);
  key += PointerKey(named.get());
  for (int i = 0; i < q.num_relations(); ++i) {
    key += '|';
    key += q.relation(i).name;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bindings_.find(key);
    if (it != bindings_.end()) {
      binding_hits_->Increment();
      return it->second;
    }
    binding_misses_->Increment();
  }

  auto bound = std::make_shared<Database>(
      static_cast<std::size_t>(q.num_relations()));
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::string& name = q.relation(i).name;
    bool found = false;
    for (std::size_t j = 0; j < named->relation_names.size(); ++j) {
      if (named->relation_names[j] == name) {
        RelationInstance inst = named->db.rel(j);
        inst.set_root_relation(i);
        bound->rel(static_cast<std::size_t>(i)) = std::move(inst);
        found = true;
        break;
      }
    }
    if (!found) {
      // Binding an empty instance here would silently turn a relation-name
      // typo into a wrong (usually zero-output) answer.
      throw EngineError(StatusCode::kUnknownRelation,
                        "database has no relation named '" + name +
                            "' (query body atom " + std::to_string(i) + ")");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (config_.binding_cache_capacity != 0 &&
      bindings_.size() >= config_.binding_cache_capacity) {
    bindings_.clear();  // coarse but rare; entries are cheap to rebuild
  }
  auto [it, inserted] = bindings_.emplace(key, std::move(bound));
  return it->second;
}

void AdpEngine::ResolveStatic(const AdpRequest& req,
                              const std::string& plan_key,
                              std::shared_ptr<const CachedPlan>* plan,
                              std::shared_ptr<const Database>* bound,
                              bool* plan_cache_hit, double* plan_ms,
                              std::uint64_t* fingerprint,
                              obs::TraceSink* sink,
                              std::uint32_t trace_parent) {
  Stopwatch plan_sw;
  {
    // The plan span covers parsing too — a miss-path BuildPlan parses,
    // classifies, and linearizes inside this scope.
    obs::Span span(sink, obs::kSpanPlan, trace_parent);
    if (req.prepared.valid()) {
      // Prepared hot path: static work pinned, zero plan-cache traffic.
      *plan = req.prepared.plan_;
      *bound = req.prepared.bound_;  // null when the handle is unbound
      *plan_cache_hit = true;
    } else {
      *plan = GetPlan(req, plan_key, plan_cache_hit);
    }
    span.Tag("cache_hit", std::int64_t{*plan_cache_hit ? 1 : 0});
  }
  *plan_ms = plan_sw.ElapsedMs();
  if (fingerprint != nullptr) *fingerprint = (*plan)->fingerprint;

  if (*bound == nullptr) {
    obs::Span span(sink, obs::kSpanBind, trace_parent);
    const std::shared_ptr<const NamedDatabase> named = database(req.db);
    if (named == nullptr) {
      throw EngineError(StatusCode::kUnknownDatabase,
                        "unknown database id " + std::to_string(req.db));
    }
    *bound = BindDatabase(named, **plan);
  }
}

AdpResponse AdpEngine::SolveNow(const AdpRequest& req, const RequestKeys& keys,
                                const CancelToken* cancel,
                                double queue_wait_ms) {
  AdpResponse resp;
  resp.queue_ms = queue_wait_ms;
  Stopwatch total;
  std::unique_ptr<obs::TraceSink> sink;
  obs::Span root;
  if (req.collect_trace) {
    // The origin is backdated by the queue wait so the synthetic adp.queue
    // span below starts at t=0 and the trace covers the request's full
    // wall time, not just the post-dequeue part.
    sink = std::make_unique<obs::TraceSink>(obs::TraceSink::kDefaultMaxSpans,
                                            queue_wait_ms);
    if (queue_wait_ms > 0.0) {
      sink->AddCompleteSpan(obs::kSpanQueue, 0, 0.0, queue_wait_ms);
    }
    root = obs::Span(sink.get(), obs::kSpanRequest);
    root.Tag("k", req.k);
  }
  try {
    // A request cancelled or expired before reaching here must not touch
    // the caches at all ("never runs the solve").
    if (cancel != nullptr) cancel->ThrowIfCancelled();

    std::shared_ptr<const CachedPlan> plan;
    std::shared_ptr<const Database> bound;
    ResolveStatic(req, keys.plan, &plan, &bound, &resp.plan_cache_hit,
                  &resp.plan_ms, &resp.fingerprint, sink.get(), root.id());

    AdpOptions options = req.options;
    options.plan = &plan->dispatch;
    options.stats = &resp.stats;
    options.parallelism = sharding_.run_all ? &sharding_ : nullptr;
    options.cancel = cancel;
    options.trace = sink.get();
    Stopwatch solve_sw;
    {
      obs::Span solve_span(sink.get(), obs::kSpanSolve, root.id());
      options.trace_parent = solve_span.id();
      resp.solution = ComputeAdp(plan->query, *bound, req.k, options);
    }
    resp.solve_ms = solve_sw.ElapsedMs();
    solve_ms_->Observe(resp.solve_ms);
    if (resp.stats.sharded_universe_nodes > 0 ||
        resp.stats.sharded_decompose_nodes > 0) {
      // Rolled up only here, where the solve actually ran: deduped and
      // coalesced copies of this response must not re-count its shards.
      sharded_universe_nodes_->Increment(
          static_cast<std::uint64_t>(resp.stats.sharded_universe_nodes));
      sharded_decompose_nodes_->Increment(
          static_cast<std::uint64_t>(resp.stats.sharded_decompose_nodes));
    }
  } catch (...) {
    bool genuine_failure = false;
    resp.status = MapSolveException(/*shutdown_requested=*/false,
                                    &genuine_failure);
    if (genuine_failure) failures_->Increment();
  }
  resp.total_ms = total.ElapsedMs();
  request_latency_ms_->Observe(queue_wait_ms + resp.total_ms);
  if (sink != nullptr) {
    root.End();
    resp.trace = std::make_shared<const obs::Trace>(sink->Take());
    traces_collected_->Increment();
  }
  return resp;
}

// --- Single flight -----------------------------------------------------------

std::shared_ptr<AdpEngine::InflightSolve> AdpEngine::LeadOrJoin(
    const std::string& key, const std::shared_ptr<internal::TicketImpl>& ticket,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    if (ticket != nullptr) {
      // AddParticipant registers and fired-checks atomically under the
      // group mutex, so a successful join can never land on a solve that
      // was cancelled between probe and registration.
      if (it->second->group->AddParticipant(deadline)) {
        dedup_hits_->Increment();
        ticket->group = it->second->group;
        it->second->followers.push_back(ticket);
        return nullptr;  // joined as a follower
      }
      // Stale entry (solve already torn down): replace it below.
    } else if (it->second->group->solve_token().Check() ==
               CancelReason::kNone) {
      // Sync (null ticket): the caller solves independently — joining
      // would couple its latency to queue depth.
      return nullptr;
    }
  }
  // No entry, or a stale one whose shared solve was already cancelled /
  // expired (its queued task will still retire it; the erase-if-same guard
  // in PublishInflight keeps it from clobbering this fresh entry).
  auto state = std::make_shared<InflightSolve>();
  state->group = std::make_shared<internal::SolveCancelGroup>();
  state->group->AddParticipant(deadline);  // fresh group: always succeeds
  state->leader = ticket;
  if (ticket != nullptr) ticket->group = state->group;
  inflight_[key] = state;
  return state;
}

void AdpEngine::PublishInflight(const std::string& key,
                                const std::shared_ptr<InflightSolve>& state,
                                const AdpResponse& resp,
                                std::optional<RecentResult> recent) {
  std::shared_ptr<internal::TicketImpl> leader;
  std::vector<std::shared_ptr<internal::TicketImpl>> followers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == state) inflight_.erase(it);
    leader = std::move(state->leader);
    followers.swap(state->followers);
    if (recent.has_value()) {
      recent_.push_back(*std::move(recent));
      while (recent_.size() > kRecentResultsCapacity) recent_.pop_front();
    }
  }
  if (leader != nullptr) internal::Deliver(*leader, resp);
  if (followers.empty()) return;
  AdpResponse shared = resp;
  shared.deduped = true;
  for (const auto& f : followers) internal::Deliver(*f, shared);
}

// --- Request entry points ----------------------------------------------------

AdpResponse AdpEngine::ExecuteImpl(const AdpRequest& req) {
  if (IsShutdown()) return ShutdownResponse();
  if (req.prepared.valid()) {
    Status valid = ValidatePrepared(req);
    if (!valid.ok()) return CountRejected(std::move(valid));
  }
  const RequestKeys keys = KeysFor(req);
  if (std::optional<AdpResponse> coalesced = Admit(keys.solve)) {
    // An already-expired deadline beats a coalesced result, matching the
    // async path (whose ticket substitutes kDeadlineExceeded at delivery).
    if (req.deadline.has_value() && Now() >= *req.deadline) {
      return DroppedResponse(CancelReason::kDeadlineExceeded);
    }
    return *std::move(coalesced);
  }

  // The synchronous path leads but never follows (see LeadOrJoin).
  const std::shared_ptr<InflightSolve> lead =
      LeadOrJoin(keys.solve, nullptr, req.deadline);
  AdpResponse resp;
  const CancelToken* cancel = nullptr;
  CancelToken solo;
  if (lead != nullptr) {
    cancel = &lead->group->solve_token();
  } else if (req.deadline.has_value()) {
    solo = CancelToken::Make();
    solo.SetDeadline(*req.deadline);
    cancel = &solo;
  }
  try {
    resp = SolveNow(req, keys, cancel);
  } catch (...) {
    // SolveNow absorbs std::exception itself; anything else must still
    // retire the in-flight entry (followers would hang forever on a
    // leaked leader) and keep Execute's never-throws contract.
    resp = FailureResponse(
        Status(StatusCode::kInternal, "solve terminated abnormally"));
    failures_->Increment();
  }
  if (lead != nullptr) {
    PublishInflight(keys.solve, lead, resp, MakeRecent(req, keys.solve, resp));
  }
  return resp;
}

AdpResponse AdpEngine::Execute(const AdpRequest& req) {
  AdpResponse resp = ExecuteImpl(req);
  // The sync path has no ticket, so terminal cancelled/expired outcomes
  // are counted here (async paths count through Deliver).
  if (resp.status.code() == StatusCode::kDeadlineExceeded) {
    ticket_counters_->deadline_expired.fetch_add(1, std::memory_order_relaxed);
  } else if (resp.status.code() == StatusCode::kCancelled) {
    ticket_counters_->cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

AdpResponse AdpEngine::Execute(const PreparedQuery& prepared, std::int64_t k,
                               const AdpOptions& options) {
  AdpRequest req;
  req.prepared = prepared;
  req.db = prepared.bound_db();
  req.k = k;
  req.options = options;
  return Execute(req);
}

std::future<AdpResponse> AdpEngine::Submit(AdpRequest req, AdpTicket* ticket) {
  // Future-flavored SubmitAsync: same dedup, same nested-submission
  // inlining (a worker-thread caller gets a ready future back).
  auto promise = std::make_shared<std::promise<AdpResponse>>();
  std::future<AdpResponse> fut = promise->get_future();
  AdpTicket t = SubmitAsync(std::move(req), [promise](AdpResponse r) {
    promise->set_value(std::move(r));
  });
  if (ticket != nullptr) *ticket = std::move(t);
  return fut;
}

std::future<AdpResponse> AdpEngine::Submit(const PreparedQuery& prepared,
                                           std::int64_t k,
                                           const AdpOptions& options,
                                           AdpTicket* ticket) {
  AdpRequest req;
  req.prepared = prepared;
  req.db = prepared.bound_db();
  req.k = k;
  req.options = options;
  return Submit(std::move(req), ticket);
}

AdpTicket AdpEngine::SubmitAsync(AdpRequest req,
                                 std::function<void(AdpResponse)> done) {
  auto impl = std::make_shared<internal::TicketImpl>();
  impl->done = std::move(done);
  impl->counters = ticket_counters_;
  if (req.deadline.has_value()) impl->own.SetDeadline(*req.deadline);
  AdpTicket ticket(impl);

  if (pool_.IsWorkerThread()) {
    // Nested submission: run inline rather than deadlocking the pool.
    internal::Deliver(*impl, ExecuteImpl(req));
    return ticket;
  }
  if (IsShutdown()) {
    internal::Deliver(*impl, ShutdownResponse());
    return ticket;
  }
  if (req.prepared.valid()) {
    Status valid = ValidatePrepared(req);
    if (!valid.ok()) {
      internal::Deliver(*impl, CountRejected(std::move(valid)));
      return ticket;
    }
  }

  const RequestKeys keys = KeysFor(req);
  if (std::optional<AdpResponse> coalesced = Admit(keys.solve)) {
    internal::Deliver(*impl, *std::move(coalesced));
    return ticket;
  }
  // Admission control, before the single-flight probe: an already-dead
  // deadline never deserves a queue slot, and once the backlog exceeds the
  // configured bound new work is shed instead of queued (kOverloaded) —
  // joining an in-flight solve stays allowed (it costs no slot).
  if (req.deadline.has_value() && Now() >= *req.deadline) {
    internal::Deliver(*impl, DroppedResponse(CancelReason::kDeadlineExceeded));
    return ticket;
  }
  if (config_.max_queue_depth > 0 &&
      pool_.queued() >= config_.max_queue_depth) {
    const std::shared_ptr<InflightSolve> joined =
        LeadOrJoin(keys.solve, impl, req.deadline);
    if (joined == nullptr) return ticket;  // rode an in-flight solve for free
    // Became the would-be leader: retire the entry immediately with the
    // overload response (followers that raced in share the rejection).
    shed_->Increment();
    PublishInflight(keys.solve, joined, OverloadedResponse(), std::nullopt);
    return ticket;
  }
  const std::shared_ptr<InflightSolve> lead =
      LeadOrJoin(keys.solve, impl, req.deadline);
  if (lead == nullptr) return ticket;  // joined an identical in-flight solve

  // From here the in-flight entry MUST be retired on every path — a leaked
  // leader would hang all future identical requests — so both the solve
  // and the enqueue are exception-proofed.
  const TaskAttrs attrs{req.priority, req.deadline};
  try {
    const MonotonicClock::time_point enqueued = Now();
    pool_.Submit([this, req = std::move(req), keys, lead, enqueued] {
      AdpResponse resp;
      const double queue_wait_ms = MsBetween(enqueued, Now());
      queue_wait_ms_->Observe(queue_wait_ms);
      const CancelReason queued = lead->group->solve_token().Check();
      if (queued != CancelReason::kNone) {
        // Cancelled or expired while queued: the solve never runs — no
        // plan probe, no binding probe, no ComputeAdp.
        resp = DroppedResponse(queued);
      } else {
        try {
          resp = SolveNow(req, keys, &lead->group->solve_token(),
                          queue_wait_ms);
        } catch (...) {
          resp = FailureResponse(
              Status(StatusCode::kInternal, "solve terminated abnormally"));
          failures_->Increment();
        }
      }
      PublishInflight(keys.solve, lead, resp,
                      MakeRecent(req, keys.solve, resp));
    }, attrs);
  } catch (...) {
    // The ticket delivery is the sole failure signal (`done` fires exactly
    // once); rethrowing too would double-report the submission.
    AdpResponse failure = FailureResponse(
        Status(StatusCode::kInternal, "failed to enqueue request"));
    failures_->Increment();
    PublishInflight(keys.solve, lead, failure, std::nullopt);
  }
  return ticket;
}

AdpTicket AdpEngine::SubmitToQueue(AdpRequest req, CompletionQueue& cq,
                                   std::uint64_t tag) {
  cq.AddPending();
  return SubmitAsync(std::move(req), [&cq, tag](AdpResponse resp) {
    cq.Push(Completion{tag, std::move(resp)});
  });
}

std::vector<AdpResponse> AdpEngine::ExecuteBatch(
    std::vector<AdpRequest> reqs) {
  std::vector<std::future<AdpResponse>> futures;
  futures.reserve(reqs.size());
  for (AdpRequest& req : reqs) futures.push_back(Submit(std::move(req)));
  std::vector<AdpResponse> out;
  out.reserve(futures.size());
  for (auto& fut : futures) out.push_back(fut.get());
  return out;
}

// --- Streaming ---------------------------------------------------------------

namespace {

/// Terminal-only stream: used for admission failures (shutdown, invalid
/// prepared handle, enqueue failure).
void FinishStream(const std::shared_ptr<internal::StreamState>& state,
                  Status status) {
  StreamItem end;
  end.kind = StreamItem::Kind::kEnd;
  end.status = std::move(status);
  state->Finish(std::move(end));
}

}  // namespace

ResultStream AdpEngine::StreamAdp(AdpRequest req) {
  auto state = std::make_shared<internal::StreamState>(kStreamBufferItems);
  state->opened = Now();
  if (req.deadline.has_value()) {
    state->cancel_token().SetDeadline(*req.deadline);
  }
  ResultStream stream(state);

  {
    // Shutdown gate and registration under ONE critical section: a stream
    // admitted here is in streams_ before Shutdown() can drain the list,
    // so it is guaranteed to be cancelled — never left to complete after
    // Shutdown() returned. kShutdown rejections get no counters attached:
    // they are excluded from streams_opened, and counting their terminal
    // would let stream_cancelled exceed streams_opened.
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      FinishStream(state,
                   Status(StatusCode::kShutdown, "engine is shut down"));
      return stream;
    }
    state->counters = stream_counters_;
    // Prune streams that already finished (their producers released the
    // state) so the open-stream list stays proportional to live streams.
    std::erase_if(streams_, [](const auto& weak) { return weak.expired(); });
    streams_.push_back(state);
  }
  stream_counters_->opened.fetch_add(1, std::memory_order_relaxed);
  if (req.prepared.valid()) {
    Status valid = ValidatePrepared(req);
    if (!valid.ok()) {
      FinishStream(state, std::move(valid));
      return stream;
    }
  }

  if (pool_.IsWorkerThread()) {
    // Nested streaming: no independent consumer can drain while we
    // produce, so the capacity bound would deadlock — buffer everything
    // and return a fully-produced stream.
    state->MakeUnbounded();
    RunStream(req, state);
    return stream;
  }
  // Load shedding mirrors SubmitAsync: a producer task needs a queue slot,
  // and past the configured backlog the stream is refused with a terminal
  // kOverloaded instead. (Inline nested production above costs no slot and
  // is never shed.)
  if (config_.max_queue_depth > 0 &&
      pool_.queued() >= config_.max_queue_depth) {
    shed_->Increment();
    FinishStream(state, Status(StatusCode::kOverloaded,
                               "stream shed: worker queue exceeds "
                               "EngineConfig::max_queue_depth"));
    return stream;
  }
  const TaskAttrs attrs{req.priority, req.deadline};
  try {
    pool_.Submit([this, req = std::move(req), state] { RunStream(req, state); },
                 attrs);
  } catch (...) {
    FinishStream(state,
                 Status(StatusCode::kInternal, "failed to enqueue stream"));
  }
  return stream;
}

ResultStream AdpEngine::StreamAdp(const PreparedQuery& prepared,
                                  std::int64_t k, const AdpOptions& options) {
  AdpRequest req;
  req.prepared = prepared;
  req.db = prepared.bound_db();
  req.k = k;
  req.options = options;
  return StreamAdp(std::move(req));
}

void AdpEngine::RunStream(const AdpRequest& req,
                          const std::shared_ptr<internal::StreamState>& state) {
  StreamItem end;
  end.kind = StreamItem::Kind::kEnd;
  Stopwatch total;
  // Queue wait = StreamAdp admission to here (0-ish for inline production).
  const double queue_wait_ms = MsBetween(state->opened, Now());
  queue_wait_ms_->Observe(queue_wait_ms);
  end.queue_ms = queue_wait_ms;
  std::unique_ptr<obs::TraceSink> sink;
  obs::Span root;
  if (req.collect_trace) {
    sink = std::make_unique<obs::TraceSink>(obs::TraceSink::kDefaultMaxSpans,
                                            queue_wait_ms);
    if (queue_wait_ms > 0.0) {
      sink->AddCompleteSpan(obs::kSpanQueue, 0, 0.0, queue_wait_ms);
    }
    root = obs::Span(sink.get(), obs::kSpanStream);
    root.Tag("k", req.k);
  }
  // Time-to-first-item, measured from admission at the first Emit (profile
  // or witness batch — whichever the consumer could see first).
  bool first_item = true;
  const auto note_first_item = [&] {
    if (first_item) {
      first_item = false;
      stream_first_item_ms_->Observe(MsBetween(state->opened, Now()));
    }
  };
  try {
    // Cancelled or expired while queued: never touches the caches.
    state->cancel_token().ThrowIfCancelled();

    std::shared_ptr<const CachedPlan> plan;
    std::shared_ptr<const Database> bound;
    ResolveStatic(req, req.prepared.valid() ? std::string() : PlanKey(req),
                  &plan, &bound, &end.plan_cache_hit, &end.plan_ms, nullptr,
                  sink.get(), root.id());

    AdpOptions options = req.options;
    options.plan = &plan->dispatch;
    options.stats = &end.stats;
    options.parallelism = sharding_.run_all ? &sharding_ : nullptr;
    options.cancel = &state->cancel_token();
    options.trace = sink.get();
    options.trace_parent = root.id();

    // Mirror ComputeAdp's preamble (Lemma 12 selection pushdown + the
    // feasibility gates) so streamed results concatenate to exactly what
    // Execute would have returned. Kept in sync by the stream-vs-batch
    // equivalence property test (result_stream_test), which compares the
    // two paths field-for-field on every CI run.
    Stopwatch solve_sw;
    const ConjunctiveQuery* query = &plan->query;
    const Database* data = bound.get();
    QueryDb pushed;
    if (query->HasSelections()) {
      pushed = ApplySelections(*query, *data);
      query = &pushed.query;
      data = &pushed.db;
    }
    end.output_count = static_cast<std::int64_t>(
        CountOutputs(query->body(), query->head(), *data));

    if (req.k > end.output_count) {
      end.cost = kInfCost;
      end.feasible = false;
    } else if (req.k <= 0) {
      end.removed_outputs = 0;  // nothing to remove; trivially "verified"
    } else {
      // THE solve: one DP covering every target 1..k. Per-k increments
      // stream straight off its profile — no per-k re-solves.
      AdpNode node = ComputeAdpNode(*query, *data, req.k, options);
      end.exact = node.exact;
      // Witnesses stream in enumeration order, NOT normalized: sorting
      // would force the whole set to be materialized-and-ordered before
      // the first batch could leave, forfeiting exactly the
      // time-to-first-witness a stream exists for. Consumers recover
      // AdpSolution::tuples with NormalizeTupleRefs (docs/STREAMING.md).
      // Each batch is tagged with the target its witnesses remove
      // (StreamItem::k): req.k on the default path, intermediate j's too
      // when AdpRequest::stream_intermediate_witnesses is set. report() is
      // pure over the finished DP, so re-invoking it per target is safe.
      const auto stream_witnesses = [&](std::int64_t target) {
        std::vector<TupleRef> witnesses = node.report(target);
        const std::size_t batch = config_.stream_batch_tuples == 0
                                      ? std::max<std::size_t>(
                                            witnesses.size(), 1)
                                      : config_.stream_batch_tuples;
        for (std::size_t off = 0; off < witnesses.size(); off += batch) {
          state->cancel_token().ThrowIfCancelled();
          StreamItem item;
          item.kind = StreamItem::Kind::kWitnesses;
          item.k = target;
          const std::size_t hi = std::min(off + batch, witnesses.size());
          item.witnesses.assign(witnesses.begin() + static_cast<std::ptrdiff_t>(off),
                                witnesses.begin() + static_cast<std::ptrdiff_t>(hi));
          note_first_item();
          state->Emit(std::move(item));
        }
        return witnesses;
      };
      for (std::int64_t j = 1; j <= req.k; ++j) {
        state->cancel_token().ThrowIfCancelled();
        StreamItem item;
        item.kind = StreamItem::Kind::kProfile;
        item.k = j;
        item.cost = node.profile.At(j);
        item.feasible = item.cost < kInfCost;
        note_first_item();
        state->Emit(std::move(item));
        if (req.stream_intermediate_witnesses && j < req.k &&
            !options.counting_only && node.report &&
            node.profile.At(j) < kInfCost) {
          stream_witnesses(j);
        }
      }
      end.cost = node.profile.At(req.k);
      end.feasible = end.cost < kInfCost;
      if (!options.counting_only && node.report && end.feasible) {
        const std::vector<TupleRef> witnesses = stream_witnesses(req.k);
        if (options.verify) {
          // Against the ROOT query/database, as ComputeAdp does.
          end.removed_outputs =
              CountRemovedOutputs(plan->query, *bound, witnesses);
        }
      }
    }
    end.solve_ms = solve_sw.ElapsedMs();
    solve_ms_->Observe(end.solve_ms);
    if (end.stats.sharded_universe_nodes > 0 ||
        end.stats.sharded_decompose_nodes > 0) {
      // Same rollup SolveNow does: streamed solves shard through the pool
      // too, and STATS must attribute that engagement.
      sharded_universe_nodes_->Increment(
          static_cast<std::uint64_t>(end.stats.sharded_universe_nodes));
      sharded_decompose_nodes_->Increment(
          static_cast<std::uint64_t>(end.stats.sharded_decompose_nodes));
    }
  } catch (...) {
    // Streams do not count into EngineCounters::failures (see counters
    // doc): the terminal Status is the outcome signal.
    bool genuine_failure = false;
    end.status =
        MapSolveException(state->shutdown_requested(), &genuine_failure);
  }
  end.total_ms = total.ElapsedMs();
  if (sink != nullptr) {
    root.End();
    end.trace = std::make_shared<const obs::Trace>(sink->Take());
    traces_collected_->Increment();
  }
  state->Finish(std::move(end));
}

// --- Introspection -----------------------------------------------------------

EngineCounters AdpEngine::counters() const {
  // Mirror first so registry readers (METRICS, bench) and this view agree.
  MirrorExternalMetrics();
  EngineCounters c;
  c.plan_hits = plan_cache_.hits();
  c.plan_misses = plan_cache_.misses();
  c.plan_cache_size = plan_cache_.size();
  c.cancelled = ticket_counters_->cancelled.load(std::memory_order_relaxed);
  c.deadline_expired =
      ticket_counters_->deadline_expired.load(std::memory_order_relaxed);
  c.streams_opened =
      stream_counters_->opened.load(std::memory_order_relaxed);
  c.stream_items = stream_counters_->items.load(std::memory_order_relaxed);
  c.stream_cancelled =
      stream_counters_->cancelled.load(std::memory_order_relaxed);
  c.requests = requests_->Value();
  c.failures = failures_->Value();
  c.binding_hits = binding_hits_->Value();
  c.binding_misses = binding_misses_->Value();
  c.dedup_hits = dedup_hits_->Value();
  c.coalesce_hits = coalesce_hits_->Value();
  c.shed = shed_->Value();
  c.sharded_universe_nodes = sharded_universe_nodes_->Value();
  c.sharded_decompose_nodes = sharded_decompose_nodes_->Value();
  std::lock_guard<std::mutex> lock(mu_);
  c.databases = databases_.size();
  return c;
}

obs::MetricsRegistry& AdpEngine::metrics() const { return *registry_; }

std::shared_ptr<obs::MetricsRegistry> AdpEngine::metrics_shared() const {
  return registry_;
}

void AdpEngine::MirrorExternalMetrics() const {
  // RecordTotal is a monotonic max-set, so mirroring is idempotent and safe
  // to run concurrently with itself — the registry copy only ever catches
  // up to the external source of truth.
  registry_->GetCounter(obs::kMPlanCacheHits).RecordTotal(plan_cache_.hits());
  registry_->GetCounter(obs::kMPlanCacheMisses)
      .RecordTotal(plan_cache_.misses());
  registry_->GetCounter(obs::kMCancelled)
      .RecordTotal(ticket_counters_->cancelled.load(std::memory_order_relaxed));
  registry_->GetCounter(obs::kMDeadlineExpired)
      .RecordTotal(
          ticket_counters_->deadline_expired.load(std::memory_order_relaxed));
  registry_->GetCounter(obs::kMStreamsOpened)
      .RecordTotal(stream_counters_->opened.load(std::memory_order_relaxed));
  registry_->GetCounter(obs::kMStreamItems)
      .RecordTotal(stream_counters_->items.load(std::memory_order_relaxed));
  registry_->GetCounter(obs::kMStreamCancelled)
      .RecordTotal(
          stream_counters_->cancelled.load(std::memory_order_relaxed));
  registry_->GetGauge(obs::kMPlanCacheSize)
      .Set(static_cast<std::int64_t>(plan_cache_.size()));
  std::size_t databases = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    databases = databases_.size();
  }
  registry_->GetGauge(obs::kMDatabases)
      .Set(static_cast<std::int64_t>(databases));
}

void AdpEngine::WriteMetricsText(std::ostream& out) const {
  MirrorExternalMetrics();
  registry_->WritePrometheus(out);
}

void AdpEngine::ClearCaches() {
  plan_cache_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  bindings_.clear();
  recent_.clear();
}

std::shared_ptr<const CachedPlan> AdpEngine::PlanFor(const AdpRequest& req,
                                                     Status* status) {
  if (req.prepared.valid()) {
    if (status != nullptr) *status = Status();
    return req.prepared.plan();
  }
  try {
    auto plan = GetPlan(req, PlanKey(req), nullptr);
    if (status != nullptr) *status = Status();
    return plan;
  } catch (const ParseError& e) {
    if (status != nullptr) *status = Status(StatusCode::kParseError, e.what());
    return nullptr;
  } catch (const std::exception& e) {
    if (status != nullptr) *status = Status(StatusCode::kInternal, e.what());
    return nullptr;
  }
}

}  // namespace adp
