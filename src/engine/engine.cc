#include "engine/engine.h"

#include <stdexcept>
#include <utility>

#include "query/fingerprint.h"
#include "query/parser.h"
#include "query/transform.h"
#include "solver/restrictions.h"
#include "util/stopwatch.h"

namespace adp {
namespace {

// Option knobs that influence Algorithm-2 classification (and hence the
// dispatch plan). Part of every plan-cache key so that requests with
// different knobs never share a plan built for the wrong configuration.
std::string OptionBits(const AdpOptions& options) {
  const bool restricted =
      options.restrictions != nullptr && !options.restrictions->Empty();
  std::string bits;
  bits += options.use_singleton ? 's' : '-';
  bits += options.universe_strategy == AdpOptions::UniverseStrategy::kOneByOne
              ? '1'
              : 'a';
  bits += restricted ? 'r' : '-';
  return bits;
}

std::string PlanKey(const AdpRequest& req) {
  if (req.query.has_value()) {
    // The canonical key ignores relation names, but requests are solved
    // against plan->query and bound to named databases by relation name —
    // so names must be part of the key, or a structurally identical query
    // over different relations would silently bind the wrong instances.
    std::string key = "q|" + OptionBits(req.options);
    for (int i = 0; i < req.query->num_relations(); ++i) {
      key += '|';
      key += req.query->relation(i).name;
    }
    return key + "|" + CanonicalQueryKey(*req.query);
  }
  return "t|" + OptionBits(req.options) + "|" + req.query_text;
}

std::shared_ptr<const CachedPlan> BuildPlan(const AdpRequest& req) {
  auto plan = std::make_shared<CachedPlan>();
  plan->query = req.query.has_value() ? *req.query : ParseQuery(req.query_text);
  plan->residual =
      plan->query.HasSelections()
          ? RemoveAttributes(plan->query, plan->query.SelectedAttrs())
          : plan->query;
  plan->dispatch = BuildDispatchPlan(plan->residual, req.options);
  // The dispatch build already ran the linearization search for a boolean
  // residual; reuse its result instead of searching again.
  const PlanEntry* root = plan->dispatch.Find(plan->residual);
  plan->verdict = ClassifyResidual(
      plan->residual, root != nullptr && root->op == AdpCase::kBoolean
                          ? root->linear_order
                          : std::nullopt);
  plan->fingerprint = QueryFingerprint(plan->query);
  return plan;
}

}  // namespace

AdpEngine::AdpEngine(const EngineConfig& config)
    : config_(config),
      plan_cache_(config.plan_cache_capacity),
      pool_(config.num_workers) {}

AdpEngine::~AdpEngine() = default;

DbId AdpEngine::RegisterDatabase(NamedDatabase db) {
  if (!db.relation_names.empty() &&
      db.relation_names.size() != db.db.num_relations()) {
    throw std::invalid_argument(
        "RegisterDatabase: relation_names must parallel the instances");
  }
  auto shared = std::make_shared<const NamedDatabase>(std::move(db));
  std::lock_guard<std::mutex> lock(mu_);
  databases_.push_back(std::move(shared));
  return static_cast<DbId>(databases_.size()) - 1;
}

DbId AdpEngine::RegisterDatabase(Database db) {
  return RegisterDatabase(NamedDatabase{{}, std::move(db)});
}

std::shared_ptr<const NamedDatabase> AdpEngine::database(DbId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= databases_.size()) {
    return nullptr;
  }
  return databases_[static_cast<std::size_t>(id)];
}

std::shared_ptr<const CachedPlan> AdpEngine::GetPlan(const AdpRequest& req,
                                                     bool* hit) {
  return plan_cache_.GetOrBuild(
      PlanKey(req), [&req] { return BuildPlan(req); }, hit);
}

std::shared_ptr<const Database> AdpEngine::BindDatabase(
    const std::shared_ptr<const NamedDatabase>& named, const CachedPlan& plan) {
  const ConjunctiveQuery& q = plan.query;
  if (named->relation_names.empty()) {
    // Positional database: shared as-is, no copy.
    if (named->db.num_relations() !=
        static_cast<std::size_t>(q.num_relations())) {
      throw std::runtime_error(
          "positional database has " +
          std::to_string(named->db.num_relations()) + " relations, query has " +
          std::to_string(q.num_relations()));
    }
    return std::shared_ptr<const Database>(named, &named->db);
  }

  // Named database: bind by relation name, memoized per (database, body
  // name sequence) so batches share one bound copy.
  std::string key;
  key.reserve(32);
  key += std::to_string(reinterpret_cast<std::uintptr_t>(named.get()));
  for (int i = 0; i < q.num_relations(); ++i) {
    key += '|';
    key += q.relation(i).name;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bindings_.find(key);
    if (it != bindings_.end()) {
      ++binding_hits_;
      return it->second;
    }
    ++binding_misses_;
  }

  auto bound = std::make_shared<Database>(
      static_cast<std::size_t>(q.num_relations()));
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::string& name = q.relation(i).name;
    for (std::size_t j = 0; j < named->relation_names.size(); ++j) {
      if (named->relation_names[j] == name) {
        RelationInstance inst = named->db.rel(j);
        inst.set_root_relation(i);
        bound->rel(static_cast<std::size_t>(i)) = std::move(inst);
        break;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (config_.binding_cache_capacity != 0 &&
      bindings_.size() >= config_.binding_cache_capacity) {
    bindings_.clear();  // coarse but rare; entries are cheap to rebuild
  }
  auto [it, inserted] = bindings_.emplace(key, std::move(bound));
  return it->second;
}

AdpResponse AdpEngine::Execute(const AdpRequest& req) {
  AdpResponse resp;
  Stopwatch total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
  }
  try {
    Stopwatch plan_sw;
    bool hit = false;
    const std::shared_ptr<const CachedPlan> plan = GetPlan(req, &hit);
    resp.plan_ms = plan_sw.ElapsedMs();
    resp.plan_cache_hit = hit;
    resp.fingerprint = plan->fingerprint;

    const std::shared_ptr<const NamedDatabase> named = database(req.db);
    if (named == nullptr) {
      throw std::runtime_error("unknown database id " +
                               std::to_string(req.db));
    }
    const std::shared_ptr<const Database> bound = BindDatabase(named, *plan);

    AdpOptions options = req.options;
    options.plan = &plan->dispatch;
    options.stats = &resp.stats;
    Stopwatch solve_sw;
    resp.solution = ComputeAdp(plan->query, *bound, req.k, options);
    resp.solve_ms = solve_sw.ElapsedMs();
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.error = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++failures_;
  }
  resp.total_ms = total.ElapsedMs();
  return resp;
}

std::future<AdpResponse> AdpEngine::Submit(AdpRequest req) {
  auto task = std::make_shared<std::packaged_task<AdpResponse()>>(
      [this, req = std::move(req)] { return Execute(req); });
  std::future<AdpResponse> fut = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return fut;
}

std::vector<AdpResponse> AdpEngine::ExecuteBatch(
    std::vector<AdpRequest> reqs) {
  std::vector<std::future<AdpResponse>> futures;
  futures.reserve(reqs.size());
  for (AdpRequest& req : reqs) futures.push_back(Submit(std::move(req)));
  std::vector<AdpResponse> out;
  out.reserve(futures.size());
  for (auto& fut : futures) out.push_back(fut.get());
  return out;
}

EngineCounters AdpEngine::counters() const {
  EngineCounters c;
  c.plan_hits = plan_cache_.hits();
  c.plan_misses = plan_cache_.misses();
  c.plan_cache_size = plan_cache_.size();
  std::lock_guard<std::mutex> lock(mu_);
  c.requests = requests_;
  c.failures = failures_;
  c.binding_hits = binding_hits_;
  c.binding_misses = binding_misses_;
  c.databases = databases_.size();
  return c;
}

std::shared_ptr<const CachedPlan> AdpEngine::PlanFor(const AdpRequest& req,
                                                     std::string* error) {
  try {
    return GetPlan(req, nullptr);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
}

}  // namespace adp
