// Grouped-component workload builder shared by the engine's benches and
// tests (bench_engine_throughput's sharding scenarios, engine_test's
// cancel-under-sharding tests), so the bench workload and the test
// workload that mirrors it cannot drift apart.

#ifndef ADP_ENGINE_GROUPED_WORKLOAD_H_
#define ADP_ENGINE_GROUPED_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "util/rng.h"

namespace adp {

/// Appends the 3-relation grouped workload {r1(A,B), r2(A,B,C), r3(A,C)}
/// to `named`: A ranges over `groups` values, so A is universal within the
/// component and Algorithm 4 partitions it into `groups` classes whose
/// residual (a boolean 3-chain) is solved by max-flow resilience — enough
/// work per group for intra-request sharding to matter. Call once for a
/// Universe-sharding workload, or several times with distinct relation
/// names for a disconnected (Decompose-sharding) one.
inline void AppendGroupedComponent(NamedDatabase& named, Rng& rng,
                                   std::int64_t rows, std::int64_t groups,
                                   const std::string& r1,
                                   const std::string& r2,
                                   const std::string& r3) {
  named.relation_names.push_back(r1);
  named.relation_names.push_back(r2);
  named.relation_names.push_back(r3);
  const std::int64_t domain = rows / (2 * groups) + 2;
  for (int r = 0; r < 3; ++r) {
    RelationInstance inst;
    for (std::int64_t i = 0; i < rows; ++i) {
      const Value a = static_cast<Value>(i % groups);
      const Value b = static_cast<Value>(rng.Uniform(domain));
      const Value c = static_cast<Value>(rng.Uniform(domain));
      if (r == 0) {
        inst.Add({a, b});
      } else if (r == 1) {
        inst.Add({a, b, c});
      } else {
        inst.Add({a, c});
      }
    }
    inst.Dedup();
    named.db.Append(std::move(inst));
  }
}

}  // namespace adp

#endif  // ADP_ENGINE_GROUPED_WORKLOAD_H_
