// ResultStream: the consumer handle of AdpEngine::StreamAdp, the engine's
// streaming ranked-witness enumeration path.
//
// Where Execute materializes one AdpResponse — one cost, one witness set,
// deep-copied as a unit — StreamAdp runs the *same single solve* (one
// ComputeAdpNode DP, never per-k re-solves) and delivers its result as a
// sequence of typed StreamItems:
//
//   1. zero or more kProfile items, k = 1, 2, ..., K in strictly ascending
//      order: cost[k] = tuples to delete to remove >= k outputs. Costs are
//      nondecreasing (the DP profile is monotone);
//   2. zero or more kWitnesses items: the witness set for the final target
//      K, split into batches of at most EngineConfig::stream_batch_tuples
//      tuples. Batches arrive in *enumeration order* — the reporter's
//      output is sliced straight into batches, with no global sort/dedup
//      or monolithic response assembly ahead of the first batch — which is
//      what makes time-to-first-witness beat a monolithic response;
//   3. exactly one kEnd item carrying the terminal Status plus the solve
//      summary (exactness, feasibility, output count, stats, timings).
//
// Concatenating a stream reproduces Execute's AdpSolution exactly: the last
// kProfile item's cost is AdpSolution::cost, the kWitnesses batches
// concatenate to AdpSolution::tuples up to normalization (apply
// NormalizeTupleRefs to the concatenation to obtain the identical sorted,
// deduplicated vector), and the kEnd item carries
// exact/feasible/output_count/removed_outputs. Every stream is terminated
// by a kEnd item — cancellation, deadline expiry, shutdown, and errors all
// arrive as its Status.
//
// Backpressure: items travel through a small bounded buffer; a producer
// that outruns the consumer blocks until Next()/TryNext() makes room (or
// the stream is cancelled). Cancel() fires the stream's CancelToken — the
// solver aborts at the next recursion node boundary and the reporter loops
// stop mid-enumeration; Close() additionally discards buffered items and
// detaches the consumer. Dropping the last ResultStream handle implies
// Close(), so an abandoned stream can never wedge a worker.
//
// The protocol contract lives in docs/STREAMING.md (drift-checked by CI
// against this header).

#ifndef ADP_ENGINE_RESULT_STREAM_H_
#define ADP_ENGINE_RESULT_STREAM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "engine/status.h"
#include "solver/compute_adp.h"
#include "solver/solution.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace adp {

namespace obs {
struct Trace;  // obs/trace.h; forward-declared to keep this header light
}  // namespace obs

/// One item of a result stream. Which fields are meaningful depends on
/// `kind`; the rest keep their defaults.
struct StreamItem {
  enum class Kind {
    kProfile,    // one (k, cost) increment of the ranked profile
    kWitnesses,  // one bounded batch of witness tuples for the final target
    kEnd,        // terminal: Status + solve summary; always the last item
  };
  Kind kind = Kind::kEnd;

  /// kProfile: the target this increment covers (1-based, ascending).
  /// kWitnesses: the target whose witness set this batch belongs to — the
  /// request's k on the default path, or an intermediate 1..k when
  /// AdpRequest::stream_intermediate_witnesses is set.
  std::int64_t k = 0;

  /// kProfile: minimum deletions removing >= k outputs. kEnd: the final
  /// target's cost (== the last kProfile item's). kInfCost when infeasible.
  std::int64_t cost = 0;

  /// kProfile/kEnd: false iff `cost` is the infeasible sentinel (target
  /// unreachable — k exceeds |Q(D)|, or §9 restrictions pin every useful
  /// tuple).
  bool feasible = true;

  /// kWitnesses: the next batch, at most EngineConfig::stream_batch_tuples
  /// tuples, in enumeration order. The concatenation of all batches tagged
  /// with the request's final target (`k`), normalized
  /// (NormalizeTupleRefs), equals AdpSolution::tuples.
  std::vector<TupleRef> witnesses;

  /// kEnd: terminal outcome. ok() iff the stream completed; kCancelled,
  /// kDeadlineExceeded, kShutdown, and genuine errors arrive here.
  Status status;

  /// kEnd: true iff every sub-solver was exact — it qualifies every
  /// kProfile cost and the witness set at once (exactness is a property of
  /// the one underlying solve, not of individual items).
  bool exact = true;

  /// kEnd: |Q(D)| before any deletion.
  std::int64_t output_count = 0;

  /// kEnd: outputs actually removed by the streamed witnesses; -1 unless
  /// AdpOptions::verify was set (mirrors AdpSolution::removed_outputs).
  std::int64_t removed_outputs = -1;

  /// kEnd: recursion statistics of the one underlying solve.
  AdpStats stats;

  /// kEnd: true iff the static work was served without building.
  bool plan_cache_hit = false;

  /// kEnd: wall-clock timings, as in AdpResponse. `solve_ms` covers the DP
  /// plus all item production (witness enumeration included); `queue_ms`
  /// is time spent queued on the worker pool before production started, so
  /// `queue_ms + total_ms` is the end-to-end time a consumer experienced
  /// (the figure the adp_server slow-query log thresholds on).
  double plan_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  double queue_ms = 0.0;

  /// kEnd: the recorded span trace, set iff AdpRequest::collect_trace was
  /// true (obs/trace.h; export with Trace::WriteJson). Null on every other
  /// item kind.
  std::shared_ptr<const obs::Trace> trace;
};

namespace internal {

/// Monotonic stream counters shared between the engine and its streams
/// (streams may outlive the engine, so the storage is jointly owned).
struct StreamCounters {
  std::atomic<std::uint64_t> opened{0};
  std::atomic<std::uint64_t> items{0};
  std::atomic<std::uint64_t> cancelled{0};
};

/// Shared state of one stream: a bounded item buffer between the producing
/// worker and the consuming ResultStream handle, plus the stream's cancel
/// token. All methods are thread-safe.
class StreamState {
 public:
  explicit StreamState(std::size_t capacity);

  /// Producer: blocks while the buffer is full; throws CancelledError once
  /// the consumer has closed the stream (the solve must stop, not spin).
  /// A fired cancel token does NOT make Emit throw — the producer polls the
  /// token itself at its loop boundaries so teardown stays cooperative.
  void Emit(StreamItem item);

  /// Producer: appends the terminal item (exempt from the capacity bound)
  /// and marks the stream finished. Counts cancelled-flavored terminals.
  void Finish(StreamItem end);

  /// Consumer: blocks for the next item; nullopt once the terminal item has
  /// been consumed or the stream was closed.
  std::optional<StreamItem> Next();

  /// Consumer: non-blocking Next(); nullopt also when no item is ready yet.
  std::optional<StreamItem> TryNext();

  /// Fires the stream's cancel token (reason kCancelled) and wakes a
  /// blocked producer. Buffered items stay readable; the terminal item will
  /// report why the solve stopped.
  void Cancel();

  /// Cancel() plus: discards buffered items and detaches the consumer —
  /// every later Next()/TryNext() returns nullopt immediately.
  void Close();

  /// True once no further item will ever be returned (terminal consumed,
  /// or stream closed).
  bool done() const;

  /// Lifts the capacity bound. Used for inline (nested) production, where
  /// no consumer can drain concurrently.
  void MakeUnbounded();

  const CancelToken& cancel_token() const { return cancel_; }
  void NoteShutdown() { shutdown_.store(true, std::memory_order_release); }
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  std::shared_ptr<StreamCounters> counters;

  /// When StreamAdp admitted the stream (set by the engine before the
  /// producer is enqueued); RunStream measures queue wait and
  /// time-to-first-item from it.
  MonotonicClock::time_point opened{};

 private:
  const CancelToken cancel_ = CancelToken::Make();
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<StreamItem> items_;
  std::size_t capacity_;
  bool finished_ = false;      // terminal item pushed
  bool closed_ = false;        // consumer detached
  bool end_consumed_ = false;  // terminal item handed out
};

}  // namespace internal

/// The consumer handle of one StreamAdp call. Cheap to copy (copies share
/// the stream); the stream is closed when the last handle is dropped. A
/// handle may outlive the engine: buffered items and the terminal Status
/// stay readable (the engine's destructor cancels still-running producers
/// first, so the terminal always arrives).
class ResultStream {
 public:
  /// An inert stream: valid() is false, done() is true, Next() is nullopt.
  ResultStream() = default;

  /// True iff this handle came from StreamAdp.
  bool valid() const { return state_ != nullptr; }

  /// Blocks for the next item. nullopt once the stream is exhausted — the
  /// kEnd item was already returned — or closed. The kEnd item itself IS
  /// returned (it carries the terminal Status).
  std::optional<StreamItem> Next();

  /// Non-blocking Next(): nullopt when no item is ready *or* the stream is
  /// exhausted — disambiguate with done().
  std::optional<StreamItem> TryNext();

  /// Requests cancellation of the producing solve (terminal Status
  /// kCancelled unless a result/failure already won). Buffered items remain
  /// readable. Idempotent; harmless after completion.
  void Cancel();

  /// Cancel() plus: discards buffered items and ends consumption — every
  /// later Next()/TryNext() returns nullopt. Implied when the last handle
  /// is dropped.
  void Close();

  /// True once no further item will ever arrive (terminal consumed, or
  /// stream closed). Inert handles are done.
  bool done() const;

 private:
  friend class AdpEngine;

  explicit ResultStream(std::shared_ptr<internal::StreamState> state);

  std::shared_ptr<internal::StreamState> state_;
  std::shared_ptr<void> close_guard_;  // Close() when the last copy dies
};

}  // namespace adp

#endif  // ADP_ENGINE_RESULT_STREAM_H_
