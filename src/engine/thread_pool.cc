#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace adp {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

}  // namespace adp
