#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <memory>
#include <utility>

namespace adp {
namespace {

// Which pool (if any) the current thread belongs to. Lets Submit detect
// worker reentrancy without any bookkeeping in the hot path.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::IsWorkerThread() const { return tls_worker_pool == this; }

bool ThreadPool::RunsBefore(const Entry& a, const Entry& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.seq < b.seq;
}

void ThreadPool::Enqueue(std::function<void()> task, TaskAttrs attrs) {
  Entry e;
  e.fn = std::move(task);
  e.priority = attrs.priority;
  e.deadline = attrs.deadline.value_or(
      std::chrono::steady_clock::time_point::max());
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.seq = next_seq_++;
    queue_.push_back(std::move(e));
    std::push_heap(queue_.begin(), queue_.end(),
                   [](const Entry& a, const Entry& b) {
                     return RunsBefore(b, a);
                   });
  }
  cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task, TaskAttrs attrs) {
  if (IsWorkerThread()) {
    // A worker enqueueing and then waiting on the result would deadlock
    // once every worker does it (nested ExecuteBatch); run inline instead.
    task();
    return;
  }
  Enqueue(std::move(task), attrs);
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }

  // Work-sharing: tasks are claimed by index from a shared counter. Helper
  // closures are offered to the pool, but the caller runs the same drain
  // loop, so the batch completes even if no worker ever becomes free —
  // which also makes nested RunAll (sharded Universe nodes inside sharded
  // Universe nodes) safe.
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  const std::size_t n = batch->tasks.size();

  auto drain = [batch, n] {
    for (;;) {
      const std::size_t i = batch->next.fetch_add(1);
      if (i >= n) return;
      batch->tasks[i]();
      if (batch->done.fetch_add(1) + 1 == n) {
        // Lock pairs with the caller's wait so the notify cannot slip in
        // between its predicate check and its sleep.
        std::lock_guard<std::mutex> lock(batch->mu);
        batch->cv.notify_all();
      }
    }
  };

  // Deliberately Enqueue, not Submit: helpers exit immediately once all
  // indices are claimed, so they may sit in the queue without harm, and
  // inline-running them here would serialize the batch. Maximum priority:
  // shard helpers extend a solve that is already running, so they must
  // never wait behind whole queued requests.
  const std::size_t helpers = std::min(n - 1, workers_.size());
  for (std::size_t h = 0; h < helpers; ++h) {
    Enqueue(drain, TaskAttrs{INT_MAX, std::nullopt});
  }

  drain();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done.load() == n; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      std::pop_heap(queue_.begin(), queue_.end(),
                    [](const Entry& a, const Entry& b) {
                      return RunsBefore(b, a);
                    });
      task = std::move(queue_.back().fn);
      queue_.pop_back();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

}  // namespace adp
