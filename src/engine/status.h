// Typed error propagation for the engine API.
//
// Status carries a machine-readable StatusCode plus a human-readable
// message; StatusOr<T> is a Status-or-value union for factory functions
// (AdpEngine::Prepare). Codes are stable and exhaustive — callers dispatch
// on code(), never on message text — and every code maps to a distinct
// process exit code for CLI tools (StatusExitCode).

#ifndef ADP_ENGINE_STATUS_H_
#define ADP_ENGINE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace adp {

/// Outcome of one engine operation.
enum class StatusCode : int {
  kOk = 0,
  kParseError = 1,        // query text did not parse
  kUnknownDatabase = 2,   // DbId was never registered
  kUnknownRelation = 3,   // query names a relation the database lacks
  kInvalidArgument = 4,   // malformed request (arity mismatch, stale handle)
  kCancelled = 5,         // AdpTicket::Cancel fired before completion
  kDeadlineExceeded = 6,  // AdpRequest::deadline passed before completion
  kShutdown = 7,          // engine is shut down
  kInternal = 8,          // unexpected failure inside the engine
  kOverloaded = 9,        // admission control shed the request (queue full)
};

/// Stable upper-case name of a code, e.g. "DEADLINE_EXCEEDED".
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kUnknownDatabase: return "UNKNOWN_DATABASE";
    case StatusCode::kUnknownRelation: return "UNKNOWN_RELATION";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kShutdown: return "SHUTDOWN";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

/// Distinct process exit code per status for CLI tools: 0 for kOk,
/// 10 + code otherwise. Exit codes 1..9 stay free for tool-specific
/// conditions (usage errors, infeasible targets, ...).
constexpr int StatusExitCode(StatusCode code) {
  return code == StatusCode::kOk ? 0 : 10 + static_cast<int>(code);
}

/// A code plus a message. Default-constructed Status is OK; any other code
/// carries a description of the failure.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DEADLINE_EXCEEDED: solve aborted ..." (just "OK" when ok()).
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-OK Status explaining why there is no T.
template <typename T>
class StatusOr {
 public:
  /// Failure. Constructing from an OK status without a value is a logic
  /// error and degrades to kInternal rather than fabricating a T.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "StatusOr constructed from an OK status with no value");
    }
  }

  /// Success.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }

  /// OK iff ok().
  const Status& status() const { return status_; }

  /// Requires ok(); use status() first on failure paths.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const { return *value_; }
  T& operator*() { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace adp

#endif  // ADP_ENGINE_STATUS_H_
