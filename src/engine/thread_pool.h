// Fixed-size worker thread pool for the ADP engine.
//
// Deliberately minimal: a mutex-guarded FIFO of type-erased tasks drained by
// N long-lived workers. ADP requests are coarse-grained (milliseconds to
// seconds), so queue contention is negligible and work stealing is not
// worth its complexity here.
//
// Two facilities keep nested use deadlock-free:
//
//   * Submit() called from inside a pool worker runs the task inline. A
//     worker that enqueued a task and then blocked on its future could
//     otherwise wedge the whole pool (every worker waiting on work only a
//     worker can run).
//   * RunAll() executes a batch of independent tasks with the *calling*
//     thread participating: idle workers help, but the caller drains
//     whatever they don't pick up, so completion never depends on pool
//     capacity. This is what intra-request sharding runs on.

#ifndef ADP_ENGINE_THREAD_POOL_H_
#define ADP_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap fallible work yourself,
  /// e.g. in a std::packaged_task). When called from one of this pool's own
  /// workers the task runs inline instead — see the header comment.
  void Submit(std::function<void()> task);

  /// Runs every task to completion before returning, using idle workers for
  /// parallelism and the calling thread as one more executor. Safe to call
  /// from inside a pool worker and to nest (each level's caller drains its
  /// own batch). Tasks must not throw.
  void RunAll(std::vector<std::function<void()>> tasks);

  /// True iff the calling thread is one of this pool's workers.
  bool IsWorkerThread() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks accepted but not yet finished (inline-run tasks never count).
  std::size_t pending() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but still running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adp

#endif  // ADP_ENGINE_THREAD_POOL_H_
