// Fixed-size worker thread pool for the ADP engine.
//
// Deliberately minimal: a mutex-guarded FIFO of type-erased tasks drained by
// N long-lived workers. ADP requests are coarse-grained (milliseconds to
// seconds), so queue contention is negligible and work stealing is not
// worth its complexity here.

#ifndef ADP_ENGINE_THREAD_POOL_H_
#define ADP_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap fallible work yourself,
  /// e.g. in a std::packaged_task).
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks accepted but not yet finished.
  std::size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but still running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adp

#endif  // ADP_ENGINE_THREAD_POOL_H_
