// Fixed-size worker thread pool for the ADP engine.
//
// The queue is a priority heap, not a FIFO: each task carries TaskAttrs
// (scheduling priority plus an optional absolute deadline) and workers
// dequeue the highest-priority task, breaking ties earliest-deadline-first
// (tasks without a deadline sort after every deadlined peer), then FIFO by
// admission order. ADP requests are coarse-grained (milliseconds to
// seconds), so the O(log n) heap never shows up in profiles, and EDF is
// what lets the network front door honor per-request deadlines under load.
//
// Two facilities keep nested use deadlock-free:
//
//   * Submit() called from inside a pool worker runs the task inline. A
//     worker that enqueued a task and then blocked on its future could
//     otherwise wedge the whole pool (every worker waiting on work only a
//     worker can run).
//   * RunAll() executes a batch of independent tasks with the *calling*
//     thread participating: idle workers help, but the caller drains
//     whatever they don't pick up, so completion never depends on pool
//     capacity. This is what intra-request sharding runs on.

#ifndef ADP_ENGINE_THREAD_POOL_H_
#define ADP_ENGINE_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace adp {

/// Scheduling attributes of one pool task. Default-constructed attrs give
/// the historical FIFO behavior (every task priority 0, no deadline).
struct TaskAttrs {
  /// Higher runs first. RunAll's internal helper closures use the maximum
  /// priority so shard fan-out is never stuck behind queued requests.
  int priority = 0;

  /// Earliest-deadline-first tiebreak within one priority level. Tasks
  /// without a deadline dequeue after every deadlined task of the same
  /// priority.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap fallible work yourself,
  /// e.g. in a std::packaged_task). When called from one of this pool's own
  /// workers the task runs inline instead — see the header comment.
  void Submit(std::function<void()> task, TaskAttrs attrs = {});

  /// Runs every task to completion before returning, using idle workers for
  /// parallelism and the calling thread as one more executor. Safe to call
  /// from inside a pool worker and to nest (each level's caller drains its
  /// own batch). Tasks must not throw.
  void RunAll(std::vector<std::function<void()>> tasks);

  /// True iff the calling thread is one of this pool's workers.
  bool IsWorkerThread() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks accepted but not yet finished (inline-run tasks never count).
  std::size_t pending() const;

  /// Tasks waiting in the queue, excluding those already running. This is
  /// the admission-control signal: queued() > bound means every worker is
  /// busy and the backlog is growing.
  std::size_t queued() const;

 private:
  struct Entry {
    std::function<void()> fn;
    int priority = 0;
    // No deadline is stored as time_point::max(): EDF min-order then puts
    // deadline-less tasks last within their priority level for free.
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t seq = 0;  // admission order; FIFO tiebreak
  };

  void Enqueue(std::function<void()> task, TaskAttrs attrs = {});
  void WorkerLoop();

  // True iff a should dequeue before b.
  static bool RunsBefore(const Entry& a, const Entry& b);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Binary max-heap ordered by RunsBefore (std::push_heap/pop_heap over a
  // vector); the comparator inverts RunsBefore so the heap root is the
  // next task to run.
  std::vector<Entry> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t in_flight_ = 0;  // popped but still running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adp

#endif  // ADP_ENGINE_THREAD_POOL_H_
