// AdpTicket: a cancellable, deadline-aware handle to one asynchronous
// engine submission.
//
// Every async path (Submit / SubmitAsync / SubmitToQueue) returns a ticket.
// Cancel() delivers a kCancelled response to this request's caller
// immediately — whether the request is still queued, mid-solve, or joined
// onto another request's solve — and the underlying solve is torn down as
// aggressively as correctness allows:
//
//   * still queued, sole interest  -> the worker drops it without solving;
//   * mid-solve, sole interest     -> the solver aborts at the next
//                                     recursion node boundary;
//   * deduped (single-flight)      -> only this request's delivery is
//     cancelled; the shared solve itself is cancelled only when the leader
//     AND every joined waiter have cancelled, so one impatient caller
//     never kills work others still want.
//
// Deadlines (AdpRequest::deadline) ride the same teardown machinery,
// producing kDeadlineExceeded where Cancel() produces kCancelled — but
// detection is lazy: there is no timer thread, so an expiry is noticed
// when a worker dequeues the request, at solver node boundaries mid-solve,
// and at delivery time. A request stuck behind a saturated pool delivers
// its kDeadlineExceeded when a worker finally pops it, not at the deadline
// instant (an explicit Cancel() delivers immediately).
//
// Tickets are cheap shared handles; they may outlive the engine (a late
// Cancel() on a finished request is a harmless no-op that returns false).

#ifndef ADP_ENGINE_TICKET_H_
#define ADP_ENGINE_TICKET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "engine/request.h"
#include "util/cancel.h"

namespace adp {

namespace internal {

/// Engine counters a ticket must be able to bump after the engine is gone
/// (tickets are caller-held and unordered with engine teardown).
struct TicketCounters {
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> deadline_expired{0};
};

/// Cancellation aggregator of one single-flight solve. Every request
/// sharing the solve (the leader plus each deduped waiter) is a
/// participant. The *solve* token fires only when every participant has
/// cancelled; its deadline is armed only while every participant has one
/// (the latest of them), since the solve must stay alive as long as any
/// open-ended participant still wants the result.
class SolveCancelGroup {
 public:
  SolveCancelGroup() : solve_(CancelToken::Make()) {}

  /// The token threaded into the solver. Fired == the solve itself should
  /// stop (all participants cancelled, or the group deadline passed).
  const CancelToken& solve_token() const { return solve_; }

  /// Registers one more request sharing this solve. Fails (returns false)
  /// iff the solve token has already fired — the registration and the
  /// fired-check are atomic under the group mutex, so a successful joiner
  /// can never be handed a solve that was cancelled out from under it
  /// between probe and join.
  bool AddParticipant(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  /// A participant cancelled; fires the solve token with `reason` once all
  /// participants have.
  void ParticipantCancelled(CancelReason reason);

 private:
  std::mutex mu_;
  CancelToken solve_;
  int participants_ = 0;
  int cancelled_ = 0;
  bool deadline_applies_ = true;  // false once a deadline-less joiner arrives
  std::optional<std::chrono::steady_clock::time_point> latest_deadline_;
};

/// Per-request delivery state shared between the engine, the ticket, and
/// (for deduped requests) the in-flight solve entry.
struct TicketImpl {
  TicketImpl() : own(CancelToken::Make()) {}

  /// This request's token: explicit Cancel() and the request's own
  /// deadline. Distinct from the group's solve token.
  CancelToken own;

  /// Exactly-once delivery guard for `done`.
  std::atomic<bool> delivered{false};

  /// The caller's completion callback. Invoked exactly once, by whichever
  /// of {worker completion, Cancel(), admission failure} wins the guard.
  std::function<void(AdpResponse)> done;

  /// The solve this request shares, once admitted. Null until then and for
  /// requests that never reach a solve (coalesce hits, shutdown).
  std::shared_ptr<SolveCancelGroup> group;

  /// Outcome counters (shared with the engine).
  std::shared_ptr<TicketCounters> counters;
};

/// Delivers `resp` to `t` exactly once; returns whether this call performed
/// the delivery. Counts kCancelled/kDeadlineExceeded outcomes, and — when a
/// successful result arrives after the request's own deadline already fired
/// (possible when a deduped sibling kept the solve alive) — substitutes a
/// kDeadlineExceeded response. Never throws; a throwing `done` is absorbed.
bool Deliver(TicketImpl& t, AdpResponse resp);

}  // namespace internal

class AdpTicket {
 public:
  /// An inert ticket: valid() is false, Cancel() is a no-op.
  AdpTicket() = default;

  /// True iff this ticket tracks a real submission.
  bool valid() const { return impl_ != nullptr; }

  /// True once the response has been delivered (completed, failed,
  /// cancelled, or expired).
  bool done() const;

  /// Requests cancellation. Returns true iff this call cancelled the
  /// request — i.e. the caller's callback/future received kCancelled right
  /// here; false when the response was already delivered, the ticket was
  /// already cancelled, or the ticket is inert. Safe to call from any
  /// thread, any number of times, even after the engine is destroyed.
  bool Cancel();

 private:
  friend class AdpEngine;

  explicit AdpTicket(std::shared_ptr<internal::TicketImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TicketImpl> impl_;
};

}  // namespace adp

#endif  // ADP_ENGINE_TICKET_H_
