// CompletionQueue: completion-order delivery for asynchronous ADP
// submissions (AdpEngine::SubmitToQueue).
//
// Callers tag each submission; finished responses are pushed by the worker
// that completed them and popped by the consumer with Poll (non-blocking),
// Next (block until one completion or nothing outstanding), or Drain (block
// until everything outstanding has completed). One queue may receive
// submissions from any number of threads and engines; the queue must
// outlive every submission tagged to it.
//
// Every submission produces exactly one completion, whatever its outcome:
// the typed Status round-trips through the queue, so failures arrive as
// responses with kParseError / kUnknownDatabase / ..., a ticket cancelled
// via AdpTicket::Cancel arrives as kCancelled (pushed at Cancel() time,
// not when the dropped solve would have finished), and an expired deadline
// as kDeadlineExceeded — detected lazily (at worker dequeue, at solver
// node boundaries, or at delivery; there is no timer thread).

#ifndef ADP_ENGINE_COMPLETION_QUEUE_H_
#define ADP_ENGINE_COMPLETION_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/request.h"

namespace adp {

/// One finished submission: the caller's tag plus the response.
struct Completion {
  std::uint64_t tag = 0;
  AdpResponse response;
};

class CompletionQueue {
 public:
  CompletionQueue() = default;
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Non-blocking: pops the oldest ready completion, or nullopt if none is
  /// ready right now (outstanding submissions may still complete later).
  std::optional<Completion> Poll();

  /// Blocks until a completion is ready and pops it. Returns nullopt only
  /// when nothing is ready *and* no submission is outstanding.
  std::optional<Completion> Next();

  /// Blocks until every outstanding submission has completed, then pops and
  /// returns all ready completions in completion order. Returns whatever is
  /// queued immediately when nothing is outstanding.
  std::vector<Completion> Drain();

  /// Submissions not yet completed plus completions not yet popped.
  std::size_t outstanding() const;

 private:
  friend class AdpEngine;

  // Engine side: a submission was accepted for this queue / has finished.
  void AddPending();
  void Push(Completion c);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> ready_;
  std::size_t pending_ = 0;
};

}  // namespace adp

#endif  // ADP_ENGINE_COMPLETION_QUEUE_H_
