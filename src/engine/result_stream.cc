#include "engine/result_stream.h"

#include <chrono>

namespace adp {
namespace internal {
namespace {

/// A blocked producer re-polls its cancel token at this period even when no
/// consumer activity wakes it — deadline expiry has no notifier thread.
constexpr std::chrono::milliseconds kProducerPollPeriod{20};

}  // namespace

StreamState::StreamState(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void StreamState::MakeUnbounded() {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = static_cast<std::size_t>(-1);
}

void StreamState::Emit(StreamItem item) {
  std::unique_lock<std::mutex> lock(mu_);
  while (items_.size() >= capacity_ && !closed_) {
    // wait_for, not wait: a fired deadline must wake the producer even if
    // the consumer never touches the stream again.
    cv_.wait_for(lock, kProducerPollPeriod);
    if (cancel_.Check() != CancelReason::kNone && items_.size() >= capacity_) {
      // Cancelled while blocked on a full buffer: abort production rather
      // than wait for a consumer that may be gone. The catch ladder turns
      // this into the terminal item.
      throw CancelledError(cancel_.Check());
    }
  }
  if (closed_) throw CancelledError(CancelReason::kCancelled);
  items_.push_back(std::move(item));
  if (counters != nullptr) {
    counters->items.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void StreamState::Finish(StreamItem end) {
  const StatusCode code = end.status.code();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;  // defensive: at most one terminal
    finished_ = true;
    if (!closed_) {
      items_.push_back(std::move(end));
      if (counters != nullptr) {
        counters->items.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (counters != nullptr &&
      (code == StatusCode::kCancelled || code == StatusCode::kDeadlineExceeded ||
       code == StatusCode::kShutdown)) {
    counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

std::optional<StreamItem> StreamState::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return !items_.empty() || closed_ || end_consumed_;
  });
  if (items_.empty()) return std::nullopt;  // closed or exhausted
  StreamItem item = std::move(items_.front());
  items_.pop_front();
  if (item.kind == StreamItem::Kind::kEnd) end_consumed_ = true;
  cv_.notify_all();  // wake a producer blocked on the capacity bound
  return item;
}

std::optional<StreamItem> StreamState::TryNext() {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return std::nullopt;
  StreamItem item = std::move(items_.front());
  items_.pop_front();
  if (item.kind == StreamItem::Kind::kEnd) end_consumed_ = true;
  cv_.notify_all();
  return item;
}

void StreamState::Cancel() {
  cancel_.Cancel(CancelReason::kCancelled);
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

void StreamState::Close() {
  cancel_.Cancel(CancelReason::kCancelled);
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  items_.clear();
  cv_.notify_all();
}

bool StreamState::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ || (end_consumed_ && items_.empty());
}

}  // namespace internal

ResultStream::ResultStream(std::shared_ptr<internal::StreamState> state)
    : state_(std::move(state)),
      close_guard_(nullptr, [state = state_](void*) { state->Close(); }) {}

std::optional<StreamItem> ResultStream::Next() {
  if (state_ == nullptr) return std::nullopt;
  return state_->Next();
}

std::optional<StreamItem> ResultStream::TryNext() {
  if (state_ == nullptr) return std::nullopt;
  return state_->TryNext();
}

void ResultStream::Cancel() {
  if (state_ != nullptr) state_->Cancel();
}

void ResultStream::Close() {
  if (state_ != nullptr) state_->Close();
}

bool ResultStream::done() const {
  return state_ == nullptr || state_->done();
}

}  // namespace adp
