#include "engine/plan_cache.h"

#include <utility>

namespace adp {

void PlanCache::Touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  entry.lru_pos = lru_.begin();
}

std::shared_ptr<const CachedPlan> PlanCache::GetOrBuild(const std::string& key,
                                                        const Builder& builder,
                                                        bool* hit) {
  std::promise<std::shared_ptr<const CachedPlan>> promise;
  std::shared_future<std::shared_ptr<const CachedPlan>> fut;
  bool miss = false;
  std::uint64_t my_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      Touch(it->second);
      fut = it->second.plan;
    } else {
      ++misses_;
      miss = true;
      fut = promise.get_future().share();
      lru_.push_front(key);
      my_generation = ++next_generation_;
      entries_.emplace(key, Entry{fut, lru_.begin(), my_generation});
      while (capacity_ != 0 && entries_.size() > capacity_ &&
             lru_.back() != key) {
        entries_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  }

  if (miss) {
    try {
      promise.set_value(builder());
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the failed entry so later requests retry — but only if it is
      // still *our* insertion, not a successor that replaced it after an
      // eviction.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.generation == my_generation) {
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      }
    }
  }

  if (hit != nullptr) *hit = !miss;
  return fut.get();  // rethrows a failed build for every waiter
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace adp
