// Request/response types of the ADP engine.

#ifndef ADP_ENGINE_REQUEST_H_
#define ADP_ENGINE_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>

#include "query/query.h"
#include "solver/compute_adp.h"
#include "solver/solution.h"

namespace adp {

/// Handle of a database registered with an AdpEngine.
using DbId = int;
inline constexpr DbId kInvalidDbId = -1;

/// One ADP(Q, D, k) request. The query is given either as Datalog-style
/// text (parsed once, then served from the plan cache) or pre-parsed.
struct AdpRequest {
  /// Query text, e.g. "Q(A) :- R1(A,B), R2(B)". Used when `query` is unset.
  std::string query_text;

  /// Pre-parsed query; takes precedence over `query_text` when set.
  std::optional<ConjunctiveQuery> query;

  /// Database handle from AdpEngine::RegisterDatabase.
  DbId db = kInvalidDbId;

  /// Deletion target (number of output tuples to remove).
  std::int64_t k = 0;

  /// Solver knobs. `options.plan`, `options.stats`, and
  /// `options.parallelism` are engine-managed and ignored;
  /// `options.restrictions`, if set, must outlive the request.
  AdpOptions options;
};

/// Result of one request.
struct AdpResponse {
  /// False iff the request failed (parse error, unknown database, ...);
  /// `error` then describes the failure and `solution` is default-valued.
  bool ok = false;
  std::string error;

  AdpSolution solution;

  /// Recursion statistics of this solve.
  AdpStats stats;

  /// 64-bit canonical fingerprint of the (parsed) query.
  std::uint64_t fingerprint = 0;

  /// True iff the plan-cache lookup hit (parse + dichotomy + linearization
  /// + dispatch-tree work all skipped).
  bool plan_cache_hit = false;

  /// True iff this response was served by joining an identical in-flight
  /// solve (cross-request single-flight deduplication): solution, stats,
  /// and timings are copies of the leader request's.
  bool deduped = false;

  /// Wall-clock timings. `plan_ms` covers plan-cache lookup including any
  /// miss-path construction (parse + classification + linearization);
  /// `solve_ms` is the data-dependent solve; `total_ms` the whole request.
  double plan_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
};

}  // namespace adp

#endif  // ADP_ENGINE_REQUEST_H_
