// Request/response/handle types of the ADP engine.

#ifndef ADP_ENGINE_REQUEST_H_
#define ADP_ENGINE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "engine/status.h"
#include "query/query.h"
#include "solver/compute_adp.h"
#include "solver/solution.h"

namespace adp {

class AdpEngine;
class Database;
struct CachedPlan;
struct NamedDatabase;

namespace obs {
struct Trace;  // obs/trace.h; forward-declared to keep this header light
}  // namespace obs

/// Handle of a database registered with an AdpEngine.
using DbId = int;
inline constexpr DbId kInvalidDbId = -1;

/// A handle pinning the cached static work of one query — parsed form,
/// dichotomy verdict, dispatch plan, fingerprint — and, once Bind() has
/// been called, one database binding. Obtained from AdpEngine::Prepare.
///
/// Executing through a bound handle is the prepare-once / execute-many hot
/// path: the engine skips plan-key derivation, plan-cache probes, and
/// binding-cache probes entirely and goes straight to the data-dependent
/// solve.
///
/// Handles are cheap to copy (shared immutable state) and safe to use from
/// any thread, but must not outlive the engine that prepared them, and a
/// handle is only valid with the engine it came from.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  /// True iff this handle came from a successful Prepare.
  bool valid() const { return plan_ != nullptr; }

  /// True iff Bind pinned a database binding.
  bool bound() const { return bound_ != nullptr; }

  /// Pins the binding for `db` (positional share or by-name bind, resolved
  /// once here instead of per request). Rebinding replaces the pin.
  Status Bind(DbId db);

  /// Canonical fingerprint of the prepared query (0 when !valid()).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Database pinned by Bind, or kInvalidDbId.
  DbId bound_db() const { return db_; }

  /// The pinned plan; nullptr when !valid().
  const std::shared_ptr<const CachedPlan>& plan() const { return plan_; }

 private:
  friend class AdpEngine;

  AdpEngine* engine_ = nullptr;
  std::shared_ptr<const CachedPlan> plan_;
  std::shared_ptr<const NamedDatabase> named_;  // set by Bind
  std::shared_ptr<const Database> bound_;       // set by Bind
  DbId db_ = kInvalidDbId;
  std::uint64_t fingerprint_ = 0;
  std::string plan_key_;     // the text-path plan-cache key this handle pins
  std::string option_bits_;  // classification knobs the plan was built with
  std::string base_key_;     // dedup-key prefix (plan + binding identity)
};

/// One ADP(Q, D, k) request. The query is given as Datalog-style text
/// (parsed once, then served from the plan cache), pre-parsed, or as a
/// PreparedQuery handle whose static work — and, when bound, database
/// binding — was resolved ahead of time.
struct AdpRequest {
  /// Query text, e.g. "Q(A) :- R1(A,B), R2(B)". Used when neither `query`
  /// nor `prepared` is set.
  std::string query_text;

  /// Pre-parsed query; takes precedence over `query_text` when set.
  std::optional<ConjunctiveQuery> query;

  /// Prepared handle; wins over `query` and `query_text` when valid. When
  /// bound it also supplies the database and `db` is ignored.
  PreparedQuery prepared;

  /// Database handle from AdpEngine::RegisterDatabase. Ignored when
  /// `prepared` is bound.
  DbId db = kInvalidDbId;

  /// Deletion target (number of output tuples to remove).
  std::int64_t k = 0;

  /// Absolute deadline. A request whose deadline passes while still queued
  /// is dropped without ever solving; one that expires mid-solve aborts at
  /// the next recursion node boundary. Either way the response arrives
  /// with Status kDeadlineExceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Scheduling priority on the worker-pool queue. Higher runs first;
  /// within a priority level the earliest deadline dequeues first
  /// (requests without a deadline sort after every deadlined one), then
  /// FIFO. 0 is the default traffic class.
  int priority = 0;

  /// Stream witnesses at every intermediate k (1..k-1) too, not only at
  /// the final target. Only meaningful for StreamAdp; each intermediate
  /// batch is tagged with its own StreamItem::k. Off by default — the
  /// extra report() calls cost work proportional to the sum of the
  /// intermediate targets.
  bool stream_intermediate_witnesses = false;

  /// Collect a per-request span trace (obs/trace.h): the engine wires a
  /// TraceSink through the request pipeline and the solver recursion, and
  /// the response carries the recorded Trace. Traced requests never
  /// dedup/coalesce with untraced ones (a shared response could not say
  /// whose trace it carries). Off by default — the untraced path costs one
  /// pointer compare per recursion node.
  bool collect_trace = false;

  /// Solver knobs. `options.plan`, `options.stats`, `options.parallelism`,
  /// `options.cancel`, and `options.trace` are engine-managed and ignored;
  /// `options.restrictions`, if set, must outlive the request.
  AdpOptions options;
};

/// Result of one request.
struct AdpResponse {
  /// Typed outcome: status.ok() iff `solution` is valid; otherwise code()
  /// identifies the failure (kParseError, kUnknownDatabase,
  /// kUnknownRelation, kCancelled, kDeadlineExceeded, kShutdown, ...) and
  /// message() carries the detail.
  Status status;

  /// Shorthand for status.ok().
  bool ok() const { return status.ok(); }

  AdpSolution solution;

  /// Recursion statistics of this solve, including intra-request sharding
  /// engagement (AdpStats::sharded_universe_nodes /
  /// sharded_decompose_nodes). Deduped and coalesced responses carry a copy
  /// of the leader solve's stats.
  AdpStats stats;

  /// 64-bit canonical fingerprint of the (parsed) query.
  std::uint64_t fingerprint = 0;

  /// True iff the static work was served without building (a plan-cache
  /// hit, or a PreparedQuery pin).
  bool plan_cache_hit = false;

  /// True iff this response was served by joining an identical in-flight
  /// solve (cross-request single-flight deduplication): solution, stats,
  /// and timings are copies of the leader request's.
  bool deduped = false;

  /// True iff this response was served from the recent-results ring: an
  /// identical request completed within EngineConfig::coalesce_window_ms
  /// and its response was reused without a new solve.
  bool coalesced = false;

  /// Wall-clock timings. `plan_ms` covers plan-cache lookup including any
  /// miss-path construction (parse + classification + linearization);
  /// `solve_ms` is the data-dependent solve; `total_ms` the whole request;
  /// `queue_ms` is time spent queued on the worker pool before the pipeline
  /// started (0 for synchronous Execute).
  double plan_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  double queue_ms = 0.0;

  /// The recorded span trace, set iff AdpRequest::collect_trace was true
  /// and the pipeline ran (deduped/coalesced responses carry the leader
  /// solve's trace). Export with Trace::WriteJson.
  std::shared_ptr<const obs::Trace> trace;
};

}  // namespace adp

#endif  // ADP_ENGINE_REQUEST_H_
