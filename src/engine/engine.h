// AdpEngine: a concurrent, plan-caching evaluation engine for ADP requests.
//
// The engine separates the two halves of an ADP(Q, D, k) computation:
//
//   static   — parse, selection pushdown (query side), dichotomy verdict,
//              linearization, Algorithm-2 dispatch tree. Query-complexity
//              work, independent of the data; memoized in a PlanCache keyed
//              by query text / canonical fingerprint (plus the option knobs
//              that influence classification).
//   dynamic  — the data-dependent solve (ComputeAdp with AdpOptions::plan
//              set), run on a fixed-size worker pool.
//
// Databases are registered once and interned as shared immutable instances;
// per-(query, database) positional bindings are cached too, so a batch of
// requests against one database shares a single bound copy.
//
// Three mechanisms keep the pool busy and the work deduplicated:
//
//   * intra-request sharding — one large request's Universe partition
//     groups (Algorithm 4) are fanned out across the pool via
//     ThreadPool::RunAll, so a single solve parallelizes internally
//     (EngineConfig::min_shard_groups);
//   * async submission — SubmitAsync invokes a callback on completion, and
//     SubmitToQueue delivers tagged completions to a CompletionQueue with
//     Poll/Next/Drain, so callers are not future-bound;
//   * single-flight solve dedup — identical concurrent (plan key, db, k,
//     solve knobs) requests share one solve: the first becomes the leader,
//     the rest receive copies of its response (AdpResponse::deduped,
//     EngineCounters::dedup_hits).
//
// Thread safety: all public methods are safe to call concurrently, including
// from inside engine callbacks (nested submissions run inline rather than
// deadlocking the pool).
//
//   AdpEngine engine({.num_workers = 4});
//   DbId db = engine.RegisterDatabase(std::move(named_db));
//   auto fut = engine.Submit({.query_text = "Q(A) :- R1(A,B), R2(B)",
//                             .db = db, .k = 2});
//   AdpResponse r = fut.get();

#ifndef ADP_ENGINE_ENGINE_H_
#define ADP_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/completion_queue.h"
#include "engine/plan_cache.h"
#include "engine/request.h"
#include "engine/thread_pool.h"
#include "relational/database.h"

namespace adp {

/// A database whose relations are addressed by name. `relation_names` is
/// parallel to `db`'s instances; at request time each body atom of the
/// query is bound to the instance with the matching name. A query naming a
/// relation the database does not have is an error (reported through
/// AdpResponse::error) — silently binding an empty instance would turn a
/// typo into a wrong answer.
/// When `relation_names` is empty the database is *positional*: it must
/// align with the query body index-for-index and is shared without copying.
struct NamedDatabase {
  std::vector<std::string> relation_names;
  Database db;
};

struct EngineConfig {
  /// Worker threads executing solves. Clamped to >= 1.
  int num_workers = 4;

  /// PlanCache capacity (0 = unbounded).
  std::size_t plan_cache_capacity = 1024;

  /// Binding-cache capacity in entries (0 = unbounded). One entry per
  /// (database, query-shape) pair.
  std::size_t binding_cache_capacity = 4096;

  /// Intra-request sharding: a Universe node with at least this many
  /// partition groups fans its sub-solves out across the worker pool
  /// (Parallelism::min_groups). 0 disables sharding — every request then
  /// runs single-threaded, parallel only across requests.
  std::size_t min_shard_groups = 4;
};

/// Monotonic counters, snapshot via AdpEngine::counters().
struct EngineCounters {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t binding_hits = 0;
  std::uint64_t binding_misses = 0;
  /// Requests served by joining an identical in-flight solve (the solve ran
  /// once; these received copies). requests - dedup_hits = solves started.
  std::uint64_t dedup_hits = 0;
  std::size_t plan_cache_size = 0;
  std::size_t databases = 0;
};

class AdpEngine {
 public:
  explicit AdpEngine(const EngineConfig& config = {});
  ~AdpEngine();

  AdpEngine(const AdpEngine&) = delete;
  AdpEngine& operator=(const AdpEngine&) = delete;

  // --- Databases -----------------------------------------------------------

  /// Interns `db` and returns its handle. The instance is immutable from
  /// here on and shared by every request that names it.
  DbId RegisterDatabase(NamedDatabase db);

  /// Convenience: positional database (see NamedDatabase).
  DbId RegisterDatabase(Database db);

  /// The interned database, or nullptr for an unknown id.
  std::shared_ptr<const NamedDatabase> database(DbId id) const;

  // --- Requests ------------------------------------------------------------

  /// Runs `req` synchronously in the calling thread. Never throws: failures
  /// are reported via AdpResponse::ok / error. Leads the single-flight
  /// entry when none exists (concurrent async arrivals then share this
  /// solve) but never *joins* one — an in-flight leader may still be queued
  /// behind other work, and the sync path keeps one-solve latency.
  AdpResponse Execute(const AdpRequest& req);

  /// Enqueues `req` on the worker pool. An identical in-flight request is
  /// joined instead of enqueued (the returned future then completes with a
  /// copy of the leader's response, deduped = true).
  std::future<AdpResponse> Submit(AdpRequest req);

  /// Enqueues `req`; `done` is invoked exactly once with the response, on
  /// the worker (or deduped leader's) thread that completed it — including
  /// on failures, which arrive as a failed AdpResponse rather than an
  /// exception. When called from inside a pool worker the request runs —
  /// and `done` fires — inline before SubmitAsync returns. `done` should
  /// not throw; an exception escaping it is caught and dropped (it would
  /// otherwise starve other deduped waiters or kill a worker thread).
  void SubmitAsync(AdpRequest req, std::function<void(AdpResponse)> done);

  /// Enqueues `req`; on completion pushes {tag, response} onto `cq`.
  /// `cq` must outlive the submission (consume with Poll/Next/Drain).
  void SubmitToQueue(AdpRequest req, CompletionQueue& cq, std::uint64_t tag);

  /// Runs a batch on the worker pool and returns responses in request
  /// order (blocking). Safe to call from inside a pool worker.
  std::vector<AdpResponse> ExecuteBatch(std::vector<AdpRequest> reqs);

  // --- Introspection -------------------------------------------------------

  EngineCounters counters() const;
  int num_workers() const { return pool_.num_threads(); }

  /// Drops the plan cache and the binding cache. In-flight requests keep
  /// the shared plans/bindings they already hold; later requests rebuild.
  void ClearCaches();

  /// The cached plan a request would use, building it on demand; nullptr
  /// with `error` filled on parse failure. Useful for EXPLAIN-style tools.
  std::shared_ptr<const CachedPlan> PlanFor(const AdpRequest& req,
                                            std::string* error = nullptr);

 private:
  /// A solve shared by every identical request that arrived while it was
  /// in flight. Waiters are registered and the map entry erased under mu_,
  /// so a joiner either sees the entry (and its callback fires) or becomes
  /// the next leader.
  struct InflightSolve {
    std::vector<std::function<void(const AdpResponse&)>> waiters;
  };

  std::shared_ptr<const CachedPlan> GetPlan(const AdpRequest& req,
                                            const std::string& plan_key,
                                            bool* hit);
  std::shared_ptr<const Database> BindDatabase(
      const std::shared_ptr<const NamedDatabase>& named,
      const CachedPlan& plan);

  /// The full request pipeline (plan, bind, solve), without dedup or
  /// request counting. `plan_key` is the precomputed plan-cache key of
  /// `req` (callers derive it alongside the dedup key).
  AdpResponse SolveNow(const AdpRequest& req, const std::string& plan_key);

  /// Counts the request and probes the single-flight table. Returns a
  /// fresh in-flight record when this request becomes the leader for
  /// `key`, else nullptr. A non-null `on_done` joins an existing entry as
  /// a follower (fires with the leader's response, deduped set; counted in
  /// dedup_hits); a null `on_done` (sync path, which never waits) leaves
  /// an existing entry untouched and the caller solves independently.
  std::shared_ptr<InflightSolve> Lead(
      const std::string& key, std::function<void(const AdpResponse&)> on_done);

  /// Leader side: publishes `resp` to every waiter and retires the entry.
  void PublishInflight(const std::string& key,
                       const std::shared_ptr<InflightSolve>& state,
                       const AdpResponse& resp);

  const EngineConfig config_;
  PlanCache plan_cache_;
  Parallelism sharding_;  // run_all bound to pool_; unset if disabled

  mutable std::mutex mu_;  // guards databases_, bindings_, inflight_, counters
  std::vector<std::shared_ptr<const NamedDatabase>> databases_;
  std::unordered_map<std::string, std::shared_ptr<const Database>> bindings_;
  std::unordered_map<std::string, std::shared_ptr<InflightSolve>> inflight_;
  std::uint64_t requests_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t binding_hits_ = 0;
  std::uint64_t binding_misses_ = 0;
  std::uint64_t dedup_hits_ = 0;

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace adp

#endif  // ADP_ENGINE_ENGINE_H_
