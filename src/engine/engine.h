// AdpEngine: a concurrent, plan-caching evaluation engine for ADP requests.
//
// The engine separates the two halves of an ADP(Q, D, k) computation:
//
//   static   — parse, selection pushdown (query side), dichotomy verdict,
//              linearization, Algorithm-2 dispatch tree. Query-complexity
//              work, independent of the data; memoized in a PlanCache keyed
//              by query text / canonical fingerprint (plus the option knobs
//              that influence classification).
//   dynamic  — the data-dependent solve (ComputeAdp with AdpOptions::plan
//              set), run on a fixed-size worker pool.
//
// Databases are registered once and interned as shared immutable instances;
// per-(query, database) positional bindings are cached too, so a batch of
// requests against one database shares a single bound copy.
//
// Thread safety: all public methods are safe to call concurrently.
//
//   AdpEngine engine({.num_workers = 4});
//   DbId db = engine.RegisterDatabase(std::move(named_db));
//   auto fut = engine.Submit({.query_text = "Q(A) :- R1(A,B), R2(B)",
//                             .db = db, .k = 2});
//   AdpResponse r = fut.get();

#ifndef ADP_ENGINE_ENGINE_H_
#define ADP_ENGINE_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/plan_cache.h"
#include "engine/request.h"
#include "engine/thread_pool.h"
#include "relational/database.h"

namespace adp {

/// A database whose relations are addressed by name. `relation_names` is
/// parallel to `db`'s instances; at request time each body atom of the
/// query is bound to the instance with the matching name (atoms with no
/// match get an empty instance, as in an outer-joined catalog).
/// When `relation_names` is empty the database is *positional*: it must
/// align with the query body index-for-index and is shared without copying.
struct NamedDatabase {
  std::vector<std::string> relation_names;
  Database db;
};

struct EngineConfig {
  /// Worker threads executing solves. Clamped to >= 1.
  int num_workers = 4;

  /// PlanCache capacity (0 = unbounded).
  std::size_t plan_cache_capacity = 1024;

  /// Binding-cache capacity in entries (0 = unbounded). One entry per
  /// (database, query-shape) pair.
  std::size_t binding_cache_capacity = 4096;
};

/// Monotonic counters, snapshot via AdpEngine::counters().
struct EngineCounters {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t binding_hits = 0;
  std::uint64_t binding_misses = 0;
  std::size_t plan_cache_size = 0;
  std::size_t databases = 0;
};

class AdpEngine {
 public:
  explicit AdpEngine(const EngineConfig& config = {});
  ~AdpEngine();

  AdpEngine(const AdpEngine&) = delete;
  AdpEngine& operator=(const AdpEngine&) = delete;

  // --- Databases -----------------------------------------------------------

  /// Interns `db` and returns its handle. The instance is immutable from
  /// here on and shared by every request that names it.
  DbId RegisterDatabase(NamedDatabase db);

  /// Convenience: positional database (see NamedDatabase).
  DbId RegisterDatabase(Database db);

  /// The interned database, or nullptr for an unknown id.
  std::shared_ptr<const NamedDatabase> database(DbId id) const;

  // --- Requests ------------------------------------------------------------

  /// Runs `req` synchronously in the calling thread. Never throws: failures
  /// are reported via AdpResponse::ok / error.
  AdpResponse Execute(const AdpRequest& req);

  /// Enqueues `req` on the worker pool.
  std::future<AdpResponse> Submit(AdpRequest req);

  /// Runs a batch on the worker pool and returns responses in request
  /// order (blocking).
  std::vector<AdpResponse> ExecuteBatch(std::vector<AdpRequest> reqs);

  // --- Introspection -------------------------------------------------------

  EngineCounters counters() const;
  int num_workers() const { return pool_.num_threads(); }

  /// The cached plan a request would use, building it on demand; nullptr
  /// with `error` filled on parse failure. Useful for EXPLAIN-style tools.
  std::shared_ptr<const CachedPlan> PlanFor(const AdpRequest& req,
                                            std::string* error = nullptr);

 private:
  std::shared_ptr<const CachedPlan> GetPlan(const AdpRequest& req, bool* hit);
  std::shared_ptr<const Database> BindDatabase(
      const std::shared_ptr<const NamedDatabase>& named,
      const CachedPlan& plan);

  const EngineConfig config_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;  // guards databases_, bindings_, counters
  std::vector<std::shared_ptr<const NamedDatabase>> databases_;
  std::unordered_map<std::string, std::shared_ptr<const Database>> bindings_;
  std::uint64_t requests_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t binding_hits_ = 0;
  std::uint64_t binding_misses_ = 0;

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace adp

#endif  // ADP_ENGINE_ENGINE_H_
