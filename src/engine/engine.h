// AdpEngine: a concurrent, plan-caching evaluation engine for ADP requests.
//
// The engine separates the two halves of an ADP(Q, D, k) computation:
//
//   static   — parse, selection pushdown (query side), dichotomy verdict,
//              linearization, Algorithm-2 dispatch tree. Query-complexity
//              work, independent of the data; memoized in a PlanCache keyed
//              by query text / canonical fingerprint (plus the option knobs
//              that influence classification), and pinnable ahead of time
//              via Prepare() -> PreparedQuery.
//   dynamic  — the data-dependent solve (ComputeAdp with AdpOptions::plan
//              set), run on a fixed-size worker pool.
//
// Databases are registered once and interned as shared immutable instances;
// per-(query, database) positional bindings are cached too, so a batch of
// requests against one database shares a single bound copy. A
// PreparedQuery::Bind pins one binding into the handle, so the
// prepare-once / execute-many hot path performs no key derivation, plan
// probes, or binding probes at all.
//
// Failures are typed: every AdpResponse carries a Status (engine/status.h)
// whose code distinguishes parse errors, unknown databases/relations,
// cancellation, deadline expiry, and shutdown. Factory entry points
// (Prepare) return StatusOr.
//
// Mechanisms that keep the pool busy and the work deduplicated:
//
//   * intra-request sharding — one large request's Universe partition
//     groups (Algorithm 4) and Decompose connected components (Algorithm 5)
//     are fanned out across the pool via ThreadPool::RunAll
//     (EngineConfig::min_shard_groups / min_shard_components);
//   * async submission — Submit (future), SubmitAsync (callback), and
//     SubmitToQueue (tagged CompletionQueue) all return an AdpTicket
//     supporting Cancel(); AdpRequest::deadline bounds queue wait + solve;
//   * single-flight solve dedup — identical concurrent (plan key, db, k,
//     solve knobs) requests share one solve (AdpResponse::deduped); the
//     shared solve is cancelled only when every participant cancels;
//   * coalescing admission — with EngineConfig::coalesce_window_ms > 0,
//     a request identical to one that *completed* within the window is
//     served from a small recent-results ring without re-solving
//     (AdpResponse::coalesced, EngineCounters::coalesce_hits);
//   * streaming enumeration — StreamAdp runs one solve and delivers its
//     ranked profile (k = 1..K) and witness set incrementally through a
//     backpressured ResultStream instead of one monolithic response
//     (engine/result_stream.h, docs/STREAMING.md).
//
// Thread safety: all public methods are safe to call concurrently,
// including from inside engine callbacks (nested submissions run inline
// rather than deadlocking the pool).
//
//   AdpEngine engine({.num_workers = 4});
//   DbId db = engine.RegisterDatabase(std::move(named_db));
//   auto prepared = engine.Prepare("Q(A) :- R1(A,B), R2(B)");
//   if (!prepared.ok()) return StatusExitCode(prepared.status().code());
//   prepared->Bind(db);
//   AdpResponse r = engine.Execute(*prepared, /*k=*/2);

#ifndef ADP_ENGINE_ENGINE_H_
#define ADP_ENGINE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/completion_queue.h"
#include "engine/plan_cache.h"
#include "engine/request.h"
#include "engine/result_stream.h"
#include "engine/status.h"
#include "engine/thread_pool.h"
#include "engine/ticket.h"
#include "relational/database.h"
#include "util/stopwatch.h"

namespace adp {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceSink;
}  // namespace obs

/// A database whose relations are addressed by name. `relation_names` is
/// parallel to `db`'s instances; at request time each body atom of the
/// query is bound to the instance with the matching name. A query naming a
/// relation the database does not have fails with kUnknownRelation —
/// silently binding an empty instance would turn a typo into a wrong
/// answer.
/// When `relation_names` is empty the database is *positional*: it must
/// align with the query body index-for-index and is shared without copying.
struct NamedDatabase {
  std::vector<std::string> relation_names;
  Database db;
};

struct EngineConfig {
  /// Worker threads executing solves. Clamped to >= 1.
  int num_workers = 4;

  /// PlanCache capacity (0 = unbounded).
  std::size_t plan_cache_capacity = 1024;

  /// Binding-cache capacity in entries (0 = unbounded). One entry per
  /// (database, query-shape) pair.
  std::size_t binding_cache_capacity = 4096;

  /// Intra-request sharding, Universe axis: a Universe node with at least
  /// this many partition groups fans its sub-solves out across the worker
  /// pool (Parallelism::min_groups). 0 disables Universe sharding.
  std::size_t min_shard_groups = 4;

  /// Intra-request sharding, Decompose axis: a Decompose node with at
  /// least this many connected components fans its per-component
  /// sub-solves out across the worker pool (Parallelism::min_components);
  /// the cross-product DP combining their profiles stays on the solving
  /// thread. 0 disables Decompose sharding. With both axes 0 every request
  /// runs single-threaded, parallel only across requests.
  std::size_t min_shard_components = 4;

  /// Dedup-aware admission window: a request identical to one that
  /// completed successfully within the last `coalesce_window_ms`
  /// milliseconds is answered from a small recent-results ring instead of
  /// re-solving. 0 disables coalescing (every request solves, modulo
  /// in-flight dedup). Serving a result up to this stale must be
  /// acceptable to the caller.
  double coalesce_window_ms = 0.0;

  /// StreamAdp: maximum witness tuples per kWitnesses StreamItem. Larger
  /// batches amortize per-item overhead; smaller ones bound per-item memory
  /// and tighten backpressure. 0 delivers the whole witness set as one
  /// batch. See docs/STREAMING.md.
  std::size_t stream_batch_tuples = 256;

  /// Load-shedding admission bound: an async request (Submit / SubmitAsync /
  /// SubmitToQueue / StreamAdp) arriving while more than this many tasks
  /// wait on the pool queue is rejected with kOverloaded instead of being
  /// enqueued (EngineCounters::shed). Synchronous Execute is never shed —
  /// it occupies the caller's thread, not a queue slot. 0 = unbounded
  /// (never shed).
  std::size_t max_queue_depth = 0;
};

/// Monotonic counters, snapshot via AdpEngine::counters(). Assembled as a
/// view over the engine's MetricsRegistry (obs/metrics.h) plus the caches'
/// own counters — see metrics() for the registry itself, which additionally
/// carries the latency histograms.
struct EngineCounters {
  /// Requests admitted — counted whatever the outcome, except kShutdown
  /// rejections (the engine is no longer serving).
  std::uint64_t requests = 0;
  /// Responses with a genuine error status (parse, unknown db/relation,
  /// invalid prepared handle, internal). Cancelled / expired requests are
  /// counted separately.
  std::uint64_t failures = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t binding_hits = 0;
  std::uint64_t binding_misses = 0;
  /// Requests served by joining an identical in-flight solve (the solve ran
  /// once; these received copies).
  std::uint64_t dedup_hits = 0;
  /// Requests served from the recent-results ring (coalescing admission).
  std::uint64_t coalesce_hits = 0;
  /// Requests whose response was kCancelled (AdpTicket::Cancel won).
  std::uint64_t cancelled = 0;
  /// Requests whose response was kDeadlineExceeded.
  std::uint64_t deadline_expired = 0;
  /// Requests and streams rejected at admission with kOverloaded because
  /// the pool queue exceeded EngineConfig::max_queue_depth. Shed requests
  /// count in `requests` (they were offered) but not in `failures`.
  std::uint64_t shed = 0;
  /// Rollup of AdpStats::sharded_universe_nodes across completed solves:
  /// Universe nodes whose partition groups fanned out across the pool.
  /// Deduped/coalesced responses reuse the leader's solve and do not
  /// re-count its sharded nodes.
  std::uint64_t sharded_universe_nodes = 0;
  /// Rollup of AdpStats::sharded_decompose_nodes across completed solves:
  /// Decompose nodes whose component sub-solves fanned out across the pool.
  std::uint64_t sharded_decompose_nodes = 0;
  /// StreamAdp calls admitted, whatever their outcome (kShutdown rejections
  /// excepted, mirroring `requests`). Streams are counted here, not in
  /// `requests` — they are not request/response traffic.
  std::uint64_t streams_opened = 0;
  /// StreamItems delivered into stream buffers, terminal items included.
  std::uint64_t stream_items = 0;
  /// Streams torn down before a natural end: terminal status kCancelled
  /// (explicit Cancel/Close), kDeadlineExceeded, or kShutdown.
  std::uint64_t stream_cancelled = 0;
  std::size_t plan_cache_size = 0;
  std::size_t databases = 0;
};

class AdpEngine {
 public:
  explicit AdpEngine(const EngineConfig& config = {});
  ~AdpEngine();

  AdpEngine(const AdpEngine&) = delete;
  AdpEngine& operator=(const AdpEngine&) = delete;

  // --- Databases -----------------------------------------------------------

  /// Interns `db` and returns its handle. The instance is immutable from
  /// here on and shared by every request that names it.
  DbId RegisterDatabase(NamedDatabase db);

  /// Convenience: positional database (see NamedDatabase).
  DbId RegisterDatabase(Database db);

  /// The interned database, or nullptr for an unknown id.
  std::shared_ptr<const NamedDatabase> database(DbId id) const;

  /// Releases the database behind `id`: subsequent lookups fail with
  /// kUnknownDatabase and the instance's memory is freed once the last
  /// in-flight request holding it finishes. Ids are never reused, so a
  /// stale id can only ever miss — it cannot alias a later registration.
  /// Returns false for an unknown or already-released id. Long-lived
  /// front ends (the network server) call this when a session's
  /// databases go out of scope so registrations don't accumulate.
  bool UnregisterDatabase(DbId id);

  // --- Prepared queries ----------------------------------------------------

  /// Builds (or fetches from the plan cache) the static work for the query
  /// and returns a handle pinning it. `options` matters only through its
  /// classification-relevant knobs (use_singleton, universe_strategy,
  /// presence of restrictions); executions through the handle must use
  /// options agreeing on those knobs, or fail with kInvalidArgument.
  /// Call PreparedQuery::Bind(db) afterwards to also pin the binding.
  StatusOr<PreparedQuery> Prepare(const std::string& query_text,
                                  const AdpOptions& options = {});
  StatusOr<PreparedQuery> Prepare(const ConjunctiveQuery& query,
                                  const AdpOptions& options = {});

  /// Batched Prepare: the static work for every query text under one cache
  /// pass — duplicate texts (same plan key) resolve the plan cache once and
  /// share the plan object. All-or-nothing: the first failing query's
  /// Status is returned and no handles are. Handles are positionally
  /// aligned with `query_texts`.
  StatusOr<std::vector<PreparedQuery>> PrepareBatch(
      std::span<const std::string> query_texts, const AdpOptions& options = {});

  // --- Requests ------------------------------------------------------------

  /// Runs `req` synchronously in the calling thread. Never throws: failures
  /// are reported via AdpResponse::status. Leads the single-flight entry
  /// when none exists (concurrent async arrivals then share this solve) but
  /// never *joins* one — an in-flight leader may still be queued behind
  /// other work, and the sync path keeps one-solve latency.
  AdpResponse Execute(const AdpRequest& req);

  /// Prepared-handle hot path: no key derivation, no cache probes.
  AdpResponse Execute(const PreparedQuery& prepared, std::int64_t k,
                      const AdpOptions& options = {});

  /// Enqueues `req` on the worker pool. An identical in-flight request is
  /// joined instead of enqueued (the returned future then completes with a
  /// copy of the leader's response, deduped = true). If `ticket` is
  /// non-null it receives the request's cancellation handle.
  std::future<AdpResponse> Submit(AdpRequest req, AdpTicket* ticket = nullptr);

  /// Prepared-handle variant of Submit.
  std::future<AdpResponse> Submit(const PreparedQuery& prepared,
                                  std::int64_t k,
                                  const AdpOptions& options = {},
                                  AdpTicket* ticket = nullptr);

  /// Enqueues `req`; `done` is invoked exactly once with the response —
  /// by the worker that completed it, by the deduped leader's completion,
  /// or by AdpTicket::Cancel / deadline expiry (failures arrive as a
  /// response with the matching Status, never as an exception). When called
  /// from inside a pool worker the request runs — and `done` fires — inline
  /// before SubmitAsync returns. `done` should not throw; an exception
  /// escaping it is caught and dropped. Returns the request's ticket.
  AdpTicket SubmitAsync(AdpRequest req, std::function<void(AdpResponse)> done);

  /// Enqueues `req`; on completion (including cancellation/expiry) pushes
  /// {tag, response} onto `cq`. `cq` must outlive the submission (consume
  /// with Poll/Next/Drain). Returns the request's ticket.
  AdpTicket SubmitToQueue(AdpRequest req, CompletionQueue& cq,
                          std::uint64_t tag);

  /// Runs a batch on the worker pool and returns responses in request
  /// order (blocking). Safe to call from inside a pool worker.
  std::vector<AdpResponse> ExecuteBatch(std::vector<AdpRequest> reqs);

  // --- Streaming ----------------------------------------------------------

  /// Streaming ranked-witness enumeration: runs ONE solve for `req` on the
  /// worker pool and returns immediately with a ResultStream that yields
  /// kProfile items for k = 1..req.k (ascending, from the single DP —
  /// never per-k re-solves), then the final target's witness set in
  /// batches of EngineConfig::stream_batch_tuples, then a terminal kEnd
  /// item. Concatenated, the stream reproduces Execute(req)'s AdpSolution
  /// exactly (witness batches arrive in enumeration order and normalize to
  /// AdpSolution::tuples). Streams are cancellable (ResultStream::Cancel/Close),
  /// deadline-aware (req.deadline), closed by Shutdown() (terminal
  /// kShutdown), and never dedup/coalesce with other requests — every
  /// stream is its own solve. Item ordering, backpressure, and teardown
  /// semantics: docs/STREAMING.md. When called from inside a pool worker
  /// the stream is produced inline (fully buffered) before returning.
  ResultStream StreamAdp(AdpRequest req);

  /// Prepared-handle hot path variant: no key derivation, no cache probes.
  ResultStream StreamAdp(const PreparedQuery& prepared, std::int64_t k,
                         const AdpOptions& options = {});

  // --- Lifecycle -----------------------------------------------------------

  /// Fail-fast shutdown gate: after this, every new request (and Prepare)
  /// is answered with kShutdown without solving. Requests already admitted
  /// drain normally; the destructor implies a drain either way. Idempotent.
  void Shutdown();

  // --- Introspection -------------------------------------------------------

  EngineCounters counters() const;
  int num_workers() const { return pool_.num_threads(); }

  /// The engine's metrics registry: the counters behind counters(), plus
  /// the latency histograms (adp_request_latency_ms, adp_queue_wait_ms,
  /// adp_solve_ms, adp_stream_first_item_ms — src/obs/names.h). Counters
  /// whose source of truth lives outside the registry (plan cache, ticket
  /// and stream terminals) are only guaranteed current after a counters()
  /// or WriteMetricsText() call mirrored them in. The reference is valid
  /// only for the engine's lifetime; callers that must read the registry
  /// after the engine is gone (bench harness, a restarted adp_server)
  /// take shared ownership via metrics_shared() instead.
  obs::MetricsRegistry& metrics() const;
  std::shared_ptr<obs::MetricsRegistry> metrics_shared() const;

  /// Prometheus text exposition (0.0.4) of the full registry, externally-
  /// sourced counters and gauges mirrored in first. Backs the adp_server
  /// METRICS command.
  void WriteMetricsText(std::ostream& out) const;

  /// Drops the plan cache, the binding cache, and the recent-results ring.
  /// In-flight requests and PreparedQuery handles keep the shared
  /// plans/bindings they already hold; later requests rebuild.
  void ClearCaches();

  /// The cached plan a request would use, building it on demand; nullptr
  /// with `status` filled on failure. Useful for EXPLAIN-style tools.
  std::shared_ptr<const CachedPlan> PlanFor(const AdpRequest& req,
                                            Status* status = nullptr);

 private:
  friend class PreparedQuery;

  /// The two cache identities of one request; solve extends plan.
  struct RequestKeys {
    std::string plan;   // plan-cache key (empty for prepared handles)
    std::string solve;  // single-flight dedup / coalesce key
  };

  /// A solve shared by every identical request that arrived while it was
  /// in flight. Tickets are registered and the map entry erased under mu_,
  /// so a joiner either sees the entry (and its delivery fires at publish)
  /// or becomes the next leader.
  struct InflightSolve {
    std::shared_ptr<internal::TicketImpl> leader;  // null for sync leaders
    std::vector<std::shared_ptr<internal::TicketImpl>> followers;
    std::shared_ptr<internal::SolveCancelGroup> group;
  };

  /// One completed solve, kept for coalescing admission. `pins` keep alive
  /// every object whose address appears in `key` (a PreparedQuery's plan
  /// and binding) — without them the allocator could reuse a freed plan's
  /// address within the window and a later, different request would match
  /// this entry (ABA) and be served the wrong result.
  struct RecentResult {
    std::string key;
    MonotonicClock::time_point completed;
    std::shared_ptr<const AdpResponse> response;
    std::vector<std::shared_ptr<const void>> pins;
  };

  RequestKeys KeysFor(const AdpRequest& req) const;

  /// kInvalidArgument when req.prepared belongs to another engine or its
  /// classification knobs disagree with req.options; OK otherwise.
  Status ValidatePrepared(const AdpRequest& req) const;

  StatusOr<PreparedQuery> PrepareRequest(const AdpRequest& req);

  /// Pins the binding for `db` into `prepared` (PreparedQuery::Bind body).
  Status BindPrepared(PreparedQuery& prepared, DbId db);

  std::shared_ptr<const CachedPlan> GetPlan(const AdpRequest& req,
                                            const std::string& plan_key,
                                            bool* hit);
  std::shared_ptr<const Database> BindDatabase(
      const std::shared_ptr<const NamedDatabase>& named,
      const CachedPlan& plan);

  /// Counts the request and probes the recent-results ring. Returns the
  /// coalesced response on a hit (deep-copied outside the engine lock).
  std::optional<AdpResponse> Admit(const std::string& solve_key);

  /// Counts a request rejected before admission (invalid prepared handle)
  /// as one request and one failure, and returns its failure response.
  AdpResponse CountRejected(Status status);

  /// Builds the recent-results ring entry for (req, resp), or nullopt when
  /// the result must not be remembered: coalescing disabled, a failed
  /// response, or a key naming caller-owned memory the ring cannot pin
  /// (deletion restrictions). Called outside mu_ (deep-copies `resp`).
  std::optional<RecentResult> MakeRecent(const AdpRequest& req,
                                         const std::string& solve_key,
                                         const AdpResponse& resp) const;

  /// The full request pipeline (plan, bind, solve), without dedup or
  /// request counting. `keys` are the precomputed cache keys of `req`;
  /// `cancel`, when non-null, is polled by the solver recursion.
  /// `queue_wait_ms` — how long the request sat on the pool before this
  /// call — backdates the trace origin (the synthetic adp.queue span) and
  /// feeds the end-to-end latency histogram.
  AdpResponse SolveNow(const AdpRequest& req, const RequestKeys& keys,
                       const CancelToken* cancel,
                       double queue_wait_ms = 0.0);

  /// Resolves the static work and database binding of `req` — prepared
  /// pin, or plan-cache + binding-cache probes — shared by SolveNow and
  /// RunStream so the two request pipelines cannot drift. `plan_key` is
  /// the precomputed plan-cache key (unused for prepared handles).
  /// `plan_cache_hit` (whether the static work was served without
  /// building), `plan_ms` (plan-fetch time), and `fingerprint` (optional)
  /// are all assigned before the binding step, so a binding failure leaves
  /// them filled on the response. Throws EngineError/ParseError on
  /// failure. `sink`/`trace_parent` (nullable) wrap the two steps in
  /// adp.plan / adp.bind spans.
  void ResolveStatic(const AdpRequest& req, const std::string& plan_key,
                     std::shared_ptr<const CachedPlan>* plan,
                     std::shared_ptr<const Database>* bound,
                     bool* plan_cache_hit, double* plan_ms,
                     std::uint64_t* fingerprint,
                     obs::TraceSink* sink = nullptr,
                     std::uint32_t trace_parent = 0);

  /// Stream producer body: resolves plan + binding, runs the single
  /// ComputeAdpNode DP, and emits profile/witness items into `state`,
  /// always ending with a terminal kEnd item. Runs on a pool worker (or
  /// inline for nested calls).
  void RunStream(const AdpRequest& req,
                 const std::shared_ptr<internal::StreamState>& state);

  /// Fires the cancel token of every still-open stream with the shutdown
  /// flag set, so producers end promptly with terminal kShutdown. Called by
  /// Shutdown() and the destructor (before the pool joins).
  void CancelOpenStreams();

  /// Execute minus the terminal cancelled/expired counter bump (so the
  /// inline SubmitAsync path can count through Deliver instead).
  AdpResponse ExecuteImpl(const AdpRequest& req);

  /// Probes the single-flight table under mu_. Returns a fresh in-flight
  /// record when this request becomes the leader for `key` (ticket may be
  /// null: sync leaders have no cancellation handle), else null — either
  /// `ticket` joined the existing entry as a follower (its delivery fires
  /// with the leader's response, deduped set; counted in dedup_hits), or
  /// the caller was synchronous and solves independently. An entry whose
  /// shared solve has already been cancelled is replaced, never joined.
  std::shared_ptr<InflightSolve> LeadOrJoin(
      const std::string& key,
      const std::shared_ptr<internal::TicketImpl>& ticket,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  /// Leader side: retires the entry, remembers `recent` (if any) for
  /// coalescing, and delivers to the leader's and every follower's ticket.
  void PublishInflight(const std::string& key,
                       const std::shared_ptr<InflightSolve>& state,
                       const AdpResponse& resp,
                       std::optional<RecentResult> recent);

  bool IsShutdown() const;

  /// RecordTotal-mirrors the counters whose source of truth lives outside
  /// the registry (plan cache, ticket/stream terminals) and refreshes the
  /// gauges, so a registry read observes them current.
  void MirrorExternalMetrics() const;

  const EngineConfig config_;
  PlanCache plan_cache_;
  Parallelism sharding_;  // run_all bound to pool_; unset if disabled
  std::shared_ptr<internal::TicketCounters> ticket_counters_;
  std::shared_ptr<internal::StreamCounters> stream_counters_;

  /// The metrics sink (obs/metrics.h). Engine-internal counters below point
  /// straight into it — their updates are lock-free relaxed atomics, so
  /// none of them need mu_ anymore. shared_ptr: metrics_shared() lets
  /// callers (bench harness, adp_server) keep the registry alive past a
  /// restarted engine.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* failures_ = nullptr;
  obs::Counter* binding_hits_ = nullptr;
  obs::Counter* binding_misses_ = nullptr;
  obs::Counter* dedup_hits_ = nullptr;
  obs::Counter* coalesce_hits_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* sharded_universe_nodes_ = nullptr;
  obs::Counter* sharded_decompose_nodes_ = nullptr;
  obs::Counter* traces_collected_ = nullptr;
  obs::Histogram* request_latency_ms_ = nullptr;
  obs::Histogram* queue_wait_ms_ = nullptr;
  obs::Histogram* solve_ms_ = nullptr;
  obs::Histogram* stream_first_item_ms_ = nullptr;

  mutable std::mutex mu_;  // guards databases_, next_db_id_, bindings_,
                           // inflight_, recent_, streams_, shutdown_
  std::unordered_map<DbId, std::shared_ptr<const NamedDatabase>> databases_;
  DbId next_db_id_ = 0;  // ids are never reused: a released id stays dead
  std::unordered_map<std::string, std::shared_ptr<const Database>> bindings_;
  std::unordered_map<std::string, std::shared_ptr<InflightSolve>> inflight_;
  std::deque<RecentResult> recent_;  // newest at back; bounded ring
  std::vector<std::weak_ptr<internal::StreamState>> streams_;  // open streams
  bool shutdown_ = false;

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace adp

#endif  // ADP_ENGINE_ENGINE_H_
