#include "engine/completion_queue.h"

#include <utility>

namespace adp {

void CompletionQueue::AddPending() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_;
}

void CompletionQueue::Push(Completion c) {
  // Notify *inside* the lock: the consumer may destroy the queue the
  // moment it observes pending_ == 0, so cv_ must not be touched after
  // mu_ is released.
  std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(std::move(c));
  --pending_;
  cv_.notify_all();
}

std::optional<Completion> CompletionQueue::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ready_.empty()) return std::nullopt;
  Completion c = std::move(ready_.front());
  ready_.pop_front();
  return c;
}

std::optional<Completion> CompletionQueue::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !ready_.empty() || pending_ == 0; });
  if (ready_.empty()) return std::nullopt;
  Completion c = std::move(ready_.front());
  ready_.pop_front();
  return c;
}

std::vector<Completion> CompletionQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  std::vector<Completion> out(std::make_move_iterator(ready_.begin()),
                              std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

std::size_t CompletionQueue::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size() + pending_;
}

}  // namespace adp
