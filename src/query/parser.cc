#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace adp {
namespace {

// A tiny recursive-descent scanner over the query text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(Byte(pos_))) ++pos_;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Consume(c)) {
      Fail(std::string("expected '") + c + "'");
    }
  }

  bool ConsumeTurnstile() {
    SkipSpace();
    if (text_.substr(pos_, 2) == ":-") {
      pos_ += 2;
      return true;
    }
    return false;
  }

  std::string Identifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(Byte(pos_)) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Value Integer() {
    SkipSpace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(Byte(pos_))) ++pos_;
    if (pos_ == start) Fail("expected integer");
    return std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
  }

  [[noreturn]] void Fail(const std::string& msg) {
    throw ParseError(msg + " at position " + std::to_string(pos_) + " in \"" +
                     std::string(text_) + "\"");
  }

 private:
  unsigned char Byte(std::size_t i) const {
    return static_cast<unsigned char>(text_[i]);
  }
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ConjunctiveQuery ParseQuery(std::string_view text) {
  Scanner s(text);
  ConjunctiveQuery q;

  // Head: NAME '(' attrs? ')'  (the head name itself is ignored), or a bare
  // NAME for boolean queries.
  s.Identifier();
  std::vector<std::string> head_attrs;
  if (s.Consume('(')) {
    if (!s.Consume(')')) {
      do {
        head_attrs.push_back(s.Identifier());
      } while (s.Consume(','));
      s.Expect(')');
    }
  }
  if (!s.ConsumeTurnstile()) s.Fail("expected ':-'");

  // Body: relation atoms.
  std::set<std::string> rel_names;
  do {
    std::string rel_name = s.Identifier();
    if (!rel_names.insert(rel_name).second) {
      s.Fail("self-join (duplicate relation '" + rel_name +
             "') is not supported");
    }
    s.Expect('(');
    std::vector<AttrId> attrs;
    std::vector<Selection> preds;
    if (!s.Consume(')')) {
      do {
        std::string attr_name = s.Identifier();
        AttrId a = q.AddAttribute(attr_name);
        for (AttrId existing : attrs) {
          if (existing == a) {
            s.Fail("attribute '" + attr_name + "' repeated within a relation");
          }
        }
        attrs.push_back(a);
        if (s.Consume('=')) {
          preds.push_back(Selection{a, s.Integer()});
        }
      } while (s.Consume(','));
      s.Expect(')');
    }
    int rel = q.AddRelation(std::move(rel_name), std::move(attrs));
    for (const Selection& p : preds) q.AddSelection(rel, p.attr, p.value);
  } while (s.Consume(','));

  if (!s.AtEnd()) s.Fail("trailing input");

  // Resolve the head against body attributes.
  AttrSet head;
  for (const std::string& name : head_attrs) {
    AttrId a = q.FindAttribute(name);
    if (a < 0) {
      throw ParseError("head attribute '" + name +
                       "' does not occur in the body");
    }
    head.Add(a);
  }
  q.SetHead(head);
  return q;
}

}  // namespace adp
