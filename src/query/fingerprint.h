// Canonical query fingerprints for plan caching.
//
// Two queries share a canonical key iff they are structurally identical:
// the same number of relations in the same body order, the same attribute
// incidence pattern (up to renaming — attributes are numbered by first
// occurrence scanning the body left to right), the same head, and the same
// selection predicates. Relation and attribute *names* do not participate:
// every data-independent decision of Algorithm 2 (dichotomy verdict,
// linearization, dispatch case) depends only on this structure, so plans
// keyed by the canonical form are shared across renamed copies of a query.
//
// Note that body order is part of the key. Databases are positionally
// aligned with the body, and cached linear arrangements are permutations of
// body indices, so reordering atoms produces a different (equally valid)
// plan rather than a false cache hit.

#ifndef ADP_QUERY_FINGERPRINT_H_
#define ADP_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace adp {

/// Canonical textual key of `q`, e.g. "R(0,1)R(1,2;1=5)->0,2".
std::string CanonicalQueryKey(const ConjunctiveQuery& q);

/// 64-bit hash of CanonicalQueryKey(q). Collision-tolerant callers only;
/// caches that must be exact should key on the string.
std::uint64_t QueryFingerprint(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_QUERY_FINGERPRINT_H_
