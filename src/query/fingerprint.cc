#include "query/fingerprint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace adp {

std::string CanonicalQueryKey(const ConjunctiveQuery& q) {
  // Attribute ids canonicalized by first occurrence over the body, columns
  // in schema order; head attributes missing from the body (possible only in
  // hand-built queries) are numbered as encountered.
  std::vector<int> canon(static_cast<std::size_t>(q.num_attributes()), -1);
  int next = 0;
  auto id = [&](AttrId a) {
    if (canon[a] < 0) canon[a] = next++;
    return canon[a];
  };

  std::string key;
  key.reserve(16 * static_cast<std::size_t>(q.num_relations()) + 8);
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& r = q.relation(i);
    key += "R(";
    for (std::size_t c = 0; c < r.attrs.size(); ++c) {
      if (c > 0) key += ',';
      key += std::to_string(id(r.attrs[c]));
    }
    std::vector<std::pair<int, Value>> sels;
    for (const Selection& s : q.selections()[i]) {
      sels.emplace_back(id(s.attr), s.value);
    }
    std::sort(sels.begin(), sels.end());
    for (const auto& [a, v] : sels) {
      key += ';';
      key += std::to_string(a);
      key += '=';
      key += std::to_string(v);
    }
    key += ')';
  }

  key += "->";
  std::vector<int> head;
  for (AttrId a : q.head()) head.push_back(id(a));
  std::sort(head.begin(), head.end());
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(head[i]);
  }
  return key;
}

std::uint64_t QueryFingerprint(const ConjunctiveQuery& q) {
  const std::string key = CanonicalQueryKey(q);
  return HashBytes(key.data(), key.size());
}

}  // namespace adp
