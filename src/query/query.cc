#include "query/query.h"

#include <cassert>
#include <sstream>

namespace adp {

AttrId ConjunctiveQuery::AddAttribute(const std::string& name) {
  AttrId existing = FindAttribute(name);
  if (existing >= 0) return existing;
  assert(num_attributes() < kMaxAttrs && "too many attributes in query");
  attr_names_.push_back(name);
  return num_attributes() - 1;
}

int ConjunctiveQuery::AddRelation(std::string name,
                                  std::vector<AttrId> attrs) {
  body_.push_back(RelationSchema{std::move(name), std::move(attrs)});
  selections_.emplace_back();
  return num_relations() - 1;
}

void ConjunctiveQuery::AddSelection(int rel, AttrId attr, Value value) {
  selections_[rel].push_back(Selection{attr, value});
}

AttrId ConjunctiveQuery::FindAttribute(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attr_names_[i] == name) return i;
  }
  return -1;
}

int ConjunctiveQuery::FindRelation(const std::string& name) const {
  for (int i = 0; i < num_relations(); ++i) {
    if (body_[i].name == name) return i;
  }
  return -1;
}

bool ConjunctiveQuery::HasSelections() const {
  for (const auto& s : selections_) {
    if (!s.empty()) return true;
  }
  return false;
}

AttrSet ConjunctiveQuery::SelectedAttrs() const {
  AttrSet out;
  for (const auto& preds : selections_) {
    for (const Selection& s : preds) out.Add(s.attr);
  }
  return out;
}

AttrSet ConjunctiveQuery::all_attrs() const {
  AttrSet out;
  for (const auto& r : body_) out = out.Union(r.attr_set());
  return out;
}

AttrSet ConjunctiveQuery::UniversalAttrs() const {
  AttrSet u = head_;
  for (const auto& r : body_) u = u.Intersect(r.attr_set());
  return u;
}

bool ConjunctiveQuery::HasVacuumRelation() const {
  for (const auto& r : body_) {
    if (r.vacuum()) return true;
  }
  return false;
}

std::vector<int> ConjunctiveQuery::RelationsWith(AttrId a) const {
  std::vector<int> out;
  for (int i = 0; i < num_relations(); ++i) {
    if (body_[i].attr_set().Contains(a)) out.push_back(i);
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream os;
  os << "Q(";
  bool first = true;
  for (AttrId a : head_) {
    if (!first) os << ",";
    os << attr_name(a);
    first = false;
  }
  os << ") :- ";
  for (int i = 0; i < num_relations(); ++i) {
    if (i > 0) os << ", ";
    os << body_[i].name << "(";
    for (std::size_t c = 0; c < body_[i].attrs.size(); ++c) {
      if (c > 0) os << ",";
      const AttrId a = body_[i].attrs[c];
      os << attr_name(a);
      for (const Selection& s : selections_[i]) {
        if (s.attr == a) os << "=" << s.value;
      }
    }
    os << ")";
  }
  return os.str();
}

}  // namespace adp
