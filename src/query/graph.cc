#include "query/graph.h"

#include <algorithm>

namespace adp {
namespace {

// Union of breadth-first searches over the restricted edge set.
std::vector<std::vector<int>> Components(const ConjunctiveQuery& q,
                                         AttrSet allowed) {
  const int p = q.num_relations();
  std::vector<int> comp(p, -1);
  int next_comp = 0;
  for (int start = 0; start < p; ++start) {
    if (comp[start] >= 0) continue;
    comp[start] = next_comp;
    std::vector<int> stack = {start};
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      const AttrSet au = q.relation(u).attr_set().Intersect(allowed);
      for (int v = 0; v < p; ++v) {
        if (comp[v] >= 0) continue;
        if (au.Intersects(q.relation(v).attr_set())) {
          comp[v] = next_comp;
          stack.push_back(v);
        }
      }
    }
    ++next_comp;
  }
  std::vector<std::vector<int>> out(next_comp);
  for (int i = 0; i < p; ++i) out[comp[i]].push_back(i);
  return out;
}

}  // namespace

std::vector<std::vector<int>> ConnectedComponents(const ConjunctiveQuery& q) {
  return Components(q, AttrSet::FirstN(kMaxAttrs));
}

bool IsConnected(const ConjunctiveQuery& q) {
  return ConnectedComponents(q).size() <= 1;
}

bool ConnectedVia(const ConjunctiveQuery& q, int from, int to,
                  AttrSet allowed) {
  if (from == to) return true;
  const int p = q.num_relations();
  std::vector<char> visited(p, 0);
  visited[from] = 1;
  std::vector<int> stack = {from};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    const AttrSet au = q.relation(u).attr_set().Intersect(allowed);
    for (int v = 0; v < p; ++v) {
      if (visited[v]) continue;
      if (au.Intersects(q.relation(v).attr_set())) {
        if (v == to) return true;
        visited[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return false;
}

std::vector<std::vector<int>> ComponentsVia(const ConjunctiveQuery& q,
                                            AttrSet allowed) {
  return Components(q, allowed);
}

}  // namespace adp
