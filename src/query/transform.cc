#include "query/transform.h"

#include <algorithm>
#include <map>

#include "query/graph.h"
#include "relational/group_index.h"
#include "util/hash.h"

namespace adp {
namespace {

// Copies the attribute catalog of `q` into a fresh query (ids stay stable).
ConjunctiveQuery CloneCatalog(const ConjunctiveQuery& q) {
  ConjunctiveQuery out;
  for (const std::string& name : q.attr_names()) out.AddAttribute(name);
  return out;
}

}  // namespace

ConjunctiveQuery RemoveAttributes(const ConjunctiveQuery& q, AttrSet attrs) {
  ConjunctiveQuery out = CloneCatalog(q);
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& r = q.relation(i);
    std::vector<AttrId> kept;
    for (AttrId a : r.attrs) {
      if (!attrs.Contains(a)) kept.push_back(a);
    }
    int rel = out.AddRelation(r.name, std::move(kept));
    for (const Selection& s : q.selections()[i]) {
      if (!attrs.Contains(s.attr)) out.AddSelection(rel, s.attr, s.value);
    }
  }
  out.SetHead(q.head().Minus(attrs));
  return out;
}

ConjunctiveQuery HeadJoin(const ConjunctiveQuery& q) {
  return RemoveAttributes(q, q.all_attrs().Minus(q.head()));
}

Subquery RestrictTo(const ConjunctiveQuery& q, const std::vector<int>& rels) {
  Subquery sub;
  sub.query = CloneCatalog(q);
  AttrSet sub_attrs;
  for (int i : rels) {
    const RelationSchema& r = q.relation(i);
    int idx = sub.query.AddRelation(r.name, r.attrs);
    for (const Selection& s : q.selections()[i]) {
      sub.query.AddSelection(idx, s.attr, s.value);
    }
    sub.parent_relation.push_back(i);
    sub_attrs = sub_attrs.Union(r.attr_set());
  }
  sub.query.SetHead(q.head().Intersect(sub_attrs));
  return sub;
}

std::vector<Subquery> DecomposeQuery(const ConjunctiveQuery& q) {
  std::vector<Subquery> out;
  for (const std::vector<int>& comp : ConnectedComponents(q)) {
    out.push_back(RestrictTo(q, comp));
  }
  return out;
}

Database SubDatabase(const Subquery& sub, const Database& db) {
  Database out;
  for (int parent : sub.parent_relation) {
    out.Append(db.rel(parent));
  }
  return out;
}

QueryDb ApplySelections(const ConjunctiveQuery& q, const Database& db) {
  const AttrSet selected = q.SelectedAttrs();
  QueryDb out;
  out.query = RemoveAttributes(q, selected);
  // RemoveAttributes keeps predicates on surviving attributes; none survive
  // because every selected attribute was removed. Rebuild the instances.
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& schema = q.relation(i);
    const RelationInstance& inst = db.rel(i);
    RelationInstance derived;
    derived.set_root_relation(inst.root_relation());

    std::vector<int> kept_cols;
    for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
      if (!selected.Contains(schema.attrs[c])) {
        kept_cols.push_back(static_cast<int>(c));
      }
    }

    // Translate each predicate's required value into the column's
    // dictionary code once; a value absent from the dictionary matches no
    // row and empties the instance without scanning.
    std::vector<std::pair<int, Code>> preds;  // (column, required code)
    bool satisfiable = true;
    for (const Selection& s : q.selections()[i]) {
      const int col = schema.ColumnOf(s.attr);
      const std::int64_t code =
          inst.empty() ? -1 : inst.dict(col).Lookup(s.value);
      if (code < 0) {
        satisfiable = false;
        break;
      }
      preds.emplace_back(col, static_cast<Code>(code));
    }

    if (satisfiable && !inst.empty()) {
      // Columnar scan: integer code compares only, then one gather of the
      // passing rows over the kept columns (dictionaries are shared, codes
      // copied, origins carried).
      std::vector<TupleId> pass;
      pass.reserve(inst.size());
      for (std::size_t t = 0; t < inst.size(); ++t) {
        bool ok = true;
        for (const auto& [col, code] : preds) {
          if (inst.CodeAt(t, col) != code) {
            ok = false;
            break;
          }
        }
        if (ok) pass.push_back(static_cast<TupleId>(t));
      }
      derived.AppendGathered(inst, pass, kept_cols);
      derived.Dedup();
    }
    out.db.Append(std::move(derived));
  }
  return out;
}

std::vector<UniverseGroup> PartitionByAttrs(const ConjunctiveQuery& q,
                                            const Database& db,
                                            AttrSet attrs) {
  const int p = q.num_relations();
  // Column positions of the partition attributes (increasing AttrId order)
  // and of the surviving attributes, per relation.
  std::vector<std::vector<int>> key_cols(p), kept_cols(p);
  for (int i = 0; i < p; ++i) {
    const RelationSchema& schema = q.relation(i);
    for (AttrId a : attrs) key_cols[i].push_back(schema.ColumnOf(a));
    for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
      if (!attrs.Contains(schema.attrs[c])) {
        kept_cols[i].push_back(static_cast<int>(c));
      }
    }
  }

  // Group each relation's rows by key codes — one hash-group pass per
  // relation, no key tuples materialized — then merge the per-relation
  // groups across relations by decoded key value. The merge map costs one
  // entry per DISTINCT key (not per row), and std::map keeps the group
  // order deterministic (ascending key, as before).
  std::vector<HashGroupIndex> index;
  index.reserve(p);
  for (int i = 0; i < p; ++i) {
    index.emplace_back(db.rel(i), key_cols[i]);
  }
  std::map<Tuple, std::vector<std::int64_t>> merged;  // key -> group per rel
  for (int i = 0; i < p; ++i) {
    for (std::size_t g = 0; g < index[i].num_groups(); ++g) {
      auto [it, inserted] = merged.try_emplace(index[i].KeyValues(g));
      if (inserted) it->second.assign(p, -1);
      it->second[i] = static_cast<std::int64_t>(g);
    }
  }

  std::vector<UniverseGroup> out;
  for (const auto& [key, gids] : merged) {
    // Keys missing from some relation yield zero outputs; skip them.
    bool complete = true;
    for (int i = 0; i < p; ++i) {
      if (gids[i] < 0) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;

    UniverseGroup group;
    group.key = key;
    for (int i = 0; i < p; ++i) {
      const RelationInstance& inst = db.rel(i);
      RelationInstance derived;
      derived.set_root_relation(inst.root_relation());
      // Gather the group's rows over the surviving columns: shared
      // dictionaries, code copies, origins carried.
      derived.AppendGathered(inst, index[i].rows(gids[i]), kept_cols[i]);
      group.db.Append(std::move(derived));
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace adp
