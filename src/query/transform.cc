#include "query/transform.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "query/graph.h"
#include "util/hash.h"

namespace adp {
namespace {

// Copies the attribute catalog of `q` into a fresh query (ids stay stable).
ConjunctiveQuery CloneCatalog(const ConjunctiveQuery& q) {
  ConjunctiveQuery out;
  for (const std::string& name : q.attr_names()) out.AddAttribute(name);
  return out;
}

}  // namespace

ConjunctiveQuery RemoveAttributes(const ConjunctiveQuery& q, AttrSet attrs) {
  ConjunctiveQuery out = CloneCatalog(q);
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& r = q.relation(i);
    std::vector<AttrId> kept;
    for (AttrId a : r.attrs) {
      if (!attrs.Contains(a)) kept.push_back(a);
    }
    int rel = out.AddRelation(r.name, std::move(kept));
    for (const Selection& s : q.selections()[i]) {
      if (!attrs.Contains(s.attr)) out.AddSelection(rel, s.attr, s.value);
    }
  }
  out.SetHead(q.head().Minus(attrs));
  return out;
}

ConjunctiveQuery HeadJoin(const ConjunctiveQuery& q) {
  return RemoveAttributes(q, q.all_attrs().Minus(q.head()));
}

Subquery RestrictTo(const ConjunctiveQuery& q, const std::vector<int>& rels) {
  Subquery sub;
  sub.query = CloneCatalog(q);
  AttrSet sub_attrs;
  for (int i : rels) {
    const RelationSchema& r = q.relation(i);
    int idx = sub.query.AddRelation(r.name, r.attrs);
    for (const Selection& s : q.selections()[i]) {
      sub.query.AddSelection(idx, s.attr, s.value);
    }
    sub.parent_relation.push_back(i);
    sub_attrs = sub_attrs.Union(r.attr_set());
  }
  sub.query.SetHead(q.head().Intersect(sub_attrs));
  return sub;
}

std::vector<Subquery> DecomposeQuery(const ConjunctiveQuery& q) {
  std::vector<Subquery> out;
  for (const std::vector<int>& comp : ConnectedComponents(q)) {
    out.push_back(RestrictTo(q, comp));
  }
  return out;
}

Database SubDatabase(const Subquery& sub, const Database& db) {
  Database out;
  for (int parent : sub.parent_relation) {
    out.Append(db.rel(parent));
  }
  return out;
}

QueryDb ApplySelections(const ConjunctiveQuery& q, const Database& db) {
  const AttrSet selected = q.SelectedAttrs();
  QueryDb out;
  out.query = RemoveAttributes(q, selected);
  // RemoveAttributes keeps predicates on surviving attributes; none survive
  // because every selected attribute was removed. Rebuild the instances.
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& schema = q.relation(i);
    const RelationInstance& inst = db.rel(i);
    RelationInstance derived;
    derived.set_root_relation(inst.root_relation());

    std::vector<std::pair<int, Value>> preds;  // (column, required value)
    for (const Selection& s : q.selections()[i]) {
      preds.emplace_back(schema.ColumnOf(s.attr), s.value);
    }
    std::vector<int> kept_cols;
    for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
      if (!selected.Contains(schema.attrs[c])) {
        kept_cols.push_back(static_cast<int>(c));
      }
    }

    for (std::size_t t = 0; t < inst.size(); ++t) {
      const Tuple& row = inst.tuple(t);
      bool pass = true;
      for (const auto& [col, val] : preds) {
        if (row[col] != val) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      Tuple kept;
      kept.reserve(kept_cols.size());
      for (int c : kept_cols) kept.push_back(row[c]);
      derived.AddWithOrigin(std::move(kept), inst.OriginOf(t));
    }
    derived.Dedup();
    out.db.Append(std::move(derived));
  }
  return out;
}

std::vector<UniverseGroup> PartitionByAttrs(const ConjunctiveQuery& q,
                                            const Database& db,
                                            AttrSet attrs) {
  const int p = q.num_relations();
  // Column positions of the partition attributes (increasing AttrId order)
  // and of the surviving attributes, per relation.
  std::vector<std::vector<int>> key_cols(p), kept_cols(p);
  for (int i = 0; i < p; ++i) {
    const RelationSchema& schema = q.relation(i);
    for (AttrId a : attrs) key_cols[i].push_back(schema.ColumnOf(a));
    for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
      if (!attrs.Contains(schema.attrs[c])) {
        kept_cols[i].push_back(static_cast<int>(c));
      }
    }
  }

  // Group tuples of every relation by key; a std::map keeps group order
  // deterministic.
  std::map<Tuple, std::vector<std::vector<TupleId>>> groups;
  for (int i = 0; i < p; ++i) {
    const RelationInstance& inst = db.rel(i);
    Tuple key(key_cols[i].size());
    for (std::size_t t = 0; t < inst.size(); ++t) {
      const Tuple& row = inst.tuple(t);
      for (std::size_t j = 0; j < key_cols[i].size(); ++j) {
        key[j] = row[key_cols[i][j]];
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) it->second.resize(p);
      it->second[i].push_back(static_cast<TupleId>(t));
    }
  }

  std::vector<UniverseGroup> out;
  for (auto& [key, members] : groups) {
    // Keys missing from some relation yield zero outputs; skip them.
    bool complete = true;
    for (int i = 0; i < p; ++i) {
      if (members[i].empty()) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;

    UniverseGroup group;
    group.key = key;
    for (int i = 0; i < p; ++i) {
      const RelationInstance& inst = db.rel(i);
      RelationInstance derived;
      derived.set_root_relation(inst.root_relation());
      derived.Reserve(members[i].size());
      for (TupleId t : members[i]) {
        const Tuple& row = inst.tuple(t);
        Tuple kept;
        kept.reserve(kept_cols[i].size());
        for (int c : kept_cols[i]) kept.push_back(row[c]);
        derived.AddWithOrigin(std::move(kept), inst.OriginOf(t));
      }
      group.db.Append(std::move(derived));
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace adp
