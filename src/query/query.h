// Self-join-free conjunctive queries (§3.1–3.2).
//
//   Q(A) :- R1(A1), R2(A2), ..., Rp(Ap)          [optionally with selections]
//
// Attributes live in a per-query catalog mapping names to dense AttrIds.
// Every query derived by a transform *shares the catalog of its root query*,
// so AttrIds remain stable across simplification steps — a removed attribute
// simply no longer occurs in any relation or in the head.

#ifndef ADP_QUERY_QUERY_H_
#define ADP_QUERY_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"
#include "util/attr_set.h"

namespace adp {

/// One selection predicate `attr = value` (§7.5).
struct Selection {
  AttrId attr;
  Value value;
};

/// A conjunctive query without self-joins.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  // --- Construction -------------------------------------------------------

  /// Interns an attribute name, returning its id (existing id if known).
  AttrId AddAttribute(const std::string& name);

  /// Appends a relation to the body; `attrs` is the column order.
  /// Returns the relation's body index.
  int AddRelation(std::string name, std::vector<AttrId> attrs);

  /// Declares the output attributes (head(Q)). Boolean queries use the
  /// empty set; full CQs use all_attrs().
  void SetHead(AttrSet head) { head_ = head; }

  /// Attaches a selection predicate to relation `rel` (§7.5).
  void AddSelection(int rel, AttrId attr, Value value);

  // --- Accessors -----------------------------------------------------------

  int num_attributes() const { return static_cast<int>(attr_names_.size()); }
  const std::string& attr_name(AttrId a) const { return attr_names_[a]; }
  /// Id of a named attribute, or -1.
  AttrId FindAttribute(const std::string& name) const;
  const std::vector<std::string>& attr_names() const { return attr_names_; }

  int num_relations() const { return static_cast<int>(body_.size()); }
  const RelationSchema& relation(int i) const { return body_[i]; }
  const std::vector<RelationSchema>& body() const { return body_; }
  /// Body index of a named relation, or -1.
  int FindRelation(const std::string& name) const;

  AttrSet head() const { return head_; }
  const std::vector<std::vector<Selection>>& selections() const {
    return selections_;
  }
  bool HasSelections() const;
  /// Union of all selected attributes (Aθ in §7.5).
  AttrSet SelectedAttrs() const;

  // --- Derived properties (§3.1, §4) ---------------------------------------

  /// Union of attributes over the body (attr(Q)).
  AttrSet all_attrs() const;

  /// head(Q) = ∅.
  bool IsBoolean() const { return head_.Empty(); }

  /// head(Q) = attr(Q): the natural join, no projection.
  bool IsFull() const { return head_ == all_attrs(); }

  /// Output attributes occurring in every relation (the attributes removed
  /// by the first simplification step of IsPtime / Universe).
  AttrSet UniversalAttrs() const;

  /// True if some relation has no attributes (Lemma 1).
  bool HasVacuumRelation() const;

  /// rels(A): body indices of relations containing attribute `a`.
  std::vector<int> RelationsWith(AttrId a) const;

  /// Datalog-style rendering, e.g. "Q(A,B) :- R1(A,B), R2(B,C=5)".
  std::string ToString() const;

 private:
  std::vector<std::string> attr_names_;
  std::vector<RelationSchema> body_;
  AttrSet head_;
  std::vector<std::vector<Selection>> selections_;  // parallel to body_
};

}  // namespace adp

#endif  // ADP_QUERY_QUERY_H_
