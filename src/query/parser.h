// Datalog-style parser for conjunctive queries.
//
// Syntax:
//   Q(A,B) :- R1(A,B), R2(B,C)          projection query
//   Q()    :- R1(A),   R2(A,B)          boolean query
//   Q(A)   :- R1(A),   R2(A,B=5)        selection predicate B = 5 on R2
//   Q(A)   :- R1(A),   R2()             vacuum relation R2
//
// Relation names must be distinct (the library is restricted to
// self-join-free CQs, as in the paper), and every head attribute must occur
// in the body.

#ifndef ADP_QUERY_PARSER_H_
#define ADP_QUERY_PARSER_H_

#include <stdexcept>
#include <string>
#include <string_view>

#include "query/query.h"

namespace adp {

/// Error thrown on malformed query text.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses `text` into a ConjunctiveQuery. Throws ParseError on bad input.
ConjunctiveQuery ParseQuery(std::string_view text);

}  // namespace adp

#endif  // ADP_QUERY_PARSER_H_
