// The query graph GQ (§3.1): relations are vertices; two relations are
// adjacent iff they share an attribute. The dichotomy results additionally
// need *restricted* connectivity — paths whose consecutive relations share an
// attribute outside a forbidden set (triad and triad-like detection).

#ifndef ADP_QUERY_GRAPH_H_
#define ADP_QUERY_GRAPH_H_

#include <vector>

#include "query/query.h"
#include "util/attr_set.h"

namespace adp {

/// Connected components of GQ, each a sorted list of body indices.
/// Components are ordered by their smallest relation index.
std::vector<std::vector<int>> ConnectedComponents(const ConjunctiveQuery& q);

/// True if GQ is connected (or the body has at most one relation).
bool IsConnected(const ConjunctiveQuery& q);

/// True if there is a path of relations from `from` to `to` such that each
/// consecutive pair shares at least one attribute in `allowed`. `from == to`
/// counts as connected iff `from`'s attributes intersect `allowed` or the
/// trivial path is acceptable (we return true).
bool ConnectedVia(const ConjunctiveQuery& q, int from, int to,
                  AttrSet allowed);

/// Connected components of GQ when only edges with a shared attribute in
/// `allowed` are kept.
std::vector<std::vector<int>> ComponentsVia(const ConjunctiveQuery& q,
                                            AttrSet allowed);

}  // namespace adp

#endif  // ADP_QUERY_GRAPH_H_
