// Hardness/complexity-preserving query rewrites (§4.1, §7), with and without
// carrying the database instance along.
//
// Every instance-carrying transform preserves origin tracking: tuples of the
// derived database know which root-database row they came from, so solutions
// computed downstream are reported in root coordinates.

#ifndef ADP_QUERY_TRANSFORM_H_
#define ADP_QUERY_TRANSFORM_H_

#include <vector>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// A derived (query, instance) pair.
struct QueryDb {
  ConjunctiveQuery query;
  Database db;
};

/// A connected subquery with the mapping from its body indices back to the
/// parent query's body indices.
struct Subquery {
  ConjunctiveQuery query;
  std::vector<int> parent_relation;  // parent body index per subquery index
};

/// One class of the Universe partition: all tuples sharing `key` on the
/// universal attributes, with those attributes projected away.
struct UniverseGroup {
  Tuple key;    // values of the universal attributes, increasing AttrId order
  Database db;  // instance of the residual query (attributes removed)
};

/// Q^{-attrs}: removes `attrs` from every relation schema and from the head.
/// The attribute catalog is shared with `q` (ids stay stable).
ConjunctiveQuery RemoveAttributes(const ConjunctiveQuery& q, AttrSet attrs);

/// The head join Q_head (§4.2.3): removes all non-output attributes from
/// every relation.
ConjunctiveQuery HeadJoin(const ConjunctiveQuery& q);

/// Restriction of `q` to the body indices in `rels` (used for connected
/// subqueries, Lemma 3). Selections on kept relations are preserved.
Subquery RestrictTo(const ConjunctiveQuery& q, const std::vector<int>& rels);

/// Connected subqueries of `q` (Lemma 3), in component order.
std::vector<Subquery> DecomposeQuery(const ConjunctiveQuery& q);

/// Builds the database for a subquery by copying the instances of its
/// relations from `db` (root bookkeeping is inherited).
Database SubDatabase(const Subquery& sub, const Database& db);

/// Selection pushdown (Lemma 12): filters every relation instance by its
/// predicates, removes the selected attributes Aθ from schemas, head and
/// instances, and clears the predicates. The result is an ordinary CQ whose
/// ADP solutions coincide with the original's.
QueryDb ApplySelections(const ConjunctiveQuery& q, const Database& db);

/// Universe partitioning (Algorithm 4): splits `db` into groups by the value
/// combination on `attrs` (which must occur in every relation), projecting
/// those attributes away. Only keys present in *every* relation are
/// returned — other groups produce no outputs and removing their tuples is
/// never useful. The residual query is RemoveAttributes(q, attrs).
std::vector<UniverseGroup> PartitionByAttrs(const ConjunctiveQuery& q,
                                            const Database& db, AttrSet attrs);

}  // namespace adp

#endif  // ADP_QUERY_TRANSFORM_H_
