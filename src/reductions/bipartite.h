// The bipartite optimization problems behind the NP-hardness proofs
// (Lemma 5 and Appendix B), together with the encodings that relate them to
// the three core hard queries of §4.2.1:
//
//   Problem 1 (partial vertex cover, PVCB):  remove fewest vertices of
//     A ∪ B so that at least k edges disappear          <->  ADP(Qcover)
//   Problem 2 (k-minimum-coverage flavour):  remove fewest vertices of B
//     so that at least k vertices of A disappear        <->  ADP(Qswing)
//   Problem 3 (side-constrained cover):      remove fewest vertices of
//     A ∪ B so that at least k vertices of A disappear  <->  ADP(Qseesaw)
//
// Removal semantics (footnote 1 of the paper): deleting a vertex deletes
// its incident edges; a vertex with no remaining incident edges is deleted.
//
// These solvers are exponential-time oracles (the problems are NP-hard);
// they exist to machine-check the hardness reductions and to serve as exact
// baselines in tests.

#ifndef ADP_REDUCTIONS_BIPARTITE_H_
#define ADP_REDUCTIONS_BIPARTITE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// An undirected bipartite graph over vertex sets A = {0..na-1} and
/// B = {0..nb-1}.
struct BipartiteGraph {
  int na = 0;
  int nb = 0;
  std::vector<std::pair<int, int>> edges;  // (a, b)
};

/// Which of Lemma 5's problems to solve.
enum class BipartiteProblem {
  kPartialVertexCover,  // Problem 1
  kRemoveBKillA,        // Problem 2
  kRemoveAnyKillA,      // Problem 3
};

/// Result of an exact bipartite solve.
struct BipartiteResult {
  std::int64_t cost = -1;        // -1: infeasible target
  std::vector<int> removed_a;    // removed vertices of A
  std::vector<int> removed_b;    // removed vertices of B
};

/// Exact solve by subset enumeration in increasing size.
BipartiteResult SolveBipartiteExact(const BipartiteGraph& g,
                                    BipartiteProblem problem, std::int64_t k);

/// The ADP instance a bipartite problem encodes into (§4.2.1):
///   Problem 1 -> Qcover(A,B)  :- R1(A), R2(A,B), R3(B)  with k' = k edges
///   Problem 2 -> Qswing(A)    :- R2(A,B), R3(B)         with k' = k A-vertices
///   Problem 3 -> Qseesaw(A)   :- R1(A), R2(A,B), R3(B)  with k' = k A-vertices
/// R1 holds the A vertices, R3 the B vertices, R2 the edges.
struct BipartiteAdpInstance {
  ConjunctiveQuery query;
  Database db;
};

/// Builds the ADP encoding of (g, problem).
BipartiteAdpInstance EncodeAsAdp(const BipartiteGraph& g,
                                 BipartiteProblem problem);

}  // namespace adp

#endif  // ADP_REDUCTIONS_BIPARTITE_H_
