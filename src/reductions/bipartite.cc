#include "reductions/bipartite.h"

#include <algorithm>

#include "query/parser.h"

namespace adp {
namespace {

// Counts the objective achieved by deleting the given vertex subsets:
// Problem 1 counts removed edges, Problems 2/3 count removed A-vertices.
// An A-vertex counts as removed when it is deleted directly or all of its
// incident edges are gone; initially isolated vertices never count (they
// correspond to dangling tuples with no output).
std::int64_t Achieved(const BipartiteGraph& g, BipartiteProblem problem,
                      const std::vector<char>& del_a,
                      const std::vector<char>& del_b) {
  if (problem == BipartiteProblem::kPartialVertexCover) {
    std::int64_t removed = 0;
    for (const auto& [a, b] : g.edges) {
      if (del_a[a] || del_b[b]) ++removed;
    }
    return removed;
  }
  std::vector<char> has_edge(g.na, 0), has_live_edge(g.na, 0);
  for (const auto& [a, b] : g.edges) {
    has_edge[a] = 1;
    if (!del_a[a] && !del_b[b]) has_live_edge[a] = 1;
  }
  std::int64_t removed = 0;
  for (int a = 0; a < g.na; ++a) {
    if (has_edge[a] && !has_live_edge[a]) ++removed;
  }
  return removed;
}

}  // namespace

BipartiteResult SolveBipartiteExact(const BipartiteGraph& g,
                                    BipartiteProblem problem,
                                    std::int64_t k) {
  // Candidate vertices: B always; A unless the problem restricts to B.
  struct Candidate {
    bool is_a;
    int v;
  };
  std::vector<Candidate> cands;
  if (problem != BipartiteProblem::kRemoveBKillA) {
    for (int a = 0; a < g.na; ++a) cands.push_back({true, a});
  }
  for (int b = 0; b < g.nb; ++b) cands.push_back({false, b});
  const int n = static_cast<int>(cands.size());

  BipartiteResult result;
  std::vector<char> del_a(g.na, 0), del_b(g.nb, 0);
  if (k <= 0) {
    result.cost = 0;
    return result;
  }
  for (int size = 1; size <= n; ++size) {
    std::vector<int> combo(size);
    for (int i = 0; i < size; ++i) combo[i] = i;
    while (true) {
      std::fill(del_a.begin(), del_a.end(), 0);
      std::fill(del_b.begin(), del_b.end(), 0);
      for (int i : combo) {
        (cands[i].is_a ? del_a[cands[i].v] : del_b[cands[i].v]) = 1;
      }
      if (Achieved(g, problem, del_a, del_b) >= k) {
        result.cost = size;
        for (int i : combo) {
          (cands[i].is_a ? result.removed_a : result.removed_b)
              .push_back(cands[i].v);
        }
        return result;
      }
      int i = size - 1;
      while (i >= 0 && combo[i] == n - (size - i)) --i;
      if (i < 0) break;
      ++combo[i];
      for (int jj = i + 1; jj < size; ++jj) combo[jj] = combo[jj - 1] + 1;
    }
  }
  return result;  // infeasible
}

BipartiteAdpInstance EncodeAsAdp(const BipartiteGraph& g,
                                 BipartiteProblem problem) {
  BipartiteAdpInstance out;
  switch (problem) {
    case BipartiteProblem::kPartialVertexCover:
      out.query = ParseQuery("Qcover(A,B) :- R1(A), R2(A,B), R3(B)");
      break;
    case BipartiteProblem::kRemoveBKillA:
      out.query = ParseQuery("Qswing(A) :- R2(A,B), R3(B)");
      break;
    case BipartiteProblem::kRemoveAnyKillA:
      out.query = ParseQuery("Qseesaw(A) :- R1(A), R2(A,B), R3(B)");
      break;
  }
  out.db = Database(out.query.num_relations());
  const int r1 = out.query.FindRelation("R1");
  const int r2 = out.query.FindRelation("R2");
  const int r3 = out.query.FindRelation("R3");
  if (r1 >= 0) {
    for (int a = 0; a < g.na; ++a) out.db.rel(r1).Add({a});
  }
  for (const auto& [a, b] : g.edges) {
    out.db.rel(r2).Add({a, b});
  }
  for (int b = 0; b < g.nb; ++b) out.db.rel(r3).Add({b});
  out.db.DedupAll();
  return out;
}

}  // namespace adp
