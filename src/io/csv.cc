#include "io/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace adp {
namespace {

bool LooksNumeric(const std::string& field) {
  if (field.empty()) return false;
  std::size_t i = (field[0] == '-' || field[0] == '+') ? 1 : 0;
  if (i >= field.size()) return false;
  for (; i < field.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(field[i]))) return false;
  }
  return true;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    // Trim surrounding whitespace.
    std::size_t b = field.find_first_not_of(" \t\r");
    std::size_t e = field.find_last_not_of(" \t\r");
    fields.push_back(b == std::string::npos
                         ? std::string()
                         : field.substr(b, e - b + 1));
  }
  return fields;
}

}  // namespace

std::vector<Tuple> ReadTuplesCsv(std::istream& in, std::size_t arity,
                                 const std::string& context) {
  std::vector<Tuple> out;
  std::string line;
  std::size_t lineno = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.empty() || (fields.size() == 1 && fields[0].empty())) {
      if (arity == 0) out.push_back({});  // vacuum tuple
      continue;
    }
    if (first_data_line && !LooksNumeric(fields[0])) {
      first_data_line = false;
      continue;  // header
    }
    first_data_line = false;
    if (fields.size() != arity) {
      std::ostringstream os;
      os << context << ": line " << lineno << " has " << fields.size()
         << " fields, expected " << arity;
      throw CsvError(os.str());
    }
    Tuple row;
    row.reserve(arity);
    for (const std::string& f : fields) {
      if (!LooksNumeric(f)) {
        std::ostringstream os;
        os << context << ": line " << lineno << ": non-integer field '" << f
           << "'";
        throw CsvError(os.str());
      }
      row.push_back(std::strtoll(f.c_str(), nullptr, 10));
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Tuple> LoadTuplesCsv(const std::string& path, std::size_t arity) {
  std::ifstream in(path);
  if (!in) throw CsvError("cannot open " + path);
  return ReadTuplesCsv(in, arity, path);
}

Database LoadDatabaseCsv(const ConjunctiveQuery& q, const std::string& dir) {
  Database db(q.num_relations());
  std::string line;
  for (int i = 0; i < q.num_relations(); ++i) {
    const RelationSchema& schema = q.relation(i);
    const std::size_t arity = schema.attrs.size();
    const std::string path = dir + "/" + schema.name + ".csv";
    std::ifstream in(path);
    if (!in) {
      throw CsvError("missing instance file " + path + " for relation " +
                     schema.name);
    }
    // Stream rows straight into the columnar instance through one reused
    // scratch buffer: no per-row Tuple allocation, and each value is
    // interned once per column dictionary.
    RelationInstance& rel = db.rel(i);
    Tuple scratch(arity);
    std::size_t lineno = 0;
    bool first_data_line = true;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const std::vector<std::string> fields = SplitCsvLine(line);
      if (fields.empty() || (fields.size() == 1 && fields[0].empty())) {
        if (arity == 0) rel.AppendRow(scratch.data(), 0);  // vacuum tuple
        continue;
      }
      if (first_data_line && !LooksNumeric(fields[0])) {
        first_data_line = false;
        continue;  // header
      }
      first_data_line = false;
      if (fields.size() != arity) {
        std::ostringstream os;
        os << path << ": line " << lineno << " has " << fields.size()
           << " fields, expected " << arity;
        throw CsvError(os.str());
      }
      for (std::size_t c = 0; c < arity; ++c) {
        if (!LooksNumeric(fields[c])) {
          std::ostringstream os;
          os << path << ": line " << lineno << ": non-integer field '"
             << fields[c] << "'";
          throw CsvError(os.str());
        }
        scratch[c] = std::strtoll(fields[c].c_str(), nullptr, 10);
      }
      rel.AppendRow(scratch.data(), arity);
    }
    rel.Dedup();
  }
  return db;
}

void WriteSolutionCsv(std::ostream& out, const ConjunctiveQuery& q,
                      const Database& db,
                      const std::vector<TupleRef>& tuples) {
  out << "# relation,row,values...\n";
  for (const TupleRef& ref : tuples) {
    out << q.relation(ref.relation).name << "," << ref.row;
    const Tuple& row = db.rel(ref.relation).tuple(ref.row);
    for (Value v : row) out << "," << v;
    out << "\n";
  }
}

}  // namespace adp
