// CSV input/output for relation instances and solutions.
//
// Format: one row per tuple, comma-separated integer values, column order
// matching the relation schema. Lines starting with '#' and blank lines are
// skipped. A header line is permitted (detected as a non-numeric first
// field) and ignored.

#ifndef ADP_IO_CSV_H_
#define ADP_IO_CSV_H_

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/solution.h"

namespace adp {

/// Error thrown on malformed CSV input.
class CsvError : public std::runtime_error {
 public:
  explicit CsvError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses tuples of the given arity from a stream.
std::vector<Tuple> ReadTuplesCsv(std::istream& in, std::size_t arity,
                                 const std::string& context);

/// Loads tuples of the given arity from a file.
std::vector<Tuple> LoadTuplesCsv(const std::string& path, std::size_t arity);

/// Builds the root database for `q` by loading `<dir>/<RelationName>.csv`
/// for every body relation. Vacuum relations load a file with a single
/// empty line (or the file may contain `true`/`false` semantics: a missing
/// file means the empty instance).
Database LoadDatabaseCsv(const ConjunctiveQuery& q, const std::string& dir);

/// Writes a solution as CSV rows `relation,row,values...`.
void WriteSolutionCsv(std::ostream& out, const ConjunctiveQuery& q,
                      const Database& db, const std::vector<TupleRef>& tuples);

}  // namespace adp

#endif  // ADP_IO_CSV_H_
