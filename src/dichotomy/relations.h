// Relation classifications used by both dichotomies:
//   * endogenous / exogenous (Appendix A, after [11]) — an optimal ADP
//     solution only ever deletes tuples of endogenous relations (Lemma 13);
//   * dominated / non-dominated (Definitions 6 and 7) — the finer-grained
//     notion needed for the structural characterization of general CQs.

#ifndef ADP_DICHOTOMY_RELATIONS_H_
#define ADP_DICHOTOMY_RELATIONS_H_

#include <vector>

#include "query/query.h"

namespace adp {

/// flags[i] == 1 iff relation `i` is exogenous: some other relation's
/// attribute set is a strict subset of attr(Ri). When several relations
/// share the same attribute set, the lowest-index one counts as endogenous
/// and the rest as exogenous.
std::vector<char> ExogenousFlags(const ConjunctiveQuery& q);

/// Body indices of endogenous relations.
std::vector<int> EndogenousRelations(const ConjunctiveQuery& q);

/// True if relation `j` is dominated by relation `i` per Definition 7:
///   (1) attr(Ri) ⊆ attr(Rj);
///   (2) for any Rk with attr(Ri) − attr(Rk) ≠ ∅:
///         attr(Rj) ∩ attr(Rk) ⊆ attr(Ri) ∩ head(Q);
///   (3) attr(Ri) ⊆ head(Q) or head(Q) ⊆ attr(Ri).
/// For full CQs this coincides with Definition 6.
/// Relations with identical attribute sets are handled by the caller's tie
/// rule; this predicate requires attr(Ri) != attr(Rj).
bool DominatedBy(const ConjunctiveQuery& q, int j, int i);

/// flags[j] == 1 iff relation `j` is dominated by some other relation
/// (Definition 7), with the paper's tie rule for identical attribute sets:
/// the lowest-index relation of each identical-set group is the candidate
/// non-dominated one, the rest are dominated.
std::vector<char> DominatedFlags(const ConjunctiveQuery& q);

/// Body indices of non-dominated relations.
std::vector<int> NonDominatedRelations(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_DICHOTOMY_RELATIONS_H_
