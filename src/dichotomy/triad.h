// Triad (Definition 3, from [11]) and triad-like (Definition 4) detection.
//
// A triad is a triple of endogenous relations R1, R2, R3 such that for each
// pair (say R1, R2) there is a path from R1 to R2 whose consecutive relations
// share an attribute outside attr(R3). A triad-like structure additionally
// forbids head attributes on the connecting path: the shared attributes must
// avoid head(Q) ∪ attr(R3).

#ifndef ADP_DICHOTOMY_TRIAD_H_
#define ADP_DICHOTOMY_TRIAD_H_

#include <optional>
#include <vector>

#include "query/query.h"

namespace adp {

/// A witness triple of body indices.
struct Triple {
  int r1;
  int r2;
  int r3;
};

/// Finds a triad in a *boolean* CQ (Definition 3), or nullopt.
std::optional<Triple> FindTriad(const ConjunctiveQuery& q);

/// Finds a triad-like structure in a general CQ (Definition 4), or nullopt.
/// On boolean queries this coincides with FindTriad.
std::optional<Triple> FindTriadLike(const ConjunctiveQuery& q);

/// Every triad-like triple (Definition 4), for diagnostics.
std::vector<Triple> FindAllTriadLike(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_DICHOTOMY_TRIAD_H_
