// The structural dichotomy (Theorem 3): ADP(Q, D, k) is NP-hard iff Q
// contains a triad-like structure, a strand, or the head join of its
// non-dominated relations is non-hierarchical.

#ifndef ADP_DICHOTOMY_STRUCTURES_H_
#define ADP_DICHOTOMY_STRUCTURES_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "query/query.h"
#include "util/attr_set.h"

namespace adp {

/// Hierarchical check (Definition 5) over the relations listed in `rels`,
/// projected onto the attributes in `attrs`: for every attribute pair A, B
/// occurring in the projections, rels(A) and rels(B) must be nested or
/// disjoint.
bool IsHierarchical(const ConjunctiveQuery& q, const std::vector<int>& rels,
                    AttrSet attrs);

/// Finds a strand (Definition 8): a pair of non-dominated relations Ri, Rj
/// with head ∩ attr(Ri) ≠ head ∩ attr(Rj) and
/// (attr(Ri) ∩ attr(Rj)) − head ≠ ∅. Returns body indices, or nullopt.
std::optional<std::pair<int, int>> FindStrand(const ConjunctiveQuery& q);

/// Every strand pair, for diagnostics.
std::vector<std::pair<int, int>> FindAllStrands(const ConjunctiveQuery& q);

/// True if the head join of the non-dominated relations is non-hierarchical
/// (relations with identical head projections are collapsed first, per
/// Case 3.2 of §4.2.3).
bool NonDominatedHeadJoinNonHierarchical(const ConjunctiveQuery& q);

/// Which of Theorem 3's hard structures (if any) a query contains.
enum class HardStructureKind {
  kNone,
  kTriadLike,
  kStrand,
  kNonHierarchicalHeadJoin,
};

/// A hard-structure witness for diagnostics.
struct HardStructure {
  HardStructureKind kind = HardStructureKind::kNone;
  std::vector<int> relations;  // witness body indices (empty for kNone)
  std::string description;    // human-readable explanation
};

/// Finds any hard structure in `q` (checking triad-like, then strand, then
/// the head-join condition). Per Theorem 3, kind == kNone iff ADP on `q` is
/// poly-time solvable.
HardStructure FindHardStructure(const ConjunctiveQuery& q);

/// Convenience wrapper for FindHardStructure.
bool HasHardStructure(const ConjunctiveQuery& q);

/// Every hard-structure witness in `q` (all triad-like triples, all
/// strands, plus the head-join condition if violated). Empty iff poly-time.
std::vector<HardStructure> AllHardStructures(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_DICHOTOMY_STRUCTURES_H_
