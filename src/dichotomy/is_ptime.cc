#include "dichotomy/is_ptime.h"

#include "dichotomy/triad.h"
#include "query/graph.h"
#include "query/transform.h"

namespace adp {
namespace {

bool IsPtimeImpl(const ConjunctiveQuery& q) {
  // Line 1: remove all universal attributes. One pass suffices: an attribute
  // is universal iff it is a head attribute present in every relation, and
  // removing other attributes never makes a new attribute universal.
  const AttrSet universal = q.UniversalAttrs();
  const ConjunctiveQuery reduced =
      universal.Empty() ? q : RemoveAttributes(q, universal);

  // Base case: boolean query — poly-time iff triad-free (Theorem 1 / [11]).
  if (reduced.IsBoolean()) {
    return !FindTriad(reduced).has_value();
  }

  // Base case: vacuum relation (Lemma 1).
  if (reduced.HasVacuumRelation()) {
    return true;
  }

  // Simplification: decompose a disconnected query (Lemma 3).
  const std::vector<std::vector<int>> comps = ConnectedComponents(reduced);
  if (comps.size() > 1) {
    for (const std::vector<int>& comp : comps) {
      if (!IsPtimeImpl(RestrictTo(reduced, comp).query)) return false;
    }
    return true;
  }

  // "Others": connected, non-boolean, no vacuum relation, no universal
  // attribute — NP-hard by Lemma 4.
  return false;
}

}  // namespace

bool IsPtime(const ConjunctiveQuery& q) {
  if (q.HasSelections()) {
    // Lemma 12: equivalent to the residual query on unselected attributes.
    return IsPtimeImpl(RemoveAttributes(q, q.SelectedAttrs()));
  }
  return IsPtimeImpl(q);
}

}  // namespace adp
