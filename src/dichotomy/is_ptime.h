// The procedural dichotomy IsPtime (Algorithm 1, Theorem 2): decides in
// query-complexity polynomial time whether ADP(Q, D, k) is poly-time solvable
// in data complexity for all D and k.

#ifndef ADP_DICHOTOMY_IS_PTIME_H_
#define ADP_DICHOTOMY_IS_PTIME_H_

#include "query/query.h"

namespace adp {

/// Algorithm 1. Returns true iff ADP on `q` is poly-time solvable.
///
/// Selections are handled per Lemma 12: the decision is made on the residual
/// query with the selected attributes removed.
bool IsPtime(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_DICHOTOMY_IS_PTIME_H_
