#include "dichotomy/triad.h"

#include "dichotomy/relations.h"
#include "query/graph.h"

namespace adp {
namespace {

// Shared implementation: `extra_forbidden` is ∅ for triads and head(Q) for
// triad-like structures. Stops at the first witness unless `all_out` is
// given, in which case every triple is collected.
std::optional<Triple> FindTriadImpl(const ConjunctiveQuery& q,
                                    AttrSet extra_forbidden,
                                    std::vector<Triple>* all_out = nullptr) {
  const std::vector<int> endo = EndogenousRelations(q);
  const AttrSet all = q.all_attrs();
  const int n = static_cast<int>(endo.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        // Each of the three relations plays the "avoided" role once.
        const int perm[3][3] = {{endo[a], endo[b], endo[c]},
                                {endo[a], endo[c], endo[b]},
                                {endo[b], endo[c], endo[a]}};
        bool is_triad = true;
        for (const auto& [r1, r2, r3] : perm) {
          const AttrSet allowed =
              all.Minus(q.relation(r3).attr_set()).Minus(extra_forbidden);
          if (!ConnectedVia(q, r1, r2, allowed)) {
            is_triad = false;
            break;
          }
        }
        if (is_triad) {
          if (!all_out) return Triple{endo[a], endo[b], endo[c]};
          all_out->push_back(Triple{endo[a], endo[b], endo[c]});
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Triple> FindTriad(const ConjunctiveQuery& q) {
  return FindTriadImpl(q, AttrSet());
}

std::optional<Triple> FindTriadLike(const ConjunctiveQuery& q) {
  return FindTriadImpl(q, q.head());
}

std::vector<Triple> FindAllTriadLike(const ConjunctiveQuery& q) {
  std::vector<Triple> out;
  FindTriadImpl(q, q.head(), &out);
  return out;
}

}  // namespace adp
