// One-shot, const-shareable dichotomy analysis of a query.
//
// IsPtime / FindTriadLike / FindLinearOrder are all query-complexity
// routines, but the linearization in particular is an exhaustive permutation
// search — far too expensive to repeat on every request for the same query.
// DichotomyVerdict bundles their results into an immutable value that a plan
// cache can compute once and share (by const reference or shared_ptr) across
// any number of concurrent solves.

#ifndef ADP_DICHOTOMY_CLASSIFICATION_H_
#define ADP_DICHOTOMY_CLASSIFICATION_H_

#include <optional>
#include <string>
#include <vector>

#include "dichotomy/triad.h"
#include "query/query.h"

namespace adp {

/// Immutable result of the full dichotomy analysis of one query. All fields
/// refer to the residual query after selection pushdown (Lemma 12), i.e.
/// the query the solver actually recurses on.
struct DichotomyVerdict {
  /// Algorithm 1: ADP(Q, D, k) is poly-time solvable for all D, k.
  bool ptime = false;

  /// A triad-like hardness witness (Definition 4), if one exists. Body
  /// indices refer to the residual query.
  std::optional<Triple> triad_like;

  /// Set iff the residual query is boolean and admits a linear arrangement
  /// (§7.1); the cut-based Boolean solver can then run without repeating
  /// the permutation search.
  std::optional<std::vector<int>> linear_order;

  /// Human-readable one-line summary, e.g. "ptime (linear order 0,2,1)".
  std::string Summary() const;
};

/// Runs the full analysis. Selections are handled per Lemma 12: the verdict
/// describes the residual query with the selected attributes removed.
DichotomyVerdict ClassifyDichotomy(const ConjunctiveQuery& q);

/// Variant for callers that already hold the selection-free residual query
/// and the result of its linearization search (e.g. from a DispatchPlan,
/// which runs FindLinearOrder for every boolean node): skips recomputing
/// both. `linear_order` is taken as the known search result for a boolean
/// residual (nullopt = proven absent) and ignored otherwise.
DichotomyVerdict ClassifyResidual(
    const ConjunctiveQuery& residual,
    std::optional<std::vector<int>> linear_order);

}  // namespace adp

#endif  // ADP_DICHOTOMY_CLASSIFICATION_H_
