// Linear arrangements of query bodies (§7.1).
//
// A boolean query is *linear* if its relations can be ordered so that every
// attribute occurs in a contiguous block of atoms. On linear queries the
// resilience problem reduces to a minimum vertex cut (Boolean solver). Every
// triad-free query used in the paper admits such an arrangement; since query
// complexity is O(1) we find one by exhaustive permutation search.

#ifndef ADP_DICHOTOMY_LINEARIZE_H_
#define ADP_DICHOTOMY_LINEARIZE_H_

#include <optional>
#include <vector>

#include "query/query.h"

namespace adp {

/// True if `order` (a permutation of body indices) places every attribute in
/// a contiguous run of atoms.
bool IsLinearOrder(const ConjunctiveQuery& q, const std::vector<int>& order);

/// Searches for a linear arrangement of all atoms. Returns body indices in
/// linear order, or nullopt if none exists.
std::optional<std::vector<int>> FindLinearOrder(const ConjunctiveQuery& q);

}  // namespace adp

#endif  // ADP_DICHOTOMY_LINEARIZE_H_
