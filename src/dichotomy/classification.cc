#include "dichotomy/classification.h"

#include "dichotomy/is_ptime.h"
#include "dichotomy/linearize.h"
#include "query/transform.h"

namespace adp {

std::string DichotomyVerdict::Summary() const {
  std::string out = ptime ? "ptime" : "np-hard";
  if (triad_like) {
    out += " (triad-like " + std::to_string(triad_like->r1) + "," +
           std::to_string(triad_like->r2) + "," +
           std::to_string(triad_like->r3) + ")";
  }
  if (linear_order) {
    out += " (linear order ";
    for (std::size_t i = 0; i < linear_order->size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string((*linear_order)[i]);
    }
    out += ')';
  }
  return out;
}

DichotomyVerdict ClassifyDichotomy(const ConjunctiveQuery& q) {
  const ConjunctiveQuery* residual = &q;
  ConjunctiveQuery pushed;
  if (q.HasSelections()) {
    pushed = RemoveAttributes(q, q.SelectedAttrs());
    residual = &pushed;
  }
  return ClassifyResidual(
      *residual,
      residual->IsBoolean() ? FindLinearOrder(*residual) : std::nullopt);
}

DichotomyVerdict ClassifyResidual(
    const ConjunctiveQuery& residual,
    std::optional<std::vector<int>> linear_order) {
  DichotomyVerdict verdict;
  verdict.ptime = IsPtime(residual);
  verdict.triad_like = FindTriadLike(residual);
  if (residual.IsBoolean()) verdict.linear_order = std::move(linear_order);
  return verdict;
}

}  // namespace adp
