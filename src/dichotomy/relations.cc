#include "dichotomy/relations.h"

namespace adp {

std::vector<char> ExogenousFlags(const ConjunctiveQuery& q) {
  const int p = q.num_relations();
  std::vector<char> exo(p, 0);
  for (int j = 0; j < p; ++j) {
    const AttrSet aj = q.relation(j).attr_set();
    for (int i = 0; i < p && !exo[j]; ++i) {
      if (i == j) continue;
      const AttrSet ai = q.relation(i).attr_set();
      if (ai.StrictSubsetOf(aj)) exo[j] = 1;
      if (ai == aj && i < j) exo[j] = 1;  // tie rule: first one endogenous
    }
  }
  return exo;
}

std::vector<int> EndogenousRelations(const ConjunctiveQuery& q) {
  std::vector<char> exo = ExogenousFlags(q);
  std::vector<int> out;
  for (int i = 0; i < q.num_relations(); ++i) {
    if (!exo[i]) out.push_back(i);
  }
  return out;
}

bool DominatedBy(const ConjunctiveQuery& q, int j, int i) {
  const AttrSet ai = q.relation(i).attr_set();
  const AttrSet aj = q.relation(j).attr_set();
  const AttrSet head = q.head();
  if (ai == aj) return false;  // ties handled by DominatedFlags
  // (1)
  if (!ai.SubsetOf(aj)) return false;
  // (3)
  if (!ai.SubsetOf(head) && !head.SubsetOf(ai)) return false;
  // (2)
  const AttrSet bound = ai.Intersect(head);
  for (int k = 0; k < q.num_relations(); ++k) {
    const AttrSet ak = q.relation(k).attr_set();
    if (ai.Minus(ak).Empty()) continue;  // attr(Ri) − attr(Rk) = ∅
    if (!aj.Intersect(ak).SubsetOf(bound)) return false;
  }
  return true;
}

std::vector<char> DominatedFlags(const ConjunctiveQuery& q) {
  const int p = q.num_relations();
  std::vector<char> dominated(p, 0);
  for (int j = 0; j < p; ++j) {
    const AttrSet aj = q.relation(j).attr_set();
    for (int i = 0; i < p && !dominated[j]; ++i) {
      if (i == j) continue;
      if (q.relation(i).attr_set() == aj) {
        if (i < j) dominated[j] = 1;  // tie rule: keep the first
      } else if (DominatedBy(q, j, i)) {
        dominated[j] = 1;
      }
    }
  }
  return dominated;
}

std::vector<int> NonDominatedRelations(const ConjunctiveQuery& q) {
  std::vector<char> dom = DominatedFlags(q);
  std::vector<int> out;
  for (int i = 0; i < q.num_relations(); ++i) {
    if (!dom[i]) out.push_back(i);
  }
  return out;
}

}  // namespace adp
