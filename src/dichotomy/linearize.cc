#include "dichotomy/linearize.h"

#include <algorithm>
#include <numeric>

namespace adp {

bool IsLinearOrder(const ConjunctiveQuery& q, const std::vector<int>& order) {
  for (AttrId a : q.all_attrs()) {
    int first = -1;
    int last = -1;
    int count = 0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      if (q.relation(order[pos]).attr_set().Contains(a)) {
        if (first < 0) first = static_cast<int>(pos);
        last = static_cast<int>(pos);
        ++count;
      }
    }
    if (count > 0 && last - first + 1 != count) return false;
  }
  return true;
}

std::optional<std::vector<int>> FindLinearOrder(const ConjunctiveQuery& q) {
  std::vector<int> order(q.num_relations());
  std::iota(order.begin(), order.end(), 0);
  do {
    if (IsLinearOrder(q, order)) return order;
  } while (std::next_permutation(order.begin(), order.end()));
  return std::nullopt;
}

}  // namespace adp
