#include "dichotomy/structures.h"

#include <set>
#include <sstream>

#include "dichotomy/relations.h"
#include "dichotomy/triad.h"

namespace adp {

bool IsHierarchical(const ConjunctiveQuery& q, const std::vector<int>& rels,
                    AttrSet attrs) {
  // rels(A) restricted to `rels`, as a bitmask over positions in `rels`.
  std::vector<std::uint64_t> occ(kMaxAttrs, 0);
  AttrSet present;
  for (std::size_t i = 0; i < rels.size(); ++i) {
    const AttrSet ra = q.relation(rels[i]).attr_set().Intersect(attrs);
    for (AttrId a : ra) {
      occ[a] |= std::uint64_t{1} << i;
      present.Add(a);
    }
  }
  for (AttrId a : present) {
    for (AttrId b : present) {
      if (a >= b) continue;
      const std::uint64_t oa = occ[a];
      const std::uint64_t ob = occ[b];
      const bool nested = (oa & ~ob) == 0 || (ob & ~oa) == 0;
      const bool disjoint = (oa & ob) == 0;
      if (!nested && !disjoint) return false;
    }
  }
  return true;
}

std::optional<std::pair<int, int>> FindStrand(const ConjunctiveQuery& q) {
  const auto all = FindAllStrands(q);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::vector<std::pair<int, int>> FindAllStrands(const ConjunctiveQuery& q) {
  std::vector<std::pair<int, int>> out;
  const std::vector<int> nd = NonDominatedRelations(q);
  const AttrSet head = q.head();
  for (std::size_t x = 0; x < nd.size(); ++x) {
    for (std::size_t y = x + 1; y < nd.size(); ++y) {
      const AttrSet ai = q.relation(nd[x]).attr_set();
      const AttrSet aj = q.relation(nd[y]).attr_set();
      if (head.Intersect(ai) == head.Intersect(aj)) continue;
      if (ai.Intersect(aj).Minus(head).Empty()) continue;
      out.emplace_back(nd[x], nd[y]);
    }
  }
  return out;
}

bool NonDominatedHeadJoinNonHierarchical(const ConjunctiveQuery& q) {
  const std::vector<int> nd = NonDominatedRelations(q);
  // Collapse relations whose head projections coincide (Case 3.2 keeps one
  // representative of each identical-attribute group).
  std::vector<int> kept;
  std::set<std::uint64_t> seen;
  for (int r : nd) {
    const AttrSet proj = q.relation(r).attr_set().Intersect(q.head());
    if (seen.insert(proj.mask()).second) kept.push_back(r);
  }
  return !IsHierarchical(q, kept, q.head());
}

HardStructure FindHardStructure(const ConjunctiveQuery& q) {
  HardStructure out;
  if (auto triad = FindTriadLike(q)) {
    out.kind = HardStructureKind::kTriadLike;
    out.relations = {triad->r1, triad->r2, triad->r3};
    std::ostringstream os;
    os << "triad-like structure on endogenous relations {"
       << q.relation(triad->r1).name << ", " << q.relation(triad->r2).name
       << ", " << q.relation(triad->r3).name << "}";
    out.description = os.str();
    return out;
  }
  if (auto strand = FindStrand(q)) {
    out.kind = HardStructureKind::kStrand;
    out.relations = {strand->first, strand->second};
    std::ostringstream os;
    os << "strand on non-dominated relations {"
       << q.relation(strand->first).name << ", "
       << q.relation(strand->second).name << "}";
    out.description = os.str();
    return out;
  }
  if (NonDominatedHeadJoinNonHierarchical(q)) {
    out.kind = HardStructureKind::kNonHierarchicalHeadJoin;
    out.relations = NonDominatedRelations(q);
    out.description =
        "the head join of the non-dominated relations is non-hierarchical";
    return out;
  }
  out.description = "no hard structure: ADP is poly-time solvable";
  return out;
}

bool HasHardStructure(const ConjunctiveQuery& q) {
  return FindHardStructure(q).kind != HardStructureKind::kNone;
}

std::vector<HardStructure> AllHardStructures(const ConjunctiveQuery& q) {
  std::vector<HardStructure> out;
  for (const Triple& t : FindAllTriadLike(q)) {
    HardStructure hs;
    hs.kind = HardStructureKind::kTriadLike;
    hs.relations = {t.r1, t.r2, t.r3};
    std::ostringstream os;
    os << "triad-like {" << q.relation(t.r1).name << ", "
       << q.relation(t.r2).name << ", " << q.relation(t.r3).name << "}";
    hs.description = os.str();
    out.push_back(std::move(hs));
  }
  for (const auto& [i, j] : FindAllStrands(q)) {
    HardStructure hs;
    hs.kind = HardStructureKind::kStrand;
    hs.relations = {i, j};
    std::ostringstream os;
    os << "strand {" << q.relation(i).name << ", " << q.relation(j).name
       << "}";
    hs.description = os.str();
    out.push_back(std::move(hs));
  }
  if (NonDominatedHeadJoinNonHierarchical(q)) {
    HardStructure hs;
    hs.kind = HardStructureKind::kNonHierarchicalHeadJoin;
    hs.relations = NonDominatedRelations(q);
    hs.description =
        "non-hierarchical head join of the non-dominated relations";
    out.push_back(std::move(hs));
  }
  return out;
}

}  // namespace adp
