// Cooperative cancellation and deadlines for long-running solves.
//
// A CancelToken is a small shared handle: producers call Cancel() or arm a
// deadline; consumers poll Check() at coarse work boundaries. The ComputeAdp
// recursion polls at every node (AdpOptions::cancel), including sharded
// sub-solves, so a fired token aborts a solve within one node's worth of
// work by throwing CancelledError. A Check() is one relaxed atomic load on
// the fast path plus, while a deadline is armed, one steady_clock read.
//
// Tokens are copyable; every copy observes the same shared state. The first
// Cancel()/expiry wins and is sticky — a token never un-fires.

#ifndef ADP_UTIL_CANCEL_H_
#define ADP_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace adp {

/// Why a token fired.
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,         // explicit Cancel()
  kDeadlineExceeded = 2,  // armed deadline passed
};

/// Thrown out of the solver recursion when its token fires; the engine maps
/// it to Status kCancelled / kDeadlineExceeded.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadlineExceeded
                               ? "solve aborted: deadline exceeded"
                               : "solve aborted: cancelled"),
        reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  /// An empty token: Check() is kNone forever and Cancel() is a no-op.
  /// Use Make() for a live one.
  CancelToken() = default;

  static CancelToken Make() {
    return CancelToken(std::make_shared<State>());
  }

  bool valid() const { return state_ != nullptr; }

  /// Fires the token. The first reason to land is sticky. Returns true iff
  /// this call performed the transition.
  bool Cancel(CancelReason reason = CancelReason::kCancelled) const {
    if (state_ == nullptr || reason == CancelReason::kNone) return false;
    int expected = 0;
    return state_->reason.compare_exchange_strong(
        expected, static_cast<int>(reason), std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Arms (or replaces) an absolute deadline. Expiry is detected lazily at
  /// the next Check(); an already-fired token is unaffected.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) const {
    if (state_ == nullptr) return;
    state_->deadline_ns.store(deadline.time_since_epoch().count(),
                              std::memory_order_relaxed);
    state_->has_deadline.store(true, std::memory_order_release);
  }

  /// Disarms the deadline. An expiry that already fired stays fired.
  void ClearDeadline() const {
    if (state_ != nullptr) {
      state_->has_deadline.store(false, std::memory_order_release);
    }
  }

  /// kNone while live; the sticky reason once fired. Promotes a passed
  /// deadline to the fired state as a side effect (so expiry observed once
  /// is observed forever, even if the deadline is later re-armed).
  CancelReason Check() const {
    if (state_ == nullptr) return CancelReason::kNone;
    const int fired = state_->reason.load(std::memory_order_acquire);
    if (fired != 0) return static_cast<CancelReason>(fired);
    if (state_->has_deadline.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            state_->deadline_ns.load(std::memory_order_relaxed)) {
      // CAS, not store: an explicit Cancel() racing in keeps its reason.
      int expected = 0;
      state_->reason.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadlineExceeded),
          std::memory_order_acq_rel, std::memory_order_acquire);
      return static_cast<CancelReason>(
          state_->reason.load(std::memory_order_acquire));
    }
    return CancelReason::kNone;
  }

  /// Throws CancelledError iff the token has fired.
  void ThrowIfCancelled() const {
    const CancelReason reason = Check();
    if (reason != CancelReason::kNone) throw CancelledError(reason);
  }

  /// Token identity (same shared state), not fired-state equality.
  friend bool operator==(const CancelToken& a, const CancelToken& b) {
    return a.state_ == b.state_;
  }

 private:
  struct State {
    std::atomic<int> reason{0};  // CancelReason; 0 = live
    std::atomic<bool> has_deadline{false};
    std::atomic<std::int64_t> deadline_ns{0};  // steady_clock epoch ticks
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace adp

#endif  // ADP_UTIL_CANCEL_H_
