// Hashing utilities for tuples and join keys.

#ifndef ADP_UTIL_HASH_H_
#define ADP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adp {

/// Mixes one 64-bit word into a running hash (SplitMix64 finalizer).
inline std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

/// Hashes a contiguous range of 64-bit values.
inline std::uint64_t HashRange(const std::int64_t* data, std::size_t n) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = HashMix(h, static_cast<std::uint64_t>(data[i]));
  }
  return h;
}

/// Hashes an arbitrary byte range (FNV-1a 64). Used for canonical query
/// fingerprints and other string-keyed caches.
inline std::uint64_t HashBytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// std::hash-compatible functor for vectors of int64 values.
struct VecHash {
  std::size_t operator()(const std::vector<std::int64_t>& v) const {
    return static_cast<std::size_t>(HashRange(v.data(), v.size()));
  }
};

}  // namespace adp

#endif  // ADP_UTIL_HASH_H_
