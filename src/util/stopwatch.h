// Minimal monotonic stopwatch and the engine's single clock source.
//
// Every duration the engine records — response timings, queue wait,
// histogram observations, span start/end — is derived from Now(), so all
// observability data lives on one steady timeline and durations from
// different subsystems can be compared and summed.

#ifndef ADP_UTIL_STOPWATCH_H_
#define ADP_UTIL_STOPWATCH_H_

#include <chrono>

namespace adp {

/// The engine's clock: monotonic, immune to wall-clock adjustments.
using MonotonicClock = std::chrono::steady_clock;

/// The single steady-clock read every engine timing goes through.
inline MonotonicClock::time_point Now() { return MonotonicClock::now(); }

/// Milliseconds from `from` to `to` (negative if `to` precedes `from`).
inline double MsBetween(MonotonicClock::time_point from,
                        MonotonicClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Now(); }

  /// Elapsed time in milliseconds since construction/Reset.
  double ElapsedMs() const { return MsBetween(start_, Now()); }

 private:
  MonotonicClock::time_point start_;
};

}  // namespace adp

#endif  // ADP_UTIL_STOPWATCH_H_
