// Minimal monotonic stopwatch used by harness code (examples, ad-hoc timing).

#ifndef ADP_UTIL_STOPWATCH_H_
#define ADP_UTIL_STOPWATCH_H_

#include <chrono>

namespace adp {

/// Wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction/Reset.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adp

#endif  // ADP_UTIL_STOPWATCH_H_
