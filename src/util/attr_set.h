// Compact attribute-set representation used throughout the query layer.
//
// A conjunctive query in this library has query complexity O(1): the number
// of distinct attributes is bounded by kMaxAttrs = 64, so a set of attributes
// fits into a single machine word and all set algebra is branch-free.

#ifndef ADP_UTIL_ATTR_SET_H_
#define ADP_UTIL_ATTR_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>

namespace adp {

/// Index of an attribute in a query's attribute catalog.
using AttrId = int;

/// Maximum number of distinct attributes per query (word-sized bitset).
inline constexpr int kMaxAttrs = 64;

/// A set of attribute ids backed by a 64-bit mask.
class AttrSet {
 public:
  constexpr AttrSet() = default;
  constexpr explicit AttrSet(std::uint64_t mask) : mask_(mask) {}
  constexpr AttrSet(std::initializer_list<AttrId> attrs) {
    for (AttrId a : attrs) Add(a);
  }

  /// Singleton set {a}.
  static constexpr AttrSet Of(AttrId a) { return AttrSet(std::uint64_t{1} << a); }
  /// The set {0, 1, ..., n-1}.
  static constexpr AttrSet FirstN(int n) {
    return n >= kMaxAttrs ? AttrSet(~std::uint64_t{0})
                          : AttrSet((std::uint64_t{1} << n) - 1);
  }

  constexpr void Add(AttrId a) { mask_ |= std::uint64_t{1} << a; }
  constexpr void Remove(AttrId a) { mask_ &= ~(std::uint64_t{1} << a); }
  constexpr bool Contains(AttrId a) const {
    return (mask_ >> a) & std::uint64_t{1};
  }

  constexpr bool Empty() const { return mask_ == 0; }
  constexpr int Size() const { return std::popcount(mask_); }
  constexpr std::uint64_t mask() const { return mask_; }

  constexpr AttrSet Union(AttrSet o) const { return AttrSet(mask_ | o.mask_); }
  constexpr AttrSet Intersect(AttrSet o) const {
    return AttrSet(mask_ & o.mask_);
  }
  constexpr AttrSet Minus(AttrSet o) const { return AttrSet(mask_ & ~o.mask_); }
  constexpr bool SubsetOf(AttrSet o) const { return (mask_ & ~o.mask_) == 0; }
  constexpr bool StrictSubsetOf(AttrSet o) const {
    return SubsetOf(o) && mask_ != o.mask_;
  }
  constexpr bool Intersects(AttrSet o) const { return (mask_ & o.mask_) != 0; }

  constexpr bool operator==(const AttrSet&) const = default;

  /// Iterates set bits in increasing AttrId order.
  class Iterator {
   public:
    constexpr explicit Iterator(std::uint64_t mask) : mask_(mask) {}
    constexpr AttrId operator*() const { return std::countr_zero(mask_); }
    constexpr Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    constexpr bool operator!=(const Iterator& o) const {
      return mask_ != o.mask_;
    }

   private:
    std::uint64_t mask_;
  };
  constexpr Iterator begin() const { return Iterator(mask_); }
  constexpr Iterator end() const { return Iterator(0); }

 private:
  std::uint64_t mask_ = 0;
};

}  // namespace adp

#endif  // ADP_UTIL_ATTR_SET_H_
