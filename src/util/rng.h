// Deterministic random number generation for workload generators and tests.
//
// All generators in this library take an explicit seed so that every
// experiment in EXPERIMENTS.md is exactly reproducible.

#ifndef ADP_UTIL_RNG_H_
#define ADP_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace adp {

/// SplitMix64: tiny, fast, well-distributed PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Uniform(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

/// Samples ranks from a Zipfian distribution over {0, ..., n-1}: the
/// frequency of rank i is proportional to (i+1)^-alpha (alpha = 0 is
/// uniform). Uses a precomputed inverse-CDF table; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(int n, double alpha);

  /// Draws one rank in [0, n).
  int Sample(Rng& rng) const;

  int n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  int n_;
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace adp

#endif  // ADP_UTIL_RNG_H_
