// Saturating arithmetic for output counts. Cross products of component
// output counts overflow 64 bits quickly; all combination math saturates at
// kMaxOutputs instead.

#ifndef ADP_UTIL_SATURATING_H_
#define ADP_UTIL_SATURATING_H_

#include <cstdint>

namespace adp {

/// Saturation bound for output counts.
inline constexpr std::int64_t kMaxOutputs = std::int64_t{1} << 62;

/// a * b saturated at kMaxOutputs (both non-negative).
inline std::int64_t SatMul(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kMaxOutputs / b) return kMaxOutputs;
  return a * b;
}

/// a + b saturated at kMaxOutputs (both non-negative).
inline std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
  if (a > kMaxOutputs - b) return kMaxOutputs;
  return a + b;
}

}  // namespace adp

#endif  // ADP_UTIL_SATURATING_H_
