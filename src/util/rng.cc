#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace adp {

ZipfSampler::ZipfSampler(int n, double alpha) : n_(n), alpha_(alpha) {
  cdf_.resize(n_);
  double total = 0.0;
  for (int i = 0; i < n_; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha_);
    cdf_[i] = total;
  }
  for (int i = 0; i < n_; ++i) cdf_[i] /= total;
}

int ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace adp
