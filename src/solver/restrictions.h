// §9 extension ("as a first step, one might want to consider a scenario
// where only a subset of input tuples can be removed"): deletion
// restrictions mark root tuples as protected — no solver may delete them.
//
// Support matrix:
//   * Boolean/resilience: exact (protected tuples get infinite capacity in
//     the vertex-cut network);
//   * GreedyForCQ / DrasticGreedy / BruteForce: respected exactly;
//   * Singleton / the profile DPs: their exchange arguments assume free
//     choice, so when restrictions are present the dispatcher skips the
//     Singleton base case and marks non-boolean leaves heuristic
//     (exact = false). Universe/Decompose combinations remain valid since
//     they only combine child results.

#ifndef ADP_SOLVER_RESTRICTIONS_H_
#define ADP_SOLVER_RESTRICTIONS_H_

#include <vector>

#include "relational/database.h"
#include "relational/relation.h"

namespace adp {

/// A set of protected root tuples.
class DeletionRestrictions {
 public:
  /// Marks root tuple (relation, row) as undeletable.
  void Protect(int relation, TupleId row) {
    if (static_cast<int>(protected_.size()) <= relation) {
      protected_.resize(relation + 1);
    }
    auto& rows = protected_[relation];
    if (rows.size() <= row) rows.resize(row + 1, 0);
    rows[row] = 1;
  }

  /// True if the root tuple may not be deleted.
  bool IsProtected(int relation, TupleId row) const {
    if (relation < 0 || relation >= static_cast<int>(protected_.size())) {
      return false;
    }
    const auto& rows = protected_[relation];
    return row < rows.size() && rows[row];
  }

  /// True for a tuple of a (possibly derived) instance, resolved through
  /// its origin bookkeeping.
  bool IsProtectedLocal(const RelationInstance& inst, std::size_t i) const {
    return IsProtected(inst.root_relation(), inst.OriginOf(i));
  }

  bool Empty() const { return protected_.empty(); }

 private:
  std::vector<std::vector<char>> protected_;
};

}  // namespace adp

#endif  // ADP_SOLVER_RESTRICTIONS_H_
