#include "solver/compute_adp.h"

#include <algorithm>
#include <memory>

#include "obs/names.h"
#include "obs/trace.h"
#include "query/graph.h"
#include "query/transform.h"
#include "relational/join.h"
#include "flow/max_flow.h"
#include "solver/boolean.h"
#include "solver/decompose.h"
#include "solver/drastic.h"
#include "solver/greedy.h"
#include "solver/plan.h"
#include "solver/singleton.h"
#include "solver/universe.h"

namespace adp {
namespace {

// Algorithm 2 dispatch, preferring the precomputed plan when one is set.
// The plan entry (if any) is handed back so case handlers reuse it without
// a second canonical-key lookup.
AdpCase Classify(const ConjunctiveQuery& q, const AdpOptions& options,
                 const PlanEntry** entry_out = nullptr) {
  const PlanEntry* entry =
      options.plan != nullptr ? options.plan->Find(q) : nullptr;
  if (entry_out != nullptr) *entry_out = entry;
  if (entry != nullptr) return entry->op;
  return ClassifyAdpCase(q, options);
}

AdpNode TrivialNode(const AdpOptions& options) {
  AdpNode node;
  node.profile = CostProfile();
  node.exact = true;
  if (!options.counting_only) {
    node.report = [](std::int64_t) { return std::vector<TupleRef>(); };
  }
  return node;
}

AdpNode HeuristicNode(const ConjunctiveQuery& q, const Database& db,
                      std::int64_t cap, const AdpOptions& options) {
  if (options.heuristic == AdpOptions::Heuristic::kDrastic && q.IsFull()) {
    return DrasticNode(q, db, cap, options);
  }
  return GreedyNode(q, db, cap, options);
}

AdpNode BooleanNode(const ConjunctiveQuery& q, const Database& db,
                    std::int64_t cap, const AdpOptions& options,
                    const PlanEntry* entry) {
  const std::int64_t count = static_cast<std::int64_t>(
      CountOutputs(q.body(), q.head(), db));
  if (count == 0 || cap <= 0) return TrivialNode(options);
  if (options.stats) ++options.stats->boolean_nodes;
  // With a plan entry, the §7.1 permutation search was done once at plan
  // time: reuse its arrangement, or skip straight to the fallback if it
  // proved none exists.
  const std::vector<int>* planned_order = nullptr;
  bool planned_no_order = false;
  if (entry != nullptr && entry->op == AdpCase::kBoolean) {
    if (entry->linear_order) {
      planned_order = &*entry->linear_order;
    } else {
      planned_no_order = true;
    }
  }
  if (auto exact = planned_no_order
                       ? std::nullopt
                       : SolveBooleanExact(q, db, options.restrictions,
                                           planned_order)) {
    AdpNode node;
    node.exact = true;
    // A cut at or above kInfCapacity means the query cannot be falsified
    // with the deletable tuples (possible only under §9 restrictions).
    const std::int64_t res = exact->resilience >= kInfCapacity
                                 ? kInfCost
                                 : exact->resilience;
    node.profile = CostProfile({0, res});
    if (!options.counting_only) {
      auto cut = std::make_shared<std::vector<TupleRef>>(
          std::move(exact->cut));
      node.report = [cut](std::int64_t j) {
        return j > 0 ? *cut : std::vector<TupleRef>();
      };
    }
    return node;
  }
  // No linear arrangement (possible only for NP-hard boolean queries, or
  // exotic triad-free shapes outside the paper's scope): greedy fallback.
  if (options.stats) ++options.stats->boolean_fallbacks;
  return GreedyNode(q, db, cap, options);
}

const char* SpanNameFor(AdpCase c) {
  switch (c) {
    case AdpCase::kBoolean: return obs::kSpanNodeBoolean;
    case AdpCase::kSingleton: return obs::kSpanNodeSingleton;
    case AdpCase::kUniverse: return obs::kSpanNodeUniverse;
    case AdpCase::kDecompose: return obs::kSpanNodeDecompose;
    case AdpCase::kHeuristic: return obs::kSpanNodeHeuristic;
  }
  return obs::kSpanNodeHeuristic;  // unreachable
}

// The Algorithm-2 dispatch switch, shared by the traced and untraced paths
// of ComputeAdpNode.
AdpNode DispatchCase(AdpCase c, const ConjunctiveQuery& q, const Database& db,
                     std::int64_t cap, const AdpOptions& options,
                     const PlanEntry* entry) {
  switch (c) {
    case AdpCase::kBoolean:
      return BooleanNode(q, db, cap, options, entry);
    case AdpCase::kSingleton:
      return SingletonNode(q, db, cap, options);
    case AdpCase::kUniverse:
      return UniverseNode(q, db, cap, options);
    case AdpCase::kDecompose:
      return DecomposeNode(q, db, cap, options);
    case AdpCase::kHeuristic:
      return HeuristicNode(q, db, cap, options);
  }
  return TrivialNode(options);  // unreachable
}

}  // namespace

void MergeAdpStats(AdpStats& into, const AdpStats& from) {
  into.boolean_nodes += from.boolean_nodes;
  into.boolean_fallbacks += from.boolean_fallbacks;
  into.singleton_nodes += from.singleton_nodes;
  into.universe_nodes += from.universe_nodes;
  into.decompose_nodes += from.decompose_nodes;
  into.greedy_leaves += from.greedy_leaves;
  into.drastic_leaves += from.drastic_leaves;
  into.universe_groups += from.universe_groups;
  into.sharded_universe_nodes += from.sharded_universe_nodes;
  into.sharded_decompose_nodes += from.sharded_decompose_nodes;
}

bool operator==(const AdpStats& a, const AdpStats& b) {
  return a.boolean_nodes == b.boolean_nodes &&
         a.boolean_fallbacks == b.boolean_fallbacks &&
         a.singleton_nodes == b.singleton_nodes &&
         a.universe_nodes == b.universe_nodes &&
         a.decompose_nodes == b.decompose_nodes &&
         a.greedy_leaves == b.greedy_leaves &&
         a.drastic_leaves == b.drastic_leaves &&
         a.universe_groups == b.universe_groups &&
         a.sharded_universe_nodes == b.sharded_universe_nodes &&
         a.sharded_decompose_nodes == b.sharded_decompose_nodes;
}

bool StatsAgreeModuloSharding(const AdpStats& a, const AdpStats& b) {
  AdpStats am = a;
  AdpStats bm = b;
  am.sharded_universe_nodes = bm.sharded_universe_nodes = 0;
  am.sharded_decompose_nodes = bm.sharded_decompose_nodes = 0;
  return am == bm;
}

AdpCase ClassifyAdpCase(const ConjunctiveQuery& q, const AdpOptions& options) {
  if (q.IsBoolean()) return AdpCase::kBoolean;
  // Singleton's optimality argument assumes any tuple may be deleted; with
  // restrictions the recursion continues to restriction-aware leaves.
  const bool restricted =
      options.restrictions != nullptr && !options.restrictions->Empty();
  if (options.use_singleton && !restricted && IsSingletonQuery(q, nullptr)) {
    return AdpCase::kSingleton;
  }
  if (!q.UniversalAttrs().Empty()) return AdpCase::kUniverse;
  if (!IsConnected(q)) return AdpCase::kDecompose;
  return AdpCase::kHeuristic;
}

AdpNode ComputeAdpNode(const ConjunctiveQuery& q, const Database& db,
                       std::int64_t cap, const AdpOptions& options) {
  ThrowIfCancelled(options);
  if (cap <= 0) return TrivialNode(options);
  const PlanEntry* entry = nullptr;
  const AdpCase c = Classify(q, options, &entry);
  if (options.trace == nullptr) {
    // Tracing disabled: this null check — at the same boundary that polled
    // the cancel token above — is the layer's entire per-node overhead.
    return DispatchCase(c, q, db, cap, options, entry);
  }
  obs::Span span(options.trace, SpanNameFor(c), options.trace_parent);
  span.Tag("cap", cap);
  AdpOptions traced = options;
  traced.trace_parent = span.id();
  return DispatchCase(c, q, db, cap, traced, entry);
}

AdpSolution ComputeAdp(const ConjunctiveQuery& q, const Database& db,
                       std::int64_t k, const AdpOptions& options) {
  ThrowIfCancelled(options);
  // Lemma 12: push selections down first.
  const ConjunctiveQuery* query = &q;
  const Database* data = &db;
  QueryDb pushed;
  if (q.HasSelections()) {
    pushed = ApplySelections(q, db);
    query = &pushed.query;
    data = &pushed.db;
  }

  AdpSolution solution;
  solution.output_count = static_cast<std::int64_t>(
      CountOutputs(query->body(), query->head(), *data));
  if (k > solution.output_count) {
    solution.feasible = false;
    solution.cost = kInfCost;
    return solution;
  }
  if (k <= 0) {
    solution.removed_outputs = 0;
    return solution;
  }

  if (Classify(*query, options) == AdpCase::kDecompose) {
    // Root fast path: avoids profiles of length k (k can be a fraction of a
    // cross-product-sized |Q(D)|). Bypasses ComputeAdpNode, so it opens its
    // own node span.
    obs::Span span(options.trace, obs::kSpanNodeDecompose,
                   options.trace_parent);
    span.Tag("cap", k);
    span.Tag("root_single_k", std::int64_t{1});
    AdpOptions inner = options;
    inner.trace_parent = span.id() != 0 ? span.id() : options.trace_parent;
    DecomposeSingleResult res =
        SolveDecomposeSingleK(*query, *data, k, inner);
    solution.cost = res.cost;
    solution.exact = res.exact;
    solution.tuples = std::move(res.tuples);
  } else {
    AdpNode node = ComputeAdpNode(*query, *data, k, options);
    solution.cost = node.profile.At(k);
    solution.exact = node.exact;
    if (!options.counting_only && node.report && solution.cost < kInfCost) {
      obs::Span span(options.trace, obs::kSpanWitnesses,
                     options.trace_parent);
      solution.tuples = node.report(k);
    }
  }
  if (solution.cost >= kInfCost) {
    // Reachable only under deletion restrictions: the target cannot be met
    // with the deletable tuples alone.
    solution.feasible = false;
    return solution;
  }

  if (!options.counting_only) {
    {
      obs::Span span(options.trace, obs::kSpanNormalize,
                     options.trace_parent);
      NormalizeTupleRefs(solution.tuples);
    }
    if (options.verify) {
      obs::Span span(options.trace, obs::kSpanVerify, options.trace_parent);
      solution.removed_outputs = CountRemovedOutputs(q, db, solution.tuples);
    }
  }
  return solution;
}

}  // namespace adp
