// Cost profiles: the common currency of the ComputeADP dynamic programs.
//
// A CostProfile for a subproblem (Q', D') stores, for j = 0..kmax,
//   cost[j] = number of input tuples the sub-solver needs to delete to
//             remove at least j outputs from Q'(D').
// Profiles are nondecreasing with cost[0] = 0. For exact sub-solvers the
// entries are optimal; for heuristic leaves they are feasible upper bounds.
//
// Two combination semantics occur in the paper:
//   * disjoint union (Universe, Eq. 1): removed outputs add up;
//   * cross product (Decompose, Alg. 5): removing k1 of m1 and k2 of m2
//     outputs removes k1*m2 + k2*m1 - k1*k2 of the m1*m2 products.
//
// CombineProduct implements the §7.3 "improved" recurrence: for each target
// j and each k2 it derives the minimal feasible k1 in closed form, turning
// the paper's O(k^2) inner enumeration into O(1).

#ifndef ADP_SOLVER_PROFILE_H_
#define ADP_SOLVER_PROFILE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/saturating.h"

namespace adp {

/// Sentinel for "not achievable at this node".
inline constexpr std::int64_t kInfCost = std::int64_t{1} << 60;

class CostProfile {
 public:
  /// The trivial profile {0}: nothing to remove, nothing removable.
  CostProfile() : cost_(1, 0) {}

  /// Wraps an explicit cost vector. Requires cost[0] == 0 and entries
  /// nondecreasing (checked in debug builds).
  explicit CostProfile(std::vector<std::int64_t> cost);

  /// Largest j the profile covers.
  std::int64_t kmax() const {
    return static_cast<std::int64_t>(cost_.size()) - 1;
  }

  /// cost[j], or kInfCost beyond kmax.
  std::int64_t At(std::int64_t j) const {
    return (j >= 0 && j <= kmax()) ? cost_[j] : kInfCost;
  }

  bool Feasible(std::int64_t j) const { return At(j) < kInfCost; }

  /// Largest j with cost[j] <= budget (profiles are nondecreasing).
  std::int64_t MaxRemovedWithin(std::int64_t budget) const;

  /// True if marginal costs are nonincreasing in value terms — i.e. the
  /// increments cost[j+1]-cost[j] are nondecreasing in j.
  bool IsConvex() const;

  /// True if the gains-per-unit-budget sequence
  ///   g_c = MaxRemovedWithin(c) - MaxRemovedWithin(c-1)
  /// is nonincreasing. Such profiles behave like a list of unit-cost items
  /// with nonincreasing profits (Singleton case 1, vacuum relations), which
  /// is exactly the precondition for the greedy marginal-merge combination
  /// under disjoint union (classic concave resource allocation).
  bool HasConcaveGains() const;

  /// Shrinks the profile to kmax = cap (no-op if already smaller).
  void TruncateTo(std::int64_t cap);

  const std::vector<std::int64_t>& costs() const { return cost_; }

 private:
  std::vector<std::int64_t> cost_;
};

/// Disjoint-union combination up to `cap`:
///   out[j] = min over m of a[j-m] + b[m].
/// If `choice_b` is non-null it receives, per j, the minimizing m.
CostProfile CombineDisjoint(const CostProfile& a, const CostProfile& b,
                            std::int64_t cap,
                            std::vector<std::int64_t>* choice_b);

/// Cross-product combination up to `cap`, where `a` governs a factor with
/// `ma` outputs and `b` a factor with `mb` outputs:
///   out[j] = min over (k1,k2) with k1*mb + k2*ma - k1*k2 >= j
///            of a[k1] + b[k2].
/// `naive_inner` selects the paper's original O(j^2) enumeration instead of
/// the improved closed-form scan (used by the Fig. 29 ablation).
/// If `choice` is non-null it receives, per j, the minimizing (k1, k2).
CostProfile CombineProduct(const CostProfile& a, std::int64_t ma,
                           const CostProfile& b, std::int64_t mb,
                           std::int64_t cap, bool naive_inner,
                           std::vector<std::pair<std::int64_t, std::int64_t>>*
                               choice);

}  // namespace adp

#endif  // ADP_SOLVER_PROFILE_H_
