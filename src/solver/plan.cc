#include "solver/plan.h"

#include <utility>

#include "dichotomy/linearize.h"
#include "query/fingerprint.h"
#include "query/transform.h"

namespace adp {
namespace {

DispatchPlan::TreeNode BuildNode(
    const ConjunctiveQuery& q, const AdpOptions& options,
    std::unordered_map<std::string, PlanEntry>& entries) {
  DispatchPlan::TreeNode node;
  node.key = CanonicalQueryKey(q);
  node.op = ClassifyAdpCase(q, options);

  const bool seen = entries.count(node.key) > 0;
  if (!seen) {
    PlanEntry entry;
    entry.op = node.op;
    if (node.op == AdpCase::kBoolean) {
      entry.linear_order = FindLinearOrder(q);
    }
    entries.emplace(node.key, std::move(entry));
  }

  // Recurse into the structures the solver will derive. Structures already
  // planned are not expanded again (identical structure => identical
  // subtree), which keeps e.g. the one-by-one Universe chain linear.
  if (seen) return node;
  switch (node.op) {
    case AdpCase::kUniverse: {
      AttrSet to_remove = q.UniversalAttrs();
      if (options.universe_strategy ==
          AdpOptions::UniverseStrategy::kOneByOne) {
        to_remove = AttrSet::Of(*to_remove.begin());
      }
      node.children.push_back(
          BuildNode(RemoveAttributes(q, to_remove), options, entries));
      break;
    }
    case AdpCase::kDecompose: {
      for (const Subquery& sub : DecomposeQuery(q)) {
        node.children.push_back(BuildNode(sub.query, options, entries));
      }
      break;
    }
    case AdpCase::kBoolean:
    case AdpCase::kSingleton:
    case AdpCase::kHeuristic:
      break;  // leaves of the query-structure recursion
  }
  return node;
}

void Render(const DispatchPlan::TreeNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += AdpCaseName(node.op);
  out += ' ';
  out += node.key;
  out += '\n';
  for (const auto& child : node.children) Render(child, depth + 1, out);
}

}  // namespace

const char* AdpCaseName(AdpCase c) {
  switch (c) {
    case AdpCase::kBoolean: return "boolean";
    case AdpCase::kSingleton: return "singleton";
    case AdpCase::kUniverse: return "universe";
    case AdpCase::kDecompose: return "decompose";
    case AdpCase::kHeuristic: return "heuristic";
  }
  return "?";
}

const PlanEntry* DispatchPlan::Find(const ConjunctiveQuery& q) const {
  return FindByKey(CanonicalQueryKey(q));
}

const PlanEntry* DispatchPlan::FindByKey(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::string DispatchPlan::ToString() const {
  std::string out;
  Render(root_, 0, out);
  return out;
}

DispatchPlan BuildDispatchPlan(const ConjunctiveQuery& q,
                               const AdpOptions& options) {
  DispatchPlan plan;
  plan.root_ = BuildNode(q, options, plan.entries_);
  return plan;
}

}  // namespace adp
