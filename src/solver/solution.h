// Solution types shared by every solver, plus verification.

#ifndef ADP_SOLVER_SOLUTION_H_
#define ADP_SOLVER_SOLUTION_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// A reference to one input tuple of the *root* database.
struct TupleRef {
  int relation = 0;  // body index in the root query
  TupleId row = 0;   // row index in the root instance

  friend bool operator==(const TupleRef& a, const TupleRef& b) {
    return a.relation == b.relation && a.row == b.row;
  }
  friend bool operator<(const TupleRef& a, const TupleRef& b) {
    return std::tie(a.relation, a.row) < std::tie(b.relation, b.row);
  }
};

/// Result of ADP(Q, D, k).
struct AdpSolution {
  /// Number of input tuples removed (the objective value).
  std::int64_t cost = 0;

  /// The removed tuples (empty when counting_only was requested).
  std::vector<TupleRef> tuples;

  /// True iff every step of the recursion was exact — i.e. `cost` is the
  /// optimum. Heuristic leaves (GreedyForCQ / Drastic) clear this.
  bool exact = true;

  /// False iff k exceeded |Q(D)| (no solution exists).
  bool feasible = true;

  /// |Q(D)| before any deletion.
  std::int64_t output_count = 0;

  /// Outputs actually removed by `tuples`; -1 unless verification ran.
  std::int64_t removed_outputs = -1;
};

/// Re-evaluates the query and returns how many outputs disappear when
/// `tuples` (root coordinates) are removed from `db`. `q` and `db` must be
/// the root query/database (selections allowed; they are applied first).
std::int64_t CountRemovedOutputs(const ConjunctiveQuery& q, const Database& db,
                                 const std::vector<TupleRef>& tuples);

/// Sorts and deduplicates a tuple list in place.
void NormalizeTupleRefs(std::vector<TupleRef>& tuples);

}  // namespace adp

#endif  // ADP_SOLVER_SOLUTION_H_
