// BruteForce baseline (§8.2): enumerate subsets of input tuples in
// increasing size; the first size that removes >= k outputs is optimal.
// Exponential — usable only on small instances, as in Figures 12–13.

#ifndef ADP_SOLVER_BRUTE_FORCE_H_
#define ADP_SOLVER_BRUTE_FORCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/restrictions.h"
#include "solver/solution.h"

namespace adp {

/// Exact ADP(Q, D, k) by subset enumeration. Selections are pushed down
/// first (tuples violating a predicate are never candidates). Returns
/// nullopt if k > |Q(D)| or if `max_cost` (when >= 0) is exhausted before a
/// solution is found.
std::optional<AdpSolution> BruteForceAdp(
    const ConjunctiveQuery& q, const Database& db, std::int64_t k,
    std::int64_t max_cost = -1,
    const DeletionRestrictions* restrictions = nullptr);

}  // namespace adp

#endif  // ADP_SOLVER_BRUTE_FORCE_H_
