#include "solver/decompose.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "obs/names.h"
#include "obs/trace.h"
#include "query/transform.h"
#include "relational/join.h"

namespace adp {
namespace {

// Profiles longer than this indicate a target k proportional to a
// cross-product-sized output; the root single-k path avoids them, so hitting
// the limit means the caller nested Decompose under an enormous cap.
constexpr std::int64_t kProfileLimit = std::int64_t{1} << 25;

struct Components {
  std::vector<Subquery> subs;
  std::vector<Database> dbs;
  std::vector<std::int64_t> m;       // |Q_i(D)| per component
  std::vector<std::size_t> order;    // fold order: ascending m, largest last
  std::int64_t total = 1;            // saturated product of m
};

Components SplitComponents(const ConjunctiveQuery& q, const Database& db) {
  Components parts;
  parts.subs = DecomposeQuery(q);
  for (const Subquery& sub : parts.subs) {
    parts.dbs.push_back(SubDatabase(sub, db));
    parts.m.push_back(static_cast<std::int64_t>(CountOutputs(
        sub.query.body(), sub.query.head(), parts.dbs.back())));
    parts.total = SatMul(parts.total, parts.m.back());
  }
  parts.order.resize(parts.subs.size());
  std::iota(parts.order.begin(), parts.order.end(), 0);
  std::sort(parts.order.begin(), parts.order.end(),
            [&](std::size_t a, std::size_t b) {
              return parts.m[a] < parts.m[b];
            });
  return parts;
}

void CheckProfileLimit(std::int64_t len) {
  if (len > kProfileLimit) {
    throw std::runtime_error(
        "Decompose: requested profile length exceeds the supported limit; "
        "the target k is proportional to a cross-product-sized output count");
  }
}

// State shared with reporters.
struct DecomposeState {
  std::vector<AdpNode> children;                 // in fold order
  std::vector<std::int64_t> m;                   // in fold order
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> choices;
};

// Reconstructs tuples for target `j` of the fold prefix ending at `level`
// (inclusive). Level 0 means children[0] alone. `cancel` is polled before
// each per-component report so a cancelled stream stops mid-enumeration
// (reporters run after the profile solve, possibly much later).
void ReportFold(const DecomposeState& s, std::size_t level, std::int64_t j,
                const CancelToken& cancel, std::vector<TupleRef>& out) {
  std::int64_t target = j;
  for (std::size_t i = level; i >= 1; --i) {
    const auto [k1, k2] = s.choices[i][target];
    if (k2 > 0) {
      cancel.ThrowIfCancelled();
      std::vector<TupleRef> part = s.children[i].report(k2);
      out.insert(out.end(), part.begin(), part.end());
    }
    target = k1;
  }
  if (target > 0) {
    cancel.ThrowIfCancelled();
    std::vector<TupleRef> part = s.children[0].report(target);
    out.insert(out.end(), part.begin(), part.end());
  }
}


// Full-enumeration (Eq. 2) support: finds the cheapest (k1..ks) vector with
// >= j outputs removed; returns its cost and (optionally) the vector.
//
// This is deliberately the *literal* enumeration of Lemma 3's proof — every
// k_i ranges over [0, j] with no pruning, Θ(k^s) combinations — because the
// Figure 29 ablation measures exactly that strategy. Vectors with
// k_i beyond a component's removable outputs carry infinite cost and are
// skipped at the comparison, not in the loop bounds.
std::int64_t EnumerateVectors(const DecomposeState& s, std::int64_t j,
                              std::vector<std::int64_t>* best_vec) {
  const std::size_t n = s.children.size();
  std::vector<std::int64_t> vec(n, 0);
  std::int64_t best = kInfCost;
  std::int64_t total = 1;
  for (std::int64_t mi : s.m) total = SatMul(total, mi);

  // Depth-first enumeration over per-component removal counts; `surviving`
  // is the partial product of (m_i - k_i), so removed = total - surviving.
  std::function<void(std::size_t, std::int64_t, std::int64_t)> rec =
      [&](std::size_t i, std::int64_t cost, std::int64_t surviving) {
        if (i == n) {
          if (cost < best && total - surviving >= j) {
            best = cost;
            if (best_vec) *best_vec = vec;
          }
          return;
        }
        for (std::int64_t ki = 0; ki <= j; ++ki) {
          vec[i] = ki;
          rec(i + 1, cost + s.children[i].profile.At(ki),
              SatMul(surviving, std::max<std::int64_t>(0, s.m[i] - ki)));
        }
      };
  rec(0, 0, 1);
  return best;
}

std::shared_ptr<DecomposeState> BuildChildren(const Components& parts,
                                              std::int64_t cap,
                                              const AdpOptions& options) {
  auto state = std::make_shared<DecomposeState>();
  const std::size_t n = parts.order.size();
  const Parallelism* par = options.parallelism;
  if (par != nullptr && par->run_all != nullptr && par->min_components > 0 &&
      n >= std::max<std::size_t>(par->min_components, 2)) {
    // Sharded path: the components are independent subproblems (Lemma 3),
    // so their per-k profiles can be solved concurrently. Children land at
    // fixed fold-order indices and are combined by the caller's
    // cross-product DP in that same order, keeping the result
    // bitwise-identical to the sequential path. Each shard writes a private
    // AdpStats (the shared pointer would race) merged afterwards.
    if (options.stats) ++options.stats->sharded_decompose_nodes;
    state->children.resize(n);
    state->m.resize(n);
    std::vector<AdpStats> shard_stats(options.stats ? n : 0);
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&, i] {
        const std::size_t idx = parts.order[i];
        try {
          AdpOptions shard = options;
          if (options.stats) shard.stats = &shard_stats[i];
          // One span per shard, parented under this Decompose node's span;
          // the explicit parent link keeps the trace a tree even though
          // shards run on arbitrary pool threads.
          obs::Span span(options.trace, obs::kSpanShardDecompose,
                         options.trace_parent);
          span.Tag("shard", static_cast<std::int64_t>(i));
          span.Tag("component", static_cast<std::int64_t>(idx));
          shard.trace_parent = span.id();
          // Sharded sub-solves poll the token too: a cancel that lands
          // mid-fan-out stops the remaining components at their boundary.
          ThrowIfCancelled(shard);
          const std::int64_t child_cap = std::min(parts.m[idx], cap);
          state->children[i] = ComputeAdpNode(parts.subs[idx].query,
                                              parts.dbs[idx], child_cap,
                                              shard);
          state->m[i] = parts.m[idx];
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    par->run_all(std::move(tasks));
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    if (options.stats) {
      for (const AdpStats& s : shard_stats) MergeAdpStats(*options.stats, s);
    }
    return state;
  }
  for (std::size_t idx : parts.order) {
    ThrowIfCancelled(options);
    const std::int64_t child_cap = std::min(parts.m[idx], cap);
    state->children.push_back(ComputeAdpNode(
        parts.subs[idx].query, parts.dbs[idx], child_cap, options));
    state->m.push_back(parts.m[idx]);
  }
  return state;
}

}  // namespace

AdpNode DecomposeNode(const ConjunctiveQuery& q, const Database& db,
                      std::int64_t cap, const AdpOptions& options) {
  if (options.stats) ++options.stats->decompose_nodes;
  const Components parts = SplitComponents(q, db);
  if (options.trace != nullptr) {
    // options.trace_parent is this node's own span (opened by
    // ComputeAdpNode before dispatching here).
    options.trace->Annotate(options.trace_parent, "components",
                            std::to_string(parts.subs.size()));
  }
  const std::int64_t out_kmax = std::min(cap, parts.total);
  CheckProfileLimit(out_kmax);
  auto state = BuildChildren(parts, out_kmax, options);

  AdpNode node;
  for (const AdpNode& c : state->children) node.exact &= c.exact;

  if (options.decompose_strategy ==
      AdpOptions::DecomposeStrategy::kFullEnumeration) {
    // Build the profile by probing every target (ablation-only path).
    std::vector<std::int64_t> cost(static_cast<std::size_t>(out_kmax) + 1, 0);
    for (std::int64_t j = 1; j <= out_kmax; ++j) {
      ThrowIfCancelled(options);
      cost[j] = EnumerateVectors(*state, j, nullptr);
    }
    node.profile = CostProfile(std::move(cost));
    if (!options.counting_only) {
      auto s = state;
      node.report = [s, cancel = ReporterToken(options)](std::int64_t j) {
        std::vector<std::int64_t> vec(s->children.size(), 0);
        EnumerateVectors(*s, j, &vec);
        std::vector<TupleRef> out;
        for (std::size_t i = 0; i < vec.size(); ++i) {
          if (vec[i] == 0) continue;
          cancel.ThrowIfCancelled();
          std::vector<TupleRef> part = s->children[i].report(vec[i]);
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      };
    }
    return node;
  }

  const bool naive = options.decompose_strategy ==
                     AdpOptions::DecomposeStrategy::kPairwiseNaive;
  CostProfile acc = state->children[0].profile;
  acc.TruncateTo(out_kmax);
  std::int64_t prefix_m = state->m[0];
  state->choices.resize(state->children.size());
  for (std::size_t i = 1; i < state->children.size(); ++i) {
    acc = CombineProduct(acc, prefix_m, state->children[i].profile,
                         state->m[i], out_kmax, naive,
                         options.counting_only ? nullptr
                                               : &state->choices[i]);
    prefix_m = SatMul(prefix_m, state->m[i]);
  }
  node.profile = std::move(acc);

  if (!options.counting_only) {
    auto s = state;
    node.report = [s, cancel = ReporterToken(options)](std::int64_t j) {
      std::vector<TupleRef> out;
      ReportFold(*s, s->children.size() - 1, j, cancel, out);
      return out;
    };
  }
  return node;
}

DecomposeSingleResult SolveDecomposeSingleK(const ConjunctiveQuery& q,
                                            const Database& db,
                                            std::int64_t k,
                                            const AdpOptions& options) {
  if (options.stats) ++options.stats->decompose_nodes;
  const Components parts = SplitComponents(q, db);
  if (options.trace != nullptr) {
    options.trace->Annotate(options.trace_parent, "components",
                            std::to_string(parts.subs.size()));
  }
  DecomposeSingleResult result;

  if (options.decompose_strategy ==
      AdpOptions::DecomposeStrategy::kFullEnumeration) {
    auto state = BuildChildren(parts, k, options);
    for (const AdpNode& c : state->children) result.exact &= c.exact;
    std::vector<std::int64_t> vec(state->children.size(), 0);
    result.cost = EnumerateVectors(*state, k,
                                   options.counting_only ? nullptr : &vec);
    if (!options.counting_only) {
      for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec[i] == 0) continue;
        ThrowIfCancelled(options);
        std::vector<TupleRef> part = state->children[i].report(vec[i]);
        result.tuples.insert(result.tuples.end(), part.begin(), part.end());
      }
    }
    return result;
  }

  // Fold all but the largest component into a prefix profile, then scan the
  // largest component's removal count k2 once, deriving the minimal prefix
  // target k1 in closed form. This never materializes an array of length k.
  auto state = BuildChildren(parts, k, options);
  for (const AdpNode& c : state->children) result.exact &= c.exact;
  const std::size_t n = state->children.size();
  const bool naive = options.decompose_strategy ==
                     AdpOptions::DecomposeStrategy::kPairwiseNaive;

  CostProfile prefix = state->children[0].profile;
  std::int64_t prefix_m = state->m[0];
  state->choices.resize(n);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    ThrowIfCancelled(options);
    const std::int64_t prefix_cap =
        std::min(k, SatMul(prefix_m, state->m[i]));
    CheckProfileLimit(prefix_cap);
    prefix = CombineProduct(prefix, prefix_m, state->children[i].profile,
                            state->m[i], prefix_cap, naive,
                            options.counting_only ? nullptr
                                                  : &state->choices[i]);
    prefix_m = SatMul(prefix_m, state->m[i]);
  }

  const AdpNode& last = state->children[n - 1];
  const std::int64_t mb = state->m[n - 1];
  ThrowIfCancelled(options);
  std::int64_t best_k1 = 0;
  std::int64_t best_k2 = 0;
  for (std::int64_t k2 = 0; k2 <= last.profile.kmax(); ++k2) {
    std::int64_t k1;
    if (k2 >= mb) {
      k1 = 0;
    } else {
      const std::int64_t need = k - SatMul(k2, prefix_m);
      if (need <= 0) {
        k1 = 0;
      } else {
        const std::int64_t den = mb - k2;
        k1 = (need + den - 1) / den;
      }
    }
    if (k1 > prefix.kmax()) continue;
    const std::int64_t c = prefix.At(k1) + last.profile.At(k2);
    if (c < result.cost) {
      result.cost = c;
      best_k1 = k1;
      best_k2 = k2;
    }
  }

  if (!options.counting_only && result.cost < kInfCost) {
    const CancelToken cancel = ReporterToken(options);
    if (best_k2 > 0) {
      cancel.ThrowIfCancelled();
      std::vector<TupleRef> part = last.report(best_k2);
      result.tuples.insert(result.tuples.end(), part.begin(), part.end());
    }
    if (best_k1 > 0) {
      ReportFold(*state, n - 2, best_k1, cancel, result.tuples);
    }
  }
  return result;
}

}  // namespace adp
