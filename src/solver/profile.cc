#include "solver/profile.h"

#include <algorithm>
#include <cassert>

namespace adp {

CostProfile::CostProfile(std::vector<std::int64_t> cost)
    : cost_(std::move(cost)) {
  assert(!cost_.empty() && cost_[0] == 0);
#ifndef NDEBUG
  for (std::size_t j = 1; j < cost_.size(); ++j) {
    assert(cost_[j] >= cost_[j - 1]);
  }
#endif
}

std::int64_t CostProfile::MaxRemovedWithin(std::int64_t budget) const {
  // Largest j with cost[j] <= budget; cost_ is nondecreasing.
  auto it = std::upper_bound(cost_.begin(), cost_.end(), budget);
  return static_cast<std::int64_t>(it - cost_.begin()) - 1;
}

bool CostProfile::HasConcaveGains() const {
  const std::int64_t budget_max = cost_.back();
  if (budget_max >= kInfCost) return false;
  std::int64_t prev_gain = kMaxOutputs;
  std::int64_t prev_f = 0;
  for (std::int64_t c = 1; c <= budget_max; ++c) {
    const std::int64_t f = MaxRemovedWithin(c);
    const std::int64_t gain = f - prev_f;
    if (gain > prev_gain) return false;
    prev_gain = gain;
    prev_f = f;
  }
  return true;
}

bool CostProfile::IsConvex() const {
  std::int64_t prev_inc = 0;
  for (std::size_t j = 1; j < cost_.size(); ++j) {
    if (cost_[j] >= kInfCost) return false;
    const std::int64_t inc = cost_[j] - cost_[j - 1];
    if (inc < prev_inc) return false;
    prev_inc = inc;
  }
  return true;
}

void CostProfile::TruncateTo(std::int64_t cap) {
  if (cap < kmax()) cost_.resize(static_cast<std::size_t>(cap) + 1);
}

CostProfile CombineDisjoint(const CostProfile& a, const CostProfile& b,
                            std::int64_t cap,
                            std::vector<std::int64_t>* choice_b) {
  const std::int64_t out_kmax = std::min(cap, SatAdd(a.kmax(), b.kmax()));
  std::vector<std::int64_t> out(static_cast<std::size_t>(out_kmax) + 1,
                                kInfCost);
  if (choice_b) choice_b->assign(out.size(), 0);
  for (std::int64_t j = 0; j <= out_kmax; ++j) {
    const std::int64_t mmax = std::min(j, b.kmax());
    const std::int64_t mmin = std::max<std::int64_t>(0, j - a.kmax());
    for (std::int64_t m = mmin; m <= mmax; ++m) {
      const std::int64_t c = a.At(j - m) + b.At(m);
      if (c < out[j]) {
        out[j] = c;
        if (choice_b) (*choice_b)[j] = m;
      }
    }
  }
  return CostProfile(std::move(out));
}

CostProfile CombineProduct(
    const CostProfile& a, std::int64_t ma, const CostProfile& b,
    std::int64_t mb, std::int64_t cap, bool naive_inner,
    std::vector<std::pair<std::int64_t, std::int64_t>>* choice) {
  const std::int64_t total = SatMul(ma, mb);
  const std::int64_t out_kmax = std::min(cap, total);
  std::vector<std::int64_t> out(static_cast<std::size_t>(out_kmax) + 1,
                                kInfCost);
  if (choice) choice->assign(out.size(), {0, 0});
  out[0] = 0;

  auto removed = [&](std::int64_t k1, std::int64_t k2) {
    // k1*mb + k2*ma - k1*k2, saturated.
    return SatAdd(SatMul(k1, mb - k2), SatMul(k2, ma));
  };

  for (std::int64_t j = 1; j <= out_kmax; ++j) {
    const std::int64_t k2_hi = std::min(b.kmax(), std::min(mb, j));
    for (std::int64_t k2 = 0; k2 <= k2_hi; ++k2) {
      const std::int64_t cb = b.At(k2);
      if (cb >= kInfCost) break;  // profiles are monotone
      if (naive_inner) {
        // Original Algorithm 5 inner loop: enumerate every (k1, k2) pair
        // and keep the cheapest feasible one — the Figure 29 "pairwise"
        // strategy measures exactly this full scan.
        const std::int64_t k1_hi = std::min(a.kmax(), std::min(ma, j));
        for (std::int64_t k1 = 0; k1 <= k1_hi; ++k1) {
          if (removed(k1, k2) < j) continue;
          const std::int64_t c = a.At(k1) + cb;
          if (c < out[j]) {
            out[j] = c;
            if (choice) (*choice)[j] = {k1, k2};
          }
        }
      } else {
        // Improved scan (§7.3): minimal feasible k1 in closed form.
        std::int64_t k1;
        if (k2 >= mb) {
          k1 = 0;  // the whole b-factor is gone; everything is removed
        } else {
          const std::int64_t need = j - SatMul(k2, ma);
          if (need <= 0) {
            k1 = 0;
          } else {
            const std::int64_t den = mb - k2;
            k1 = (need + den - 1) / den;
          }
        }
        if (k1 > ma || k1 > a.kmax()) continue;
        if (removed(k1, k2) < j) continue;  // paranoia vs. saturation
        const std::int64_t c = a.At(k1) + cb;
        if (c < out[j]) {
          out[j] = c;
          if (choice) (*choice)[j] = {k1, k2};
        }
      }
    }
    if (out[j] >= kInfCost) {
      // Unreachable targets stay infeasible; keep monotonicity by clamping.
      out[j] = kInfCost;
    }
    if (out[j] < out[j - 1]) out[j] = out[j - 1];
  }
  return CostProfile(std::move(out));
}

}  // namespace adp
