// Decompose(Q, D, k) (Algorithm 5): solve each connected subquery
// recursively and combine under cross-product semantics.
//
// Three combination strategies are provided (Figure 29 ablation):
//   * kImprovedDP       — §7.3 recurrence with the closed-form minimal k1
//                         per (j, k2) pair;
//   * kPairwiseNaive    — Algorithm 5 as printed, enumerating (k1, k2);
//   * kFullEnumeration  — Eq. 2 of Lemma 3: enumerate all (k1..ks) vectors.
//
// The root of a ComputeADP call additionally uses a single-target scan
// (SolveDecomposeSingleK) that avoids materializing a profile of length k —
// essential when k is a fraction of a cross-product-sized |Q(D)|.
//
// When AdpOptions::parallelism is set (Parallelism::min_components > 0),
// the per-component sub-solves of a node with enough components fan out
// across the executor; the cross-product DP that combines their profiles
// stays on the calling thread, so results are bitwise-identical to the
// sequential path (AdpStats::sharded_decompose_nodes reports engagement).

#ifndef ADP_SOLVER_DECOMPOSE_H_
#define ADP_SOLVER_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// Builds the recursion node with a full profile up to `cap`.
/// Precondition: q is disconnected (>= 2 components).
AdpNode DecomposeNode(const ConjunctiveQuery& q, const Database& db,
                      std::int64_t cap, const AdpOptions& options);

/// Result of the root-optimized single-target solve.
struct DecomposeSingleResult {
  std::int64_t cost = kInfCost;
  bool exact = true;
  std::vector<TupleRef> tuples;  // empty when counting_only
};

/// Solves exactly one target k at the recursion root. Preconditions: q is
/// disconnected and 1 <= k <= |Q(D)|.
DecomposeSingleResult SolveDecomposeSingleK(const ConjunctiveQuery& q,
                                            const Database& db,
                                            std::int64_t k,
                                            const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_DECOMPOSE_H_
