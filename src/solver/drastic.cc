#include "solver/drastic.h"

#include <algorithm>
#include <memory>

#include "dichotomy/relations.h"
#include "relational/join.h"

namespace adp {
namespace {

struct RelationPlan {
  int rel = -1;
  // (profit, tuple) sorted by profit descending; profits are disjoint
  // full-join row counts, so prefix sums are exact removal counts.
  std::vector<std::pair<std::int64_t, TupleId>> picks;
  std::vector<std::int64_t> prefix_removed;  // cumulative outputs removed
};

}  // namespace

AdpNode DrasticNode(const ConjunctiveQuery& q, const Database& db,
                    std::int64_t cap, const AdpOptions& options) {
  if (options.stats) ++options.stats->drastic_leaves;
  // One full join with support; per-tuple profits are row counts (full CQ:
  // every row is a distinct output).
  JoinResult join = FullJoin(q.body(), db, /*with_support=*/true);
  const std::size_t p = q.body().size();
  const std::int64_t total = static_cast<std::int64_t>(join.NumRows());

  std::vector<int> candidates = EndogenousRelations(q);
  if (options.restrictions && !options.restrictions->Empty()) {
    // See the greedy note: restrictions invalidate the endogenous-only
    // shortcut of Lemma 13.
    candidates.clear();
    for (int i = 0; i < q.num_relations(); ++i) candidates.push_back(i);
  }
  auto plans = std::make_shared<std::vector<RelationPlan>>();
  for (int rel : candidates) {
    RelationPlan plan;
    plan.rel = rel;
    std::vector<std::int64_t> profit(db.rel(rel).size(), 0);
    for (std::size_t r = 0; r < join.NumRows(); ++r) {
      ++profit[join.SupportOf(r, rel)];
    }
    for (TupleId t = 0; t < profit.size(); ++t) {
      if (profit[t] <= 0) continue;
      if (options.restrictions &&
          options.restrictions->IsProtectedLocal(db.rel(rel), t)) {
        continue;
      }
      plan.picks.emplace_back(profit[t], t);
    }
    std::sort(plan.picks.begin(), plan.picks.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    plan.prefix_removed.reserve(plan.picks.size());
    std::int64_t run = 0;
    for (const auto& [profit_t, t] : plan.picks) {
      run += profit_t;
      plan.prefix_removed.push_back(run);
    }
    plans->push_back(std::move(plan));
  }

  // Node profile: pointwise best relation per target.
  const std::int64_t kmax = std::min(cap, total);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(kmax) + 1, 0);
  // per-j winning plan for reporting
  auto winner = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(kmax) + 1, 0);
  for (std::int64_t j = 1; j <= kmax; ++j) {
    std::int64_t best = kInfCost;
    int best_plan = -1;
    for (std::size_t i = 0; i < plans->size(); ++i) {
      const auto& pr = (*plans)[i].prefix_removed;
      // Smallest prefix length with removed >= j.
      auto it = std::lower_bound(pr.begin(), pr.end(), j);
      if (it == pr.end()) continue;
      const std::int64_t len = static_cast<std::int64_t>(it - pr.begin()) + 1;
      if (len < best) {
        best = len;
        best_plan = static_cast<int>(i);
      }
    }
    cost[j] = best;
    (*winner)[j] = best_plan;
    if (cost[j] < cost[j - 1]) cost[j] = cost[j - 1];  // keep monotone
  }
  (void)p;

  AdpNode node;
  node.exact = false;
  node.profile = CostProfile(std::move(cost));
  if (!options.counting_only) {
    // Capture origin translation tables.
    auto roots = std::make_shared<std::vector<std::pair<int,
        std::vector<TupleId>>>>();
    for (const RelationPlan& plan : *plans) {
      const RelationInstance& inst = db.rel(plan.rel);
      std::vector<TupleId> origins(inst.size());
      for (std::size_t t = 0; t < inst.size(); ++t) {
        origins[t] = inst.OriginOf(t);
      }
      roots->emplace_back(inst.root_relation(), std::move(origins));
    }
    node.report = [plans, winner, roots](std::int64_t j) {
      std::vector<TupleRef> out;
      if (j <= 0) return out;
      const int w = (*winner)[j];
      if (w < 0) return out;
      const RelationPlan& plan = (*plans)[w];
      const auto& [root_rel, origins] = (*roots)[w];
      std::int64_t removed = 0;
      for (std::size_t i = 0; i < plan.picks.size(); ++i) {
        out.push_back(TupleRef{root_rel, origins[plan.picks[i].second]});
        removed = plan.prefix_removed[i];
        if (removed >= j) break;
      }
      return out;
    };
  }
  return node;
}

}  // namespace adp
