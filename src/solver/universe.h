// Universe(Q, D, k) (Algorithm 4): partition the instance by the universal
// attributes, solve each class recursively, and combine the per-class cost
// profiles under disjoint-union semantics (Eq. 1).
//
// Optimizations (§7.3):
//   * all universal attributes are removed as one combined attribute
//     (UniverseStrategy::kAllAtOnce); the one-by-one strategy is kept for
//     the Figure 28 ablation;
//   * when every class profile is convex (e.g. classes solved by Singleton)
//     the DP degenerates to a global merge of marginal gains, which is what
//     makes the paper's "improved" strategy near-linear.
//
// The per-class sub-solves are independent (disjoint sub-instances); with
// AdpOptions::parallelism set they are sharded across an executor and the
// profiles combined in partition order, producing results identical to the
// sequential fold.

#ifndef ADP_SOLVER_UNIVERSE_H_
#define ADP_SOLVER_UNIVERSE_H_

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// Builds the recursion node. Precondition: q.UniversalAttrs() nonempty.
AdpNode UniverseNode(const ConjunctiveQuery& q, const Database& db,
                     std::int64_t cap, const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_UNIVERSE_H_
