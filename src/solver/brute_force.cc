#include "solver/brute_force.h"

#include <algorithm>

#include "query/transform.h"
#include "relational/join.h"

namespace adp {
namespace {

// Advances `combo` to the next size-c combination over [0, n); returns false
// when exhausted.
bool NextCombination(std::vector<int>& combo, int n) {
  const int c = static_cast<int>(combo.size());
  for (int i = c - 1; i >= 0; --i) {
    if (combo[i] < n - (c - i)) {
      ++combo[i];
      for (int j = i + 1; j < c; ++j) combo[j] = combo[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<AdpSolution> BruteForceAdp(
    const ConjunctiveQuery& q, const Database& db, std::int64_t k,
    std::int64_t max_cost, const DeletionRestrictions* restrictions) {
  const ConjunctiveQuery* query = &q;
  const Database* data = &db;
  QueryDb pushed;
  if (q.HasSelections()) {
    pushed = ApplySelections(q, db);
    query = &pushed.query;
    data = &pushed.db;
  }

  const std::int64_t total = static_cast<std::int64_t>(
      CountOutputs(query->body(), query->head(), *data));
  if (k > total) return std::nullopt;

  AdpSolution solution;
  solution.output_count = total;
  solution.exact = true;
  if (k <= 0) {
    solution.removed_outputs = 0;
    return solution;
  }

  // Flatten candidate tuples.
  struct Candidate {
    int rel;
    TupleId local;
  };
  std::vector<Candidate> candidates;
  for (std::size_t r = 0; r < data->num_relations(); ++r) {
    for (std::size_t t = 0; t < data->rel(r).size(); ++t) {
      if (restrictions &&
          restrictions->IsProtectedLocal(data->rel(r), t)) {
        continue;
      }
      candidates.push_back(Candidate{static_cast<int>(r),
                                     static_cast<TupleId>(t)});
    }
  }
  const int n = static_cast<int>(candidates.size());

  std::vector<std::vector<char>> removed(data->num_relations());
  for (std::size_t r = 0; r < data->num_relations(); ++r) {
    removed[r].assign(data->rel(r).size(), 0);
  }

  const std::int64_t cost_limit = max_cost >= 0 ? max_cost : n;
  for (std::int64_t c = 1; c <= cost_limit && c <= n; ++c) {
    std::vector<int> combo(static_cast<std::size_t>(c));
    for (std::int64_t i = 0; i < c; ++i) combo[i] = static_cast<int>(i);
    do {
      for (int idx : combo) removed[candidates[idx].rel][candidates[idx].local] = 1;
      const Database after = WithTuplesRemoved(*data, removed);
      const std::int64_t remaining = static_cast<std::int64_t>(
          CountOutputs(query->body(), query->head(), after));
      for (int idx : combo) removed[candidates[idx].rel][candidates[idx].local] = 0;
      if (total - remaining >= k) {
        solution.cost = c;
        solution.removed_outputs = total - remaining;
        for (int idx : combo) {
          const RelationInstance& inst = data->rel(candidates[idx].rel);
          solution.tuples.push_back(TupleRef{
              inst.root_relation(), inst.OriginOf(candidates[idx].local)});
        }
        NormalizeTupleRefs(solution.tuples);
        return solution;
      }
    } while (NextCombination(combo, n));
  }
  return std::nullopt;
}

}  // namespace adp
