#include "solver/singleton.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "obs/trace.h"
#include "relational/group_index.h"
#include "relational/join.h"
#include "util/hash.h"

namespace adp {
namespace {

// Builds a profile from per-pick gains sorted descending: the c-th deletion
// removes gains[c-1] further outputs.
CostProfile ProfileFromGains(const std::vector<std::int64_t>& gains,
                             std::int64_t cap) {
  std::vector<std::int64_t> cost;
  cost.push_back(0);
  std::int64_t removed = 0;
  for (std::size_t c = 0; c < gains.size(); ++c) {
    const std::int64_t next = removed + gains[c];
    for (std::int64_t j = removed + 1;
         j <= next && static_cast<std::int64_t>(cost.size()) <= cap; ++j) {
      cost.push_back(static_cast<std::int64_t>(c) + 1);
    }
    removed = next;
    if (static_cast<std::int64_t>(cost.size()) > cap) break;
  }
  return CostProfile(std::move(cost));
}

}  // namespace

bool IsSingletonQuery(const ConjunctiveQuery& q, int* which) {
  int best = -1;
  for (int i = 0; i < q.num_relations(); ++i) {
    if (best < 0 || q.relation(i).attrs.size() < q.relation(best).attrs.size()) {
      best = i;
    }
  }
  if (best < 0) return false;
  const AttrSet ai = q.relation(best).attr_set();
  for (int j = 0; j < q.num_relations(); ++j) {
    if (!ai.SubsetOf(q.relation(j).attr_set())) return false;
  }
  if (!ai.SubsetOf(q.head()) && !q.head().SubsetOf(ai)) return false;
  if (which) *which = best;
  return true;
}

AdpNode SingletonNode(const ConjunctiveQuery& q, const Database& db,
                      std::int64_t cap, const AdpOptions& options) {
  int ri = -1;
  IsSingletonQuery(q, &ri);
  const RelationSchema& schema = q.relation(ri);
  const RelationInstance& inst = db.rel(ri);
  const AttrSet ai = schema.attr_set();

  AdpNode node;
  node.exact = true;
  if (options.stats) ++options.stats->singleton_nodes;
  if (options.trace != nullptr) {
    // Algorithm 3 has two regimes: case 1 (attr(Ri) ⊆ head, profit per
    // tuple) and case 2 (head ⊆ attr(Ri), cheapest groups). Record which
    // one fired on this node's own span.
    options.trace->Annotate(options.trace_parent, "case",
                            ai.SubsetOf(q.head()) ? "1" : "2");
  }

  if (ai.SubsetOf(q.head())) {
    // Case 1: profit of an Ri tuple = number of outputs inheriting it.
    // Outputs are grouped by their projection onto attr(Ri); each group
    // corresponds to exactly one Ri tuple (instances are duplicate-free).
    const std::vector<Tuple> outputs =
        DistinctOutputs(q.body(), q.head(), db);
    // Column positions of attr(Ri) inside the head projection (both use
    // increasing AttrId order).
    std::vector<int> cols;
    {
      int pos = 0;
      for (AttrId a : q.head()) {
        if (ai.Contains(a)) cols.push_back(pos);
        ++pos;
      }
    }
    std::unordered_map<Tuple, std::int64_t, VecHash> profit_of;
    profit_of.reserve(outputs.size() * 2);
    Tuple key(cols.size());
    for (const Tuple& out : outputs) {
      for (std::size_t j = 0; j < cols.size(); ++j) key[j] = out[cols[j]];
      ++profit_of[key];
    }
    // Match profits to Ri tuples (tuple column order may differ from
    // AttrId order; normalize).
    std::vector<int> tcols;
    for (AttrId a : ai) tcols.push_back(schema.ColumnOf(a));
    struct Pick {
      std::int64_t profit;
      TupleId t;
    };
    std::vector<Pick> picks;
    picks.reserve(inst.size());
    for (std::size_t t = 0; t < inst.size(); ++t) {
      for (std::size_t j = 0; j < tcols.size(); ++j) {
        key[j] = inst.ValueAt(t, tcols[j]);
      }
      auto it = profit_of.find(key);
      if (it != profit_of.end() && it->second > 0) {
        picks.push_back(Pick{it->second, static_cast<TupleId>(t)});
      }
    }
    std::sort(picks.begin(), picks.end(),
              [](const Pick& a, const Pick& b) { return a.profit > b.profit; });

    std::vector<std::int64_t> gains;
    gains.reserve(picks.size());
    for (const Pick& p : picks) gains.push_back(p.profit);
    node.profile = ProfileFromGains(gains, cap);

    if (!options.counting_only) {
      auto shared = std::make_shared<std::vector<Pick>>(std::move(picks));
      const int root_rel = inst.root_relation();
      std::vector<TupleId> origins(inst.size());
      for (std::size_t t = 0; t < inst.size(); ++t) {
        origins[t] = inst.OriginOf(t);
      }
      auto shared_origins =
          std::make_shared<std::vector<TupleId>>(std::move(origins));
      node.report = [shared, shared_origins, root_rel](std::int64_t j) {
        std::vector<TupleRef> out;
        std::int64_t removed = 0;
        for (const Pick& p : *shared) {
          if (removed >= j) break;
          out.push_back(TupleRef{root_rel, (*shared_origins)[p.t]});
          removed += p.profit;
        }
        return out;
      };
    }
    return node;
  }

  // Case 2: head(Q) ⊆ attr(Ri). Discard dangling Ri tuples, group the rest
  // by head projection (one group per output), delete cheapest groups first.
  const std::vector<std::vector<char>> live = NonDanglingFlags(q.body(), db);
  std::vector<int> hcols;
  for (AttrId a : q.head()) hcols.push_back(schema.ColumnOf(a));
  // Group by head-projection codes (no key materialization), then drop the
  // dangling members of each group; a group left empty never joins, i.e. it
  // is not an output.
  const HashGroupIndex grouped(inst, hcols);
  std::vector<std::vector<TupleId>> sorted_groups;
  sorted_groups.reserve(grouped.num_groups());
  for (std::size_t g = 0; g < grouped.num_groups(); ++g) {
    std::vector<TupleId> members;
    for (TupleId t : grouped.rows(g)) {
      if (live[ri][t]) members.push_back(t);
    }
    if (!members.empty()) sorted_groups.push_back(std::move(members));
  }
  // stable_sort keeps first-seen group order among equal sizes, so witness
  // choice is deterministic.
  std::stable_sort(
      sorted_groups.begin(), sorted_groups.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });

  // Removing the j cheapest groups costs sum of their sizes and removes
  // exactly j outputs.
  std::vector<std::int64_t> cost;
  cost.push_back(0);
  for (std::size_t g = 0;
       g < sorted_groups.size() &&
       static_cast<std::int64_t>(cost.size()) <= cap;
       ++g) {
    cost.push_back(cost.back() +
                   static_cast<std::int64_t>(sorted_groups[g].size()));
  }
  node.profile = CostProfile(std::move(cost));

  if (!options.counting_only) {
    auto shared =
        std::make_shared<std::vector<std::vector<TupleId>>>(
            std::move(sorted_groups));
    const int root_rel = inst.root_relation();
    std::vector<TupleId> origins(inst.size());
    for (std::size_t t = 0; t < inst.size(); ++t) origins[t] = inst.OriginOf(t);
    auto shared_origins =
        std::make_shared<std::vector<TupleId>>(std::move(origins));
    node.report = [shared, shared_origins, root_rel](std::int64_t j) {
      std::vector<TupleRef> out;
      for (std::int64_t g = 0; g < j && g < static_cast<std::int64_t>(
                                               shared->size());
           ++g) {
        for (TupleId t : (*shared)[g]) {
          out.push_back(TupleRef{root_rel, (*shared_origins)[t]});
        }
      }
      return out;
    };
  }
  return node;
}

}  // namespace adp
