#include "solver/universe.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "obs/names.h"
#include "obs/trace.h"
#include "query/transform.h"

namespace adp {
namespace {

// Children plus everything the reporter needs.
struct UniverseState {
  std::vector<AdpNode> children;
  // Generic DP path: per fold level i >= 1, choice[i][j] = outputs taken
  // from child i when the combined target is j.
  std::vector<std::vector<std::int64_t>> choices;
  // Convex path: all marginal steps sorted by gain descending.
  struct Step {
    std::int64_t gain;
    int child;
  };
  std::vector<Step> steps;
  bool convex = false;
};

AdpNode CombineChildren(std::shared_ptr<UniverseState> state, std::int64_t cap,
                        const AdpOptions& options) {
  AdpNode node;
  for (const AdpNode& c : state->children) node.exact &= c.exact;

  bool all_convex = options.universe_convex_merge;
  for (const AdpNode& c : state->children) {
    all_convex = all_convex && c.profile.HasConcaveGains();
  }
  state->convex = all_convex;

  if (all_convex) {
    // Global greedy over marginal gains: the c-th unit of budget spent on a
    // child buys MaxRemovedWithin(c) - MaxRemovedWithin(c-1) outputs; for
    // convex profiles these gains are nonincreasing per child, so merging
    // all steps by gain is optimal for the disjoint union.
    for (std::size_t i = 0; i < state->children.size(); ++i) {
      const CostProfile& prof = state->children[i].profile;
      const std::int64_t budget_max = prof.At(prof.kmax());
      std::int64_t prev = 0;
      for (std::int64_t c = 1; c <= budget_max; ++c) {
        const std::int64_t now = prof.MaxRemovedWithin(c);
        if (now > prev) {
          state->steps.push_back(
              UniverseState::Step{now - prev, static_cast<int>(i)});
        }
        prev = now;
      }
    }
    std::sort(state->steps.begin(), state->steps.end(),
              [](const auto& a, const auto& b) { return a.gain > b.gain; });
    std::vector<std::int64_t> cost;
    cost.push_back(0);
    std::int64_t removed = 0;
    for (std::size_t s = 0;
         s < state->steps.size() &&
         static_cast<std::int64_t>(cost.size()) <= cap;
         ++s) {
      const std::int64_t next = removed + state->steps[s].gain;
      for (std::int64_t j = removed + 1;
           j <= next && static_cast<std::int64_t>(cost.size()) <= cap; ++j) {
        cost.push_back(static_cast<std::int64_t>(s) + 1);
      }
      removed = next;
    }
    node.profile = CostProfile(std::move(cost));
  } else {
    // Sequential fold with the plain min-plus DP (Eq. 1), recording split
    // choices for reporting.
    CostProfile acc = state->children[0].profile;
    acc.TruncateTo(cap);
    state->choices.resize(state->children.size());
    for (std::size_t i = 1; i < state->children.size(); ++i) {
      acc = CombineDisjoint(acc, state->children[i].profile, cap,
                            options.counting_only ? nullptr
                                                  : &state->choices[i]);
    }
    node.profile = std::move(acc);
  }

  if (!options.counting_only) {
    const std::shared_ptr<UniverseState> s = state;
    // Polled per child report so a cancelled stream stops mid-enumeration
    // instead of finishing the whole witness walk (see ReporterToken).
    const CancelToken cancel = ReporterToken(options);
    node.report = [s, cancel](std::int64_t j) {
      std::vector<TupleRef> out;
      if (s->convex) {
        // Budget per child from the sorted step prefix covering j.
        std::vector<std::int64_t> budget(s->children.size(), 0);
        std::int64_t removed = 0;
        for (const auto& step : s->steps) {
          if (removed >= j) break;
          ++budget[step.child];
          removed += step.gain;
        }
        for (std::size_t i = 0; i < s->children.size(); ++i) {
          if (budget[i] == 0) continue;
          cancel.ThrowIfCancelled();
          const std::int64_t ji =
              s->children[i].profile.MaxRemovedWithin(budget[i]);
          std::vector<TupleRef> part = s->children[i].report(ji);
          out.insert(out.end(), part.begin(), part.end());
        }
      } else {
        std::int64_t target = j;
        for (std::size_t i = s->children.size(); i-- > 1;) {
          const std::int64_t m = s->choices[i].empty()
                                     ? 0
                                     : s->choices[i][target];
          if (m > 0) {
            cancel.ThrowIfCancelled();
            std::vector<TupleRef> part = s->children[i].report(m);
            out.insert(out.end(), part.begin(), part.end());
          }
          target -= m;
        }
        if (target > 0) {
          cancel.ThrowIfCancelled();
          std::vector<TupleRef> part = s->children[0].report(target);
          out.insert(out.end(), part.begin(), part.end());
        }
      }
      return out;
    };
  }
  return node;
}

}  // namespace

AdpNode UniverseNode(const ConjunctiveQuery& q, const Database& db,
                     std::int64_t cap, const AdpOptions& options) {
  AttrSet to_remove = q.UniversalAttrs();
  if (options.universe_strategy == AdpOptions::UniverseStrategy::kOneByOne) {
    // Figure 28 strategy 1: peel a single universal attribute; the residual
    // query still has the rest, so the recursion stacks partitions.
    to_remove = AttrSet::Of(*to_remove.begin());
  }

  const ConjunctiveQuery residual = RemoveAttributes(q, to_remove);
  std::vector<UniverseGroup> groups = PartitionByAttrs(q, db, to_remove);
  if (options.stats) {
    ++options.stats->universe_nodes;
    options.stats->universe_groups +=
        static_cast<std::int64_t>(groups.size());
  }
  if (options.trace != nullptr) {
    // options.trace_parent is this node's own span (ComputeAdpNode opened
    // it before dispatching here); the tag lands on that span.
    options.trace->Annotate(options.trace_parent, "groups",
                            std::to_string(groups.size()));
  }

  auto state = std::make_shared<UniverseState>();
  const Parallelism* par = options.parallelism;
  if (par != nullptr && par->run_all != nullptr && par->min_groups > 0 &&
      groups.size() >= std::max<std::size_t>(par->min_groups, 2)) {
    // Sharded path: the groups are disjoint sub-instances of independent
    // subproblems, so their solves can run concurrently. Children land at
    // fixed indices and are combined in partition order below, keeping the
    // result bitwise-identical to the sequential fold. Each shard writes a
    // private AdpStats (the shared pointer would race) merged afterwards —
    // a commutative fold, so the index-order merge below equals whatever
    // completion order the pool produced.
    if (options.stats) ++options.stats->sharded_universe_nodes;
    state->children.resize(groups.size());
    std::vector<AdpStats> shard_stats(options.stats ? groups.size() : 0);
    std::vector<std::exception_ptr> errors(groups.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      tasks.push_back([&, i] {
        try {
          AdpOptions shard = options;
          if (options.stats) shard.stats = &shard_stats[i];
          // One span per shard, parented under this Universe node's span;
          // shards run on arbitrary pool threads, so the explicit parent
          // link (not any thread-local ambient span) is what keeps the
          // trace a tree.
          obs::Span span(options.trace, obs::kSpanShardUniverse,
                         options.trace_parent);
          span.Tag("shard", static_cast<std::int64_t>(i));
          shard.trace_parent = span.id();
          // Sharded sub-solves poll the token too: a cancel that lands
          // mid-fan-out stops the remaining shards at their boundary.
          ThrowIfCancelled(shard);
          state->children[i] =
              ComputeAdpNode(residual, groups[i].db, cap, shard);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    par->run_all(std::move(tasks));
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    if (options.stats) {
      for (const AdpStats& s : shard_stats) MergeAdpStats(*options.stats, s);
    }
  } else {
    state->children.reserve(groups.size());
    for (UniverseGroup& g : groups) {
      ThrowIfCancelled(options);
      state->children.push_back(ComputeAdpNode(residual, g.db, cap, options));
    }
  }
  if (state->children.empty()) {
    // No complete class: Q(D) is empty.
    return AdpNode{CostProfile(), true,
                   options.counting_only
                       ? Reporter()
                       : [](std::int64_t) { return std::vector<TupleRef>(); }};
  }
  return CombineChildren(state, cap, options);
}

}  // namespace adp
