#include "solver/greedy.h"

#include <memory>

#include "dichotomy/relations.h"
#include "relational/provenance.h"

namespace adp {

GreedyTrace RunGreedyForCQ(const ConjunctiveQuery& q, const Database& db,
                           std::int64_t target,
                           const DeletionRestrictions* restrictions) {
  ProvenanceIndex index(q.body(), q.head(), db);
  GreedyTrace trace;
  trace.total_outputs = index.total_outputs();
  // Lemma 13 lets the unrestricted greedy consider endogenous relations
  // only; with protected tuples the exogenous substitute of a protected
  // endogenous tuple may be the only deletable option, so consider all.
  std::vector<int> candidates = EndogenousRelations(q);
  if (restrictions && !restrictions->Empty()) {
    candidates.clear();
    for (int i = 0; i < q.num_relations(); ++i) candidates.push_back(i);
  }

  std::int64_t removed = 0;
  while (removed < target && index.alive_outputs() > 0) {
    int best_rel = -1;
    TupleId best_tuple = 0;
    std::int64_t best_profit = -1;
    for (int rel : candidates) {
      const std::size_t n = index.NumTuples(rel);
      for (TupleId t = 0; t < n; ++t) {
        if (restrictions &&
            restrictions->IsProtectedLocal(db.rel(rel), t)) {
          continue;
        }
        if (!index.IsRelevant(rel, t)) continue;
        const std::int64_t profit = index.Profit(rel, t);
        if (profit > best_profit) {
          best_profit = profit;
          best_rel = rel;
          best_tuple = t;
        }
      }
    }
    if (best_rel < 0) break;  // nothing deletable remains
    removed += index.Delete(best_rel, best_tuple);
    const RelationInstance& inst = db.rel(best_rel);
    trace.picks.push_back(
        TupleRef{inst.root_relation(), inst.OriginOf(best_tuple)});
    trace.removed_after.push_back(removed);
  }
  return trace;
}

AdpNode GreedyNode(const ConjunctiveQuery& q, const Database& db,
                   std::int64_t cap, const AdpOptions& options) {
  if (options.stats) ++options.stats->greedy_leaves;
  GreedyTrace trace = RunGreedyForCQ(q, db, std::min(cap, std::int64_t{1} << 62),
                                     options.restrictions);

  // Profile from the trajectory: cost[j] = first pick count reaching j.
  const std::int64_t kmax = std::min<std::int64_t>(
      cap, trace.removed_after.empty() ? 0 : trace.removed_after.back());
  std::vector<std::int64_t> cost(static_cast<std::size_t>(kmax) + 1, 0);
  {
    std::size_t pick = 0;
    for (std::int64_t j = 1; j <= kmax; ++j) {
      while (trace.removed_after[pick] < j) ++pick;
      cost[j] = static_cast<std::int64_t>(pick) + 1;
    }
  }

  AdpNode node;
  node.exact = false;
  node.profile = CostProfile(std::move(cost));
  if (!options.counting_only) {
    auto shared = std::make_shared<GreedyTrace>(std::move(trace));
    node.report = [shared](std::int64_t j) {
      std::vector<TupleRef> out;
      for (std::size_t i = 0; i < shared->picks.size(); ++i) {
        out.push_back(shared->picks[i]);
        if (shared->removed_after[i] >= j) break;
      }
      if (j <= 0) out.clear();
      return out;
    };
  }
  return node;
}

}  // namespace adp
