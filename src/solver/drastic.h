// DrasticGreedyForFullCQ (Algorithm 7): the cheap heuristic for full CQs.
// Profits are computed once per tuple (distinct tuples of one relation
// remove disjoint full-join rows), each endogenous relation proposes the
// smallest profit-sorted prefix reaching the target, and the cheapest
// relation wins. Not applicable under projections (§7.4).

#ifndef ADP_SOLVER_DRASTIC_H_
#define ADP_SOLVER_DRASTIC_H_

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// Builds the (non-exact) recursion node. Precondition: q.IsFull().
AdpNode DrasticNode(const ConjunctiveQuery& q, const Database& db,
                    std::int64_t cap, const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_DRASTIC_H_
