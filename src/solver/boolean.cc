#include "solver/boolean.h"

#include <unordered_map>

#include "dichotomy/linearize.h"
#include "dichotomy/relations.h"
#include "flow/max_flow.h"
#include "util/hash.h"

namespace adp {

std::optional<BooleanResult> SolveBooleanExact(
    const ConjunctiveQuery& q, const Database& db,
    const DeletionRestrictions* restrictions,
    const std::vector<int>* linear_order) {
  std::optional<std::vector<int>> order_opt;
  if (linear_order == nullptr) {
    order_opt = FindLinearOrder(q);
    if (!order_opt) return std::nullopt;
  }
  const std::vector<int>& order = linear_order ? *linear_order : *order_opt;
  const int p = q.num_relations();
  const std::vector<char> exo = ExogenousFlags(q);

  // Network: s -> [in(t) -> out(t)] per tuple, consecutive atoms linked
  // through per-join-key hub nodes, last atom -> t. In a linear arrangement
  // any s-t chain of pairwise-joining tuples is globally consistent (each
  // attribute spans a contiguous block), so s-t connectivity == Q(D) true,
  // and a minimum vertex cut == resilience.
  MaxFlow flow(2);
  const int source = 0;
  const int sink = 1;

  // Node ids for tuple splits, per linear position.
  std::vector<std::vector<int>> in_node(p), out_node(p);
  std::vector<std::vector<int>> tuple_edge(p);  // in->out edge ids
  for (int pos = 0; pos < p; ++pos) {
    const int rel = order[pos];
    const RelationInstance& inst = db.rel(rel);
    const std::int64_t rel_cap = exo[rel] ? kInfCapacity : 1;
    in_node[pos].resize(inst.size());
    out_node[pos].resize(inst.size());
    tuple_edge[pos].resize(inst.size());
    for (std::size_t t = 0; t < inst.size(); ++t) {
      in_node[pos][t] = flow.AddNode();
      out_node[pos][t] = flow.AddNode();
      std::int64_t cap = rel_cap;
      if (restrictions && restrictions->IsProtectedLocal(inst, t)) {
        cap = kInfCapacity;  // §9 extension: undeletable tuple
      }
      tuple_edge[pos][t] = flow.AddEdge(in_node[pos][t], out_node[pos][t], cap);
    }
  }

  // Source / sink attachment.
  for (std::size_t t = 0; t < db.rel(order[0]).size(); ++t) {
    flow.AddEdge(source, in_node[0][t], kInfCapacity);
  }
  for (std::size_t t = 0; t < db.rel(order[p - 1]).size(); ++t) {
    flow.AddEdge(out_node[p - 1][t], sink, kInfCapacity);
  }

  // Consecutive atoms: hub node per shared-attribute key (avoids quadratic
  // edge blowup).
  for (int pos = 0; pos + 1 < p; ++pos) {
    const int left = order[pos];
    const int right = order[pos + 1];
    const RelationSchema& ls = q.relation(left);
    const RelationSchema& rs = q.relation(right);
    const AttrSet shared = ls.attr_set().Intersect(rs.attr_set());
    std::vector<int> lcols, rcols;
    for (AttrId a : shared) {
      lcols.push_back(ls.ColumnOf(a));
      rcols.push_back(rs.ColumnOf(a));
    }
    std::unordered_map<Tuple, int, VecHash> hub;
    auto hub_for = [&](const Tuple& key) {
      auto [it, inserted] = hub.try_emplace(key, -1);
      if (inserted) it->second = flow.AddNode();
      return it->second;
    };
    Tuple key(lcols.size());
    const RelationInstance& linst = db.rel(left);
    for (std::size_t t = 0; t < linst.size(); ++t) {
      for (std::size_t j = 0; j < lcols.size(); ++j) {
        key[j] = linst.ValueAt(t, lcols[j]);
      }
      flow.AddEdge(out_node[pos][t], hub_for(key), kInfCapacity);
    }
    const RelationInstance& rinst = db.rel(right);
    for (std::size_t t = 0; t < rinst.size(); ++t) {
      for (std::size_t j = 0; j < rcols.size(); ++j) {
        key[j] = rinst.ValueAt(t, rcols[j]);
      }
      flow.AddEdge(hub_for(key), in_node[pos + 1][t], kInfCapacity);
    }
  }

  BooleanResult result;
  result.resilience = flow.Compute(source, sink);

  // Extract the vertex cut: tuples whose in-node is reachable from s in the
  // residual graph while their out-node is not.
  const std::vector<char> side = flow.SourceSide(source);
  for (int pos = 0; pos < p; ++pos) {
    const int rel = order[pos];
    const RelationInstance& inst = db.rel(rel);
    for (std::size_t t = 0; t < inst.size(); ++t) {
      if (side[in_node[pos][t]] && !side[out_node[pos][t]]) {
        result.cut.push_back(
            TupleRef{inst.root_relation(), inst.OriginOf(t)});
      }
    }
  }
  return result;
}

}  // namespace adp
