// Cacheable dispatch plans for ComputeADP (Algorithm 2).
//
// Every decision Algorithm 2 makes about *which* case to apply is a function
// of query structure alone: the boolean test, the singleton test, universal
// attributes, and connectivity never look at the data. The recursion's
// derived queries are likewise data-independent — all Universe groups share
// one residual query, and Decompose's components are fixed by the body's
// join graph. A DispatchPlan walks that skeleton once, recording for each
// reachable query structure (keyed by its canonical fingerprint) the chosen
// case and, for boolean nodes, the linear arrangement found by the
// exhaustive permutation search in §7.1 — the single most expensive piece
// of query-complexity work.
//
// A solve with AdpOptions::plan set then skips straight to data-dependent
// work: classification becomes a hash lookup and the Boolean solver receives
// its arrangement precomputed. Plans are immutable after construction, so
// one instance may serve any number of concurrent solves.

#ifndef ADP_SOLVER_PLAN_H_
#define ADP_SOLVER_PLAN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "solver/compute_adp.h"

namespace adp {

/// The cached decision for one query structure of the recursion.
struct PlanEntry {
  AdpCase op = AdpCase::kHeuristic;

  /// Boolean nodes only: the linear arrangement, or nullopt if the
  /// permutation search proved none exists (the solver then goes straight
  /// to the greedy fallback without repeating the search).
  std::optional<std::vector<int>> linear_order;
};

/// The data-independent skeleton of one ComputeADP recursion.
class DispatchPlan {
 public:
  /// Entry for `q`'s structure, or nullptr if `q` was not reachable from
  /// the planned root (the solver then re-derives the decision locally).
  const PlanEntry* Find(const ConjunctiveQuery& q) const;

  /// Entry by precomputed canonical key (query/fingerprint.h).
  const PlanEntry* FindByKey(const std::string& key) const;

  /// Number of distinct query structures in the plan.
  std::size_t size() const { return entries_.size(); }

  /// Indented rendering of the dispatch tree, for diagnostics/EXPLAIN.
  std::string ToString() const;

  /// One node of the dispatch tree (root() mirrors the recursion shape;
  /// entries() is the flat lookup the solver uses).
  struct TreeNode {
    std::string key;
    AdpCase op = AdpCase::kHeuristic;
    std::vector<TreeNode> children;
  };
  const TreeNode& root() const { return root_; }

 private:
  friend DispatchPlan BuildDispatchPlan(const ConjunctiveQuery& q,
                                        const AdpOptions& options);

  TreeNode root_;
  std::unordered_map<std::string, PlanEntry> entries_;
};

/// Builds the plan for `q`, which must be selection-free (the engine plans
/// the residual query after Lemma-12 pushdown, matching what ComputeAdp
/// recurses on). `options` must carry the same classification-relevant knobs
/// as the solves the plan will serve.
DispatchPlan BuildDispatchPlan(const ConjunctiveQuery& q,
                               const AdpOptions& options);

/// Short name of a dispatch case ("boolean", "singleton", ...).
const char* AdpCaseName(AdpCase c);

}  // namespace adp

#endif  // ADP_SOLVER_PLAN_H_
