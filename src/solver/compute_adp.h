// ComputeADP (Algorithm 2): the unified poly-time algorithm. Exact on
// poly-time-solvable queries, a heuristic on NP-hard ones.
//
// Dispatch order follows the paper:
//   1. Boolean       — resilience via minimum vertex cut (§7.1);
//   2. Singleton     — direct sorting algorithm (Algorithm 3, §7.2);
//   3. Universe      — partition on universal attributes + DP (Algorithm 4);
//   4. Decompose     — connected components + cross-product DP (Algorithm 5);
//   5. Greedy leaf   — GreedyForCQ (Alg 6) or DrasticGreedy (Alg 7).
// Selections are pushed down first (Lemma 12).
//
// Internally every recursion node produces a CostProfile plus a lazy
// reporter; see solver/profile.h for the combination semantics.

#ifndef ADP_SOLVER_COMPUTE_ADP_H_
#define ADP_SOLVER_COMPUTE_ADP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/profile.h"
#include "solver/restrictions.h"
#include "solver/solution.h"
#include "util/cancel.h"

namespace adp {

class DispatchPlan;

namespace obs {
class TraceSink;  // obs/trace.h; forward-declared to keep the solver light
}  // namespace obs

/// The per-node decision of Algorithm 2. Data-independent: it is a function
/// of the (selection-free) query structure and the option knobs alone, which
/// is what makes dispatch plans cacheable (solver/plan.h).
enum class AdpCase { kBoolean, kSingleton, kUniverse, kDecompose, kHeuristic };

/// Recursion statistics, filled when AdpOptions::stats is set. Useful for
/// understanding which of Algorithm 2's cases a query exercises.
/// When adding a field, extend MergeAdpStats (compute_adp.cc) too, or
/// sharded solves will silently drop its per-shard contributions.
struct AdpStats {
  int boolean_nodes = 0;
  int boolean_fallbacks = 0;  // triad-free but not linearizable -> greedy
  int singleton_nodes = 0;
  int universe_nodes = 0;
  int decompose_nodes = 0;
  int greedy_leaves = 0;
  int drastic_leaves = 0;
  std::int64_t universe_groups = 0;
  /// Universe nodes whose partition groups were solved in parallel via
  /// AdpOptions::parallelism.
  int sharded_universe_nodes = 0;
  /// Decompose nodes whose connected-component sub-solves were solved in
  /// parallel via AdpOptions::parallelism.
  int sharded_decompose_nodes = 0;
};

/// Field-wise accumulation, used to fold per-shard statistics back into the
/// parent solve's AdpStats. Every field is an additive tally, so the merge
/// is commutative and associative: the folded total is independent of the
/// order the shards finished in (asserted by stats_test's order-independence
/// test — keep new fields additive, or give them an order-independent merge).
void MergeAdpStats(AdpStats& into, const AdpStats& from);

/// Field-wise equality.
bool operator==(const AdpStats& a, const AdpStats& b);
inline bool operator!=(const AdpStats& a, const AdpStats& b) {
  return !(a == b);
}

/// True iff `a` and `b` agree on every field except the sharding-engagement
/// markers (sharded_universe_nodes / sharded_decompose_nodes) — the one
/// intended difference between a serial and a sharded run of the same solve.
bool StatsAgreeModuloSharding(const AdpStats& a, const AdpStats& b);

/// Intra-request parallelism hook. When AdpOptions::parallelism is set,
/// recursion nodes whose subproblems are independent — the Universe case's
/// partition groups (Algorithm 4) and the Decompose case's connected
/// components (Algorithm 5) — dispatch them through `run_all`, typically
/// backed by a worker pool, instead of solving sequentially. Results are
/// bitwise-identical to the sequential path: shard outputs land at fixed
/// indices, are combined in the same order the sequential fold would use
/// (partition order / ascending-|Q_i(D)| fold order), and each shard gets a
/// private AdpStats that is merged afterwards.
struct Parallelism {
  /// Executes every task exactly once and returns when all have finished.
  /// Must be safe to invoke from inside one of its own tasks (nested
  /// Universe/Decompose nodes shard recursively); ThreadPool::RunAll — whose
  /// calling thread helps drain the batch — qualifies.
  std::function<void(std::vector<std::function<void()>>)> run_all;

  /// Shard only Universe nodes with at least this many partition groups;
  /// smaller nodes stay sequential (dispatch overhead would dominate).
  /// 0 disables Universe sharding entirely.
  std::size_t min_groups = 4;

  /// Shard only Decompose nodes with at least this many connected
  /// components. 0 disables Decompose sharding entirely.
  std::size_t min_components = 4;
};

/// Tuning knobs. Defaults reproduce the paper's recommended configuration;
/// the alternate strategies exist for the Figure 28/29 ablations.
struct AdpOptions {
  /// Heuristic used on NP-hard leaves.
  enum class Heuristic { kGreedy, kDrastic };
  Heuristic heuristic = Heuristic::kGreedy;

  /// Skip materializing the witness tuples (the paper's "counting version").
  bool counting_only = false;

  /// Re-evaluate the query after deletion and fill removed_outputs.
  bool verify = false;

  /// Universe: remove all universal attributes as one combined attribute
  /// (default, §7.3) or one at a time (Fig 28 strategy 1).
  enum class UniverseStrategy { kAllAtOnce, kOneByOne };
  UniverseStrategy universe_strategy = UniverseStrategy::kAllAtOnce;

  /// Universe: allow the greedy marginal-merge fast path when every group
  /// profile is convex. Disable to force the plain DP (Fig 28 strategy 2).
  bool universe_convex_merge = true;

  /// Decompose: improved DP (§7.3), the paper's original O(k^2)-inner-loop
  /// DP, or full enumeration of (k1..ks) vectors (Fig 29 strategies 3/2/1).
  enum class DecomposeStrategy { kImprovedDP, kPairwiseNaive,
                                 kFullEnumeration };
  DecomposeStrategy decompose_strategy = DecomposeStrategy::kImprovedDP;

  /// Enable the Singleton base case (§7.2 optimization). When disabled the
  /// recursion falls through to Universe/Decompose as in the un-optimized
  /// variant.
  bool use_singleton = true;

  /// §9 extension: tuples that may not be deleted (root coordinates).
  /// Boolean subproblems stay exact; other leaves become heuristic — see
  /// solver/restrictions.h for the support matrix. Not owned.
  const DeletionRestrictions* restrictions = nullptr;

  /// If set, receives recursion statistics. Not owned.
  AdpStats* stats = nullptr;

  /// Precomputed dispatch plan (solver/plan.h). When set, recursion nodes
  /// whose query structure appears in the plan reuse the recorded case and
  /// linear arrangement instead of re-deriving them. Must have been built
  /// with options whose classification-relevant knobs (use_singleton,
  /// universe_strategy, presence of restrictions) match this request's.
  /// Not owned; must outlive the solve. Read-only, so one plan may serve
  /// many concurrent solves.
  const DispatchPlan* plan = nullptr;

  /// Intra-request parallelism (see Parallelism above). Not owned; must
  /// outlive the solve. Engine-managed on requests that go through
  /// AdpEngine (like `plan` and `stats`).
  const Parallelism* parallelism = nullptr;

  /// Cooperative cancellation/deadline token, polled at recursion node
  /// boundaries — including sharded sub-solves and the long inner loops of
  /// the Decompose case. A fired token aborts the solve by throwing
  /// CancelledError (util/cancel.h). Not owned; must outlive the solve.
  /// Engine-managed on requests that go through AdpEngine.
  const CancelToken* cancel = nullptr;

  /// Span sink for per-node tracing (obs/trace.h). Null — the default —
  /// disables tracing at the cost of one pointer compare per recursion
  /// node, checked at the same boundaries that poll `cancel`. Not owned;
  /// must outlive the solve. Engine-managed on requests that go through
  /// AdpEngine (AdpRequest::collect_trace).
  obs::TraceSink* trace = nullptr;

  /// Span id the next recursion node should parent under (0 = trace root).
  /// Maintained by the recursion itself; callers only seed the root value.
  std::uint32_t trace_parent = 0;
};

/// Polls options.cancel and throws CancelledError iff it has fired. Called
/// at every recursion node boundary; sub-solvers with long internal loops
/// poll it themselves.
inline void ThrowIfCancelled(const AdpOptions& options) {
  if (options.cancel != nullptr) options.cancel->ThrowIfCancelled();
}

/// By-value copy of the solve's cancel token for reporter lambdas to
/// capture: reporters can run long after the profile solve returned (the
/// engine's streaming path drives them incrementally), outliving the
/// AdpOptions that configured them — tokens are cheap shared handles, so a
/// copy stays valid and lets a cancelled stream stop mid-enumeration.
inline CancelToken ReporterToken(const AdpOptions& options) {
  return options.cancel != nullptr ? *options.cancel : CancelToken();
}

/// Solves ADP(Q, D, k). `q` may carry selections; `db` must be the root
/// database (instances indexed as in `q`).
AdpSolution ComputeAdp(const ConjunctiveQuery& q, const Database& db,
                       std::int64_t k, const AdpOptions& options = {});

/// Algorithm 2's dispatch decision for a selection-free query. Exposed so
/// plan builders (solver/plan.h) share the exact logic the recursion uses.
AdpCase ClassifyAdpCase(const ConjunctiveQuery& q, const AdpOptions& options);

// --- Internal recursion interface (exposed for sub-solvers and tests) -----

/// Lazy witness producer: report(j) returns root-coordinate tuples whose
/// removal removes >= j outputs of the node's subproblem, at profile cost.
using Reporter = std::function<std::vector<TupleRef>(std::int64_t)>;

/// One node of the ComputeADP recursion.
struct AdpNode {
  /// Profile with kmax == min(cap, |Q'(D')|); entries all finite.
  CostProfile profile;
  /// True iff every sub-solver on this subtree was exact.
  bool exact = true;
  /// Null iff counting_only.
  Reporter report;
};

/// Recursion entry point; `q` must be selection-free.
AdpNode ComputeAdpNode(const ConjunctiveQuery& q, const Database& db,
                       std::int64_t cap, const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_COMPUTE_ADP_H_
