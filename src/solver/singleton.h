// Singleton(Q, D, k) (Definition 10, Algorithm 3): a direct sorting
// algorithm for queries with a relation Ri whose attributes are contained in
// every other relation and comparable with the head.
//
//   Case 1, attr(Ri) ⊆ head(Q): every output tuple inherits its attr(Ri)
//     values from exactly one Ri tuple, so outputs are partitioned by Ri
//     tuple. Removing the highest-"profit" tuples first is optimal.
//   Case 2, head(Q) ⊆ attr(Ri): after discarding dangling tuples, output t
//     dies exactly when all Ri tuples projecting to t die; picking the
//     cheapest output groups first is optimal.
//
// Both cases yield *convex* cost profiles, which is what makes stacked
// Universe/Decompose combinations cheap (§7.3, Figures 28–29).

#ifndef ADP_SOLVER_SINGLETON_H_
#define ADP_SOLVER_SINGLETON_H_

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// True if `q` satisfies Definition 10. If so and `which` is non-null,
/// stores the body index of the singleton relation Ri (the one with the
/// minimum attribute count, per Algorithm 3 line 1).
bool IsSingletonQuery(const ConjunctiveQuery& q, int* which);

/// Builds the exact recursion node. Precondition: IsSingletonQuery(q).
AdpNode SingletonNode(const ConjunctiveQuery& q, const Database& db,
                      std::int64_t cap, const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_SINGLETON_H_
